#pragma once
// Immutable weighted hypergraph in CSR form, the substrate of everything
// else in this repository. Both incidence directions are materialized:
// pins-of-net for cut evaluation and nets-of-vertex for gain updates.
//
// Vertices carry one or more resource weights (Sec. IV of the paper
// proposes multi-balanced partitioning with k resource types; resource 0
// is cell area). Vertices may be flagged as pads (zero-area I/O terminals),
// which the benchmark-derivation and statistics code uses.

#include <span>
#include <string>
#include <vector>

#include "hg/types.hpp"

namespace fixedpart::hg {

class HypergraphBuilder;

/// Raw CSR arrays for Hypergraph::from_csr. Derived quantities
/// (total_weights, num_pads, max_weighted_degree) may be left at their
/// "compute me" defaults; suppliers that already know them (the binary
/// reader stores them in the file header) pass them through and skip the
/// O(pins) recomputation.
struct CsrArrays {
  VertexId num_vertices = 0;
  NetId num_nets = 0;
  int num_resources = 1;
  std::vector<std::int64_t> net_offsets;  // size num_nets + 1
  std::vector<VertexId> net_pins;
  std::vector<std::int64_t> vtx_offsets;  // size num_vertices + 1
  std::vector<NetId> vtx_nets;            // transpose of net_pins
  std::vector<Weight> net_weights;
  std::vector<Weight> vertex_weights;     // num_vertices * num_resources
  std::vector<std::uint8_t> pad_flags;    // size num_vertices
  std::vector<Weight> total_weights;      // empty -> computed
  VertexId num_pads = -1;                 // < 0 -> computed
  Weight max_weighted_degree = -1;        // < 0 -> computed
};

class Hypergraph {
 public:
  /// An empty hypergraph; populated instances come from HypergraphBuilder.
  Hypergraph() = default;

  /// Adopts pre-built CSR arrays verbatim — no transpose, no sorting, no
  /// dedup. TRUSTING: the caller vouches that both incidence directions
  /// are consistent, pins are sorted and unique per net, and offsets are
  /// monotone; call validate() when the provenance is untrusted. This is
  /// the fast path for the binary reader (arrays come straight out of a
  /// checksummed file) and the vehicle for 2^31-boundary unit tests with
  /// synthetic offset tables.
  static Hypergraph from_csr(CsrArrays&& a);

  VertexId num_vertices() const { return num_vertices_; }
  NetId num_nets() const { return num_nets_; }
  std::int64_t num_pins() const {
    return static_cast<std::int64_t>(net_pins_.size());
  }
  /// Number of balance resources per vertex (>= 1; resource 0 = area).
  int num_resources() const { return num_resources_; }

  /// Pins (member vertices) of net e.
  std::span<const VertexId> pins(NetId e) const {
    return {net_pins_.data() + net_offsets_[e],
            net_pins_.data() + net_offsets_[e + 1]};
  }
  /// Pin count of net e. Returned in 64 bits: offsets are 64-bit, and
  /// narrowing their difference to int silently truncated once a single
  /// net (or a synthetic offset table) crossed 2^31 pins.
  std::int64_t net_size(NetId e) const {
    return net_offsets_[e + 1] - net_offsets_[e];
  }
  Weight net_weight(NetId e) const { return net_weights_[e]; }

  /// Nets incident to vertex v.
  std::span<const NetId> nets_of(VertexId v) const {
    return {vtx_nets_.data() + vtx_offsets_[v],
            vtx_nets_.data() + vtx_offsets_[v + 1]};
  }
  /// Incident-net count of vertex v; 64-bit for the same reason as
  /// net_size().
  std::int64_t degree(VertexId v) const {
    return vtx_offsets_[v + 1] - vtx_offsets_[v];
  }

  /// Resource-0 weight (cell area).
  Weight vertex_weight(VertexId v) const {
    return weights_[static_cast<std::size_t>(v) *
                    static_cast<std::size_t>(num_resources_)];
  }
  /// Weight of vertex v in resource r.
  Weight vertex_weight(VertexId v, int r) const {
    return weights_[static_cast<std::size_t>(v) *
                        static_cast<std::size_t>(num_resources_) +
                    static_cast<std::size_t>(r)];
  }
  /// All resource weights of vertex v, laid out [r]. Contiguous view into
  /// the weight table — refiner feasibility probes pass this straight to
  /// BalanceConstraint::fits without copying per-resource weights.
  std::span<const Weight> vertex_weights(VertexId v) const {
    return {weights_.data() + static_cast<std::size_t>(v) *
                                  static_cast<std::size_t>(num_resources_),
            static_cast<std::size_t>(num_resources_)};
  }
  /// Total weight of all vertices in resource r.
  Weight total_weight(int r = 0) const { return total_weights_[r]; }

  bool is_pad(VertexId v) const { return pad_flags_[v] != 0; }
  VertexId num_pads() const { return num_pads_; }

  /// Sum over nets of weight * (pin count), an upper bound used to size
  /// gain buckets: |gain(v)| <= weighted degree of v.
  Weight max_weighted_vertex_degree() const { return max_weighted_degree_; }

  /// Internal consistency check (CSR symmetry, sorted/unique pins,
  /// non-negative weights). Throws std::logic_error with a description on
  /// the first violation; cheap enough for tests, not called in hot paths.
  void validate() const;

 private:
  friend class HypergraphBuilder;

  VertexId num_vertices_ = 0;
  NetId num_nets_ = 0;
  int num_resources_ = 1;
  VertexId num_pads_ = 0;

  std::vector<std::int64_t> net_offsets_;  // size num_nets_+1
  std::vector<VertexId> net_pins_;
  std::vector<std::int64_t> vtx_offsets_;  // size num_vertices_+1
  std::vector<NetId> vtx_nets_;
  std::vector<Weight> net_weights_;
  std::vector<Weight> weights_;  // num_vertices_ * num_resources_
  std::vector<Weight> total_weights_;
  std::vector<std::uint8_t> pad_flags_;
  Weight max_weighted_degree_ = 0;
};

}  // namespace fixedpart::hg
