#include "hg/subgraph.hpp"

#include <stdexcept>

#include "hg/builder.hpp"

namespace fixedpart::hg {

Subgraph induce_subgraph(const Hypergraph& graph,
                         std::span<const VertexId> subset,
                         const SubgraphOptions& options) {
  Subgraph out;
  out.local_of.assign(static_cast<std::size_t>(graph.num_vertices()),
                      kNoVertex);

  HypergraphBuilder builder(graph.num_resources());
  std::vector<Weight> weights(static_cast<std::size_t>(graph.num_resources()));
  for (const VertexId v : subset) {
    if (v < 0 || v >= graph.num_vertices()) {
      throw std::out_of_range("induce_subgraph: subset vertex out of range");
    }
    if (out.local_of[v] != kNoVertex) {
      throw std::invalid_argument("induce_subgraph: duplicate subset vertex");
    }
    for (int r = 0; r < graph.num_resources(); ++r) {
      weights[static_cast<std::size_t>(r)] = graph.vertex_weight(v, r);
    }
    out.local_of[v] = builder.add_vertex(weights, graph.is_pad(v));
    out.original_of.push_back(v);
  }
  out.num_movable = static_cast<VertexId>(out.original_of.size());

  const std::vector<Weight> zero_weights(
      static_cast<std::size_t>(graph.num_resources()), 0);
  std::vector<std::uint8_t> net_seen(
      static_cast<std::size_t>(graph.num_nets()), 0);
  std::vector<VertexId> pins;
  for (const VertexId v : subset) {
    for (const NetId e : graph.nets_of(v)) {
      if (net_seen[e]) continue;
      net_seen[e] = 1;
      pins.clear();
      for (const VertexId u : graph.pins(e)) {
        if (out.local_of[u] != kNoVertex) {
          pins.push_back(out.local_of[u]);
          continue;
        }
        if (options.outside == SubgraphOptions::OutsidePins::kDrop) continue;
        // First encounter of this outside vertex: materialize a terminal.
        out.local_of[u] = builder.add_vertex(zero_weights, /*is_pad=*/true);
        out.original_of.push_back(u);
        pins.push_back(out.local_of[u]);
      }
      if (pins.size() >= 2 || options.keep_degenerate_nets) {
        builder.add_net(pins, graph.net_weight(e));
      }
    }
  }
  out.graph = builder.build();
  return out;
}

}  // namespace fixedpart::hg
