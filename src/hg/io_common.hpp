#pragma once
// Shared machinery for the hardened text parsers (io_hmetis, io_netare,
// io_bookshelf, io_solution): source/line error context, overflow-checked
// integer parsing, and the strict/lenient policy switch. The error
// taxonomy and the strict/lenient contract are documented in
// docs/ROBUSTNESS.md.
//
// The line scanner, tokenizer and ParseError now live in
// util/line_reader.hpp so non-hypergraph parsers (svc manifests,
// journals) can share them; this header re-exports the names every
// existing hg:: call site uses.

#include <cstdint>
#include <istream>
#include <string>

#include "util/errors.hpp"
#include "util/line_reader.hpp"

namespace fixedpart::hg {

using ParseError = util::ParseError;
using LineReader = util::LineReader;
using Tokens = util::Tokens;
using util::parse_int;
using util::parse_int_text;
using util::parse_int_token;

/// Parser policy. Structural damage (bad counts, unknown names, truncated
/// sections, overflow) is always an error; `strict` decides whether
/// *recoverable* anomalies — duplicate pins in a net, empty nets,
/// unrecognized trailing tokens — are diagnosed (strict, the default) or
/// repaired best-effort the way the legacy parsers silently did.
struct IoOptions {
  bool strict = true;

  static IoOptions lenient() { return IoOptions{/*strict=*/false}; }
};

}  // namespace fixedpart::hg
