#pragma once
// Shared machinery for the hardened text parsers (io_hmetis, io_netare,
// io_bookshelf, io_solution): source/line error context, overflow-checked
// integer parsing, and the strict/lenient policy switch. The error
// taxonomy and the strict/lenient contract are documented in
// docs/ROBUSTNESS.md.

#include <cstdint>
#include <istream>
#include <string>

#include "util/errors.hpp"

namespace fixedpart::hg {

/// Parse failure carrying source name and 1-based line number. Derives
/// from util::InputError so run_cli_main maps it to the input exit code
/// (and from std::runtime_error, preserving every existing catch site).
class ParseError : public util::InputError {
 public:
  ParseError(const std::string& source, std::int64_t line,
             const std::string& msg);

  std::int64_t line() const { return line_; }

 private:
  std::int64_t line_;
};

/// Parser policy. Structural damage (bad counts, unknown names, truncated
/// sections, overflow) is always an error; `strict` decides whether
/// *recoverable* anomalies — duplicate pins in a net, empty nets,
/// unrecognized trailing tokens — are diagnosed (strict, the default) or
/// repaired best-effort the way the legacy parsers silently did.
struct IoOptions {
  bool strict = true;

  static IoOptions lenient() { return IoOptions{/*strict=*/false}; }
};

/// Line-oriented scanner that skips blank and comment lines while
/// tracking the 1-based line number of the line most recently returned,
/// so every diagnostic can say where it happened.
class LineReader {
 public:
  /// `source` names the stream in diagnostics (a path, or "<fpb>" style
  /// tags for in-memory streams). `comment` starts a comment line.
  LineReader(std::istream& in, std::string source, char comment);

  /// Advances to the next non-blank, non-comment line; false at EOF.
  bool next(std::string& line);

  /// Line number of the last line handed out (0 before the first next()).
  std::int64_t line_number() const { return line_no_; }
  const std::string& source() const { return source_; }

  /// Throws ParseError anchored at the current line.
  [[noreturn]] void fail(const std::string& msg) const;

 private:
  std::istream* in_;
  std::string source_;
  char comment_;
  std::int64_t line_no_ = 0;
};

/// Extracts the next whitespace-delimited integer from `in`, failing via
/// `at` with line context when the token is missing, malformed, overflows
/// std::int64_t, or falls outside [min, max]. `what` names the field in
/// the diagnostic.
std::int64_t parse_int(std::istream& in, const LineReader& at,
                       const char* what, std::int64_t min, std::int64_t max);

/// Parses all of `text` as an integer in [min, max] without exceptions
/// leaking (std::from_chars underneath); fails via `at` with context.
/// Used for the numeric suffixes of module/partition tokens ("a17", "p3").
std::int64_t parse_int_text(const std::string& text, const LineReader& at,
                            const char* what, std::int64_t min,
                            std::int64_t max);

}  // namespace fixedpart::hg
