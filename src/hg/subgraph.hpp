#pragma once
// Induced sub-hypergraphs: the building block of top-down partitioning.
// Given a vertex subset, nets are re-pinned to the subset; pins outside
// it are either dropped (classic recursive-bisection truncation) or
// materialized as zero-area terminal vertices, one per outside vertex —
// the paper's Sec. IV block-instance construction ("adjacent cells not in
// the block similarly induce terminal vertices").

#include <span>
#include <vector>

#include "hg/hypergraph.hpp"

namespace fixedpart::hg {

struct SubgraphOptions {
  enum class OutsidePins {
    kDrop,               ///< truncate nets to the subset
    kTerminalPerVertex,  ///< one zero-area pad-flagged terminal per
                         ///< outside vertex touching a kept net
  };
  OutsidePins outside = OutsidePins::kDrop;
  /// Keep nets that end up with fewer than 2 pins (they can never be cut
  /// but preserve pin statistics).
  bool keep_degenerate_nets = false;
};

struct Subgraph {
  Hypergraph graph;
  /// original vertex id -> local id (kNoVertex when not in the subgraph).
  std::vector<VertexId> local_of;
  /// local id -> original vertex id (subset first, then terminals).
  std::vector<VertexId> original_of;
  /// Local ids [0, num_movable) are the subset; the rest are terminals.
  VertexId num_movable = 0;
};

/// Subset entries must be valid, distinct vertex ids.
Subgraph induce_subgraph(const Hypergraph& graph,
                         std::span<const VertexId> subset,
                         const SubgraphOptions& options = {});

}  // namespace fixedpart::hg
