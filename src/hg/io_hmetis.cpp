#include "hg/io_hmetis.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "hg/builder.hpp"

namespace fixedpart::hg {

namespace {

/// Reads the next non-comment, non-blank line; returns false at EOF.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i == line.size() || line[i] == '%') continue;
    return true;
  }
  return false;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return in;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

}  // namespace

Hypergraph read_hmetis(std::istream& in) {
  std::string line;
  if (!next_line(in, line)) throw std::runtime_error("hgr: empty input");
  std::istringstream header(line);
  std::int64_t num_nets = 0;
  std::int64_t num_vertices = 0;
  int fmt = 0;
  header >> num_nets >> num_vertices;
  if (!header) throw std::runtime_error("hgr: bad header");
  header >> fmt;  // optional
  const bool has_net_weights = (fmt == 1 || fmt == 11);
  const bool has_vertex_weights = (fmt == 10 || fmt == 11);
  if (fmt != 0 && fmt != 1 && fmt != 10 && fmt != 11) {
    throw std::runtime_error("hgr: unsupported fmt code");
  }
  if (num_nets < 0 || num_vertices < 0) {
    throw std::runtime_error("hgr: negative counts");
  }

  // Nets are read before vertex weights exist, so stage them.
  std::vector<std::vector<VertexId>> nets;
  std::vector<Weight> net_weights;
  nets.reserve(static_cast<std::size_t>(num_nets));
  for (std::int64_t e = 0; e < num_nets; ++e) {
    if (!next_line(in, line)) throw std::runtime_error("hgr: missing net line");
    std::istringstream ls(line);
    Weight w = 1;
    if (has_net_weights) {
      if (!(ls >> w)) throw std::runtime_error("hgr: missing net weight");
    }
    std::vector<VertexId> pins;
    std::int64_t pin = 0;
    while (ls >> pin) {
      if (pin < 1 || pin > num_vertices) {
        throw std::runtime_error("hgr: pin out of range");
      }
      pins.push_back(static_cast<VertexId>(pin - 1));
    }
    if (pins.empty()) throw std::runtime_error("hgr: empty net");
    nets.push_back(std::move(pins));
    net_weights.push_back(w);
  }

  HypergraphBuilder builder;
  for (std::int64_t v = 0; v < num_vertices; ++v) {
    Weight w = 1;
    if (has_vertex_weights) {
      if (!next_line(in, line)) {
        throw std::runtime_error("hgr: missing vertex weight");
      }
      std::istringstream ls(line);
      if (!(ls >> w)) throw std::runtime_error("hgr: bad vertex weight");
    }
    builder.add_vertex(w);
  }
  for (std::size_t e = 0; e < nets.size(); ++e) {
    builder.add_net(nets[e], net_weights[e]);
  }
  return builder.build();
}

Hypergraph read_hmetis_file(const std::string& path) {
  auto in = open_in(path);
  return read_hmetis(in);
}

void write_hmetis(std::ostream& out, const Hypergraph& g) {
  out << g.num_nets() << ' ' << g.num_vertices() << " 11\n";
  for (NetId e = 0; e < g.num_nets(); ++e) {
    out << g.net_weight(e);
    for (VertexId v : g.pins(e)) out << ' ' << (v + 1);
    out << '\n';
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << g.vertex_weight(v) << '\n';
  }
}

void write_hmetis_file(const std::string& path, const Hypergraph& g) {
  auto out = open_out(path);
  write_hmetis(out, g);
}

FixedAssignment read_fix(std::istream& in, VertexId num_vertices,
                         PartitionId num_parts) {
  FixedAssignment fixed(num_vertices, num_parts);
  std::string line;
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (!next_line(in, line)) {
      throw std::runtime_error("fix: fewer lines than vertices");
    }
    std::istringstream ls(line);
    std::int64_t p = 0;
    if (!(ls >> p)) throw std::runtime_error("fix: bad line");
    if (p == -1) continue;
    if (p < 0 || p >= num_parts) {
      throw std::runtime_error("fix: partition out of range");
    }
    fixed.fix(v, static_cast<PartitionId>(p));
  }
  return fixed;
}

FixedAssignment read_fix_file(const std::string& path, VertexId num_vertices,
                              PartitionId num_parts) {
  auto in = open_in(path);
  return read_fix(in, num_vertices, num_parts);
}

void write_fix(std::ostream& out, const FixedAssignment& fixed) {
  for (VertexId v = 0; v < fixed.num_vertices(); ++v) {
    out << fixed.fixed_part(v) << '\n';
  }
}

void write_fix_file(const std::string& path, const FixedAssignment& fixed) {
  auto out = open_out(path);
  write_fix(out, fixed);
}

}  // namespace fixedpart::hg
