#include "hg/io_hmetis.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "hg/builder.hpp"
#include "hg/io_common.hpp"

namespace fixedpart::hg {

namespace {

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::InputError("cannot open for reading: " + path);
  return in;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw util::InputError("cannot open for writing: " + path);
  return out;
}

constexpr std::int64_t kMaxCount = std::numeric_limits<VertexId>::max();
constexpr std::int64_t kMaxWeight = std::numeric_limits<Weight>::max();

}  // namespace

Hypergraph read_hmetis(std::istream& in, const IoOptions& options,
                       const std::string& source) {
  LineReader reader(in, source, '%');
  std::string line;
  if (!reader.next(line)) reader.fail("empty input");
  Tokens header(line);
  const std::int64_t num_nets =
      parse_int_token(header, reader, "net count", 0, kMaxCount);
  const std::int64_t num_vertices =
      parse_int_token(header, reader, "vertex count", 0, kMaxCount);
  std::int64_t fmt = 0;
  std::string_view fmt_token;
  if (header.next(fmt_token)) {
    fmt = parse_int_text(fmt_token, reader, "fmt code", 0, 11);
  }
  const bool has_net_weights = (fmt == 1 || fmt == 11);
  const bool has_vertex_weights = (fmt == 10 || fmt == 11);
  if (fmt != 0 && fmt != 1 && fmt != 10 && fmt != 11) {
    reader.fail("unsupported fmt code " + std::to_string(fmt) +
                " (use 0, 1, 10 or 11)");
  }
  std::string_view trailing;
  if (header.next(trailing)) {
    if (options.strict) {
      reader.fail("trailing token in header: " + std::string(trailing));
    }
  }

  // Nets are read before vertex weights exist, so stage them — one flat
  // pin array with offsets alongside, not a vector per net. Tokens +
  // from_chars replace the per-line istringstream of the original parser:
  // this loop is the wall-clock bottleneck for 100MB-class .hgr files
  // (the large bench asserts its throughput).
  std::vector<VertexId> staged_pins;
  std::vector<std::int64_t> staged_offsets{0};
  std::vector<Weight> net_weights;
  staged_offsets.reserve(static_cast<std::size_t>(num_nets) + 1);
  net_weights.reserve(static_cast<std::size_t>(num_nets));
  for (std::int64_t e = 0; e < num_nets; ++e) {
    if (!reader.next(line)) {
      reader.fail("missing net line " + std::to_string(e + 1) + " of " +
                  std::to_string(num_nets));
    }
    Tokens toks(line);
    Weight w = 1;
    if (has_net_weights) {
      w = parse_int_token(toks, reader, "net weight", 0, kMaxWeight);
    }
    const std::size_t net_start = staged_pins.size();
    std::string_view token;
    while (toks.next(token)) {
      const std::int64_t pin =
          parse_int_text(token, reader, "pin", 1, num_vertices);
      staged_pins.push_back(static_cast<VertexId>(pin - 1));
    }
    // Duplicate detection by sorting the net's slice (the builder
    // re-sorts anyway, so order is not observable). Strict mode
    // diagnoses the duplicate; lenient mode drops it, as the legacy
    // parsers silently did.
    const auto net_begin = staged_pins.begin() +
                           static_cast<std::ptrdiff_t>(net_start);
    std::sort(net_begin, staged_pins.end());
    const auto dup = std::adjacent_find(net_begin, staged_pins.end());
    if (dup != staged_pins.end()) {
      if (options.strict) {
        reader.fail("duplicate pin " + std::to_string(*dup + 1) +
                    " in net " + std::to_string(e + 1));
      }
      staged_pins.erase(std::unique(net_begin, staged_pins.end()),
                        staged_pins.end());
    }
    if (staged_pins.size() == net_start) {
      reader.fail("empty net " + std::to_string(e + 1));
    }
    staged_offsets.push_back(static_cast<std::int64_t>(staged_pins.size()));
    net_weights.push_back(w);
  }

  HypergraphBuilder builder;
  builder.reserve(num_vertices, num_nets,
                  static_cast<std::int64_t>(staged_pins.size()));
  for (std::int64_t v = 0; v < num_vertices; ++v) {
    Weight w = 1;
    if (has_vertex_weights) {
      if (!reader.next(line)) {
        reader.fail("missing weight for vertex " + std::to_string(v + 1) +
                    " of " + std::to_string(num_vertices));
      }
      Tokens toks(line);
      w = parse_int_token(toks, reader, "vertex weight", 0, kMaxWeight);
    }
    builder.add_vertex(w);
  }
  if (options.strict && reader.next(line)) {
    reader.fail("trailing content after instance");
  }
  for (std::size_t e = 0; e < net_weights.size(); ++e) {
    builder.add_net(
        std::span<const VertexId>(
            staged_pins.data() + staged_offsets[e],
            staged_pins.data() + staged_offsets[e + 1]),
        net_weights[e]);
  }
  return builder.build();
}

Hypergraph read_hmetis_file(const std::string& path,
                            const IoOptions& options) {
  auto in = open_in(path);
  return read_hmetis(in, options, path);
}

void write_hmetis(std::ostream& out, const Hypergraph& g) {
  out << g.num_nets() << ' ' << g.num_vertices() << " 11\n";
  for (NetId e = 0; e < g.num_nets(); ++e) {
    out << g.net_weight(e);
    for (VertexId v : g.pins(e)) out << ' ' << (v + 1);
    out << '\n';
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << g.vertex_weight(v) << '\n';
  }
}

void write_hmetis_file(const std::string& path, const Hypergraph& g) {
  auto out = open_out(path);
  write_hmetis(out, g);
}

FixedAssignment read_fix(std::istream& in, VertexId num_vertices,
                         PartitionId num_parts, const IoOptions& options,
                         const std::string& source) {
  FixedAssignment fixed(num_vertices, num_parts);
  LineReader reader(in, source, '%');
  std::string line;
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (!reader.next(line)) {
      reader.fail("fewer lines (" + std::to_string(v) + ") than vertices (" +
                  std::to_string(num_vertices) + ")");
    }
    Tokens toks(line);
    const std::int64_t p =
        parse_int_token(toks, reader, "partition id", -1, num_parts - 1);
    if (p != -1) fixed.fix(v, static_cast<PartitionId>(p));
  }
  if (options.strict && reader.next(line)) {
    reader.fail("more lines than vertices (" + std::to_string(num_vertices) +
                ")");
  }
  return fixed;
}

FixedAssignment read_fix_file(const std::string& path, VertexId num_vertices,
                              PartitionId num_parts,
                              const IoOptions& options) {
  auto in = open_in(path);
  return read_fix(in, num_vertices, num_parts, options, path);
}

void write_fix(std::ostream& out, const FixedAssignment& fixed) {
  for (VertexId v = 0; v < fixed.num_vertices(); ++v) {
    out << fixed.fixed_part(v) << '\n';
  }
}

void write_fix_file(const std::string& path, const FixedAssignment& fixed) {
  auto out = open_out(path);
  write_fix(out, fixed);
}

}  // namespace fixedpart::hg
