#include "hg/io_hmetis.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "hg/builder.hpp"
#include "hg/io_common.hpp"

namespace fixedpart::hg {

namespace {

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::InputError("cannot open for reading: " + path);
  return in;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw util::InputError("cannot open for writing: " + path);
  return out;
}

constexpr std::int64_t kMaxCount = std::numeric_limits<VertexId>::max();
constexpr std::int64_t kMaxWeight = std::numeric_limits<Weight>::max();

}  // namespace

Hypergraph read_hmetis(std::istream& in, const IoOptions& options,
                       const std::string& source) {
  LineReader reader(in, source, '%');
  std::string line;
  if (!reader.next(line)) reader.fail("empty input");
  std::istringstream header(line);
  const std::int64_t num_nets =
      parse_int(header, reader, "net count", 0, kMaxCount);
  const std::int64_t num_vertices =
      parse_int(header, reader, "vertex count", 0, kMaxCount);
  std::int64_t fmt = 0;
  std::string fmt_token;
  if (header >> fmt_token) {
    fmt = parse_int_text(fmt_token, reader, "fmt code", 0, 11);
  }
  const bool has_net_weights = (fmt == 1 || fmt == 11);
  const bool has_vertex_weights = (fmt == 10 || fmt == 11);
  if (fmt != 0 && fmt != 1 && fmt != 10 && fmt != 11) {
    reader.fail("unsupported fmt code " + std::to_string(fmt) +
                " (use 0, 1, 10 or 11)");
  }
  std::string trailing;
  if (header >> trailing) {
    if (options.strict) reader.fail("trailing token in header: " + trailing);
  }

  // Nets are read before vertex weights exist, so stage them.
  std::vector<std::vector<VertexId>> nets;
  std::vector<Weight> net_weights;
  nets.reserve(static_cast<std::size_t>(num_nets));
  std::unordered_set<VertexId> seen;
  for (std::int64_t e = 0; e < num_nets; ++e) {
    if (!reader.next(line)) {
      reader.fail("missing net line " + std::to_string(e + 1) + " of " +
                  std::to_string(num_nets));
    }
    std::istringstream ls(line);
    Weight w = 1;
    if (has_net_weights) {
      w = parse_int(ls, reader, "net weight", 0, kMaxWeight);
    }
    std::vector<VertexId> pins;
    std::string token;
    seen.clear();
    while (ls >> token) {
      const std::int64_t pin =
          parse_int_text(token, reader, "pin", 1, num_vertices);
      const auto v = static_cast<VertexId>(pin - 1);
      if (!seen.insert(v).second) {
        // The builder would merge the duplicate silently; diagnose it in
        // strict mode, drop it in lenient mode.
        if (options.strict) {
          reader.fail("duplicate pin " + token + " in net " +
                      std::to_string(e + 1));
        }
        continue;
      }
      pins.push_back(v);
    }
    if (pins.empty()) reader.fail("empty net " + std::to_string(e + 1));
    nets.push_back(std::move(pins));
    net_weights.push_back(w);
  }

  HypergraphBuilder builder;
  for (std::int64_t v = 0; v < num_vertices; ++v) {
    Weight w = 1;
    if (has_vertex_weights) {
      if (!reader.next(line)) {
        reader.fail("missing weight for vertex " + std::to_string(v + 1) +
                    " of " + std::to_string(num_vertices));
      }
      std::istringstream ls(line);
      w = parse_int(ls, reader, "vertex weight", 0, kMaxWeight);
    }
    builder.add_vertex(w);
  }
  if (options.strict && reader.next(line)) {
    reader.fail("trailing content after instance");
  }
  for (std::size_t e = 0; e < nets.size(); ++e) {
    builder.add_net(nets[e], net_weights[e]);
  }
  return builder.build();
}

Hypergraph read_hmetis_file(const std::string& path,
                            const IoOptions& options) {
  auto in = open_in(path);
  return read_hmetis(in, options, path);
}

void write_hmetis(std::ostream& out, const Hypergraph& g) {
  out << g.num_nets() << ' ' << g.num_vertices() << " 11\n";
  for (NetId e = 0; e < g.num_nets(); ++e) {
    out << g.net_weight(e);
    for (VertexId v : g.pins(e)) out << ' ' << (v + 1);
    out << '\n';
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << g.vertex_weight(v) << '\n';
  }
}

void write_hmetis_file(const std::string& path, const Hypergraph& g) {
  auto out = open_out(path);
  write_hmetis(out, g);
}

FixedAssignment read_fix(std::istream& in, VertexId num_vertices,
                         PartitionId num_parts, const IoOptions& options,
                         const std::string& source) {
  FixedAssignment fixed(num_vertices, num_parts);
  LineReader reader(in, source, '%');
  std::string line;
  for (VertexId v = 0; v < num_vertices; ++v) {
    if (!reader.next(line)) {
      reader.fail("fewer lines (" + std::to_string(v) + ") than vertices (" +
                  std::to_string(num_vertices) + ")");
    }
    std::istringstream ls(line);
    const std::int64_t p =
        parse_int(ls, reader, "partition id", -1, num_parts - 1);
    if (p != -1) fixed.fix(v, static_cast<PartitionId>(p));
  }
  if (options.strict && reader.next(line)) {
    reader.fail("more lines than vertices (" + std::to_string(num_vertices) +
                ")");
  }
  return fixed;
}

FixedAssignment read_fix_file(const std::string& path, VertexId num_vertices,
                              PartitionId num_parts,
                              const IoOptions& options) {
  auto in = open_in(path);
  return read_fix(in, num_vertices, num_parts, options, path);
}

void write_fix(std::ostream& out, const FixedAssignment& fixed) {
  for (VertexId v = 0; v < fixed.num_vertices(); ++v) {
    out << fixed.fixed_part(v) << '\n';
  }
}

void write_fix_file(const std::string& path, const FixedAssignment& fixed) {
  auto out = open_out(path);
  write_fix(out, fixed);
}

}  // namespace fixedpart::hg
