#pragma once
// Instance transformations discussed in Sec. V of the paper:
//
// * terminal clustering — "a bipartitioning instance with an arbitrary
//   number/percent of fixed terminals can be represented by an equivalent
//   instance with only two terminals, by clustering all terminals fixed in
//   a given partition into one single terminal". The transform preserves
//   the min-cut value over movable vertices; we use it in experiments to
//   confirm the paper's claim that heuristic difficulty is essentially
//   unchanged by the representation.

#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"

namespace fixedpart::hg {

struct ClusteredTerminals {
  Hypergraph graph;
  FixedAssignment fixed;
  /// original vertex -> new vertex (fixed vertices of part p map to the
  /// cluster terminal of part p; untouched vertices keep distinct images).
  std::vector<VertexId> map;
  /// new cluster-terminal vertex per partition, kNoVertex if that side had
  /// no fixed vertices.
  std::vector<VertexId> terminal_of_part;
};

/// Collapse all singleton-fixed vertices of each partition into a single
/// zero-degree-preserving terminal vertex (area = sum of member areas; the
/// pad flag is kept if any member was a pad). Nets are re-pinned through
/// the map; nets whose pins all collapse into one vertex become single-pin
/// nets (uncuttable), preserving cut equivalence.
ClusteredTerminals cluster_terminals(const Hypergraph& g,
                                     const FixedAssignment& fixed);

}  // namespace fixedpart::hg
