#pragma once
// Partition-solution files. The GSRC bookshelf the paper points to stores
// "best known solutions" alongside each benchmark; this is the matching
// artifact for this repository's instances.
//
// Format:
//   FPSOL 1.0
//   vertices <N> parts <K> cut <C>
//   <part-id per vertex, one per line>
//
// The recorded cut is verified against the hypergraph on load so a stale
// or mismatched solution file is rejected instead of silently trusted.

#include <iosfwd>
#include <string>
#include <vector>

#include "hg/hypergraph.hpp"
#include "hg/io_common.hpp"
#include "hg/types.hpp"

namespace fixedpart::hg {

struct Solution {
  PartitionId num_parts = 2;
  Weight cut = 0;
  std::vector<PartitionId> assignment;
};

void write_solution(std::ostream& out, const Solution& solution);
void write_solution_file(const std::string& path, const Solution& solution);

/// Parses a solution file; no graph check. Failures throw ParseError
/// with source/line context.
Solution read_solution(std::istream& in, const IoOptions& options = {},
                       const std::string& source = "<fpsol>");
Solution read_solution_file(const std::string& path,
                            const IoOptions& options = {});

/// Parses and verifies against `graph`: vertex count must match and the
/// recorded cut must equal the assignment's actual cut. Throws
/// util::InputError (a std::runtime_error) otherwise.
Solution read_solution_checked(std::istream& in, const Hypergraph& graph,
                               const IoOptions& options = {},
                               const std::string& source = "<fpsol>");
Solution read_solution_file_checked(const std::string& path,
                                    const Hypergraph& graph,
                                    const IoOptions& options = {});

/// Convenience: evaluates an assignment's cut on a graph.
Weight solution_cut(const Hypergraph& graph,
                    const std::vector<PartitionId>& assignment,
                    PartitionId num_parts);

}  // namespace fixedpart::hg
