#pragma once
// Mutable staging area that assembles a Hypergraph. Pins are deduplicated
// per net; single-pin and empty nets are kept (they simply can never be
// cut) so that instance statistics match the source netlist.

#include <span>
#include <vector>

#include "hg/hypergraph.hpp"
#include "hg/types.hpp"

namespace fixedpart::hg {

class HypergraphBuilder {
 public:
  /// num_resources >= 1; resource 0 is cell area.
  explicit HypergraphBuilder(int num_resources = 1);

  /// Pre-sizes the staging arrays from declared instance counts so large
  /// builds fill without repeated push_back growth (which both fragments
  /// and double-peaks RSS). Also the single point where the declared
  /// counts are validated against the id ranges: vertex/net counts must
  /// fit VertexId/NetId, and num_pins must be non-negative. Parsers call
  /// this with the header counts before their fill loops; num_pins may be
  /// 0 when the format does not declare a pin total.
  void reserve(std::int64_t num_vertices, std::int64_t num_nets,
               std::int64_t num_pins);

  /// Adds a vertex with the given per-resource weights (size must equal
  /// num_resources). Returns its id.
  VertexId add_vertex(std::span<const Weight> weights, bool is_pad = false);
  /// Single-resource convenience overload.
  VertexId add_vertex(Weight area, bool is_pad = false);

  /// Adds a net over the given pins (vertex ids already returned by
  /// add_vertex). Duplicate pins are merged. Returns the net id.
  NetId add_net(std::span<const VertexId> pins, Weight weight = 1);

  VertexId num_vertices() const {
    return static_cast<VertexId>(pad_flags_.size());
  }
  NetId num_nets() const { return static_cast<NetId>(net_weights_.size()); }

  /// Finalizes into an immutable Hypergraph. The builder is left empty.
  Hypergraph build();

 private:
  int num_resources_;
  std::vector<Weight> weights_;
  std::vector<std::uint8_t> pad_flags_;
  std::vector<std::int64_t> net_offsets_{0};
  std::vector<VertexId> net_pins_;
  std::vector<Weight> net_weights_;
  std::vector<VertexId> dedup_;  // per-net sort/unique scratch, reused
};

}  // namespace fixedpart::hg
