#include "hg/io_bookshelf.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <string_view>
#include <unordered_map>

#include "hg/builder.hpp"
#include "hg/io_common.hpp"

namespace fixedpart::hg {

namespace {

constexpr std::int64_t kMaxCount = std::numeric_limits<VertexId>::max();
constexpr std::int64_t kMaxWeight = std::numeric_limits<Weight>::max();

// Transparent hashing so name lookups take string_view tokens without a
// per-pin std::string allocation.
struct NameHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct NameEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};
using NameMap = std::unordered_map<std::string, VertexId, NameHash, NameEq>;

std::istringstream expect_keyword(LineReader& reader, const std::string& kw) {
  std::string line;
  if (!reader.next(line)) reader.fail("expected '" + kw + "', got EOF");
  std::istringstream ls(line);
  std::string word;
  ls >> word;
  if (word != kw) reader.fail("expected '" + kw + "', got '" + word + "'");
  return ls;
}

/// Parses "p0" or "p0|p3|p5" into a partition bitmask. Numeric suffixes
/// go through parse_int_text so a malformed token fails with line context
/// instead of being swallowed.
std::uint64_t parse_part_set(const std::string& token, PartitionId num_parts,
                             const LineReader& at) {
  std::uint64_t mask = 0;
  std::size_t pos = 0;
  while (pos < token.size()) {
    std::size_t bar = token.find('|', pos);
    if (bar == std::string::npos) bar = token.size();
    const std::string piece = token.substr(pos, bar - pos);
    if (piece.empty() || piece[0] != 'p') {
      at.fail("bad partition token (want pN[|pN...]): '" + token + "'");
    }
    const std::int64_t p = parse_int_text(piece.substr(1), at,
                                          "partition index", 0,
                                          num_parts - 1);
    mask |= std::uint64_t{1} << p;
    pos = bar + 1;
  }
  if (mask == 0) at.fail("empty partition set: '" + token + "'");
  return mask;
}

}  // namespace

std::vector<std::string> default_names(VertexId num_vertices) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(num_vertices));
  for (VertexId v = 0; v < num_vertices; ++v) {
    names.push_back("v" + std::to_string(v));
  }
  return names;
}

BenchmarkInstance read_fpb(std::istream& in, const IoOptions& options,
                           const std::string& source) {
  LineReader reader(in, source, '#');
  std::string line;
  if (!reader.next(line)) reader.fail("empty input");
  {
    std::istringstream ls(line);
    std::string magic, version;
    ls >> magic >> version;
    if (magic != "FPB") reader.fail("missing FPB magic");
    if (version != "1.0") reader.fail("unsupported version " + version);
  }

  std::int64_t resources = 0;
  {
    auto ls = expect_keyword(reader, "resources");
    resources = parse_int(ls, reader, "resource count", 1, 64);
  }

  std::int64_t num_vertices = 0;
  {
    auto ls = expect_keyword(reader, "vertices");
    num_vertices = parse_int(ls, reader, "vertex count", 0, kMaxCount);
  }

  BenchmarkInstance inst;
  HypergraphBuilder builder(static_cast<int>(resources));
  builder.reserve(num_vertices, 0, 0);
  NameMap by_name;
  by_name.reserve(static_cast<std::size_t>(num_vertices));
  inst.names.reserve(static_cast<std::size_t>(num_vertices));
  std::vector<Weight> weights(static_cast<std::size_t>(resources));
  for (std::int64_t i = 0; i < num_vertices; ++i) {
    if (!reader.next(line)) {
      reader.fail("missing vertex line " + std::to_string(i + 1) + " of " +
                  std::to_string(num_vertices));
    }
    Tokens toks(line);
    std::string_view name;
    if (!toks.next(name)) reader.fail("missing vertex name");
    for (auto& w : weights) {
      std::string_view token;
      if (!toks.next(token)) {
        reader.fail("missing weight for vertex " + std::string(name));
      }
      w = parse_int_text(token, reader, "vertex weight", 0, kMaxWeight);
    }
    std::string_view tag;
    bool pad = false;
    if (toks.next(tag)) {
      if (tag == "pad") {
        pad = true;
      } else if (options.strict) {
        reader.fail("unexpected trailing token on vertex line: " +
                    std::string(tag));
      }
    }
    if (!by_name.emplace(std::string(name), builder.num_vertices()).second) {
      reader.fail("duplicate vertex name " + std::string(name));
    }
    builder.add_vertex(weights, pad);
    inst.names.emplace_back(name);
  }

  std::int64_t num_nets = 0;
  {
    auto ls = expect_keyword(reader, "nets");
    num_nets = parse_int(ls, reader, "net count", 0, kMaxCount);
  }
  std::vector<VertexId> pins;
  for (std::int64_t e = 0; e < num_nets; ++e) {
    if (!reader.next(line)) {
      reader.fail("missing net line " + std::to_string(e + 1) + " of " +
                  std::to_string(num_nets));
    }
    Tokens toks(line);
    const Weight weight =
        parse_int_token(toks, reader, "net weight", 0, kMaxWeight);
    const std::int64_t degree =
        parse_int_token(toks, reader, "net degree", 0, num_vertices);
    pins.clear();
    pins.reserve(static_cast<std::size_t>(degree));
    for (std::int64_t d = 0; d < degree; ++d) {
      std::string_view name;
      if (!toks.next(name)) {
        reader.fail("net declares " + std::to_string(degree) +
                    " pins but lists " + std::to_string(d));
      }
      const auto it = by_name.find(name);
      if (it == by_name.end()) {
        reader.fail("unknown vertex in net: " + std::string(name));
      }
      pins.push_back(it->second);
    }
    std::string_view extra;
    if (toks.next(extra) && options.strict) {
      reader.fail("net lists more pins than its declared degree " +
                  std::to_string(degree));
    }
    // Duplicate detection by sorting (the builder re-sorts anyway, so
    // pin order is not observable). The builder would merge a duplicate
    // silently; diagnose it in strict mode, drop it in lenient mode.
    std::sort(pins.begin(), pins.end());
    const auto dup = std::adjacent_find(pins.begin(), pins.end());
    if (dup != pins.end()) {
      if (options.strict) {
        reader.fail("duplicate pin " + inst.names[*dup] + " in net " +
                    std::to_string(e + 1));
      }
      pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    }
    builder.add_net(pins, weight);
  }

  std::int64_t num_parts = 0;
  {
    auto ls = expect_keyword(reader, "partitions");
    num_parts = parse_int(ls, reader, "partition count", 1,
                          FixedAssignment::kMaxParts);
  }
  inst.num_parts = static_cast<PartitionId>(num_parts);
  inst.graph = builder.build();
  inst.fixed = FixedAssignment(inst.graph.num_vertices(), inst.num_parts);

  // Balance section: either one `tolerance` line or >=1 `capacity` lines.
  if (!reader.next(line)) reader.fail("missing balance section");
  {
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word == "tolerance") {
      inst.balance.relative = true;
      if (!(ls >> inst.balance.tolerance_pct) ||
          !(inst.balance.tolerance_pct >= 0.0)) {
        reader.fail("bad tolerance (want a percentage >= 0)");
      }
      if (!reader.next(line)) reader.fail("missing fixed section");
    } else if (word == "capacity") {
      inst.balance.relative = false;
      while (true) {
        BalanceSpec::Capacity cap;
        const std::int64_t part =
            parse_int(ls, reader, "capacity part", 0, num_parts - 1);
        cap.resource = static_cast<int>(
            parse_int(ls, reader, "capacity resource", 0, resources - 1));
        cap.min = parse_int(ls, reader, "capacity min", 0, kMaxWeight);
        cap.max = parse_int(ls, reader, "capacity max", cap.min, kMaxWeight);
        cap.part = static_cast<PartitionId>(part);
        inst.balance.capacities.push_back(cap);
        if (!reader.next(line)) reader.fail("missing fixed section");
        ls = std::istringstream(line);
        ls >> word;
        if (word != "capacity") break;
      }
    } else {
      reader.fail("expected tolerance/capacity, got " + word);
    }
  }

  // `line` currently holds the `fixed` header.
  std::istringstream fixed_hdr(line);
  std::string word;
  fixed_hdr >> word;
  if (word != "fixed") reader.fail("expected 'fixed', got " + word);
  const std::int64_t num_fixed =
      parse_int(fixed_hdr, reader, "fixed count", 0, num_vertices);
  for (std::int64_t i = 0; i < num_fixed; ++i) {
    if (!reader.next(line)) {
      reader.fail("missing fixed line " + std::to_string(i + 1) + " of " +
                  std::to_string(num_fixed));
    }
    std::istringstream ls(line);
    std::string name, parts;
    if (!(ls >> name >> parts)) reader.fail("bad fixed line: " + line);
    const auto it = by_name.find(name);
    if (it == by_name.end()) reader.fail("unknown fixed vertex " + name);
    inst.fixed.restrict_to(it->second,
                           parse_part_set(parts, inst.num_parts, reader));
  }
  if (options.strict && reader.next(line)) {
    reader.fail("trailing content after fixed section");
  }
  return inst;
}

BenchmarkInstance read_fpb_file(const std::string& path,
                                const IoOptions& options) {
  std::ifstream in(path);
  if (!in) throw util::InputError("cannot open for reading: " + path);
  return read_fpb(in, options, path);
}

void write_fpb(std::ostream& out, const BenchmarkInstance& inst) {
  const Hypergraph& g = inst.graph;
  if (static_cast<VertexId>(inst.names.size()) != g.num_vertices()) {
    throw std::invalid_argument("write_fpb: name count mismatch");
  }
  out << "FPB 1.0\n";
  out << "resources " << g.num_resources() << '\n';
  out << "vertices " << g.num_vertices() << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << inst.names[v];
    for (int r = 0; r < g.num_resources(); ++r) {
      out << ' ' << g.vertex_weight(v, r);
    }
    if (g.is_pad(v)) out << " pad";
    out << '\n';
  }
  out << "nets " << g.num_nets() << '\n';
  for (NetId e = 0; e < g.num_nets(); ++e) {
    out << g.net_weight(e) << ' ' << g.net_size(e);
    for (VertexId v : g.pins(e)) out << ' ' << inst.names[v];
    out << '\n';
  }
  out << "partitions " << inst.num_parts << '\n';
  if (inst.balance.relative) {
    out << "tolerance " << inst.balance.tolerance_pct << '\n';
  } else {
    for (const auto& cap : inst.balance.capacities) {
      out << "capacity " << cap.part << ' ' << cap.resource << ' ' << cap.min
          << ' ' << cap.max << '\n';
    }
  }
  std::vector<VertexId> restricted;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (inst.fixed.is_restricted(v)) restricted.push_back(v);
  }
  out << "fixed " << restricted.size() << '\n';
  for (VertexId v : restricted) {
    out << inst.names[v] << ' ';
    bool first = true;
    for (PartitionId p = 0; p < inst.num_parts; ++p) {
      if (!inst.fixed.is_allowed(v, p)) continue;
      if (!first) out << '|';
      out << 'p' << p;
      first = false;
    }
    out << '\n';
  }
}

void write_fpb_file(const std::string& path, const BenchmarkInstance& inst) {
  std::ofstream out(path);
  if (!out) throw util::InputError("cannot open for writing: " + path);
  write_fpb(out, inst);
}

}  // namespace fixedpart::hg
