#include "hg/io_bookshelf.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "hg/builder.hpp"

namespace fixedpart::hg {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("fpb: " + msg);
}

/// Next non-comment, non-blank line.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i == line.size() || line[i] == '#') continue;
    return true;
  }
  return false;
}

std::istringstream expect_keyword(std::istream& in, const std::string& kw) {
  std::string line;
  if (!next_line(in, line)) fail("expected '" + kw + "', got EOF");
  std::istringstream ls(line);
  std::string word;
  ls >> word;
  if (word != kw) fail("expected '" + kw + "', got '" + word + "'");
  return ls;
}

/// Parses "p0" or "p0|p3|p5" into a partition bitmask.
std::uint64_t parse_part_set(const std::string& token, PartitionId num_parts) {
  std::uint64_t mask = 0;
  std::size_t pos = 0;
  while (pos < token.size()) {
    std::size_t bar = token.find('|', pos);
    if (bar == std::string::npos) bar = token.size();
    const std::string piece = token.substr(pos, bar - pos);
    if (piece.empty() || piece[0] != 'p') fail("bad partition token: " + token);
    std::int64_t p = 0;
    try {
      p = std::stoll(piece.substr(1));
    } catch (const std::exception&) {
      fail("bad partition token: " + token);
    }
    if (p < 0 || p >= num_parts) fail("partition out of range: " + piece);
    mask |= std::uint64_t{1} << p;
    pos = bar + 1;
  }
  if (mask == 0) fail("empty partition set");
  return mask;
}

}  // namespace

std::vector<std::string> default_names(VertexId num_vertices) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(num_vertices));
  for (VertexId v = 0; v < num_vertices; ++v) {
    names.push_back("v" + std::to_string(v));
  }
  return names;
}

BenchmarkInstance read_fpb(std::istream& in) {
  std::string line;
  if (!next_line(in, line)) fail("empty input");
  {
    std::istringstream ls(line);
    std::string magic, version;
    ls >> magic >> version;
    if (magic != "FPB") fail("missing FPB magic");
    if (version != "1.0") fail("unsupported version " + version);
  }

  int resources = 0;
  expect_keyword(in, "resources") >> resources;
  if (resources < 1) fail("resources < 1");

  std::int64_t num_vertices = 0;
  expect_keyword(in, "vertices") >> num_vertices;
  if (num_vertices < 0) fail("negative vertex count");

  BenchmarkInstance inst;
  HypergraphBuilder builder(resources);
  std::unordered_map<std::string, VertexId> by_name;
  inst.names.reserve(static_cast<std::size_t>(num_vertices));
  for (std::int64_t i = 0; i < num_vertices; ++i) {
    if (!next_line(in, line)) fail("missing vertex line");
    std::istringstream ls(line);
    std::string name;
    ls >> name;
    std::vector<Weight> weights(static_cast<std::size_t>(resources));
    for (auto& w : weights) {
      if (!(ls >> w)) fail("missing weight for vertex " + name);
    }
    std::string tag;
    bool pad = false;
    if (ls >> tag) {
      if (tag == "pad") {
        pad = true;
      } else {
        fail("unexpected trailing token on vertex line: " + tag);
      }
    }
    if (!by_name.emplace(name, builder.num_vertices()).second) {
      fail("duplicate vertex name " + name);
    }
    builder.add_vertex(weights, pad);
    inst.names.push_back(name);
  }

  std::int64_t num_nets = 0;
  expect_keyword(in, "nets") >> num_nets;
  for (std::int64_t e = 0; e < num_nets; ++e) {
    if (!next_line(in, line)) fail("missing net line");
    std::istringstream ls(line);
    Weight weight = 0;
    int degree = 0;
    if (!(ls >> weight >> degree)) fail("bad net header");
    std::vector<VertexId> pins;
    pins.reserve(static_cast<std::size_t>(degree));
    for (int d = 0; d < degree; ++d) {
      std::string name;
      if (!(ls >> name)) fail("net pin count mismatch");
      const auto it = by_name.find(name);
      if (it == by_name.end()) fail("unknown vertex in net: " + name);
      pins.push_back(it->second);
    }
    builder.add_net(pins, weight);
  }

  std::int64_t num_parts = 0;
  expect_keyword(in, "partitions") >> num_parts;
  if (num_parts < 1 || num_parts > FixedAssignment::kMaxParts) {
    fail("bad partition count");
  }
  inst.num_parts = static_cast<PartitionId>(num_parts);
  inst.graph = builder.build();
  inst.fixed = FixedAssignment(inst.graph.num_vertices(), inst.num_parts);

  // Balance section: either one `tolerance` line or >=1 `capacity` lines.
  if (!next_line(in, line)) fail("missing balance section");
  {
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word == "tolerance") {
      inst.balance.relative = true;
      if (!(ls >> inst.balance.tolerance_pct)) fail("bad tolerance");
      if (!next_line(in, line)) fail("missing fixed section");
    } else if (word == "capacity") {
      inst.balance.relative = false;
      while (true) {
        BalanceSpec::Capacity cap;
        std::int64_t part = 0;
        if (!(ls >> part >> cap.resource >> cap.min >> cap.max)) {
          fail("bad capacity line");
        }
        if (part < 0 || part >= num_parts) fail("capacity part out of range");
        if (cap.resource < 0 || cap.resource >= resources) {
          fail("capacity resource out of range");
        }
        cap.part = static_cast<PartitionId>(part);
        inst.balance.capacities.push_back(cap);
        if (!next_line(in, line)) fail("missing fixed section");
        ls = std::istringstream(line);
        ls >> word;
        if (word != "capacity") break;
      }
    } else {
      fail("expected tolerance/capacity, got " + word);
    }
  }

  // `line` currently holds the `fixed` header.
  std::istringstream fixed_hdr(line);
  std::string word;
  std::int64_t num_fixed = 0;
  fixed_hdr >> word >> num_fixed;
  if (word != "fixed") fail("expected 'fixed', got " + word);
  for (std::int64_t i = 0; i < num_fixed; ++i) {
    if (!next_line(in, line)) fail("missing fixed line");
    std::istringstream ls(line);
    std::string name, parts;
    if (!(ls >> name >> parts)) fail("bad fixed line");
    const auto it = by_name.find(name);
    if (it == by_name.end()) fail("unknown fixed vertex " + name);
    inst.fixed.restrict_to(it->second, parse_part_set(parts, inst.num_parts));
  }
  return inst;
}

BenchmarkInstance read_fpb_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_fpb(in);
}

void write_fpb(std::ostream& out, const BenchmarkInstance& inst) {
  const Hypergraph& g = inst.graph;
  if (static_cast<VertexId>(inst.names.size()) != g.num_vertices()) {
    throw std::invalid_argument("write_fpb: name count mismatch");
  }
  out << "FPB 1.0\n";
  out << "resources " << g.num_resources() << '\n';
  out << "vertices " << g.num_vertices() << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out << inst.names[v];
    for (int r = 0; r < g.num_resources(); ++r) {
      out << ' ' << g.vertex_weight(v, r);
    }
    if (g.is_pad(v)) out << " pad";
    out << '\n';
  }
  out << "nets " << g.num_nets() << '\n';
  for (NetId e = 0; e < g.num_nets(); ++e) {
    out << g.net_weight(e) << ' ' << g.net_size(e);
    for (VertexId v : g.pins(e)) out << ' ' << inst.names[v];
    out << '\n';
  }
  out << "partitions " << inst.num_parts << '\n';
  if (inst.balance.relative) {
    out << "tolerance " << inst.balance.tolerance_pct << '\n';
  } else {
    for (const auto& cap : inst.balance.capacities) {
      out << "capacity " << cap.part << ' ' << cap.resource << ' ' << cap.min
          << ' ' << cap.max << '\n';
    }
  }
  std::vector<VertexId> restricted;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (inst.fixed.is_restricted(v)) restricted.push_back(v);
  }
  out << "fixed " << restricted.size() << '\n';
  for (VertexId v : restricted) {
    out << inst.names[v] << ' ';
    bool first = true;
    for (PartitionId p = 0; p < inst.num_parts; ++p) {
      if (!inst.fixed.is_allowed(v, p)) continue;
      if (!first) out << '|';
      out << 'p' << p;
      first = false;
    }
    out << '\n';
  }
}

void write_fpb_file(const std::string& path, const BenchmarkInstance& inst) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_fpb(out, inst);
}

}  // namespace fixedpart::hg
