#pragma once
// .fpbin — the versioned, checksummed binary hypergraph container for the
// scale frontier (ROADMAP item 3). A file holds both CSR incidence
// directions (pins-of-net and nets-of-vertex) plus net/vertex weights,
// pad flags and fixed-vertex masks, laid out so a reader can mmap the
// file and serve the Hypergraph accessor surface with zero copies:
//
//   [ 96-byte header | total_weights | net_offsets | net_pins
//     | vtx_offsets | vtx_nets | net_weights | vertex_weights
//     | pad_flags | fixed entries ]
//
// Every section starts 8-byte aligned. Offsets are stored as 32-bit
// unsigned when num_pins < 2^31 and 64-bit signed otherwise (the id-width
// rule); ids and weights are always VertexId/NetId/Weight-sized. The
// header carries the derived quantities (totals, pad count, max weighted
// degree) so opening a file is O(validation), not O(rebuild), and an
// FNV-1a 64-bit checksum over the payload so truncation and bit rot fail
// loudly with the PR-2 error taxonomy instead of undefined behaviour.
// Full layout documentation: docs/FORMATS.md.
//
// Byte order is little-endian, the only byte order this repository
// builds on; the non-text byte in the magic doubles as a corruption
// tripwire for ASCII-mode transfers (CRLF translation breaks it).

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "hg/io_common.hpp"
#include "hg/types.hpp"

namespace fixedpart::hg {

inline constexpr std::uint32_t kFpbinVersion = 1;
inline constexpr std::size_t kFpbinHeaderBytes = 96;
inline constexpr std::size_t kFpbinMagicBytes = 8;

/// True when `bytes` starts with the .fpbin magic — the dispatch test for
/// upload sniffing and file readers. Must be checked *before* any text
/// prefix test: the magic spells "FPBIN", which a text sniffer looking
/// for the "FPB" bookshelf header would misclassify.
bool is_fpbin(std::string_view bytes);

/// Section byte offsets within the payload (i.e. relative to the end of
/// the header), plus the id-width decision. Pure function of the header
/// counts — exposed so the 2^31 boundary of the 32/64-bit offset rule is
/// unit-testable without a 16 GiB fixture.
struct FpbinLayout {
  bool wide_offsets = false;  ///< 64-bit offsets iff num_pins >= 2^31
  std::uint64_t total_weights = 0;
  std::uint64_t net_offsets = 0;
  std::uint64_t net_pins = 0;
  std::uint64_t vtx_offsets = 0;
  std::uint64_t vtx_nets = 0;
  std::uint64_t net_weights = 0;
  std::uint64_t vertex_weights = 0;
  std::uint64_t pad_flags = 0;
  std::uint64_t fixed = 0;
  std::uint64_t payload_bytes = 0;
};

FpbinLayout fpbin_layout(std::uint64_t num_vertices, std::uint64_t num_nets,
                         std::uint64_t num_pins, std::uint32_t num_resources,
                         std::uint64_t num_fixed);

/// A parsed .fpbin: the graph plus the partitioning context it carries.
struct BinaryInstance {
  Hypergraph graph;
  FixedAssignment fixed{0, 2};
  PartitionId num_parts = 2;
};

/// Streaming two-phase writer. Usage:
///
///   FpbinWriter w(path, resources, k);
///   for (...) w.add_vertex(weights, is_pad);     // all vertices first
///   for (...) w.add_fixed(v, mask);              // optional
///   for (...) w.count_net(pins);                 // phase 1: sizes only
///   w.begin_nets();                              // sizes frozen -> mmap
///   for (...) w.add_net(pins, weight);           // phase 2: same order
///   w.finish();                                  // checksum + header
///
/// Phase 2 writes each net's pins and scatters the transposed incidence
/// directly into the memory-mapped output, so a net's pin list is never
/// materialized twice and heap usage stays O(vertices), independent of
/// pin count — the property the streaming generator relies on at 10M
/// vertices. Pins must be sorted and duplicate-free (the file stores them
/// that way); phase-2 calls must replay phase 1 exactly.
class FpbinWriter {
 public:
  FpbinWriter(std::string path, int num_resources = 1,
              PartitionId num_parts = 2);
  ~FpbinWriter();

  FpbinWriter(const FpbinWriter&) = delete;
  FpbinWriter& operator=(const FpbinWriter&) = delete;

  VertexId add_vertex(std::span<const Weight> weights, bool is_pad = false);
  VertexId add_vertex(Weight area, bool is_pad = false);
  /// Restrict vertex v to the partitions in `mask` (OR semantics, as in
  /// FixedAssignment). Must precede begin_nets().
  void add_fixed(VertexId v, std::uint64_t mask);

  void count_net(std::span<const VertexId> pins);
  void begin_nets();
  void add_net(std::span<const VertexId> pins, Weight weight = 1);
  void finish();

  std::int64_t num_pins() const { return static_cast<std::int64_t>(pins_); }

 private:
  void fail_usage(const std::string& msg) const;
  void check_pins(std::span<const VertexId> pins) const;

  std::string path_;
  int fd_ = -1;
  int num_resources_;
  PartitionId num_parts_;
  int phase_ = 0;  // 0 = counting, 1 = filling, 2 = finished

  // Phase-1 accumulators: O(vertices + nets), never O(pins).
  std::vector<Weight> vertex_weights_;
  std::vector<std::uint8_t> pad_flags_;
  std::vector<Weight> total_weights_;
  std::vector<std::uint32_t> net_degrees_;
  std::vector<std::uint32_t> vtx_degrees_;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> fixed_entries_;
  std::uint64_t pins_ = 0;
  std::uint64_t num_pads_ = 0;
  std::uint64_t num_nets_ = 0;  // frozen at begin_nets()

  // Mapping + phase-2 cursors.
  FpbinLayout layout_;
  std::byte* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::uint64_t net_cursor_ = 0;
  std::uint64_t pin_cursor_ = 0;
  std::vector<std::uint32_t> vtx_fill_;
  std::vector<Weight> weighted_degree_;
};

/// Writes a fully built graph (convenience over FpbinWriter; exercises
/// the same streaming path). `fixed` may be null (all vertices free).
void write_fpbin_file(const std::string& path, const Hypergraph& g,
                      const FixedAssignment* fixed = nullptr,
                      PartitionId num_parts = 2);

/// Owning reader: buffered reads into heap vectors, full validation,
/// Hypergraph via from_csr. The differential twin of MappedHypergraph.
BinaryInstance read_fpbin_file(const std::string& path);

/// Parses a .fpbin image already in memory (server uploads). `source`
/// names the buffer in diagnostics.
BinaryInstance read_fpbin_bytes(std::string_view bytes,
                                const std::string& source);

/// Zero-copy mmap reader: the file's CSR arrays are served straight from
/// the mapping behind the same span-based accessor surface as Hypergraph.
/// Opening validates the header, checksum and structural invariants
/// (monotone offsets, in-range sorted pins) in one pass without
/// allocating; cross-direction symmetry is vouched for by the checksummed
/// writer (to_hypergraph().validate() re-proves it when provenance is
/// untrusted). Move-only; the mapping lives until destruction.
class MappedHypergraph {
 public:
  explicit MappedHypergraph(const std::string& path);
  ~MappedHypergraph();

  MappedHypergraph(MappedHypergraph&& other) noexcept;
  MappedHypergraph& operator=(MappedHypergraph&& other) noexcept;
  MappedHypergraph(const MappedHypergraph&) = delete;
  MappedHypergraph& operator=(const MappedHypergraph&) = delete;

  VertexId num_vertices() const { return num_vertices_; }
  NetId num_nets() const { return num_nets_; }
  std::int64_t num_pins() const { return num_pins_; }
  int num_resources() const { return num_resources_; }

  std::span<const VertexId> pins(NetId e) const {
    return {net_pins_ + net_offset(e), net_pins_ + net_offset(e + 1)};
  }
  std::int64_t net_size(NetId e) const {
    return net_offset(e + 1) - net_offset(e);
  }
  Weight net_weight(NetId e) const { return net_weights_[e]; }

  std::span<const NetId> nets_of(VertexId v) const {
    return {vtx_nets_ + vtx_offset(v), vtx_nets_ + vtx_offset(v + 1)};
  }
  std::int64_t degree(VertexId v) const {
    return vtx_offset(v + 1) - vtx_offset(v);
  }

  Weight vertex_weight(VertexId v) const {
    return weights_[static_cast<std::size_t>(v) *
                    static_cast<std::size_t>(num_resources_)];
  }
  Weight vertex_weight(VertexId v, int r) const {
    return weights_[static_cast<std::size_t>(v) *
                        static_cast<std::size_t>(num_resources_) +
                    static_cast<std::size_t>(r)];
  }
  std::span<const Weight> vertex_weights(VertexId v) const {
    return {weights_ + static_cast<std::size_t>(v) *
                           static_cast<std::size_t>(num_resources_),
            static_cast<std::size_t>(num_resources_)};
  }
  Weight total_weight(int r = 0) const { return total_weights_[r]; }

  bool is_pad(VertexId v) const { return pad_flags_[v] != 0; }
  VertexId num_pads() const { return num_pads_; }
  Weight max_weighted_vertex_degree() const { return max_weighted_degree_; }

  PartitionId num_parts() const { return num_parts_; }
  /// True when the file carries any fixed/restricted vertices.
  bool has_fixed() const { return num_fixed_ > 0; }
  /// Materializes the fixed-vertex masks (O(vertices)).
  FixedAssignment fixed_assignment() const;

  /// Owning copy through Hypergraph::from_csr — O(pins) memcpy-speed,
  /// no re-transpose or re-sort.
  Hypergraph to_hypergraph() const;

 private:
  std::int64_t net_offset(std::int64_t i) const {
    return net_off32_ ? static_cast<std::int64_t>(net_off32_[i])
                      : net_off64_[i];
  }
  std::int64_t vtx_offset(std::int64_t i) const {
    return vtx_off32_ ? static_cast<std::int64_t>(vtx_off32_[i])
                      : vtx_off64_[i];
  }
  void reset() noexcept;

  const std::byte* map_ = nullptr;
  std::size_t map_bytes_ = 0;

  VertexId num_vertices_ = 0;
  NetId num_nets_ = 0;
  std::int64_t num_pins_ = 0;
  int num_resources_ = 1;
  PartitionId num_parts_ = 2;
  VertexId num_pads_ = 0;
  std::int64_t num_fixed_ = 0;
  Weight max_weighted_degree_ = 0;

  const std::uint32_t* net_off32_ = nullptr;
  const std::int64_t* net_off64_ = nullptr;
  const VertexId* net_pins_ = nullptr;
  const std::uint32_t* vtx_off32_ = nullptr;
  const std::int64_t* vtx_off64_ = nullptr;
  const NetId* vtx_nets_ = nullptr;
  const Weight* net_weights_ = nullptr;
  const Weight* weights_ = nullptr;
  const Weight* total_weights_ = nullptr;
  const std::uint8_t* pad_flags_ = nullptr;
  const std::byte* fixed_entries_ = nullptr;
};

/// Canonical text form used for content-hash identity: the canonical
/// hMETIS serialization of the graph, plus `fpbin-*` suffix sections for
/// anything .hgr cannot express (k != 2, pads, fixed masks, extra
/// resources). A plain .fpbin (k=2, no pads, no fixed, one resource)
/// therefore hashes identically to the canonical .hgr serialization of
/// the same graph — the partitiond idempotency contract.
std::string fpbin_canonical_text(const BinaryInstance& instance);

}  // namespace fixedpart::hg
