#pragma once
// Instance statistics: the columns of Table IV (cells, pads, nets, external
// nets, Max %) plus degree-distribution summaries used to validate the
// synthetic generator against ISPD-98 characteristics.

#include <vector>

#include "hg/hypergraph.hpp"

namespace fixedpart::hg {

struct InstanceStats {
  VertexId num_cells = 0;      ///< non-pad vertices
  VertexId num_pads = 0;       ///< zero-area terminal vertices
  NetId num_nets = 0;
  NetId num_external_nets = 0; ///< nets incident to at least one pad
  std::int64_t num_pins = 0;
  Weight total_cell_area = 0;
  Weight max_cell_area = 0;
  /// Largest cell as a percentage of total cell area ("Max %" of Table IV).
  double max_cell_area_pct = 0.0;
  double avg_net_degree = 0.0;
  double avg_cell_degree = 0.0;  ///< pins per cell (paper's k, ~3.5)
};

InstanceStats compute_stats(const Hypergraph& g);

/// Net-size histogram: result[d] = number of nets with exactly d pins
/// (sizes above `cap` are accumulated into result[cap]). Counts are
/// 64-bit: a NetId-typed count was an accident waiting for a 2^31-net
/// instance, and the bucket index itself is clamped before narrowing.
std::vector<std::int64_t> net_size_histogram(const Hypergraph& g,
                                             int cap = 16);

}  // namespace fixedpart::hg
