#include "hg/io_binary.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "hg/io_hmetis.hpp"
#include "util/errors.hpp"

namespace fixedpart::hg {

static_assert(std::endian::native == std::endian::little,
              ".fpbin is a little-endian format; big-endian hosts would "
              "need byte swapping that this repository does not carry");

namespace {

// 'FPBIN' + a non-ASCII byte (tripwire for ASCII-mode transfers and for
// text sniffers) + CRLF (corrupted by newline translation).
constexpr unsigned char kMagic[kFpbinMagicBytes] = {'F', 'P', 'B',  'I',
                                                    'N', 0xbf, '\r', '\n'};

constexpr std::uint32_t kFlagWideOffsets = 1u << 0;
constexpr std::uint64_t kWideThreshold = std::uint64_t{1} << 31;
constexpr std::uint32_t kMaxResources = 1024;

struct RawHeader {
  char magic[kFpbinMagicBytes];
  std::uint32_t version;
  std::uint32_t flags;
  std::uint64_t num_vertices;
  std::uint64_t num_nets;
  std::uint64_t num_pins;
  std::uint32_t num_resources;
  std::uint32_t num_parts;
  std::uint64_t num_fixed;
  std::uint64_t num_pads;
  std::int64_t max_weighted_degree;
  std::uint64_t payload_bytes;
  std::uint64_t checksum;
  std::uint64_t reserved;
};
static_assert(sizeof(RawHeader) == kFpbinHeaderBytes);

struct FixedEntry {
  std::uint32_t vertex;
  std::uint32_t reserved;
  std::uint64_t mask;
};
static_assert(sizeof(FixedEntry) == 16);

std::uint64_t fnv1a_64(const std::byte* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<std::uint64_t>(std::to_integer<unsigned char>(data[i]));
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t align8(std::uint64_t n) { return (n + 7) & ~std::uint64_t{7}; }

[[noreturn]] void fail(const std::string& source, const std::string& msg) {
  throw ParseError(source, 0, msg);
}

/// Pointers into a validated payload. Offset arrays come in either width;
/// exactly one of each off32/off64 pair is non-null.
struct SectionView {
  const std::uint32_t* net_off32 = nullptr;
  const std::int64_t* net_off64 = nullptr;
  const VertexId* net_pins = nullptr;
  const std::uint32_t* vtx_off32 = nullptr;
  const std::int64_t* vtx_off64 = nullptr;
  const NetId* vtx_nets = nullptr;
  const Weight* net_weights = nullptr;
  const Weight* vertex_weights = nullptr;
  const Weight* total_weights = nullptr;
  const std::uint8_t* pad_flags = nullptr;
  const FixedEntry* fixed = nullptr;
};

struct ParsedFile {
  RawHeader header;
  FpbinLayout layout;
  SectionView sections;
};

template <typename Offset>
void validate_csr(const std::string& source, const Offset* offsets,
                  std::int64_t count, std::int64_t num_pins,
                  const std::int32_t* ids, std::int64_t id_bound,
                  const char* what) {
  if (static_cast<std::int64_t>(offsets[0]) != 0) {
    fail(source, std::string(what) + " offsets do not start at 0");
  }
  if (static_cast<std::int64_t>(offsets[count]) != num_pins) {
    fail(source, std::string(what) + " offsets do not span the pin count");
  }
  for (std::int64_t i = 0; i < count; ++i) {
    const auto lo = static_cast<std::int64_t>(offsets[i]);
    const auto hi = static_cast<std::int64_t>(offsets[i + 1]);
    if (lo > hi) fail(source, std::string(what) + " offsets not monotone");
    for (std::int64_t j = lo; j < hi; ++j) {
      const std::int32_t id = ids[j];
      if (id < 0 || id >= id_bound) {
        fail(source, std::string(what) + " entry out of range");
      }
      if (j > lo && ids[j - 1] >= id) {
        fail(source, std::string(what) + " entries not sorted/unique");
      }
    }
  }
}

ParsedFile parse_and_validate(const std::byte* data, std::size_t size,
                              const std::string& source) {
  ParsedFile out;
  if (size < kFpbinHeaderBytes) fail(source, "truncated .fpbin header");
  std::memcpy(&out.header, data, sizeof(RawHeader));
  const RawHeader& h = out.header;
  if (std::memcmp(h.magic, kMagic, kFpbinMagicBytes) != 0) {
    fail(source, "not a .fpbin file (bad magic)");
  }
  if (h.version != kFpbinVersion) {
    fail(source, "unsupported .fpbin version " + std::to_string(h.version) +
                     " (expected " + std::to_string(kFpbinVersion) + ")");
  }
  if ((h.flags & ~kFlagWideOffsets) != 0) {
    fail(source, "unknown .fpbin flags");
  }
  constexpr std::uint64_t kMaxId =
      static_cast<std::uint64_t>(std::numeric_limits<VertexId>::max());
  if (h.num_vertices > kMaxId) fail(source, "vertex count exceeds id range");
  if (h.num_nets > kMaxId) fail(source, "net count exceeds id range");
  if (h.num_resources < 1 || h.num_resources > kMaxResources) {
    fail(source, "bad resource count");
  }
  if (h.num_parts < 2 ||
      h.num_parts > static_cast<std::uint32_t>(FixedAssignment::kMaxParts)) {
    fail(source, "bad partition count");
  }
  if (h.num_fixed > h.num_vertices) fail(source, "bad fixed-vertex count");
  if (h.num_pads > h.num_vertices) fail(source, "bad pad count");
  if (h.max_weighted_degree < 0) fail(source, "bad max weighted degree");
  const bool wide = (h.flags & kFlagWideOffsets) != 0;
  if (wide != (h.num_pins >= kWideThreshold)) {
    fail(source, "offset width flag contradicts the pin count");
  }

  out.layout = fpbin_layout(h.num_vertices, h.num_nets, h.num_pins,
                            h.num_resources, h.num_fixed);
  if (h.payload_bytes != out.layout.payload_bytes) {
    fail(source, "payload size disagrees with header counts");
  }
  if (size != kFpbinHeaderBytes + h.payload_bytes) {
    fail(source, "truncated or oversized .fpbin payload");
  }
  const std::byte* payload = data + kFpbinHeaderBytes;
  if (fnv1a_64(payload, h.payload_bytes) != h.checksum) {
    fail(source, "checksum mismatch (corrupted .fpbin)");
  }

  SectionView& s = out.sections;
  const FpbinLayout& lay = out.layout;
  auto at = [&](std::uint64_t off) { return payload + off; };
  if (wide) {
    s.net_off64 = reinterpret_cast<const std::int64_t*>(at(lay.net_offsets));
    s.vtx_off64 = reinterpret_cast<const std::int64_t*>(at(lay.vtx_offsets));
  } else {
    s.net_off32 = reinterpret_cast<const std::uint32_t*>(at(lay.net_offsets));
    s.vtx_off32 = reinterpret_cast<const std::uint32_t*>(at(lay.vtx_offsets));
  }
  s.net_pins = reinterpret_cast<const VertexId*>(at(lay.net_pins));
  s.vtx_nets = reinterpret_cast<const NetId*>(at(lay.vtx_nets));
  s.net_weights = reinterpret_cast<const Weight*>(at(lay.net_weights));
  s.vertex_weights = reinterpret_cast<const Weight*>(at(lay.vertex_weights));
  s.total_weights = reinterpret_cast<const Weight*>(at(lay.total_weights));
  s.pad_flags = reinterpret_cast<const std::uint8_t*>(at(lay.pad_flags));
  s.fixed = reinterpret_cast<const FixedEntry*>(at(lay.fixed));

  const auto nv = static_cast<std::int64_t>(h.num_vertices);
  const auto ne = static_cast<std::int64_t>(h.num_nets);
  const auto np = static_cast<std::int64_t>(h.num_pins);
  if (wide) {
    validate_csr(source, s.net_off64, ne, np, s.net_pins, nv, "net");
    validate_csr(source, s.vtx_off64, nv, np, s.vtx_nets, ne, "vertex");
  } else {
    validate_csr(source, s.net_off32, ne, np, s.net_pins, nv, "net");
    validate_csr(source, s.vtx_off32, nv, np, s.vtx_nets, ne, "vertex");
  }
  for (std::int64_t e = 0; e < ne; ++e) {
    if (s.net_weights[e] < 0) fail(source, "negative net weight");
  }
  const std::int64_t weight_count = nv * h.num_resources;
  for (std::int64_t i = 0; i < weight_count; ++i) {
    if (s.vertex_weights[i] < 0) fail(source, "negative vertex weight");
  }
  std::int64_t pads = 0;
  for (std::int64_t v = 0; v < nv; ++v) {
    if (s.pad_flags[v] > 1) fail(source, "bad pad flag");
    pads += s.pad_flags[v];
  }
  if (pads != static_cast<std::int64_t>(h.num_pads)) {
    fail(source, "pad count disagrees with pad flags");
  }
  const std::uint64_t full_mask =
      h.num_parts >= 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << h.num_parts) - 1;
  for (std::uint64_t i = 0; i < h.num_fixed; ++i) {
    const FixedEntry& f = s.fixed[i];
    if (f.vertex >= h.num_vertices) fail(source, "fixed vertex out of range");
    if (f.mask == 0 || (f.mask & ~full_mask) != 0) {
      fail(source, "bad fixed-vertex mask");
    }
  }
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw util::InputError("cannot open for reading: " + path);
  return in;
}

[[noreturn]] void sys_fail(const std::string& path, const char* what) {
  throw util::InputError(std::string(what) + " failed for " + path + ": " +
                         std::strerror(errno));
}

}  // namespace

bool is_fpbin(std::string_view bytes) {
  return bytes.size() >= kFpbinMagicBytes &&
         std::memcmp(bytes.data(), kMagic, kFpbinMagicBytes) == 0;
}

FpbinLayout fpbin_layout(std::uint64_t num_vertices, std::uint64_t num_nets,
                         std::uint64_t num_pins, std::uint32_t num_resources,
                         std::uint64_t num_fixed) {
  FpbinLayout lay;
  lay.wide_offsets = num_pins >= kWideThreshold;
  const std::uint64_t off_bytes = lay.wide_offsets ? 8 : 4;
  std::uint64_t at = 0;
  auto section = [&](std::uint64_t bytes) {
    const std::uint64_t start = at;
    at = align8(at + bytes);
    return start;
  };
  lay.total_weights = section(num_resources * sizeof(Weight));
  lay.net_offsets = section((num_nets + 1) * off_bytes);
  lay.net_pins = section(num_pins * sizeof(VertexId));
  lay.vtx_offsets = section((num_vertices + 1) * off_bytes);
  lay.vtx_nets = section(num_pins * sizeof(NetId));
  lay.net_weights = section(num_nets * sizeof(Weight));
  lay.vertex_weights = section(num_vertices * num_resources * sizeof(Weight));
  lay.pad_flags = section(num_vertices * sizeof(std::uint8_t));
  lay.fixed = section(num_fixed * sizeof(FixedEntry));
  lay.payload_bytes = at;
  return lay;
}

// ---------------------------------------------------------------------------
// FpbinWriter

FpbinWriter::FpbinWriter(std::string path, int num_resources,
                         PartitionId num_parts)
    : path_(std::move(path)),
      num_resources_(num_resources),
      num_parts_(num_parts) {
  if (num_resources < 1 ||
      num_resources > static_cast<int>(kMaxResources)) {
    throw std::invalid_argument("FpbinWriter: bad resource count");
  }
  if (num_parts < 2 || num_parts > FixedAssignment::kMaxParts) {
    throw std::invalid_argument("FpbinWriter: bad partition count");
  }
  total_weights_.assign(static_cast<std::size_t>(num_resources), 0);
}

FpbinWriter::~FpbinWriter() {
  if (map_ != nullptr) munmap(map_, map_bytes_);
  if (fd_ != -1) close(fd_);
}

void FpbinWriter::fail_usage(const std::string& msg) const {
  throw std::logic_error("FpbinWriter: " + msg);
}

void FpbinWriter::check_pins(std::span<const VertexId> pins) const {
  const auto nv = static_cast<VertexId>(pad_flags_.size());
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i] < 0 || pins[i] >= nv) {
      throw std::invalid_argument("FpbinWriter: pin out of range");
    }
    if (i > 0 && pins[i - 1] >= pins[i]) {
      throw std::invalid_argument("FpbinWriter: pins not sorted/unique");
    }
  }
}

VertexId FpbinWriter::add_vertex(std::span<const Weight> weights,
                                 bool is_pad) {
  if (phase_ != 0) fail_usage("add_vertex after begin_nets");
  if (static_cast<int>(weights.size()) != num_resources_) {
    throw std::invalid_argument("FpbinWriter: wrong resource count");
  }
  if (pad_flags_.size() >=
      static_cast<std::size_t>(std::numeric_limits<VertexId>::max())) {
    throw std::length_error("FpbinWriter: vertex count exceeds id range");
  }
  for (int r = 0; r < num_resources_; ++r) {
    if (weights[static_cast<std::size_t>(r)] < 0) {
      throw std::invalid_argument("FpbinWriter: negative weight");
    }
    total_weights_[static_cast<std::size_t>(r)] +=
        weights[static_cast<std::size_t>(r)];
  }
  vertex_weights_.insert(vertex_weights_.end(), weights.begin(),
                         weights.end());
  pad_flags_.push_back(is_pad ? 1 : 0);
  vtx_degrees_.push_back(0);
  if (is_pad) ++num_pads_;
  return static_cast<VertexId>(pad_flags_.size()) - 1;
}

VertexId FpbinWriter::add_vertex(Weight area, bool is_pad) {
  return add_vertex(std::span<const Weight>{&area, 1}, is_pad);
}

void FpbinWriter::add_fixed(VertexId v, std::uint64_t mask) {
  if (phase_ != 0) fail_usage("add_fixed after begin_nets");
  if (v < 0 || static_cast<std::size_t>(v) >= pad_flags_.size()) {
    throw std::invalid_argument("FpbinWriter: fixed vertex out of range");
  }
  const std::uint64_t full =
      num_parts_ >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << num_parts_) - 1;
  if (mask == 0 || (mask & ~full) != 0) {
    throw std::invalid_argument("FpbinWriter: bad fixed mask");
  }
  fixed_entries_.emplace_back(static_cast<std::uint32_t>(v), mask);
}

void FpbinWriter::count_net(std::span<const VertexId> pins) {
  if (phase_ != 0) fail_usage("count_net after begin_nets");
  if (net_degrees_.size() >=
      static_cast<std::size_t>(std::numeric_limits<NetId>::max())) {
    throw std::length_error("FpbinWriter: net count exceeds id range");
  }
  check_pins(pins);
  net_degrees_.push_back(static_cast<std::uint32_t>(pins.size()));
  pins_ += pins.size();
  for (VertexId v : pins) ++vtx_degrees_[static_cast<std::size_t>(v)];
}

void FpbinWriter::begin_nets() {
  if (phase_ != 0) fail_usage("begin_nets called twice");
  phase_ = 1;
  num_nets_ = net_degrees_.size();

  // The single point where the pin total is validated against the id-width
  // decision: 32-bit offsets iff num_pins < 2^31.
  layout_ = fpbin_layout(pad_flags_.size(), net_degrees_.size(), pins_,
                         static_cast<std::uint32_t>(num_resources_),
                         fixed_entries_.size());

  fd_ = open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ == -1) sys_fail(path_, "open");
  map_bytes_ = kFpbinHeaderBytes + layout_.payload_bytes;
  if (ftruncate(fd_, static_cast<off_t>(map_bytes_)) != 0) {
    sys_fail(path_, "ftruncate");
  }
  void* m = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                 fd_, 0);
  if (m == MAP_FAILED) sys_fail(path_, "mmap");
  map_ = static_cast<std::byte*>(m);

  std::byte* payload = map_ + kFpbinHeaderBytes;
  std::memcpy(payload + layout_.total_weights, total_weights_.data(),
              total_weights_.size() * sizeof(Weight));
  std::memcpy(payload + layout_.vertex_weights, vertex_weights_.data(),
              vertex_weights_.size() * sizeof(Weight));
  std::memcpy(payload + layout_.pad_flags, pad_flags_.data(),
              pad_flags_.size());
  auto* fixed_out =
      reinterpret_cast<FixedEntry*>(payload + layout_.fixed);
  for (std::size_t i = 0; i < fixed_entries_.size(); ++i) {
    fixed_out[i] = FixedEntry{fixed_entries_[i].first, 0,
                              fixed_entries_[i].second};
  }

  // Prefix-sum the per-net and per-vertex degree counts straight into the
  // mapped offset sections, then release the count arrays: from here on
  // heap usage is O(vertices) for the scatter cursors only.
  auto prefix = [&](const std::vector<std::uint32_t>& degrees,
                    std::uint64_t section) {
    std::uint64_t sum = 0;
    if (layout_.wide_offsets) {
      auto* off = reinterpret_cast<std::int64_t*>(payload + section);
      off[0] = 0;
      for (std::size_t i = 0; i < degrees.size(); ++i) {
        sum += degrees[i];
        off[i + 1] = static_cast<std::int64_t>(sum);
      }
    } else {
      auto* off = reinterpret_cast<std::uint32_t*>(payload + section);
      off[0] = 0;
      for (std::size_t i = 0; i < degrees.size(); ++i) {
        sum += degrees[i];
        off[i + 1] = static_cast<std::uint32_t>(sum);
      }
    }
  };
  prefix(net_degrees_, layout_.net_offsets);
  prefix(vtx_degrees_, layout_.vtx_offsets);
  std::vector<std::uint32_t>().swap(net_degrees_);
  vtx_fill_ = std::move(vtx_degrees_);
  std::fill(vtx_fill_.begin(), vtx_fill_.end(), 0);
  weighted_degree_.assign(pad_flags_.size(), 0);
}

void FpbinWriter::add_net(std::span<const VertexId> pins, Weight weight) {
  if (phase_ != 1) fail_usage("add_net outside the fill phase");
  if (weight < 0) {
    throw std::invalid_argument("FpbinWriter: negative net weight");
  }
  std::byte* payload = map_ + kFpbinHeaderBytes;
  auto net_span = [&](std::uint64_t e) -> std::pair<std::int64_t, std::int64_t> {
    if (layout_.wide_offsets) {
      auto* off =
          reinterpret_cast<const std::int64_t*>(payload + layout_.net_offsets);
      return {off[e], off[e + 1]};
    }
    auto* off =
        reinterpret_cast<const std::uint32_t*>(payload + layout_.net_offsets);
    return {static_cast<std::int64_t>(off[e]),
            static_cast<std::int64_t>(off[e + 1])};
  };
  if (net_cursor_ >= num_nets_) fail_usage("add_net beyond counted nets");
  const auto [lo, hi] = net_span(net_cursor_);
  if (hi - lo != static_cast<std::int64_t>(pins.size())) {
    fail_usage("add_net pin count differs from count_net");
  }
  check_pins(pins);
  const auto e = net_cursor_++;  // consumed only once the call is valid

  auto* pin_out = reinterpret_cast<VertexId*>(payload + layout_.net_pins);
  std::memcpy(pin_out + lo, pins.data(), pins.size() * sizeof(VertexId));
  pin_cursor_ += pins.size();

  auto* nets_out = reinterpret_cast<NetId*>(payload + layout_.vtx_nets);
  auto vtx_base = [&](VertexId v) -> std::int64_t {
    if (layout_.wide_offsets) {
      auto* off =
          reinterpret_cast<const std::int64_t*>(payload + layout_.vtx_offsets);
      return off[v];
    }
    auto* off =
        reinterpret_cast<const std::uint32_t*>(payload + layout_.vtx_offsets);
    return static_cast<std::int64_t>(off[v]);
  };
  for (VertexId v : pins) {
    const auto idx = static_cast<std::size_t>(v);
    nets_out[vtx_base(v) + vtx_fill_[idx]] = static_cast<NetId>(e);
    ++vtx_fill_[idx];
    weighted_degree_[idx] += weight;
  }
  auto* weight_out = reinterpret_cast<Weight*>(payload + layout_.net_weights);
  weight_out[e] = weight;
}

void FpbinWriter::finish() {
  if (phase_ != 1) fail_usage("finish outside the fill phase");
  if (net_cursor_ != num_nets_) fail_usage("finish before all nets filled");
  if (pin_cursor_ != pins_) fail_usage("fill phase pin total mismatch");
  phase_ = 2;

  Weight max_wdeg = 0;
  for (Weight w : weighted_degree_) max_wdeg = std::max(max_wdeg, w);

  RawHeader h{};
  std::memcpy(h.magic, kMagic, kFpbinMagicBytes);
  h.version = kFpbinVersion;
  h.flags = layout_.wide_offsets ? kFlagWideOffsets : 0;
  h.num_vertices = pad_flags_.size();
  h.num_nets = num_nets_;
  h.num_pins = pins_;
  h.num_resources = static_cast<std::uint32_t>(num_resources_);
  h.num_parts = static_cast<std::uint32_t>(num_parts_);
  h.num_fixed = fixed_entries_.size();
  h.num_pads = num_pads_;
  h.max_weighted_degree = max_wdeg;
  h.payload_bytes = layout_.payload_bytes;
  h.checksum = fnv1a_64(map_ + kFpbinHeaderBytes, layout_.payload_bytes);
  h.reserved = 0;
  std::memcpy(map_, &h, sizeof(RawHeader));

  if (msync(map_, map_bytes_, MS_SYNC) != 0) sys_fail(path_, "msync");
  munmap(map_, map_bytes_);
  map_ = nullptr;
  if (fsync(fd_) != 0) sys_fail(path_, "fsync");
  close(fd_);
  fd_ = -1;
}

void write_fpbin_file(const std::string& path, const Hypergraph& g,
                      const FixedAssignment* fixed, PartitionId num_parts) {
  if (fixed != nullptr) num_parts = fixed->num_parts();
  FpbinWriter w(path, g.num_resources(), num_parts);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    w.add_vertex(g.vertex_weights(v), g.is_pad(v));
  }
  if (fixed != nullptr) {
    for (VertexId v = 0; v < fixed->num_vertices(); ++v) {
      if (fixed->is_restricted(v)) w.add_fixed(v, fixed->allowed_mask(v));
    }
  }
  for (NetId e = 0; e < g.num_nets(); ++e) w.count_net(g.pins(e));
  w.begin_nets();
  for (NetId e = 0; e < g.num_nets(); ++e) w.add_net(g.pins(e), g.net_weight(e));
  w.finish();
}

// ---------------------------------------------------------------------------
// Readers

namespace {

BinaryInstance instance_from(const ParsedFile& file,
                             const std::string& source) {
  const RawHeader& h = file.header;
  const SectionView& s = file.sections;
  const auto nv = static_cast<VertexId>(h.num_vertices);
  const auto ne = static_cast<NetId>(h.num_nets);
  const auto np = static_cast<std::int64_t>(h.num_pins);

  CsrArrays a;
  a.num_vertices = nv;
  a.num_nets = ne;
  a.num_resources = static_cast<int>(h.num_resources);
  a.net_offsets.resize(static_cast<std::size_t>(ne) + 1);
  a.vtx_offsets.resize(static_cast<std::size_t>(nv) + 1);
  if (s.net_off64 != nullptr) {
    std::copy(s.net_off64, s.net_off64 + ne + 1, a.net_offsets.begin());
    std::copy(s.vtx_off64, s.vtx_off64 + nv + 1, a.vtx_offsets.begin());
  } else {
    std::copy(s.net_off32, s.net_off32 + ne + 1, a.net_offsets.begin());
    std::copy(s.vtx_off32, s.vtx_off32 + nv + 1, a.vtx_offsets.begin());
  }
  a.net_pins.assign(s.net_pins, s.net_pins + np);
  a.vtx_nets.assign(s.vtx_nets, s.vtx_nets + np);
  a.net_weights.assign(s.net_weights, s.net_weights + ne);
  a.vertex_weights.assign(
      s.vertex_weights,
      s.vertex_weights + static_cast<std::size_t>(nv) * h.num_resources);
  a.pad_flags.assign(s.pad_flags, s.pad_flags + nv);
  a.total_weights.assign(s.total_weights, s.total_weights + h.num_resources);
  a.num_pads = static_cast<VertexId>(h.num_pads);
  a.max_weighted_degree = h.max_weighted_degree;

  BinaryInstance out;
  out.graph = Hypergraph::from_csr(std::move(a));
  out.num_parts = static_cast<PartitionId>(h.num_parts);
  out.fixed = FixedAssignment(nv, out.num_parts);
  for (std::uint64_t i = 0; i < h.num_fixed; ++i) {
    out.fixed.restrict_to(static_cast<VertexId>(s.fixed[i].vertex),
                          s.fixed[i].mask);
  }
  (void)source;
  return out;
}

}  // namespace

BinaryInstance read_fpbin_bytes(std::string_view bytes,
                                const std::string& source) {
  const ParsedFile file = parse_and_validate(
      reinterpret_cast<const std::byte*>(bytes.data()), bytes.size(), source);
  return instance_from(file, source);
}

BinaryInstance read_fpbin_file(const std::string& path) {
  auto in = open_in(path);
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  // int64-backed buffer so section views (8-byte values) are aligned.
  std::vector<std::int64_t> buffer((size + 7) / 8);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(buffer.data()),
               static_cast<std::streamsize>(size))) {
    throw util::InputError("short read: " + path);
  }
  const ParsedFile file = parse_and_validate(
      reinterpret_cast<const std::byte*>(buffer.data()), size, path);
  return instance_from(file, path);
}

// ---------------------------------------------------------------------------
// MappedHypergraph

MappedHypergraph::MappedHypergraph(const std::string& path) {
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd == -1) throw util::InputError("cannot open for reading: " + path);
  struct stat st {};
  if (fstat(fd, &st) != 0) {
    close(fd);
    sys_fail(path, "fstat");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    close(fd);
    fail(path, "truncated .fpbin header");
  }
  void* m = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  close(fd);  // the mapping keeps the file alive
  if (m == MAP_FAILED) sys_fail(path, "mmap");
  map_ = static_cast<const std::byte*>(m);
  map_bytes_ = size;

  ParsedFile file;
  try {
    file = parse_and_validate(map_, map_bytes_, path);
  } catch (...) {
    munmap(const_cast<std::byte*>(map_), map_bytes_);
    map_ = nullptr;
    throw;
  }
  const RawHeader& h = file.header;
  num_vertices_ = static_cast<VertexId>(h.num_vertices);
  num_nets_ = static_cast<NetId>(h.num_nets);
  num_pins_ = static_cast<std::int64_t>(h.num_pins);
  num_resources_ = static_cast<int>(h.num_resources);
  num_parts_ = static_cast<PartitionId>(h.num_parts);
  num_pads_ = static_cast<VertexId>(h.num_pads);
  num_fixed_ = static_cast<std::int64_t>(h.num_fixed);
  max_weighted_degree_ = h.max_weighted_degree;
  net_off32_ = file.sections.net_off32;
  net_off64_ = file.sections.net_off64;
  net_pins_ = file.sections.net_pins;
  vtx_off32_ = file.sections.vtx_off32;
  vtx_off64_ = file.sections.vtx_off64;
  vtx_nets_ = file.sections.vtx_nets;
  net_weights_ = file.sections.net_weights;
  weights_ = file.sections.vertex_weights;
  total_weights_ = file.sections.total_weights;
  pad_flags_ = file.sections.pad_flags;
  fixed_entries_ =
      reinterpret_cast<const std::byte*>(file.sections.fixed);
}

MappedHypergraph::~MappedHypergraph() { reset(); }

void MappedHypergraph::reset() noexcept {
  if (map_ != nullptr) {
    munmap(const_cast<std::byte*>(map_), map_bytes_);
    map_ = nullptr;
    map_bytes_ = 0;
  }
}

MappedHypergraph::MappedHypergraph(MappedHypergraph&& other) noexcept {
  *this = std::move(other);
}

MappedHypergraph& MappedHypergraph::operator=(
    MappedHypergraph&& other) noexcept {
  if (this == &other) return *this;
  reset();
  std::memcpy(static_cast<void*>(this), &other, sizeof(MappedHypergraph));
  other.map_ = nullptr;
  other.map_bytes_ = 0;
  return *this;
}

FixedAssignment MappedHypergraph::fixed_assignment() const {
  FixedAssignment fixed(num_vertices_, num_parts_);
  const auto* entries = reinterpret_cast<const FixedEntry*>(fixed_entries_);
  for (std::int64_t i = 0; i < num_fixed_; ++i) {
    fixed.restrict_to(static_cast<VertexId>(entries[i].vertex),
                      entries[i].mask);
  }
  return fixed;
}

Hypergraph MappedHypergraph::to_hypergraph() const {
  CsrArrays a;
  a.num_vertices = num_vertices_;
  a.num_nets = num_nets_;
  a.num_resources = num_resources_;
  a.net_offsets.resize(static_cast<std::size_t>(num_nets_) + 1);
  a.vtx_offsets.resize(static_cast<std::size_t>(num_vertices_) + 1);
  for (std::int64_t i = 0; i <= num_nets_; ++i) {
    a.net_offsets[static_cast<std::size_t>(i)] = net_offset(i);
  }
  for (std::int64_t i = 0; i <= num_vertices_; ++i) {
    a.vtx_offsets[static_cast<std::size_t>(i)] = vtx_offset(i);
  }
  a.net_pins.assign(net_pins_, net_pins_ + num_pins_);
  a.vtx_nets.assign(vtx_nets_, vtx_nets_ + num_pins_);
  a.net_weights.assign(net_weights_, net_weights_ + num_nets_);
  a.vertex_weights.assign(
      weights_, weights_ + static_cast<std::size_t>(num_vertices_) *
                               static_cast<std::size_t>(num_resources_));
  a.pad_flags.assign(pad_flags_, pad_flags_ + num_vertices_);
  a.total_weights.assign(total_weights_, total_weights_ + num_resources_);
  a.num_pads = num_pads_;
  a.max_weighted_degree = max_weighted_degree_;
  return Hypergraph::from_csr(std::move(a));
}

// ---------------------------------------------------------------------------
// Canonical text identity

std::string fpbin_canonical_text(const BinaryInstance& instance) {
  const Hypergraph& g = instance.graph;
  std::ostringstream out;
  write_hmetis(out, g);
  if (instance.num_parts != 2) {
    out << "fpbin-parts " << instance.num_parts << '\n';
  }
  if (g.num_pads() > 0) {
    out << "fpbin-pads";
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.is_pad(v)) out << ' ' << (v + 1);
    }
    out << '\n';
  }
  if (g.num_resources() > 1) {
    out << "fpbin-resources " << g.num_resources() << '\n';
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (int r = 1; r < g.num_resources(); ++r) {
        out << (r > 1 ? " " : "") << g.vertex_weight(v, r);
      }
      out << '\n';
    }
  }
  for (VertexId v = 0; v < instance.fixed.num_vertices(); ++v) {
    if (instance.fixed.is_restricted(v)) {
      out << "fpbin-fix " << (v + 1) << ' ' << instance.fixed.allowed_mask(v)
          << '\n';
    }
  }
  return out.str();
}

}  // namespace fixedpart::hg
