#include "hg/fixed.hpp"

#include <bit>
#include <stdexcept>

namespace fixedpart::hg {

FixedAssignment::FixedAssignment(VertexId num_vertices, PartitionId num_parts)
    : num_parts_(num_parts) {
  if (num_parts < 1 || num_parts > kMaxParts) {
    throw std::invalid_argument("FixedAssignment: bad partition count");
  }
  if (num_vertices < 0) {
    throw std::invalid_argument("FixedAssignment: negative vertex count");
  }
  full_mask_ = (num_parts == kMaxParts)
                   ? ~std::uint64_t{0}
                   : ((std::uint64_t{1} << num_parts) - 1);
  allowed_.assign(static_cast<std::size_t>(num_vertices), full_mask_);
}

void FixedAssignment::check_vertex(VertexId v) const {
  if (v < 0 || v >= num_vertices()) {
    throw std::out_of_range("FixedAssignment: vertex out of range");
  }
}

void FixedAssignment::fix(VertexId v, PartitionId p) {
  check_vertex(v);
  if (p < 0 || p >= num_parts_) {
    throw std::out_of_range("FixedAssignment::fix: partition out of range");
  }
  allowed_[v] = std::uint64_t{1} << p;
}

void FixedAssignment::restrict_to(VertexId v, std::uint64_t mask) {
  check_vertex(v);
  if (mask == 0 || (mask & ~full_mask_) != 0) {
    throw std::invalid_argument("FixedAssignment::restrict_to: bad mask");
  }
  allowed_[v] = mask;
}

void FixedAssignment::free(VertexId v) {
  check_vertex(v);
  allowed_[v] = full_mask_;
}

bool FixedAssignment::is_fixed(VertexId v) const {
  return std::popcount(allowed_[v]) == 1;
}

PartitionId FixedAssignment::fixed_part(VertexId v) const {
  if (!is_fixed(v)) return kNoPartition;
  return static_cast<PartitionId>(std::countr_zero(allowed_[v]));
}

VertexId FixedAssignment::count_fixed() const {
  VertexId n = 0;
  for (std::uint64_t mask : allowed_) n += (std::popcount(mask) == 1);
  return n;
}

VertexId FixedAssignment::count_free() const {
  VertexId n = 0;
  for (std::uint64_t mask : allowed_) n += (mask == full_mask_);
  return n;
}

}  // namespace fixedpart::hg
