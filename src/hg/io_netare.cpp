#include "hg/io_netare.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "hg/builder.hpp"

namespace fixedpart::hg {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("netD: " + msg);
}

bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i == line.size() || line[i] == '#') continue;
    return true;
  }
  return false;
}

std::int64_t read_count(std::istream& in, const std::string& what) {
  std::string line;
  if (!next_line(in, line)) fail("missing " + what);
  std::istringstream ls(line);
  std::int64_t value = 0;
  if (!(ls >> value)) fail("bad " + what);
  return value;
}

/// Module name -> dense vertex id: cells a0..aC first, then pads p1..pP.
struct NameSpace {
  std::int64_t num_cells = 0;
  std::int64_t num_pads = 0;

  VertexId resolve(const std::string& name) const {
    if (name.size() < 2) fail("bad module name: " + name);
    std::int64_t index = 0;
    try {
      index = std::stoll(name.substr(1));
    } catch (const std::exception&) {
      fail("bad module name: " + name);
    }
    if (name[0] == 'a') {
      if (index < 0 || index >= num_cells) fail("cell out of range: " + name);
      return static_cast<VertexId>(index);
    }
    if (name[0] == 'p') {
      if (index < 1 || index > num_pads) fail("pad out of range: " + name);
      return static_cast<VertexId>(num_cells + index - 1);
    }
    fail("bad module prefix: " + name);
  }
};

}  // namespace

NetDInstance read_netd(std::istream& net, std::istream& are) {
  (void)read_count(net, "header zero");
  const std::int64_t num_pins = read_count(net, "pin count");
  const std::int64_t num_nets = read_count(net, "net count");
  const std::int64_t num_modules = read_count(net, "module count");
  const std::int64_t pad_offset = read_count(net, "pad offset");
  if (num_modules < 0 || pad_offset < -1 || pad_offset >= num_modules) {
    fail("inconsistent module/pad counts");
  }
  NameSpace ns;
  ns.num_cells = pad_offset + 1;
  ns.num_pads = num_modules - ns.num_cells;

  // Areas (default 1 for cells, 0 for pads when absent).
  std::vector<Weight> areas(static_cast<std::size_t>(num_modules), 0);
  for (std::int64_t c = 0; c < ns.num_cells; ++c) areas[c] = 1;
  std::string line;
  while (next_line(are, line)) {
    std::istringstream ls(line);
    std::string name;
    Weight area = 0;
    if (!(ls >> name >> area)) fail("bad .are line: " + line);
    areas[static_cast<std::size_t>(ns.resolve(name))] = area;
  }

  NetDInstance out;
  HypergraphBuilder builder;
  for (std::int64_t c = 0; c < ns.num_cells; ++c) {
    builder.add_vertex(areas[static_cast<std::size_t>(c)], /*is_pad=*/false);
    out.names.push_back("a" + std::to_string(c));
  }
  for (std::int64_t p = 1; p <= ns.num_pads; ++p) {
    builder.add_vertex(areas[static_cast<std::size_t>(ns.num_cells + p - 1)],
                       /*is_pad=*/true);
    out.names.push_back("p" + std::to_string(p));
  }

  std::vector<VertexId> current;
  std::int64_t pins_read = 0;
  std::int64_t nets_read = 0;
  auto flush = [&] {
    if (!current.empty()) {
      builder.add_net(current);
      ++nets_read;
      current.clear();
    }
  };
  while (next_line(net, line)) {
    std::istringstream ls(line);
    std::string name;
    std::string marker;
    if (!(ls >> name >> marker)) fail("bad pin line: " + line);
    if (marker != "s" && marker != "l") fail("bad pin marker: " + marker);
    if (marker == "s") flush();
    if (marker == "l" && current.empty()) fail("'l' pin before any 's'");
    current.push_back(ns.resolve(name));
    ++pins_read;
    std::string direction;
    if (ls >> direction) {
      if (direction != "I" && direction != "O" && direction != "B") {
        fail("bad pin direction: " + direction);
      }
    }
  }
  flush();
  if (pins_read != num_pins) fail("pin count mismatch");
  if (nets_read != num_nets) fail("net count mismatch");

  out.graph = builder.build();
  return out;
}

NetDInstance read_netd_files(const std::string& net_path,
                             const std::string& are_path) {
  std::ifstream net(net_path);
  if (!net) throw std::runtime_error("cannot open " + net_path);
  std::ifstream are(are_path);
  if (!are) throw std::runtime_error("cannot open " + are_path);
  return read_netd(net, are);
}

void write_netd(std::ostream& net, std::ostream& are, const Hypergraph& g) {
  // Map vertices to the canonical cells-then-pads order.
  std::vector<std::string> name(static_cast<std::size_t>(g.num_vertices()));
  std::int64_t cells = 0;
  std::int64_t pads = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.is_pad(v)) {
      name[v] = "p" + std::to_string(++pads);
    } else {
      name[v] = "a" + std::to_string(cells++);
    }
  }
  net << "0\n"
      << g.num_pins() << '\n'
      << g.num_nets() << '\n'
      << g.num_vertices() << '\n'
      << (cells - 1) << '\n';
  for (NetId e = 0; e < g.num_nets(); ++e) {
    bool first = true;
    for (VertexId v : g.pins(e)) {
      net << name[v] << ' ' << (first ? 's' : 'l') << " B\n";
      first = false;
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    are << name[v] << ' ' << g.vertex_weight(v) << '\n';
  }
}

void write_netd_files(const std::string& net_path,
                      const std::string& are_path, const Hypergraph& g) {
  std::ofstream net(net_path);
  if (!net) throw std::runtime_error("cannot write " + net_path);
  std::ofstream are(are_path);
  if (!are) throw std::runtime_error("cannot write " + are_path);
  write_netd(net, are, g);
}

}  // namespace fixedpart::hg
