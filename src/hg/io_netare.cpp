#include "hg/io_netare.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "hg/builder.hpp"
#include "hg/io_common.hpp"

namespace fixedpart::hg {

namespace {

constexpr std::int64_t kMaxCount = std::numeric_limits<VertexId>::max();
constexpr std::int64_t kMaxWeight = std::numeric_limits<Weight>::max();

std::int64_t read_count(LineReader& reader, const char* what,
                        std::int64_t min, std::int64_t max) {
  std::string line;
  if (!reader.next(line)) reader.fail(std::string("missing ") + what);
  std::istringstream ls(line);
  return parse_int(ls, reader, what, min, max);
}

/// Module name -> dense vertex id: cells a0..aC first, then pads p1..pP.
/// Numeric suffixes are parsed without exceptions (std::from_chars); a
/// malformed name fails with line context instead of being swallowed.
struct NameSpace {
  std::int64_t num_cells = 0;
  std::int64_t num_pads = 0;

  VertexId resolve(const std::string& name, const LineReader& at) const {
    if (name.size() < 2) at.fail("bad module name: '" + name + "'");
    if (name[0] == 'a') {
      const std::int64_t index = parse_int_text(
          name.substr(1), at, "cell index", 0, num_cells - 1);
      return static_cast<VertexId>(index);
    }
    if (name[0] == 'p') {
      const std::int64_t index =
          parse_int_text(name.substr(1), at, "pad index", 1, num_pads);
      return static_cast<VertexId>(num_cells + index - 1);
    }
    at.fail("bad module prefix (want aN or pN): '" + name + "'");
  }
};

}  // namespace

NetDInstance read_netd(std::istream& net, std::istream& are,
                       const IoOptions& options,
                       const std::string& net_source,
                       const std::string& are_source) {
  LineReader net_reader(net, net_source, '#');
  (void)read_count(net_reader, "header zero", std::numeric_limits<std::int64_t>::min(),
                   std::numeric_limits<std::int64_t>::max());
  const std::int64_t num_pins =
      read_count(net_reader, "pin count", 0, std::numeric_limits<std::int64_t>::max());
  const std::int64_t num_nets = read_count(net_reader, "net count", 0, kMaxCount);
  const std::int64_t num_modules =
      read_count(net_reader, "module count", 0, kMaxCount);
  const std::int64_t pad_offset =
      read_count(net_reader, "pad offset", -1, kMaxCount);
  if (pad_offset >= num_modules) {
    net_reader.fail("pad offset " + std::to_string(pad_offset) +
                    " not below module count " + std::to_string(num_modules));
  }
  NameSpace ns;
  ns.num_cells = pad_offset + 1;
  ns.num_pads = num_modules - ns.num_cells;

  // Areas (default 1 for cells, 0 for pads when absent).
  std::vector<Weight> areas(static_cast<std::size_t>(num_modules), 0);
  std::vector<std::uint8_t> area_seen(static_cast<std::size_t>(num_modules),
                                      0);
  for (std::int64_t c = 0; c < ns.num_cells; ++c) areas[c] = 1;
  LineReader are_reader(are, are_source, '#');
  std::string line;
  while (are_reader.next(line)) {
    std::istringstream ls(line);
    std::string name;
    ls >> name;
    const VertexId v = ns.resolve(name, are_reader);
    const Weight area = parse_int(ls, are_reader, "area", 0, kMaxWeight);
    std::string trailing;
    if ((ls >> trailing) && options.strict) {
      are_reader.fail("trailing token on .are line: " + trailing);
    }
    if (area_seen[static_cast<std::size_t>(v)] && options.strict) {
      are_reader.fail("duplicate area entry for " + name);
    }
    area_seen[static_cast<std::size_t>(v)] = 1;
    areas[static_cast<std::size_t>(v)] = area;
  }

  NetDInstance out;
  HypergraphBuilder builder;
  for (std::int64_t c = 0; c < ns.num_cells; ++c) {
    builder.add_vertex(areas[static_cast<std::size_t>(c)], /*is_pad=*/false);
    out.names.push_back("a" + std::to_string(c));
  }
  for (std::int64_t p = 1; p <= ns.num_pads; ++p) {
    builder.add_vertex(areas[static_cast<std::size_t>(ns.num_cells + p - 1)],
                       /*is_pad=*/true);
    out.names.push_back("p" + std::to_string(p));
  }

  // A module may legitimately carry several pins of the same net (the
  // builder merges them into one), so duplicates are not diagnosed here;
  // the declared pin count still counts every line.
  std::vector<VertexId> current;
  std::int64_t pins_read = 0;
  std::int64_t nets_read = 0;
  auto flush = [&] {
    if (!current.empty()) {
      builder.add_net(current);
      ++nets_read;
      current.clear();
    }
  };
  while (net_reader.next(line)) {
    std::istringstream ls(line);
    std::string name;
    std::string marker;
    if (!(ls >> name >> marker)) net_reader.fail("bad pin line: " + line);
    if (marker != "s" && marker != "l") {
      net_reader.fail("bad pin marker (want s or l): '" + marker + "'");
    }
    if (marker == "s") flush();
    if (marker == "l" && current.empty()) {
      net_reader.fail("'l' continuation pin before any 's' start pin");
    }
    current.push_back(ns.resolve(name, net_reader));
    if (pins_read == std::numeric_limits<std::int64_t>::max()) {
      net_reader.fail("pin count overflows");
    }
    ++pins_read;
    std::string direction;
    if (ls >> direction) {
      if (direction != "I" && direction != "O" && direction != "B") {
        if (options.strict) {
          net_reader.fail("bad pin direction (want I, O or B): '" +
                          direction + "'");
        }
      }
    }
  }
  flush();
  if (pins_read != num_pins) {
    net_reader.fail("pin count mismatch: header declares " +
                    std::to_string(num_pins) + ", read " +
                    std::to_string(pins_read));
  }
  if (nets_read != num_nets) {
    net_reader.fail("net count mismatch: header declares " +
                    std::to_string(num_nets) + ", read " +
                    std::to_string(nets_read));
  }

  out.graph = builder.build();
  return out;
}

NetDInstance read_netd_files(const std::string& net_path,
                             const std::string& are_path,
                             const IoOptions& options) {
  std::ifstream net(net_path);
  if (!net) throw util::InputError("cannot open " + net_path);
  std::ifstream are(are_path);
  if (!are) throw util::InputError("cannot open " + are_path);
  return read_netd(net, are, options, net_path, are_path);
}

void write_netd(std::ostream& net, std::ostream& are, const Hypergraph& g) {
  // Map vertices to the canonical cells-then-pads order.
  std::vector<std::string> name(static_cast<std::size_t>(g.num_vertices()));
  std::int64_t cells = 0;
  std::int64_t pads = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.is_pad(v)) {
      name[v] = "p" + std::to_string(++pads);
    } else {
      name[v] = "a" + std::to_string(cells++);
    }
  }
  net << "0\n"
      << g.num_pins() << '\n'
      << g.num_nets() << '\n'
      << g.num_vertices() << '\n'
      << (cells - 1) << '\n';
  for (NetId e = 0; e < g.num_nets(); ++e) {
    bool first = true;
    for (VertexId v : g.pins(e)) {
      net << name[v] << ' ' << (first ? 's' : 'l') << " B\n";
      first = false;
    }
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    are << name[v] << ' ' << g.vertex_weight(v) << '\n';
  }
}

void write_netd_files(const std::string& net_path,
                      const std::string& are_path, const Hypergraph& g) {
  std::ofstream net(net_path);
  if (!net) throw util::InputError("cannot write " + net_path);
  std::ofstream are(are_path);
  if (!are) throw util::InputError("cannot write " + are_path);
  write_netd(net, are, g);
}

}  // namespace fixedpart::hg
