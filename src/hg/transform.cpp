#include "hg/transform.hpp"

#include <stdexcept>

#include "hg/builder.hpp"

namespace fixedpart::hg {

ClusteredTerminals cluster_terminals(const Hypergraph& g,
                                     const FixedAssignment& fixed) {
  if (fixed.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument("cluster_terminals: size mismatch");
  }
  const PartitionId k = fixed.num_parts();

  // Pass 1: aggregate per-part terminal weights.
  std::vector<std::vector<Weight>> term_weights(
      static_cast<std::size_t>(k),
      std::vector<Weight>(static_cast<std::size_t>(g.num_resources()), 0));
  std::vector<bool> term_has_pad(static_cast<std::size_t>(k), false);
  std::vector<bool> part_has_terminal(static_cast<std::size_t>(k), false);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartitionId p = fixed.fixed_part(v);
    if (p == kNoPartition) continue;
    part_has_terminal[p] = true;
    for (int r = 0; r < g.num_resources(); ++r) {
      term_weights[p][static_cast<std::size_t>(r)] += g.vertex_weight(v, r);
    }
    if (g.is_pad(v)) term_has_pad[p] = true;
  }

  HypergraphBuilder builder(g.num_resources());
  ClusteredTerminals out{
      .graph = {},
      .fixed = FixedAssignment(0, k),
      .map = std::vector<VertexId>(static_cast<std::size_t>(g.num_vertices()),
                                   kNoVertex),
      .terminal_of_part =
          std::vector<VertexId>(static_cast<std::size_t>(k), kNoVertex)};

  // Cluster terminals first so their ids are stable and documented.
  for (PartitionId p = 0; p < k; ++p) {
    if (!part_has_terminal[p]) continue;
    out.terminal_of_part[p] =
        builder.add_vertex(term_weights[p], term_has_pad[p]);
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartitionId p = fixed.fixed_part(v);
    if (p != kNoPartition) {
      out.map[v] = out.terminal_of_part[p];
      continue;
    }
    std::vector<Weight> w(static_cast<std::size_t>(g.num_resources()));
    for (int r = 0; r < g.num_resources(); ++r) {
      w[static_cast<std::size_t>(r)] = g.vertex_weight(v, r);
    }
    out.map[v] = builder.add_vertex(w, g.is_pad(v));
  }

  std::vector<VertexId> pins;
  for (NetId e = 0; e < g.num_nets(); ++e) {
    pins.clear();
    for (VertexId v : g.pins(e)) pins.push_back(out.map[v]);
    builder.add_net(pins, g.net_weight(e));  // builder dedupes merged pins
  }

  out.graph = builder.build();
  out.fixed = FixedAssignment(out.graph.num_vertices(), k);
  for (PartitionId p = 0; p < k; ++p) {
    if (out.terminal_of_part[p] != kNoVertex) {
      out.fixed.fix(out.terminal_of_part[p], p);
    }
  }
  // Non-singleton restrictions (OR-sets) survive on their mapped images.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (fixed.fixed_part(v) == kNoPartition && fixed.is_restricted(v)) {
      out.fixed.restrict_to(out.map[v], fixed.allowed_mask(v));
    }
  }
  return out;
}

}  // namespace fixedpart::hg
