#include "hg/io_solution.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fixedpart::hg {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("fpsol: " + msg);
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return in;
}

}  // namespace

Weight solution_cut(const Hypergraph& graph,
                    const std::vector<PartitionId>& assignment,
                    PartitionId num_parts) {
  if (static_cast<VertexId>(assignment.size()) != graph.num_vertices()) {
    throw std::invalid_argument("solution_cut: size mismatch");
  }
  Weight cut = 0;
  for (NetId e = 0; e < graph.num_nets(); ++e) {
    PartitionId first = kNoPartition;
    for (const VertexId v : graph.pins(e)) {
      const PartitionId p = assignment[v];
      if (p < 0 || p >= num_parts) {
        throw std::invalid_argument("solution_cut: part out of range");
      }
      if (first == kNoPartition) {
        first = p;
      } else if (p != first) {
        cut += graph.net_weight(e);
        break;
      }
    }
  }
  return cut;
}

void write_solution(std::ostream& out, const Solution& solution) {
  out << "FPSOL 1.0\n";
  out << "vertices " << solution.assignment.size() << " parts "
      << solution.num_parts << " cut " << solution.cut << '\n';
  for (const PartitionId p : solution.assignment) out << p << '\n';
}

void write_solution_file(const std::string& path, const Solution& solution) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_solution(out, solution);
}

Solution read_solution(std::istream& in) {
  std::string magic;
  std::string version;
  if (!(in >> magic >> version)) fail("empty input");
  if (magic != "FPSOL") fail("missing FPSOL magic");
  if (version != "1.0") fail("unsupported version " + version);

  std::string kw_vertices;
  std::string kw_parts;
  std::string kw_cut;
  std::int64_t vertices = 0;
  std::int64_t parts = 0;
  Weight cut = 0;
  if (!(in >> kw_vertices >> vertices >> kw_parts >> parts >> kw_cut >> cut) ||
      kw_vertices != "vertices" || kw_parts != "parts" || kw_cut != "cut") {
    fail("bad header line");
  }
  if (vertices < 0 || parts < 1) fail("bad counts");

  Solution solution;
  solution.num_parts = static_cast<PartitionId>(parts);
  solution.cut = cut;
  solution.assignment.reserve(static_cast<std::size_t>(vertices));
  for (std::int64_t i = 0; i < vertices; ++i) {
    std::int64_t p = 0;
    if (!(in >> p)) fail("fewer part ids than vertices");
    if (p < 0 || p >= parts) fail("part id out of range");
    solution.assignment.push_back(static_cast<PartitionId>(p));
  }
  return solution;
}

Solution read_solution_file(const std::string& path) {
  auto in = open_in(path);
  return read_solution(in);
}

Solution read_solution_checked(std::istream& in, const Hypergraph& graph) {
  Solution solution = read_solution(in);
  if (static_cast<VertexId>(solution.assignment.size()) !=
      graph.num_vertices()) {
    fail("solution vertex count does not match the hypergraph");
  }
  const Weight actual =
      solution_cut(graph, solution.assignment, solution.num_parts);
  if (actual != solution.cut) {
    fail("recorded cut " + std::to_string(solution.cut) +
         " does not match actual cut " + std::to_string(actual));
  }
  return solution;
}

Solution read_solution_file_checked(const std::string& path,
                                    const Hypergraph& graph) {
  auto in = open_in(path);
  return read_solution_checked(in, graph);
}

}  // namespace fixedpart::hg
