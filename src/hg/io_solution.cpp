#include "hg/io_solution.hpp"

#include <fstream>
#include <limits>
#include <sstream>

#include "hg/io_common.hpp"

namespace fixedpart::hg {

namespace {

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::InputError("cannot open for reading: " + path);
  return in;
}

constexpr std::int64_t kMaxCount = std::numeric_limits<VertexId>::max();

}  // namespace

Weight solution_cut(const Hypergraph& graph,
                    const std::vector<PartitionId>& assignment,
                    PartitionId num_parts) {
  if (static_cast<VertexId>(assignment.size()) != graph.num_vertices()) {
    throw std::invalid_argument("solution_cut: size mismatch");
  }
  Weight cut = 0;
  for (NetId e = 0; e < graph.num_nets(); ++e) {
    PartitionId first = kNoPartition;
    for (const VertexId v : graph.pins(e)) {
      const PartitionId p = assignment[v];
      if (p < 0 || p >= num_parts) {
        throw std::invalid_argument("solution_cut: part out of range");
      }
      if (first == kNoPartition) {
        first = p;
      } else if (p != first) {
        cut += graph.net_weight(e);
        break;
      }
    }
  }
  return cut;
}

void write_solution(std::ostream& out, const Solution& solution) {
  out << "FPSOL 1.0\n";
  out << "vertices " << solution.assignment.size() << " parts "
      << solution.num_parts << " cut " << solution.cut << '\n';
  for (const PartitionId p : solution.assignment) out << p << '\n';
}

void write_solution_file(const std::string& path, const Solution& solution) {
  std::ofstream out(path);
  if (!out) throw util::InputError("cannot open for writing: " + path);
  write_solution(out, solution);
}

Solution read_solution(std::istream& in, const IoOptions& options,
                       const std::string& source) {
  LineReader reader(in, source, '#');
  std::string line;
  if (!reader.next(line)) reader.fail("empty input");
  {
    std::istringstream ls(line);
    std::string magic, version;
    ls >> magic >> version;
    if (magic != "FPSOL") reader.fail("missing FPSOL magic");
    if (version != "1.0") reader.fail("unsupported version " + version);
  }

  if (!reader.next(line)) reader.fail("missing header line");
  std::istringstream header(line);
  std::string kw_vertices;
  std::string kw_parts;
  std::string kw_cut;
  header >> kw_vertices;
  if (kw_vertices != "vertices") reader.fail("expected 'vertices'");
  const std::int64_t vertices =
      parse_int(header, reader, "vertex count", 0, kMaxCount);
  header >> kw_parts;
  if (kw_parts != "parts") reader.fail("expected 'parts'");
  const std::int64_t parts =
      parse_int(header, reader, "partition count", 1, kMaxCount);
  header >> kw_cut;
  if (kw_cut != "cut") reader.fail("expected 'cut'");
  const Weight cut =
      parse_int(header, reader, "cut", 0,
                std::numeric_limits<Weight>::max());

  Solution solution;
  solution.num_parts = static_cast<PartitionId>(parts);
  solution.cut = cut;
  solution.assignment.reserve(static_cast<std::size_t>(vertices));
  // One id per line is the canonical layout, but several per line are
  // accepted (the legacy reader consumed a plain token stream).
  std::istringstream ids;
  while (static_cast<std::int64_t>(solution.assignment.size()) < vertices) {
    std::string token;
    if (!(ids >> token)) {
      if (!reader.next(line)) {
        reader.fail("fewer part ids (" +
                    std::to_string(solution.assignment.size()) +
                    ") than vertices (" + std::to_string(vertices) + ")");
      }
      ids = std::istringstream(line);
      continue;
    }
    const std::int64_t p =
        parse_int_text(token, reader, "part id", 0, parts - 1);
    solution.assignment.push_back(static_cast<PartitionId>(p));
  }
  std::string extra;
  if (options.strict && (ids >> extra || reader.next(line))) {
    reader.fail("trailing content after " + std::to_string(vertices) +
                " part ids");
  }
  return solution;
}

Solution read_solution_file(const std::string& path,
                            const IoOptions& options) {
  auto in = open_in(path);
  return read_solution(in, options, path);
}

Solution read_solution_checked(std::istream& in, const Hypergraph& graph,
                               const IoOptions& options,
                               const std::string& source) {
  Solution solution = read_solution(in, options, source);
  if (static_cast<VertexId>(solution.assignment.size()) !=
      graph.num_vertices()) {
    throw util::InputError(
        source + ": solution vertex count " +
        std::to_string(solution.assignment.size()) +
        " does not match the hypergraph's " +
        std::to_string(graph.num_vertices()));
  }
  const Weight actual =
      solution_cut(graph, solution.assignment, solution.num_parts);
  if (actual != solution.cut) {
    throw util::InputError(source + ": recorded cut " +
                           std::to_string(solution.cut) +
                           " does not match actual cut " +
                           std::to_string(actual));
  }
  return solution;
}

Solution read_solution_file_checked(const std::string& path,
                                    const Hypergraph& graph,
                                    const IoOptions& options) {
  auto in = open_in(path);
  return read_solution_checked(in, graph, options, path);
}

}  // namespace fixedpart::hg
