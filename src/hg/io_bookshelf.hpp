#pragma once
// The self-contained benchmark format proposed in Sec. IV of the paper
// ("Toward benchmarks for the fixed-terminals regime"), realized as one
// text file (suffix .fpb). It provides every feature the paper requires:
//
//  * multiple partitions with per-partition, per-resource capacities
//    (absolute semantics) or a global relative tolerance (percentage
//    semantics) -- "flexible balance constraints represented using
//    absolute or relative (percentage) semantics";
//  * multi-balanced partitioning: each vertex carries k >= 1 resource
//    weights ("multi-area" extension), each partition a matching set of
//    capacities;
//  * terminal (pad) marking and zero-area fixed vertices;
//  * fixed vertices assigned to a *set* of partitions with OR semantics
//    ("fixed in more than one partition while still retaining their atomic
//    nature"), written as `p0|p2`.
//
// Grammar ('#' starts a comment; sections must appear in order):
//
//   FPB 1.0
//   resources <k>
//   vertices <N>
//   <name> <w_0> ... <w_{k-1}> [pad]          (N lines)
//   nets <M>
//   <weight> <degree> <name_1> ... <name_d>   (M lines)
//   partitions <P>
//   tolerance <pct>                            -- relative balance, or:
//   capacity <part> <resource> <min> <max>     -- any number of lines
//   fixed <F>
//   <name> <p>[|<p>...]                        (F lines)

#include <iosfwd>
#include <string>
#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "hg/io_common.hpp"

namespace fixedpart::hg {

/// Balance requirement as written in a benchmark file. Interpreted by
/// part::BalanceConstraint::from_spec.
struct BalanceSpec {
  struct Capacity {
    PartitionId part = 0;
    int resource = 0;
    Weight min = 0;
    Weight max = 0;
  };
  bool relative = true;
  /// Deviation from perfect balance allowed, in percent (relative mode).
  double tolerance_pct = 2.0;
  /// Absolute per-partition, per-resource capacity windows (absolute mode).
  std::vector<Capacity> capacities;
};

struct BenchmarkInstance {
  Hypergraph graph;
  FixedAssignment fixed{0, 2};
  PartitionId num_parts = 2;
  BalanceSpec balance;
  std::vector<std::string> names;  ///< per-vertex, unique
};

/// Failures throw ParseError with `source` (the path for the _file
/// variant) and line context. Strict mode additionally rejects duplicate
/// pins, degree mismatches and trailing tokens; lenient repairs them.
BenchmarkInstance read_fpb(std::istream& in, const IoOptions& options = {},
                           const std::string& source = "<fpb>");
BenchmarkInstance read_fpb_file(const std::string& path,
                                const IoOptions& options = {});
void write_fpb(std::ostream& out, const BenchmarkInstance& instance);
void write_fpb_file(const std::string& path,
                    const BenchmarkInstance& instance);

/// Default names v0, v1, ... used when an instance was built in memory.
std::vector<std::string> default_names(VertexId num_vertices);

}  // namespace fixedpart::hg
