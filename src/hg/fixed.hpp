#pragma once
// Fixed-vertex assignments. Section IV of the paper proposes benchmarks in
// which a terminal may be fixed into a *set* of partitions with OR
// semantics (e.g. "either left-side quadrant"); a classic fixed vertex is
// the singleton case and a free vertex allows every partition. We represent
// the allowed set as a bitmask, supporting up to 64 partitions.

#include <cstdint>
#include <vector>

#include "hg/types.hpp"

namespace fixedpart::hg {

class FixedAssignment {
 public:
  static constexpr int kMaxParts = 64;

  /// All vertices initially free (every partition allowed).
  FixedAssignment(VertexId num_vertices, PartitionId num_parts);

  PartitionId num_parts() const { return num_parts_; }
  VertexId num_vertices() const {
    return static_cast<VertexId>(allowed_.size());
  }

  /// Fix v into exactly partition p.
  void fix(VertexId v, PartitionId p);
  /// Restrict v to the partitions named in mask (OR semantics). The mask
  /// must be non-empty and within range.
  void restrict_to(VertexId v, std::uint64_t mask);
  /// Make v free again.
  void free(VertexId v);

  std::uint64_t allowed_mask(VertexId v) const { return allowed_[v]; }
  bool is_allowed(VertexId v, PartitionId p) const {
    return (allowed_[v] >> p) & 1U;
  }
  /// True if v cannot occupy every partition.
  bool is_restricted(VertexId v) const { return allowed_[v] != full_mask_; }
  /// True if v is pinned into a single partition.
  bool is_fixed(VertexId v) const;
  /// The single allowed partition, or kNoPartition if not singleton-fixed.
  PartitionId fixed_part(VertexId v) const;

  /// Number of singleton-fixed vertices.
  VertexId count_fixed() const;
  /// Number of vertices free to occupy every partition.
  VertexId count_free() const;

  std::uint64_t full_mask() const { return full_mask_; }

 private:
  void check_vertex(VertexId v) const;

  PartitionId num_parts_;
  std::uint64_t full_mask_;
  std::vector<std::uint64_t> allowed_;
};

}  // namespace fixedpart::hg
