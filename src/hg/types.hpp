#pragma once
// Fundamental identifier and weight types of the hypergraph libraries.

#include <cstdint>

namespace fixedpart::hg {

/// Vertex index, dense in [0, num_vertices).
using VertexId = std::int32_t;
/// Net (hyperedge) index, dense in [0, num_nets).
using NetId = std::int32_t;
/// Partition (block) index, dense in [0, num_parts).
using PartitionId = std::int32_t;
/// Vertex/net weight. Integral: the ISPD-98 benchmarks carry integer cell
/// areas, and integral arithmetic keeps incremental gain updates exact.
using Weight = std::int64_t;

/// Sentinel for "no partition assigned".
inline constexpr PartitionId kNoPartition = -1;
/// Sentinel for "no vertex".
inline constexpr VertexId kNoVertex = -1;

}  // namespace fixedpart::hg
