#pragma once
// Legacy ACM/SIGDA .netD/.are benchmark I/O — the format of the original
// partitioning benchmarks the paper's Section I discusses (and whose lack
// of fixed-vertex information motivated Section IV).
//
// .netD grammar (as used by the ISPD-98 suite):
//
//   0                       -- ignored legacy field
//   <num_pins>
//   <num_nets>
//   <num_modules>
//   <pad_offset>            -- cells are a0..a<pad_offset>,
//                              pads are p1..p<num_modules-pad_offset-1>
//   <module> <s|l> [I|O|B]  -- one line per pin; 's' starts a new net,
//                              'l' continues it; the direction is parsed
//                              and ignored (cut does not depend on it)
//
// .are: one "<module> <area>" line per module, any order.

#include <iosfwd>
#include <string>
#include <vector>

#include "hg/hypergraph.hpp"
#include "hg/io_common.hpp"

namespace fixedpart::hg {

struct NetDInstance {
  Hypergraph graph;
  /// Canonical module names (aN for cells, pN for pads), index-aligned
  /// with graph vertices: cells first, then pads.
  std::vector<std::string> names;
};

/// Reads a .netD netlist plus its .are area file. Failures throw
/// ParseError with source/line context. Duplicate pins of one module on a
/// net are format-normal and merged in both modes; strict mode rejects
/// trailing tokens, bad pin directions and duplicate .are entries.
NetDInstance read_netd(std::istream& net, std::istream& are,
                       const IoOptions& options = {},
                       const std::string& net_source = "<netD>",
                       const std::string& are_source = "<are>");
NetDInstance read_netd_files(const std::string& net_path,
                             const std::string& are_path,
                             const IoOptions& options = {});

/// Writes a hypergraph in .netD/.are form. Vertices flagged as pads are
/// emitted as pN modules; others as aN. Single-pin nets cannot be
/// represented (a net needs an 's' and at least one 'l' line is not
/// required, but a 1-pin net is written as a single 's' line, which the
/// reader accepts).
void write_netd(std::ostream& net, std::ostream& are, const Hypergraph& g);
void write_netd_files(const std::string& net_path,
                      const std::string& are_path, const Hypergraph& g);

}  // namespace fixedpart::hg
