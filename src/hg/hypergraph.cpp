#include "hg/hypergraph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace fixedpart::hg {

Hypergraph Hypergraph::from_csr(CsrArrays&& a) {
  Hypergraph g;
  g.num_vertices_ = a.num_vertices;
  g.num_nets_ = a.num_nets;
  g.num_resources_ = a.num_resources;
  g.net_offsets_ = std::move(a.net_offsets);
  g.net_pins_ = std::move(a.net_pins);
  g.vtx_offsets_ = std::move(a.vtx_offsets);
  g.vtx_nets_ = std::move(a.vtx_nets);
  g.net_weights_ = std::move(a.net_weights);
  g.weights_ = std::move(a.vertex_weights);
  g.pad_flags_ = std::move(a.pad_flags);

  if (a.num_pads >= 0) {
    g.num_pads_ = a.num_pads;
  } else {
    g.num_pads_ = 0;
    for (auto flag : g.pad_flags_) g.num_pads_ += flag;
  }

  if (!a.total_weights.empty()) {
    g.total_weights_ = std::move(a.total_weights);
  } else {
    g.total_weights_.assign(g.num_resources_, 0);
    for (VertexId v = 0; v < g.num_vertices_; ++v) {
      for (int r = 0; r < g.num_resources_; ++r) {
        g.total_weights_[r] += g.vertex_weight(v, r);
      }
    }
  }

  if (a.max_weighted_degree >= 0) {
    g.max_weighted_degree_ = a.max_weighted_degree;
  } else {
    g.max_weighted_degree_ = 0;
    for (VertexId v = 0; v < g.num_vertices_; ++v) {
      Weight wdeg = 0;
      for (NetId e : g.nets_of(v)) wdeg += g.net_weight(e);
      g.max_weighted_degree_ = std::max(g.max_weighted_degree_, wdeg);
    }
  }
  return g;
}

void Hypergraph::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::logic_error("Hypergraph::validate: " + msg);
  };
  if (static_cast<NetId>(net_offsets_.size()) != num_nets_ + 1) {
    fail("net offset array size");
  }
  if (static_cast<VertexId>(vtx_offsets_.size()) != num_vertices_ + 1) {
    fail("vertex offset array size");
  }
  if (net_offsets_.front() != 0 ||
      net_offsets_.back() != static_cast<std::int64_t>(net_pins_.size())) {
    fail("net offsets do not span pin array");
  }
  if (vtx_offsets_.front() != 0 ||
      vtx_offsets_.back() != static_cast<std::int64_t>(vtx_nets_.size())) {
    fail("vertex offsets do not span net array");
  }
  if (net_pins_.size() != vtx_nets_.size()) fail("pin count mismatch");

  for (NetId e = 0; e < num_nets_; ++e) {
    if (net_offsets_[e] > net_offsets_[e + 1]) fail("net offsets not sorted");
    if (net_weights_[e] < 0) fail("negative net weight");
    const auto ps = pins(e);
    for (std::size_t i = 0; i < ps.size(); ++i) {
      if (ps[i] < 0 || ps[i] >= num_vertices_) fail("pin out of range");
      if (i > 0 && ps[i - 1] >= ps[i]) fail("pins not sorted/unique");
    }
  }
  std::int64_t cross_checked = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (vtx_offsets_[v] > vtx_offsets_[v + 1]) fail("vtx offsets not sorted");
    for (int r = 0; r < num_resources_; ++r) {
      if (vertex_weight(v, r) < 0) fail("negative vertex weight");
    }
    for (NetId e : nets_of(v)) {
      if (e < 0 || e >= num_nets_) fail("incident net out of range");
      const auto ps = pins(e);
      if (!std::binary_search(ps.begin(), ps.end(), v)) {
        fail("incidence not symmetric");
      }
      ++cross_checked;
    }
  }
  if (cross_checked != static_cast<std::int64_t>(net_pins_.size())) {
    fail("transpose pin count mismatch");
  }
}

}  // namespace fixedpart::hg
