#include "hg/stats.hpp"

#include <algorithm>

namespace fixedpart::hg {

InstanceStats compute_stats(const Hypergraph& g) {
  InstanceStats s;
  s.num_pads = g.num_pads();
  s.num_cells = g.num_vertices() - g.num_pads();
  s.num_nets = g.num_nets();
  s.num_pins = g.num_pins();

  std::int64_t cell_pin_count = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.is_pad(v)) continue;
    const Weight area = g.vertex_weight(v);
    s.total_cell_area += area;
    s.max_cell_area = std::max(s.max_cell_area, area);
    cell_pin_count += g.degree(v);
  }
  for (NetId e = 0; e < g.num_nets(); ++e) {
    bool external = false;
    for (VertexId v : g.pins(e)) {
      if (g.is_pad(v)) {
        external = true;
        break;
      }
    }
    if (external) ++s.num_external_nets;
  }
  if (s.total_cell_area > 0) {
    s.max_cell_area_pct = 100.0 * static_cast<double>(s.max_cell_area) /
                          static_cast<double>(s.total_cell_area);
  }
  if (s.num_nets > 0) {
    s.avg_net_degree =
        static_cast<double>(s.num_pins) / static_cast<double>(s.num_nets);
  }
  if (s.num_cells > 0) {
    s.avg_cell_degree =
        static_cast<double>(cell_pin_count) / static_cast<double>(s.num_cells);
  }
  return s;
}

std::vector<std::int64_t> net_size_histogram(const Hypergraph& g, int cap) {
  std::vector<std::int64_t> hist(static_cast<std::size_t>(cap) + 1, 0);
  for (NetId e = 0; e < g.num_nets(); ++e) {
    // Clamp in 64 bits *before* using the size as a bucket index; the old
    // int-typed min() truncated first and clamped second.
    const std::int64_t d =
        std::min(g.net_size(e), static_cast<std::int64_t>(cap));
    ++hist[static_cast<std::size_t>(d)];
  }
  return hist;
}

}  // namespace fixedpart::hg
