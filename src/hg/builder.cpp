#include "hg/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace fixedpart::hg {

HypergraphBuilder::HypergraphBuilder(int num_resources)
    : num_resources_(num_resources) {
  if (num_resources < 1) {
    throw std::invalid_argument("HypergraphBuilder: num_resources < 1");
  }
}

VertexId HypergraphBuilder::add_vertex(std::span<const Weight> weights,
                                       bool is_pad) {
  if (static_cast<int>(weights.size()) != num_resources_) {
    throw std::invalid_argument("add_vertex: wrong resource count");
  }
  for (Weight w : weights) {
    if (w < 0) throw std::invalid_argument("add_vertex: negative weight");
  }
  weights_.insert(weights_.end(), weights.begin(), weights.end());
  pad_flags_.push_back(is_pad ? 1 : 0);
  return static_cast<VertexId>(pad_flags_.size()) - 1;
}

VertexId HypergraphBuilder::add_vertex(Weight area, bool is_pad) {
  if (num_resources_ != 1) {
    throw std::invalid_argument(
        "add_vertex(area): builder has multiple resources");
  }
  return add_vertex(std::span<const Weight>{&area, 1}, is_pad);
}

NetId HypergraphBuilder::add_net(std::span<const VertexId> pins,
                                 Weight weight) {
  if (weight < 0) throw std::invalid_argument("add_net: negative weight");
  const auto vertex_count = num_vertices();
  std::vector<VertexId> unique(pins.begin(), pins.end());
  for (VertexId v : unique) {
    if (v < 0 || v >= vertex_count) {
      throw std::out_of_range("add_net: pin out of range");
    }
  }
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  net_pins_.insert(net_pins_.end(), unique.begin(), unique.end());
  net_offsets_.push_back(static_cast<std::int64_t>(net_pins_.size()));
  net_weights_.push_back(weight);
  return static_cast<NetId>(net_weights_.size()) - 1;
}

Hypergraph HypergraphBuilder::build() {
  Hypergraph g;
  g.num_vertices_ = num_vertices();
  g.num_nets_ = num_nets();
  g.num_resources_ = num_resources_;
  g.net_offsets_ = std::move(net_offsets_);
  g.net_pins_ = std::move(net_pins_);
  g.net_weights_ = std::move(net_weights_);
  g.weights_ = std::move(weights_);
  g.pad_flags_ = std::move(pad_flags_);

  g.num_pads_ = 0;
  for (auto flag : g.pad_flags_) g.num_pads_ += flag;

  g.total_weights_.assign(g.num_resources_, 0);
  for (VertexId v = 0; v < g.num_vertices_; ++v) {
    for (int r = 0; r < g.num_resources_; ++r) {
      g.total_weights_[r] += g.vertex_weight(v, r);
    }
  }

  // Transpose: nets-of-vertex CSR.
  g.vtx_offsets_.assign(static_cast<std::size_t>(g.num_vertices_) + 1, 0);
  for (NetId e = 0; e < g.num_nets_; ++e) {
    for (VertexId v : g.pins(e)) ++g.vtx_offsets_[v + 1];
  }
  for (VertexId v = 0; v < g.num_vertices_; ++v) {
    g.vtx_offsets_[v + 1] += g.vtx_offsets_[v];
  }
  g.vtx_nets_.resize(g.net_pins_.size());
  std::vector<std::int64_t> cursor(g.vtx_offsets_.begin(),
                                   g.vtx_offsets_.end() - 1);
  for (NetId e = 0; e < g.num_nets_; ++e) {
    for (VertexId v : g.pins(e)) g.vtx_nets_[cursor[v]++] = e;
  }

  g.max_weighted_degree_ = 0;
  for (VertexId v = 0; v < g.num_vertices_; ++v) {
    Weight wdeg = 0;
    for (NetId e : g.nets_of(v)) wdeg += g.net_weight(e);
    g.max_weighted_degree_ = std::max(g.max_weighted_degree_, wdeg);
  }

  // Reset the builder to a reusable empty state.
  num_resources_ = g.num_resources_;
  weights_.clear();
  pad_flags_.clear();
  net_offsets_ = {0};
  net_pins_.clear();
  net_weights_.clear();
  return g;
}

}  // namespace fixedpart::hg
