#include "hg/builder.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace fixedpart::hg {

HypergraphBuilder::HypergraphBuilder(int num_resources)
    : num_resources_(num_resources) {
  if (num_resources < 1) {
    throw std::invalid_argument("HypergraphBuilder: num_resources < 1");
  }
}

void HypergraphBuilder::reserve(std::int64_t num_vertices,
                                std::int64_t num_nets,
                                std::int64_t num_pins) {
  constexpr std::int64_t kMaxId = std::numeric_limits<VertexId>::max();
  if (num_vertices < 0 || num_vertices > kMaxId) {
    throw std::invalid_argument("reserve: vertex count exceeds id range");
  }
  if (num_nets < 0 || num_nets > kMaxId) {
    throw std::invalid_argument("reserve: net count exceeds id range");
  }
  if (num_pins < 0) {
    throw std::invalid_argument("reserve: negative pin count");
  }
  weights_.reserve(static_cast<std::size_t>(num_vertices) *
                   static_cast<std::size_t>(num_resources_));
  pad_flags_.reserve(static_cast<std::size_t>(num_vertices));
  net_offsets_.reserve(static_cast<std::size_t>(num_nets) + 1);
  net_weights_.reserve(static_cast<std::size_t>(num_nets));
  net_pins_.reserve(static_cast<std::size_t>(num_pins));
}

VertexId HypergraphBuilder::add_vertex(std::span<const Weight> weights,
                                       bool is_pad) {
  if (static_cast<int>(weights.size()) != num_resources_) {
    throw std::invalid_argument("add_vertex: wrong resource count");
  }
  if (pad_flags_.size() >=
      static_cast<std::size_t>(std::numeric_limits<VertexId>::max())) {
    throw std::length_error("add_vertex: vertex count exceeds id range");
  }
  for (Weight w : weights) {
    if (w < 0) throw std::invalid_argument("add_vertex: negative weight");
  }
  weights_.insert(weights_.end(), weights.begin(), weights.end());
  pad_flags_.push_back(is_pad ? 1 : 0);
  return static_cast<VertexId>(pad_flags_.size()) - 1;
}

VertexId HypergraphBuilder::add_vertex(Weight area, bool is_pad) {
  if (num_resources_ != 1) {
    throw std::invalid_argument(
        "add_vertex(area): builder has multiple resources");
  }
  return add_vertex(std::span<const Weight>{&area, 1}, is_pad);
}

NetId HypergraphBuilder::add_net(std::span<const VertexId> pins,
                                 Weight weight) {
  if (weight < 0) throw std::invalid_argument("add_net: negative weight");
  if (net_weights_.size() >=
      static_cast<std::size_t>(std::numeric_limits<NetId>::max())) {
    throw std::length_error("add_net: net count exceeds id range");
  }
  const auto vertex_count = num_vertices();
  dedup_.assign(pins.begin(), pins.end());
  for (VertexId v : dedup_) {
    if (v < 0 || v >= vertex_count) {
      throw std::out_of_range("add_net: pin out of range");
    }
  }
  std::sort(dedup_.begin(), dedup_.end());
  dedup_.erase(std::unique(dedup_.begin(), dedup_.end()), dedup_.end());
  net_pins_.insert(net_pins_.end(), dedup_.begin(), dedup_.end());
  net_offsets_.push_back(static_cast<std::int64_t>(net_pins_.size()));
  net_weights_.push_back(weight);
  return static_cast<NetId>(net_weights_.size()) - 1;
}

Hypergraph HypergraphBuilder::build() {
  Hypergraph g;
  g.num_vertices_ = num_vertices();
  g.num_nets_ = num_nets();
  g.num_resources_ = num_resources_;
  g.net_offsets_ = std::move(net_offsets_);
  g.net_pins_ = std::move(net_pins_);
  g.net_weights_ = std::move(net_weights_);
  g.weights_ = std::move(weights_);
  g.pad_flags_ = std::move(pad_flags_);

  g.num_pads_ = 0;
  for (auto flag : g.pad_flags_) g.num_pads_ += flag;

  g.total_weights_.assign(g.num_resources_, 0);
  for (VertexId v = 0; v < g.num_vertices_; ++v) {
    for (int r = 0; r < g.num_resources_; ++r) {
      g.total_weights_[r] += g.vertex_weight(v, r);
    }
  }

  // Transpose: nets-of-vertex CSR.
  g.vtx_offsets_.assign(static_cast<std::size_t>(g.num_vertices_) + 1, 0);
  for (NetId e = 0; e < g.num_nets_; ++e) {
    for (VertexId v : g.pins(e)) ++g.vtx_offsets_[v + 1];
  }
  for (VertexId v = 0; v < g.num_vertices_; ++v) {
    g.vtx_offsets_[v + 1] += g.vtx_offsets_[v];
  }
  g.vtx_nets_.resize(g.net_pins_.size());
  std::vector<std::int64_t> cursor(g.vtx_offsets_.begin(),
                                   g.vtx_offsets_.end() - 1);
  for (NetId e = 0; e < g.num_nets_; ++e) {
    for (VertexId v : g.pins(e)) g.vtx_nets_[cursor[v]++] = e;
  }

  g.max_weighted_degree_ = 0;
  for (VertexId v = 0; v < g.num_vertices_; ++v) {
    Weight wdeg = 0;
    for (NetId e : g.nets_of(v)) wdeg += g.net_weight(e);
    g.max_weighted_degree_ = std::max(g.max_weighted_degree_, wdeg);
  }

  // Reset the builder to a reusable empty state.
  num_resources_ = g.num_resources_;
  weights_.clear();
  pad_flags_.clear();
  net_offsets_ = {0};
  net_pins_.clear();
  net_weights_.clear();
  return g;
}

}  // namespace fixedpart::hg
