#pragma once
// hMETIS-compatible I/O.
//
// .hgr format: first line "num_nets num_vertices [fmt]" where fmt is
//   omitted/0 (unweighted), 1 (net weights), 10 (vertex weights) or
//   11 (both). One line per net follows (optionally starting with the net
//   weight), with 1-indexed vertex ids; then, if vertex weights are
//   present, one weight per line. '%' starts a comment line.
//
// Fix file (hMETIS -fixed file): one line per vertex containing the
// partition the vertex is fixed into, or -1 for a free vertex.

#include <iosfwd>
#include <string>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "hg/io_common.hpp"

namespace fixedpart::hg {

/// Failures throw ParseError with `source` (the path for the _file
/// variants) and line context. Strict mode additionally rejects duplicate
/// pins, trailing tokens and trailing content; lenient repairs them.
Hypergraph read_hmetis(std::istream& in, const IoOptions& options = {},
                       const std::string& source = "<hgr>");
Hypergraph read_hmetis_file(const std::string& path,
                            const IoOptions& options = {});
void write_hmetis(std::ostream& out, const Hypergraph& g);
void write_hmetis_file(const std::string& path, const Hypergraph& g);

FixedAssignment read_fix(std::istream& in, VertexId num_vertices,
                         PartitionId num_parts, const IoOptions& options = {},
                         const std::string& source = "<fix>");
FixedAssignment read_fix_file(const std::string& path, VertexId num_vertices,
                              PartitionId num_parts,
                              const IoOptions& options = {});
void write_fix(std::ostream& out, const FixedAssignment& fixed);
void write_fix_file(const std::string& path, const FixedAssignment& fixed);

}  // namespace fixedpart::hg
