#include "svc/job.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>

namespace fixedpart::svc {

namespace {

// --- JSON emission -------------------------------------------------------

void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string format_double(double value) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << value;
  return out.str();
}

class LineBuilder {
 public:
  void field(const char* key, const std::string& value) {
    prefix(key);
    append_escaped(out_, value);
  }
  void field(const char* key, const char* value) {
    field(key, std::string(value));
  }
  void raw_field(const char* key, const std::string& raw) {
    prefix(key);
    out_ += raw;
  }
  void field(const char* key, std::int64_t value) {
    raw_field(key, std::to_string(value));
  }
  void field(const char* key, std::uint64_t value) {
    raw_field(key, std::to_string(value));
  }
  void field(const char* key, int value) {
    raw_field(key, std::to_string(value));
  }
  void field(const char* key, double value) {
    raw_field(key, format_double(value));
  }
  void field(const char* key, bool value) {
    raw_field(key, value ? "true" : "false");
  }
  std::string finish() { return out_ + "}"; }

 private:
  void prefix(const char* key) {
    out_ += first_ ? "{\"" : ", \"";
    first_ = false;
    out_ += key;
    out_ += "\": ";
  }
  std::string out_;
  bool first_ = true;
};

// --- flat-object parsing -------------------------------------------------

/// Scans a single-line flat JSON object {"key": value, ...} where values
/// are strings, numbers or booleans (no nesting). Every syntax failure
/// goes through `at.fail`, so diagnostics carry source:line context.
class FlatObject {
 public:
  FlatObject(const std::string& line, const hg::LineReader& at) : at_(at) {
    std::size_t pos = 0;
    skip_ws(line, pos);
    if (pos >= line.size() || line[pos] != '{') at_.fail("expected '{'");
    ++pos;
    skip_ws(line, pos);
    if (pos < line.size() && line[pos] == '}') {
      ++pos;
    } else {
      while (true) {
        const std::string key = parse_string(line, pos);
        skip_ws(line, pos);
        if (pos >= line.size() || line[pos] != ':') {
          at_.fail("expected ':' after key \"" + key + "\"");
        }
        ++pos;
        skip_ws(line, pos);
        if (!fields_.emplace(key, parse_value(line, pos)).second) {
          at_.fail("duplicate key \"" + key + "\"");
        }
        skip_ws(line, pos);
        if (pos < line.size() && line[pos] == ',') {
          ++pos;
          skip_ws(line, pos);
          continue;
        }
        if (pos < line.size() && line[pos] == '}') {
          ++pos;
          break;
        }
        at_.fail("expected ',' or '}' in object");
      }
    }
    skip_ws(line, pos);
    if (pos != line.size()) at_.fail("trailing content after object");
  }

  bool has(const char* key) const { return fields_.count(key) != 0; }

  std::string get_string(const char* key, const std::string& def) const {
    const auto it = fields_.find(key);
    return it == fields_.end() ? def : it->second;
  }

  std::string require_string(const char* key) const {
    const auto it = fields_.find(key);
    if (it == fields_.end()) {
      at_.fail(std::string("missing required field \"") + key + "\"");
    }
    return it->second;
  }

  std::int64_t get_int(const char* key, std::int64_t def, std::int64_t min,
                       std::int64_t max) const {
    const auto it = fields_.find(key);
    if (it == fields_.end()) return def;
    return hg::parse_int_text(it->second, at_, key, min, max);
  }

  std::uint64_t get_uint64(const char* key, std::uint64_t def) const {
    const auto it = fields_.find(key);
    if (it == fields_.end()) return def;
    const std::string& text = it->second;
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      at_.fail(std::string(key) + ": not an unsigned integer: " + text);
    }
    return value;
  }

  double get_double(const char* key, double def) const {
    const auto it = fields_.find(key);
    if (it == fields_.end()) return def;
    try {
      std::size_t used = 0;
      const double value = std::stod(it->second, &used);
      if (used != it->second.size()) throw std::invalid_argument("trailing");
      return value;
    } catch (const std::exception&) {
      at_.fail(std::string(key) + ": not a number: " + it->second);
    }
  }

  bool get_bool(const char* key, bool def) const {
    const auto it = fields_.find(key);
    if (it == fields_.end()) return def;
    if (it->second == "true") return true;
    if (it->second == "false") return false;
    at_.fail(std::string(key) + ": not a boolean: " + it->second);
  }

 private:
  static void skip_ws(const std::string& line, std::size_t& pos) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
  }

  std::string parse_string(const std::string& line, std::size_t& pos) const {
    if (pos >= line.size() || line[pos] != '"') at_.fail("expected '\"'");
    ++pos;
    std::string out;
    while (pos < line.size() && line[pos] != '"') {
      char c = line[pos++];
      if (c == '\\') {
        if (pos >= line.size()) at_.fail("unterminated escape");
        const char esc = line[pos++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: at_.fail(std::string("unsupported escape \\") + esc);
        }
      }
      out += c;
    }
    if (pos >= line.size()) at_.fail("unterminated string");
    ++pos;  // closing quote
    return out;
  }

  /// Strings come back unescaped; numbers/booleans come back as the raw
  /// token text (validated on typed access).
  std::string parse_value(const std::string& line, std::size_t& pos) const {
    if (pos < line.size() && line[pos] == '"') {
      return parse_string(line, pos);
    }
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ',' && line[pos] != '}' &&
           !std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    if (pos == start) at_.fail("expected a value");
    return line.substr(start, pos - start);
  }

  const hg::LineReader& at_;
  std::map<std::string, std::string> fields_;
};

void validate_spec(const JobSpec& spec, const hg::LineReader& at) {
  if (spec.id.empty()) at.fail("job id must be non-empty");
  if (spec.scale != "smoke" && spec.scale != "default" &&
      spec.scale != "paper") {
    at.fail("scale must be smoke|default|paper, got \"" + spec.scale + "\"");
  }
  if (spec.regime != "free" && spec.regime != "good" &&
      spec.regime != "rand") {
    at.fail("regime must be free|good|rand, got \"" + spec.regime + "\"");
  }
  if (spec.instance.empty() && (spec.circuit < 1 || spec.circuit > 5)) {
    at.fail("circuit must be in 1..5 for generated instances");
  }
  if (spec.fixed_pct < 0.0 || spec.fixed_pct > 100.0) {
    at.fail("fixed_pct must be in [0, 100]");
  }
  if (spec.budget_seconds < 0.0) at.fail("budget_seconds must be >= 0");
  if (spec.tolerance_pct < 0.0) at.fail("tolerance_pct must be >= 0");
  if (spec.threads_per_job < 1) at.fail("threads_per_job must be >= 1");
}

}  // namespace

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kTruncated: return "truncated";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kPoisoned: return "poisoned";
  }
  return "unknown";
}

const char* to_string(ErrorClass error) {
  switch (error) {
    case ErrorClass::kNone: return "none";
    case ErrorClass::kTransient: return "transient";
    case ErrorClass::kInput: return "input";
    case ErrorClass::kInfeasible: return "infeasible";
    case ErrorClass::kInternal: return "internal";
    case ErrorClass::kCrash: return "crash";
  }
  return "unknown";
}

JobStatus job_status_from_string(const std::string& text) {
  if (text == "ok") return JobStatus::kOk;
  if (text == "truncated") return JobStatus::kTruncated;
  if (text == "failed") return JobStatus::kFailed;
  if (text == "poisoned") return JobStatus::kPoisoned;
  throw util::InputError("unknown job status: " + text);
}

ErrorClass error_class_from_string(const std::string& text) {
  if (text == "none") return ErrorClass::kNone;
  if (text == "transient") return ErrorClass::kTransient;
  if (text == "input") return ErrorClass::kInput;
  if (text == "infeasible") return ErrorClass::kInfeasible;
  if (text == "internal") return ErrorClass::kInternal;
  if (text == "crash") return ErrorClass::kCrash;
  throw util::InputError("unknown error class: " + text);
}

std::string to_json_line(const JobSpec& spec) {
  LineBuilder out;
  out.field("id", spec.id);
  if (!spec.instance.empty()) {
    out.field("instance", spec.instance);
  } else {
    out.field("circuit", spec.circuit);
    out.field("scale", spec.scale);
  }
  out.field("regime", spec.regime);
  out.field("fixed_pct", spec.fixed_pct);
  out.field("starts", spec.starts);
  out.field("threads_per_job", spec.threads_per_job);
  out.field("seed", spec.seed);
  out.field("tolerance_pct", spec.tolerance_pct);
  out.field("budget_seconds", spec.budget_seconds);
  out.field("preflight", spec.preflight);
  return out.finish();
}

namespace {

std::string outcome_json(const JobOutcome& outcome, bool with_timing) {
  LineBuilder out;
  out.field("id", outcome.id);
  out.field("status", to_string(outcome.status));
  out.field("error", to_string(outcome.error));
  if (!outcome.message.empty()) out.field("message", outcome.message);
  out.field("attempts", outcome.attempts);
  out.field("cut", static_cast<std::int64_t>(outcome.cut));
  out.field("truncated", outcome.truncated);
  out.field("moves", outcome.moves);
  out.field("passes", outcome.passes);
  if (with_timing) {
    out.field("seconds", outcome.seconds);
    // Phase attribution rides with the other timing field; omitted when
    // all-zero (OBS=OFF builds, failed jobs, pre-tracing journals) so
    // old golden lines stay byte-identical.
    if (outcome.coarsen_seconds > 0.0 || outcome.initial_seconds > 0.0 ||
        outcome.refine_seconds > 0.0) {
      out.field("coarsen_seconds", outcome.coarsen_seconds);
      out.field("initial_seconds", outcome.initial_seconds);
      out.field("refine_seconds", outcome.refine_seconds);
    }
  }
  return out.finish();
}

}  // namespace

std::string to_json_line(const JobOutcome& outcome) {
  return outcome_json(outcome, /*with_timing=*/true);
}

std::string to_canonical_json_line(const JobOutcome& outcome) {
  return outcome_json(outcome, /*with_timing=*/false);
}

JobSpec job_spec_from_json(const std::string& line,
                           const hg::LineReader& at) {
  const FlatObject obj(line, at);
  JobSpec spec;
  spec.id = obj.require_string("id");
  spec.instance = obj.get_string("instance", "");
  spec.circuit = static_cast<int>(obj.get_int("circuit", spec.circuit, 1, 5));
  spec.scale = obj.get_string("scale", spec.scale);
  spec.regime = obj.get_string("regime", spec.regime);
  spec.fixed_pct = obj.get_double("fixed_pct", spec.fixed_pct);
  spec.starts =
      static_cast<int>(obj.get_int("starts", spec.starts, 1, 1 << 20));
  spec.threads_per_job = static_cast<int>(
      obj.get_int("threads_per_job", spec.threads_per_job, 1, 1 << 10));
  spec.seed = obj.get_uint64("seed", spec.seed);
  spec.tolerance_pct = obj.get_double("tolerance_pct", spec.tolerance_pct);
  spec.budget_seconds = obj.get_double("budget_seconds", spec.budget_seconds);
  spec.preflight = obj.get_bool("preflight", spec.preflight);
  validate_spec(spec, at);
  return spec;
}

JobOutcome job_outcome_from_json(const std::string& line,
                                 const hg::LineReader& at) {
  const FlatObject obj(line, at);
  JobOutcome outcome;
  outcome.id = obj.require_string("id");
  try {
    outcome.status = job_status_from_string(obj.require_string("status"));
    outcome.error = error_class_from_string(obj.get_string("error", "none"));
  } catch (const util::InputError& error) {
    at.fail(error.what());
  }
  outcome.message = obj.get_string("message", "");
  outcome.attempts =
      static_cast<int>(obj.get_int("attempts", 1, 1, 1 << 20));
  outcome.cut = static_cast<Weight>(obj.get_int(
      "cut", 0, std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()));
  outcome.truncated = obj.get_bool("truncated", false);
  // Absent in journals written before these fields existed; default 0.
  outcome.moves = obj.get_int("moves", 0, 0,
                              std::numeric_limits<std::int64_t>::max());
  outcome.passes = obj.get_int("passes", 0, 0,
                               std::numeric_limits<std::int64_t>::max());
  outcome.seconds = obj.get_double("seconds", 0.0);
  outcome.coarsen_seconds = obj.get_double("coarsen_seconds", 0.0);
  outcome.initial_seconds = obj.get_double("initial_seconds", 0.0);
  outcome.refine_seconds = obj.get_double("refine_seconds", 0.0);
  if (outcome.id.empty()) at.fail("outcome id must be non-empty");
  return outcome;
}

std::vector<JobSpec> load_manifest(std::istream& in,
                                   const std::string& source) {
  hg::LineReader reader(in, source, '#');
  std::vector<JobSpec> manifest;
  std::set<std::string> seen;
  std::string line;
  while (reader.next(line)) {
    JobSpec spec = job_spec_from_json(line, reader);
    if (!seen.insert(spec.id).second) {
      reader.fail("duplicate job id \"" + spec.id + "\"");
    }
    manifest.push_back(std::move(spec));
  }
  return manifest;
}

std::vector<JobSpec> load_manifest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::InputError("manifest: cannot read " + path);
  return load_manifest(in, path);
}

}  // namespace fixedpart::svc
