#include "svc/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <set>
#include <sstream>
#include <thread>

#include "gen/netlist_gen.hpp"
#include "gen/regimes.hpp"
#include "gen/suite.hpp"
#include "hg/io_binary.hpp"
#include "hg/io_bookshelf.hpp"
#include "hg/io_hmetis.hpp"
#include "ml/multilevel.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "part/balance.hpp"
#include "util/errors.hpp"
#include "util/timer.hpp"

namespace fixedpart::svc {

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Retry delay before attempt `next_attempt` (2-based): exponential in the
/// retry index with a deterministic multiplicative jitter from the job id,
/// so a rerun of the same manifest backs off identically.
double backoff_seconds(const RetryPolicy& retry, const std::string& id,
                       int next_attempt) {
  const int retries_done = next_attempt - 2;  // 0 for the first retry
  double delay = retry.backoff_base_seconds *
                 std::ldexp(1.0, std::min(retries_done, 30));
  delay = std::min(delay, retry.backoff_cap_seconds);
  const std::uint64_t bits =
      splitmix64(fnv1a(id) ^ static_cast<std::uint64_t>(next_attempt));
  const double unit = static_cast<double>(bits >> 11) * 0x1.0p-53;
  return delay * (1.0 + retry.jitter_fraction * unit);
}

}  // namespace

JobOutcome run_supervised_job(const JobRunner& runner, const JobSpec& spec,
                              const RetryPolicy& retry, AttemptSlot& slot,
                              const SupervisedHooks& hooks) {
  const auto stop_retrying = [&] {
    return hooks.stop_retrying && hooks.stop_retrying();
  };
  const auto sleep_for = [&](double seconds) {
    if (hooks.sleep_fn) {
      hooks.sleep_fn(seconds);
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    }
  };

  JobOutcome out;
  out.id = spec.id;
  // Per-job trace attribution around the whole attempt loop: every span
  // recorded on this thread (engine spans in thread mode, svc.job_attempt
  // always, worker spans merged by ProcessPool::attempt in process mode)
  // lands in `spans`, tagged with the job's deterministic trace id.
  std::shared_ptr<obs::SpanBuffer> spans = hooks.spans;
  if (obs::kEnabled && spans == nullptr) {
    spans = std::make_shared<obs::SpanBuffer>();
  }
  obs::ScopedTraceContext trace_ctx(obs::trace_id_for(spec.id), spans.get());
  const auto finalize = [&spans](JobOutcome& outcome) {
    if (spans != nullptr) {
      const obs::PhaseBreakdown phases = obs::phase_breakdown(spans->events());
      outcome.coarsen_seconds = phases.coarsen_seconds;
      outcome.initial_seconds = phases.initial_seconds;
      outcome.refine_seconds = phases.refine_seconds;
    }
  };
  util::Timer total;
  std::optional<JobResult> best;  // best successful attempt so far
  for (int attempt = 1;; ++attempt) {
    out.attempts = attempt;
    slot.cancel.store(false, std::memory_order_release);
    slot.start_ms.store(steady_ms(), std::memory_order_release);
    slot.busy.store(true, std::memory_order_release);
    util::Deadline deadline =
        spec.budget_seconds > 0.0
            ? util::Deadline::after_seconds(spec.budget_seconds)
            : util::Deadline();
    deadline.set_cancel_flag(&slot.cancel);
    ErrorClass error = ErrorClass::kNone;
    bool crash_poisoned = false;
    std::string message;
    JobResult result;
    try {
      obs::ScopedSpan span("svc.job_attempt");
      span.arg("attempt", static_cast<std::int64_t>(attempt));
      if (hooks.fault_hook) hooks.fault_hook(spec, attempt);
      result = runner(spec, deadline);
    } catch (const util::InputError& e) {
      error = ErrorClass::kInput;
      message = e.what();
    } catch (const util::InfeasibleError& e) {
      error = ErrorClass::kInfeasible;
      message = e.what();
    } catch (const WorkerPoisonedError& e) {
      // Circuit breaker: this job has crashed enough workers; fail it
      // permanently as failed(crash) instead of retrying forever.
      error = ErrorClass::kCrash;
      crash_poisoned = true;
      message = e.what();
    } catch (const WorkerCrashError& e) {
      // Ordered before TransientError (its base): keep the crash class on
      // the outcome while retrying it through the transient path.
      error = ErrorClass::kCrash;
      message = e.what();
    } catch (const TransientError& e) {
      error = ErrorClass::kTransient;
      message = e.what();
    } catch (const std::bad_alloc&) {
      error = ErrorClass::kTransient;
      message = "out of memory";
    } catch (const std::exception& e) {
      error = ErrorClass::kInternal;
      message = e.what();
    } catch (...) {
      error = ErrorClass::kInternal;
      message = "unknown exception";
    }
    slot.busy.store(false, std::memory_order_release);

    if (error == ErrorClass::kNone) {
      if (!best.has_value() || (!result.truncated && best->truncated) ||
          (result.truncated == best->truncated && result.cut < best->cut)) {
        best = result;
      }
      const bool want_retry = result.truncated && retry.retry_truncated &&
                              attempt < retry.max_attempts &&
                              !stop_retrying();
      if (!want_retry) break;
    } else if (error == ErrorClass::kInput ||
               error == ErrorClass::kInfeasible || crash_poisoned) {
      out.status = JobStatus::kFailed;
      out.error = error;
      out.message = message;
      out.seconds = total.seconds();
      finalize(out);
      return out;
    } else {
      // Transient / internal: poisoned once attempts run out (unless an
      // earlier attempt already produced a usable truncated result).
      if (attempt >= retry.max_attempts || stop_retrying()) {
        if (!best.has_value()) {
          out.status = JobStatus::kPoisoned;
          out.error = error;
          out.message = message;
          out.seconds = total.seconds();
          finalize(out);
          return out;
        }
        break;
      }
    }
    obs::log_warn("svc", "job attempt unsuccessful; backing off",
                  {{"id", spec.id},
                   {"attempt", attempt},
                   {"error", error == ErrorClass::kNone ? "truncated"
                                                        : to_string(error)},
                   {"message", message}});
    sleep_for(backoff_seconds(retry, spec.id, attempt + 1));
  }
  out.status = best->truncated ? JobStatus::kTruncated : JobStatus::kOk;
  out.error = ErrorClass::kNone;
  out.cut = best->cut;
  out.truncated = best->truncated;
  out.moves = best->moves;
  out.passes = best->passes;
  out.seconds = total.seconds();
  finalize(out);
  return out;
}

void FleetProgress::begin(std::int64_t total, std::int64_t resumed,
                          int workers) {
  std::lock_guard<std::mutex> lock(mu_);
  total_ = total;
  done_ = resumed;
  ok_ = truncated_ = failed_ = poisoned_ = 0;
  resumed_ = resumed;
  workers_ = std::max(workers, 1);
  seconds_ = util::RunningStat();
  has_best_ = false;
  best_cut_ = 0;
}

void FleetProgress::record(const JobOutcome& outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  ++done_;
  switch (outcome.status) {
    case JobStatus::kOk: ++ok_; break;
    case JobStatus::kTruncated: ++truncated_; break;
    case JobStatus::kFailed: ++failed_; break;
    case JobStatus::kPoisoned: ++poisoned_; break;
  }
  seconds_.add(outcome.seconds);
  if (outcome.status == JobStatus::kOk ||
      outcome.status == JobStatus::kTruncated) {
    if (!has_best_ || outcome.cut < best_cut_) {
      has_best_ = true;
      best_cut_ = outcome.cut;
    }
  }
}

std::int64_t FleetProgress::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::int64_t FleetProgress::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

std::string FleetProgress::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  const double mean = seconds_.empty() ? 0.0 : seconds_.mean();
  const std::int64_t remaining = std::max<std::int64_t>(total_ - done_, 0);
  const double eta =
      mean * static_cast<double>(remaining) / static_cast<double>(workers_);
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  out << "{\"total\": " << total_ << ", \"done\": " << done_
      << ", \"ok\": " << ok_ << ", \"truncated\": " << truncated_
      << ", \"failed\": " << failed_ << ", \"poisoned\": " << poisoned_
      << ", \"resumed\": " << resumed_ << ", \"workers\": " << workers_
      << ", \"mean_job_seconds\": " << mean << ", \"eta_seconds\": " << eta
      << ", \"best_cut\": ";
  if (has_best_) {
    out << best_cut_;
  } else {
    out << "null";
  }
  out << "}\n";
  return out.str();
}

int BatchReport::exit_code() const {
  if (poisoned > 0 || !complete()) return util::kExitInternal;
  if (failed > 0) {
    for (const JobOutcome& outcome : outcomes) {
      if (outcome.status == JobStatus::kFailed &&
          outcome.error == ErrorClass::kInput) {
        return util::kExitInput;
      }
    }
    return util::kExitInfeasible;
  }
  return util::kExitOk;
}

std::string BatchReport::summary() const {
  std::ostringstream out;
  out << "ok=" << ok << " truncated=" << truncated << " failed=" << failed
      << " poisoned=" << poisoned << " retried=" << retried
      << " resumed=" << resumed << " abandoned=" << abandoned;
  if (drained) out << " (drained)";
  return out.str();
}

BatchExecutor::BatchExecutor(JobRunner runner, ExecutorConfig config)
    : runner_(std::move(runner)), config_(std::move(config)) {
  if (!runner_) throw std::invalid_argument("BatchExecutor: null runner");
  if (config_.workers < 1) {
    throw std::invalid_argument("BatchExecutor: workers < 1");
  }
  if (config_.retry.max_attempts < 1) {
    throw std::invalid_argument("BatchExecutor: max_attempts < 1");
  }
}

BatchReport BatchExecutor::run(const std::vector<JobSpec>& manifest,
                               CheckpointJournal* journal) {
  {
    std::set<std::string> ids;
    for (const JobSpec& spec : manifest) {
      if (!ids.insert(spec.id).second) {
        throw util::InputError("executor: duplicate job id \"" + spec.id +
                               "\"");
      }
    }
  }

  // Resume: journaled outcomes are finished work, including permanent
  // failures — only jobs with no outcome are (re)dispatched.
  std::vector<std::optional<JobOutcome>> outcomes(manifest.size());
  BatchReport report;
  if (journal != nullptr) {
    std::map<std::string, JobOutcome> done;
    for (JobOutcome& outcome : journal->open_for_append()) {
      done.insert_or_assign(outcome.id, std::move(outcome));
    }
    for (std::size_t i = 0; i < manifest.size(); ++i) {
      const auto it = done.find(manifest[i].id);
      if (it != done.end()) {
        outcomes[i] = it->second;
        ++report.resumed;
      }
    }
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < manifest.size(); ++i) {
    if (!outcomes[i].has_value()) pending.push_back(i);
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> halted{false};
  std::atomic<int> active{0};
  std::mutex commit_mu;  // guards journal appends + outcome commits
  std::int64_t committed = 0;
  std::exception_ptr journal_error;

  const int workers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(config_.workers), pending.size()));
  std::vector<AttemptSlot> slots(
      static_cast<std::size_t>(std::max(workers, 1)));

  // Live telemetry: queue/worker/heartbeat/best-cut gauges plus the
  // labeled per-state job counter family, updated at job boundaries and
  // supervisor ticks so an attached /metrics endpoint sees the fleet
  // move. All of it compiles to no-ops under FIXEDPART_OBS=OFF.
  auto& obs_reg = obs::Registry::global();
  struct LiveIds {
    obs::MetricId queue_depth, inflight, heartbeat_age, best_cut;
    obs::MetricId watchdog_fires;
    obs::MetricId jobs_by_state[4];  ///< indexed by JobStatus
  };
  static const LiveIds live = [] {
    auto& reg = obs::Registry::global();
    return LiveIds{
        reg.gauge("svc.queue_depth"),
        reg.gauge("svc.inflight_workers"),
        reg.gauge("svc.heartbeat_age_seconds"),
        reg.gauge("svc.best_cut"),
        reg.counter("svc.watchdog_fires"),
        {reg.counter(obs::labeled("svc.jobs", {{"state", "ok"}})),
         reg.counter(obs::labeled("svc.jobs", {{"state", "truncated"}})),
         reg.counter(obs::labeled("svc.jobs", {{"state", "failed"}})),
         reg.counter(obs::labeled("svc.jobs", {{"state", "poisoned"}}))},
    };
  }();
  if (config_.progress != nullptr) {
    config_.progress->begin(static_cast<std::int64_t>(manifest.size()),
                            report.resumed, std::max(workers, 1));
  }
  obs_reg.set(live.queue_depth, static_cast<double>(pending.size()));
  obs_reg.set(live.inflight, 0.0);
  obs_reg.set(live.heartbeat_age, 0.0);
  obs::log_info("svc", "fleet started",
                {{"jobs", static_cast<std::int64_t>(manifest.size())},
                 {"resumed", report.resumed},
                 {"workers", std::max(workers, 0)}});
  bool fleet_has_best = false;  // guarded by commit_mu
  Weight fleet_best = 0;

  const auto draining = [&] {
    return halted.load(std::memory_order_acquire) ||
           (config_.drain != nullptr &&
            config_.drain->load(std::memory_order_acquire));
  };

  // The attempt loop itself lives in run_supervised_job (shared with the
  // PartitionServer); each worker supplies its slot and the drain policy.
  SupervisedHooks hooks;
  hooks.fault_hook = config_.fault_hook;
  hooks.sleep_fn = config_.sleep_fn;
  hooks.stop_retrying = draining;

  const auto worker = [&](std::size_t slot_index) {
    AttemptSlot& slot = slots[slot_index];
    while (!draining()) {
      const std::size_t i = next.fetch_add(1);
      if (i >= pending.size()) break;
      const std::size_t manifest_index = pending[i];
      JobOutcome out = run_supervised_job(runner_, manifest[manifest_index],
                                          config_.retry, slot, hooks);
      std::lock_guard<std::mutex> lock(commit_mu);
      // A halt between claim and commit is the simulated kill -9: the
      // result is lost exactly like a genuinely in-flight job.
      if (halted.load(std::memory_order_acquire)) break;
      if (journal != nullptr && !journal_error) {
        try {
          journal->append(out);
        } catch (const std::exception& e) {
          obs::log_error("svc", "checkpoint journal append failed",
                         {{"id", out.id}, {"what", e.what()}});
          journal_error = std::current_exception();
          halted.store(true, std::memory_order_release);
          break;
        } catch (...) {
          journal_error = std::current_exception();
          halted.store(true, std::memory_order_release);
          break;
        }
      }
      if (config_.progress != nullptr) config_.progress->record(out);
      obs_reg.add(live.jobs_by_state[static_cast<std::size_t>(out.status)]);
      if ((out.status == JobStatus::kOk ||
           out.status == JobStatus::kTruncated) &&
          (!fleet_has_best || out.cut < fleet_best)) {
        fleet_has_best = true;
        fleet_best = out.cut;
        obs_reg.set(live.best_cut, static_cast<double>(fleet_best));
      }
      obs::log_debug("svc", "job finished",
                     {{"id", out.id},
                      {"status", to_string(out.status)},
                      {"attempts", out.attempts},
                      {"cut", static_cast<std::int64_t>(out.cut)},
                      {"seconds", out.seconds}});
      outcomes[manifest_index] = std::move(out);
      ++committed;
      if (config_.halt_after >= 0 && committed >= config_.halt_after) {
        halted.store(true, std::memory_order_release);
        // Expedite the abandonment: in-flight attempts unwind at their
        // next deadline check instead of running to completion.
        for (AttemptSlot& other : slots) {
          other.cancel.store(true, std::memory_order_release);
        }
        break;
      }
    }
    active.fetch_sub(1, std::memory_order_acq_rel);
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  active.store(workers, std::memory_order_release);
  for (int t = 0; t < workers; ++t) {
    pool.emplace_back(worker, static_cast<std::size_t>(t));
  }

  // Supervisor: heartbeat-based hang detection while the pool drains,
  // plus the per-tick refresh of the live gauges.
  const auto hang_limit_ms =
      static_cast<std::int64_t>(config_.hang_seconds * 1000.0);
  while (active.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const std::int64_t now = steady_ms();
    int busy_workers = 0;
    std::int64_t oldest_heartbeat_ms = 0;
    for (AttemptSlot& slot : slots) {
      if (!slot.busy.load(std::memory_order_acquire)) continue;
      ++busy_workers;
      const std::int64_t age =
          now - slot.start_ms.load(std::memory_order_acquire);
      oldest_heartbeat_ms = std::max(oldest_heartbeat_ms, age);
      if (config_.hang_seconds > 0.0 && age > hang_limit_ms &&
          !slot.cancel.exchange(true, std::memory_order_acq_rel)) {
        obs_reg.add(live.watchdog_fires);
        obs::log_warn("svc", "hang watchdog cancelled a stuck attempt",
                      {{"age_seconds", static_cast<double>(age) / 1000.0},
                       {"hang_seconds", config_.hang_seconds}});
      }
    }
    obs_reg.set(live.inflight, static_cast<double>(busy_workers));
    obs_reg.set(live.heartbeat_age,
                static_cast<double>(oldest_heartbeat_ms) / 1000.0);
    const std::size_t claimed =
        std::min(next.load(std::memory_order_relaxed), pending.size());
    obs_reg.set(live.queue_depth,
                static_cast<double>(pending.size() - claimed));
  }
  for (std::thread& thread : pool) thread.join();
  obs_reg.set(live.inflight, 0.0);
  obs_reg.set(live.heartbeat_age, 0.0);
  if (journal_error) std::rethrow_exception(journal_error);

  for (const std::optional<JobOutcome>& outcome : outcomes) {
    if (!outcome.has_value()) {
      ++report.abandoned;
      continue;
    }
    report.outcomes.push_back(*outcome);
    switch (outcome->status) {
      case JobStatus::kOk: ++report.ok; break;
      case JobStatus::kTruncated: ++report.truncated; break;
      case JobStatus::kFailed: ++report.failed; break;
      case JobStatus::kPoisoned: ++report.poisoned; break;
    }
    if (outcome->attempts > 1) ++report.retried;
  }
  report.drained = draining();
  if constexpr (obs::kEnabled) {
    auto& reg = obs::Registry::global();
    static const obs::MetricId jobs_ok = reg.counter("svc.jobs_ok");
    static const obs::MetricId jobs_truncated =
        reg.counter("svc.jobs_truncated");
    static const obs::MetricId jobs_failed = reg.counter("svc.jobs_failed");
    static const obs::MetricId jobs_poisoned =
        reg.counter("svc.jobs_poisoned");
    static const obs::MetricId jobs_retried = reg.counter("svc.jobs_retried");
    static const obs::MetricId jobs_resumed = reg.counter("svc.jobs_resumed");
    static const obs::MetricId attempts_hist =
        reg.histogram("svc.job_attempts", 1.0, 11.0, 10);
    reg.add(jobs_ok, report.ok);
    reg.add(jobs_truncated, report.truncated);
    reg.add(jobs_failed, report.failed);
    reg.add(jobs_poisoned, report.poisoned);
    reg.add(jobs_retried, report.retried);
    reg.add(jobs_resumed, report.resumed);
    for (const JobOutcome& outcome : report.outcomes) {
      reg.observe(attempts_hist, static_cast<double>(outcome.attempts));
    }
  }
  obs::log_info("svc", "fleet finished",
                {{"summary", report.summary()},
                 {"drained", report.drained},
                 {"exit_code", report.exit_code()}});
  return report;
}

// --- the standard partition-job runner -----------------------------------

namespace {

/// Everything shareable between jobs touching the same instance. Built
/// once under the entry mutex; reads afterwards are immutable.
struct InstanceEntry {
  std::mutex mu;
  bool built = false;
  hg::Hypergraph graph;
  hg::FixedAssignment base_fixed{0, 2};
  std::optional<part::BalanceConstraint> balance;
  std::unique_ptr<gen::FixedVertexSeries> series;  // good/rand regimes
  bool reference_built = false;
  std::vector<hg::PartitionId> good_reference;
};

util::Scale scale_from_string(const std::string& text) {
  if (text == "smoke") return util::Scale::kSmoke;
  if (text == "paper") return util::Scale::kPaper;
  return util::Scale::kDefault;
}

/// The paper's engine defaults (CLIP refinement, no pass cutoff) — kept in
/// sync with exp::default_ml_config, which lives a layer above svc.
ml::MultilevelConfig engine_config() {
  ml::MultilevelConfig config;
  config.refine.policy = part::SelectionPolicy::kClip;
  config.refine.pass_cutoff = 1.0;
  return config;
}

std::shared_ptr<InstanceEntry> instance_entry(const std::string& key) {
  static std::mutex cache_mu;
  static std::map<std::string, std::shared_ptr<InstanceEntry>> cache;
  std::lock_guard<std::mutex> lock(cache_mu);
  std::shared_ptr<InstanceEntry>& entry = cache[key];
  if (entry == nullptr) entry = std::make_shared<InstanceEntry>();
  return entry;
}

void build_instance(InstanceEntry& entry, const JobSpec& spec,
                    const std::string& key) {
  if (spec.instance.empty()) {
    gen::GeneratedCircuit circuit = gen::generate_circuit(
        gen::ibm_like_spec(spec.circuit, scale_from_string(spec.scale)));
    entry.graph = std::move(circuit.graph);
    entry.base_fixed = hg::FixedAssignment(entry.graph.num_vertices(), 2);
    entry.balance = part::BalanceConstraint::relative(entry.graph, 2,
                                                      spec.tolerance_pct);
  } else if (spec.instance.ends_with(".fpbin")) {
    // Checked before .fpb: ".fpbin" would otherwise satisfy neither
    // suffix test cleanly (.rfind(".fpb") also matches inside ".fpbin").
    hg::BinaryInstance instance = hg::read_fpbin_file(spec.instance);
    if (instance.num_parts != 2) {
      throw util::InputError("batch job " + spec.id +
                             ": only bipartitioning instances supported");
    }
    entry.graph = std::move(instance.graph);
    entry.base_fixed = std::move(instance.fixed);
    entry.balance = part::BalanceConstraint::relative(entry.graph, 2,
                                                      spec.tolerance_pct);
  } else if (spec.instance.size() > 4 &&
             spec.instance.rfind(".fpb") == spec.instance.size() - 4) {
    hg::BenchmarkInstance instance = hg::read_fpb_file(spec.instance);
    if (instance.num_parts != 2) {
      throw util::InputError("batch job " + spec.id +
                             ": only bipartitioning instances supported");
    }
    entry.graph = std::move(instance.graph);
    entry.base_fixed = std::move(instance.fixed);
    entry.balance = part::BalanceConstraint::from_spec(entry.graph, 2,
                                                       instance.balance);
  } else {
    entry.graph = hg::read_hmetis_file(spec.instance);
    entry.base_fixed = hg::FixedAssignment(entry.graph.num_vertices(), 2);
    entry.balance = part::BalanceConstraint::relative(entry.graph, 2,
                                                      spec.tolerance_pct);
  }
  // The regime series and good reference must be shared by every job on
  // this instance (the paper's nested-series protocol), so their seeds
  // derive from the instance key, never from a job's seed.
  util::Rng series_rng(splitmix64(fnv1a(key)));
  entry.series = std::make_unique<gen::FixedVertexSeries>(entry.graph, 2,
                                                          series_rng);
  entry.built = true;
}

const std::vector<hg::PartitionId>& good_reference(InstanceEntry& entry,
                                                   const std::string& key) {
  if (!entry.reference_built) {
    const hg::FixedAssignment all_free(entry.graph.num_vertices(), 2);
    const ml::MultilevelPartitioner partitioner(entry.graph, all_free,
                                                *entry.balance);
    util::Rng rng(splitmix64(fnv1a(key) ^ 0x900dULL));
    entry.good_reference =
        partitioner.best_of(4, rng, engine_config()).assignment;
    entry.reference_built = true;
  }
  return entry.good_reference;
}

/// Re-applies the instance's own pins on top of a regime assignment (file
/// instances may carry fixed terminals; they always win).
void merge_base_fixed(hg::FixedAssignment& fixed,
                      const hg::FixedAssignment& base) {
  for (hg::VertexId v = 0; v < base.num_vertices(); ++v) {
    if (base.is_restricted(v)) fixed.restrict_to(v, base.allowed_mask(v));
  }
}

}  // namespace

JobResult run_partition_job(const JobSpec& spec,
                            const util::Deadline& deadline) {
  const std::string key = spec.instance.empty()
                              ? "gen:" + std::to_string(spec.circuit) + ":" +
                                    spec.scale + ":" +
                                    std::to_string(spec.tolerance_pct)
                              : "file:" + spec.instance + ":" +
                                    std::to_string(spec.tolerance_pct);
  const std::shared_ptr<InstanceEntry> entry = instance_entry(key);

  hg::FixedAssignment fixed{0, 2};
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (!entry->built) build_instance(*entry, spec, key);
    if (spec.regime == "good") {
      fixed = entry->series->good_regime(spec.fixed_pct,
                                         good_reference(*entry, key));
      merge_base_fixed(fixed, entry->base_fixed);
    } else if (spec.regime == "rand") {
      fixed = entry->series->rand_regime(spec.fixed_pct);
      merge_base_fixed(fixed, entry->base_fixed);
    } else {
      fixed = entry->base_fixed;
    }
  }

  ml::MultilevelConfig config = engine_config();
  config.deadline = &deadline;
  config.preflight = spec.preflight;
  const ml::MultilevelPartitioner partitioner(entry->graph, fixed,
                                              *entry->balance);
  if (spec.threads_per_job > 1) {
    // Parallel multistart on the shared pool: starts fan out across up to
    // threads_per_job workers, and the result depends only on (starts,
    // seed) — identical for every threads_per_job > 1, so the canonical
    // journal stays byte-stable when the knob is retuned per machine.
    const ml::MultilevelResult result = partitioner.best_of_parallel(
        spec.starts, spec.threads_per_job, spec.seed, config);
    return JobResult{result.cut, result.truncated, result.total_moves,
                     result.total_passes};
  }
  util::Rng rng(spec.seed);
  const ml::MultilevelResult result =
      partitioner.best_of(spec.starts, rng, config);
  return JobResult{result.cut, result.truncated, result.total_moves,
                   result.total_passes};
}

}  // namespace fixedpart::svc
