#include "svc/server.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "hg/io_binary.hpp"
#include "hg/io_common.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/atomic_file.hpp"
#include "util/errors.hpp"

namespace fixedpart::svc {

namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// The canonical form of an uploaded hypergraph: per line, surrounding
/// whitespace trimmed and runs collapsed to one space; blank and comment
/// ('%' hmetis, '#' fpb/bookshelf) lines dropped. Line structure is
/// semantic in every supported format, so lines are preserved — two
/// uploads differing only in spacing or comments hash identically, two
/// different hypergraphs never do.
std::string canonical_content(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::size_t lo = start;
    std::size_t hi = end;
    const auto is_ws = [&](std::size_t i) {
      return text[i] == ' ' || text[i] == '\t' || text[i] == '\r';
    };
    while (lo < hi && is_ws(lo)) ++lo;
    while (hi > lo && is_ws(hi - 1)) --hi;
    if (lo < hi && text[lo] != '%' && text[lo] != '#') {
      bool pending_space = false;
      for (std::size_t i = lo; i < hi; ++i) {
        if (is_ws(i)) {
          pending_space = true;
          continue;
        }
        if (pending_space && !out.empty() && out.back() != '\n') out += ' ';
        pending_space = false;
        out += text[i];
      }
      out += '\n';
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return out;
}

std::map<std::string, std::string> parse_query(const std::string& query) {
  std::map<std::string, std::string> params;
  std::size_t start = 0;
  while (start < query.size()) {
    std::size_t end = query.find('&', start);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(start, end - start);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos && eq > 0) {
      params[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    start = end + 1;
  }
  return params;
}

/// Parses one flat-JSON spec line through the hardened manifest parser;
/// failures throw hg::ParseError labelled "request".
JobSpec parse_spec_line(const std::string& line) {
  std::istringstream in(line + "\n");
  hg::LineReader reader(in, "request", '#');
  std::string read;
  if (!reader.next(read)) throw util::InputError("request: empty job spec");
  return job_spec_from_json(read, reader);
}

/// Pulls a top-level string field out of a journal line we wrote
/// ourselves ("" when absent). Only used for the small control lines
/// (event tags, cancel ids) whose values never contain escapes.
std::string scan_string_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  if (end == std::string::npos) return "";
  return line.substr(begin, end - begin);
}

int scan_int_field(const std::string& line, const char* key, int def) {
  const std::string needle = std::string("\"") + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return def;
  return std::atoi(line.c_str() + at + needle.size());
}

std::string json_error(const std::string& message) {
  std::string out = "{\"error\": \"";
  for (const char c : message) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += "\"}\n";
  return out;
}

double parse_double_param(const std::string& key, const std::string& text) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw util::InputError("query: " + key + ": not a number: " + text);
  }
}

std::int64_t parse_int_param(const std::string& key,
                             const std::string& text) {
  try {
    std::size_t used = 0;
    const long long value = std::stoll(text, &used);
    if (used != text.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw util::InputError("query: " + key + ": not an integer: " + text);
  }
}

// Live metric ids, registered once (OFF build: all no-ops).
struct ServerMetrics {
  obs::MetricId submitted, shed, cache_hits, cancelled, recovered;
  obs::MetricId watchdog_fires;
  obs::MetricId queue_depth, inflight, trace_bytes;
  obs::MetricId job_seconds, queue_wait_seconds;
  obs::MetricId jobs_by_state[4];  ///< indexed by JobStatus
};

const ServerMetrics& server_metrics() {
  static const ServerMetrics metrics = [] {
    auto& reg = obs::Registry::global();
    return ServerMetrics{
        reg.counter("svc.server.submitted"),
        reg.counter("svc.server.shed"),
        reg.counter("svc.server.cache_hits"),
        reg.counter("svc.server.cancelled"),
        reg.counter("svc.server.recovered"),
        reg.counter("svc.server.watchdog_fires"),
        reg.gauge("svc.server.queue_depth"),
        reg.gauge("svc.server.inflight"),
        reg.gauge("svc.server.trace_bytes"),
        reg.histogram("svc.server.job_seconds", 0.0, 30.0, 30),
        reg.histogram("svc.server.queue_wait_seconds", 0.0, 30.0, 30),
        {reg.counter(obs::labeled("svc.server.jobs", {{"state", "ok"}})),
         reg.counter(
             obs::labeled("svc.server.jobs", {{"state", "truncated"}})),
         reg.counter(obs::labeled("svc.server.jobs", {{"state", "failed"}})),
         reg.counter(
             obs::labeled("svc.server.jobs", {{"state", "poisoned"}}))},
    };
  }();
  return metrics;
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// One submitted job and everything the server remembers about it. The
/// shared_ptr outlives map eviction, so a worker holding one mid-run is
/// always safe.
struct PartitionServer::ServerJob {
  JobSpec spec;
  int priority = 0;
  std::uint64_t seq = 0;          ///< admission order (FIFO within priority)
  std::int64_t enqueue_ms = 0;    ///< for the queue-wait histogram
  JobState state = JobState::kQueued;
  JobOutcome outcome;             ///< valid when has_outcome
  bool has_outcome = false;
  std::atomic<bool> user_cancelled{false};
  AttemptSlot* slot = nullptr;    ///< non-null while a worker runs it
  /// Per-job span buffer, alive while the job runs (local spans plus
  /// worker spans merged by the process pool); dropped at commit once
  /// `trace` is rendered from it.
  std::shared_ptr<obs::SpanBuffer> spans;
  /// Chrome trace JSON, rendered once at commit and cached with the
  /// result. "" = no trace (unfinished, replayed, or OBS=OFF).
  std::string trace;
};

PartitionServer::PartitionServer(ServerConfig config)
    : config_(std::move(config)) {
  if (config_.workers < 1) {
    throw std::invalid_argument("PartitionServer: workers < 1");
  }
  if (config_.queue_capacity < 1) {
    throw std::invalid_argument("PartitionServer: queue_capacity < 1");
  }
  if (config_.retry.max_attempts < 1) {
    throw std::invalid_argument("PartitionServer: max_attempts < 1");
  }
  runner_ = config_.runner ? config_.runner : run_partition_job;
}

PartitionServer::~PartitionServer() { drain(); }

void PartitionServer::journal_append(const std::string& line) {
  if (journal_ == nullptr) return;
  std::lock_guard<std::mutex> lock(journal_mu_);
  try {
    journal_->append(line);
    appended_since_compact_.fetch_add(1, std::memory_order_acq_rel);
  } catch (const std::exception& error) {
    // Durability degraded, service continues: the in-memory record is
    // still authoritative for this process; a restart may re-run work.
    obs::log_error("svc", "server journal append failed",
                   {{"what", error.what()}});
  }
}

void PartitionServer::replay_journal() {
  const std::vector<std::string> lines = journal_->open_for_append();
  // Replay through a LineReader so corrupt complete lines report
  // path:line like every other parser (torn tails were already dropped).
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  std::istringstream in(text);
  hg::LineReader reader(in, journal_->path(), '#');
  std::string line;
  std::vector<std::string> finish_order;
  while (reader.next(line)) {
    const std::string event = scan_string_field(line, "event");
    if (event == "accept") {
      // The spec fields ride in the same flat object; the parser ignores
      // the event/priority tags.
      JobSpec spec = job_spec_from_json(line, reader);
      std::shared_ptr<ServerJob>& job = jobs_[spec.id];
      if (job == nullptr) job = std::make_shared<ServerJob>();
      job->spec = std::move(spec);
      job->priority = scan_int_field(line, "priority", 0);
      job->seq = next_seq_++;
      job->state = JobState::kQueued;
      job->has_outcome = false;
      job->user_cancelled.store(false, std::memory_order_release);
    } else if (event == "done") {
      JobOutcome outcome = job_outcome_from_json(line, reader);
      std::shared_ptr<ServerJob>& job = jobs_[outcome.id];
      if (job == nullptr) job = std::make_shared<ServerJob>();
      if (job->spec.id.empty()) job->spec.id = outcome.id;
      job->outcome = std::move(outcome);
      job->has_outcome = true;
      if (job->state != JobState::kCancelled) job->state = JobState::kDone;
      finish_order.push_back(job->spec.id);
    } else if (event == "cancel") {
      const std::string id = scan_string_field(line, "id");
      const auto it = jobs_.find(id);
      if (it != jobs_.end()) {
        it->second->state = JobState::kCancelled;
        it->second->user_cancelled.store(true, std::memory_order_release);
        finish_order.push_back(id);
      }
    }
    // Unknown events: skip (a newer writer's lines stay replayable).
  }
  for (const std::string& id : finish_order) {
    const auto it = jobs_.find(id);
    if (it != jobs_.end() && it->second->state != JobState::kQueued) {
      done_order_.push_back(id);
    }
  }
  for (auto& [id, job] : jobs_) {
    if (job->state == JobState::kQueued) {
      job->enqueue_ms = steady_ms();
      queue_.push_back(job);
      ++recovered_;
    } else if (job->has_outcome &&
               (job->outcome.status == JobStatus::kOk ||
                job->outcome.status == JobStatus::kTruncated)) {
      service_seconds_.add(job->outcome.seconds);
      ++done_total_;
    }
  }
  std::sort(queue_.begin(), queue_.end(),
            [](const auto& a, const auto& b) { return a->seq < b->seq; });
  // Count the replayed backlog toward the compaction trigger: a journal
  // that grew long across restarts is compacted shortly after start
  // instead of only after another journal_compact_every fresh appends.
  appended_since_compact_.store(static_cast<std::int64_t>(lines.size()),
                                std::memory_order_release);
  obs::Registry::global().add(server_metrics().recovered, recovered_);
  obs::log_info("svc", "server journal replayed",
                {{"lines", static_cast<std::int64_t>(lines.size())},
                 {"jobs", static_cast<std::int64_t>(jobs_.size())},
                 {"requeued", recovered_}});
}

void PartitionServer::start() {
  if (started_) throw std::logic_error("PartitionServer: already started");
  if (!config_.spool_dir.empty()) {
    std::filesystem::create_directories(config_.spool_dir);
  }
  if (!config_.journal_path.empty()) {
    journal_ = std::make_unique<LineJournal>(config_.journal_path);
    std::lock_guard<std::mutex> lock(mu_);
    replay_journal();
  }
  slots_.clear();
  for (int i = 0; i < config_.workers; ++i) {
    slots_.push_back(std::make_unique<AttemptSlot>());
  }
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(*slots_[i]); });
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });
  started_ = true;
  obs::log_info("svc", "partition server started",
                {{"workers", config_.workers},
                 {"queue_capacity",
                  static_cast<std::int64_t>(config_.queue_capacity)},
                 {"journal", config_.journal_path},
                 {"recovered", recovered_}});
}

void PartitionServer::drain() {
  draining_.store(true, std::memory_order_release);
  cv_.notify_all();
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  if (joined_) return;
  joined_ = true;
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (supervisor_.joinable()) supervisor_.join();
  if (started_) {
    std::lock_guard<std::mutex> lock(mu_);
    obs::log_info("svc", "partition server drained",
                  {{"queued_left", static_cast<std::int64_t>(queue_.size())},
                   {"done_total", done_total_}});
  }
}

std::shared_ptr<PartitionServer::ServerJob>
PartitionServer::pop_best_locked() {
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const ServerJob& a = *queue_[i];
    const ServerJob& b = *queue_[best];
    if (a.priority > b.priority ||
        (a.priority == b.priority && a.seq < b.seq)) {
      best = i;
    }
  }
  std::shared_ptr<ServerJob> job = queue_[best];
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
  return job;
}

void PartitionServer::worker_loop(AttemptSlot& slot) {
  for (;;) {
    std::shared_ptr<ServerJob> job;
    JobSpec spec;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return draining() || !queue_.empty(); });
      // Drain leaves queued jobs behind on purpose: they are journaled
      // as accepted, so the next start re-enqueues them.
      if (draining()) return;
      job = pop_best_locked();
      job->state = JobState::kRunning;
      job->slot = &slot;
      running_.push_back(job);
      spec = job->spec;
      obs::Registry::global().observe(
          server_metrics().queue_wait_seconds,
          static_cast<double>(steady_ms() - job->enqueue_ms) / 1000.0);
    }
    SupervisedHooks hooks = config_.hooks;
    const auto base_stop = config_.hooks.stop_retrying;
    const std::shared_ptr<ServerJob> handle = job;
    hooks.stop_retrying = [this, handle, base_stop] {
      return draining() ||
             handle->user_cancelled.load(std::memory_order_acquire) ||
             (base_stop && base_stop());
    };
    if constexpr (obs::kEnabled) {
      // Fresh buffer per run, never shared across jobs: the trace served
      // at /jobs/<id>/trace must hold exactly this job's spans.
      job->spans = std::make_shared<obs::SpanBuffer>();
      hooks.spans = job->spans;
    }
    finish_job(job,
               run_supervised_job(runner_, spec, config_.retry, slot, hooks));
  }
}

void PartitionServer::finish_job(const std::shared_ptr<ServerJob>& job,
                                 JobOutcome outcome) {
  std::string done_line;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->slot = nullptr;
    running_.erase(std::remove(running_.begin(), running_.end(), job),
                   running_.end());
    job->outcome = std::move(outcome);
    job->has_outcome = true;
    if constexpr (obs::kEnabled) {
      // Render the Chrome trace once, cache it with the result, drop the
      // span buffer. Rendering under mu_ keeps /jobs/<id>/trace trivially
      // consistent (whole trace or 404, never a partial one).
      if (job->spans != nullptr) {
        job->trace = obs::trace_events_to_json(job->spans->events());
        job->spans.reset();
        trace_bytes_ += static_cast<std::int64_t>(job->trace.size());
      }
    }
    const bool cancelled =
        job->user_cancelled.load(std::memory_order_acquire);
    job->state = cancelled ? JobState::kCancelled : JobState::kDone;
    service_seconds_.add(job->outcome.seconds);
    if (!cancelled) ++done_total_;
    done_order_.push_back(job->spec.id);
    while (done_order_.size() > config_.done_capacity) {
      const std::string victim = done_order_.front();
      done_order_.pop_front();
      const auto it = jobs_.find(victim);
      // Stale entries (resubmitted-after-cancel ids back in the queue)
      // are skipped, never evicted mid-flight.
      if (it != jobs_.end() && it->second->slot == nullptr &&
          (it->second->state == JobState::kDone ||
           it->second->state == JobState::kCancelled)) {
        trace_bytes_ -= static_cast<std::int64_t>(it->second->trace.size());
        jobs_.erase(it);
      }
    }
    auto& reg = obs::Registry::global();
    reg.set(server_metrics().trace_bytes, static_cast<double>(trace_bytes_));
    reg.observe(server_metrics().job_seconds, job->outcome.seconds);
    reg.add(server_metrics()
                .jobs_by_state[static_cast<std::size_t>(job->outcome.status)]);
    obs::log_debug("svc", "server job finished",
                   {{"id", job->spec.id},
                    {"state", to_string(job->state)},
                    {"status", to_string(job->outcome.status)},
                    {"cut", static_cast<std::int64_t>(job->outcome.cut)},
                    {"seconds", job->outcome.seconds}});
    // The done event reuses the outcome serialization; the accept line
    // already carries the spec, so (accept, done) replays to this state.
    done_line =
        "{\"event\": \"done\", " + to_json_line(job->outcome).substr(1);
  }
  journal_append(done_line);
}

void PartitionServer::supervisor_loop() {
  const auto hang_limit_ms =
      static_cast<std::int64_t>(config_.hang_seconds * 1000.0);
  auto& reg = obs::Registry::global();
  while (!draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::vector<std::string> watchdog_dumps;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const std::int64_t now = steady_ms();
      for (const std::shared_ptr<ServerJob>& job : running_) {
        AttemptSlot* slot = job->slot;
        if (slot == nullptr) continue;
        // A DELETE that raced an attempt's slot reset is re-applied here,
        // so cooperative cancellation lands within one tick.
        if (job->user_cancelled.load(std::memory_order_acquire)) {
          slot->cancel.store(true, std::memory_order_release);
          continue;
        }
        if (!slot->busy.load(std::memory_order_acquire)) continue;
        const std::int64_t age =
            now - slot->start_ms.load(std::memory_order_acquire);
        if (config_.hang_seconds > 0.0 && age > hang_limit_ms &&
            !slot->cancel.exchange(true, std::memory_order_acq_rel)) {
          reg.add(server_metrics().watchdog_fires);
          obs::log_warn("svc", "server watchdog cancelled a stuck attempt",
                        {{"id", job->spec.id},
                         {"age_seconds", static_cast<double>(age) / 1000.0}});
          if (!config_.flight_dir.empty()) {
            watchdog_dumps.push_back(job->spec.id);
          }
        }
      }
      reg.set(server_metrics().queue_depth,
              static_cast<double>(queue_.size()));
      reg.set(server_metrics().inflight,
              static_cast<double>(running_.size()));
    }
    // Flight dumps happen outside mu_ — they do file IO and walk every
    // recorder shard, neither of which belongs under the server lock.
    for (const std::string& id : watchdog_dumps) {
      auto& recorder = obs::FlightRecorder::global();
      const obs::FlightPhase phase =
          recorder.current_phase(obs::trace_id_for(id));
      recorder.dump(config_.flight_dir, "watchdog", id,
                    phase.found ? phase.name : "");
    }
    if (journal_ != nullptr && config_.journal_compact_every > 0 &&
        appended_since_compact_.load(std::memory_order_acquire) >=
            config_.journal_compact_every) {
      compact_journal();
    }
  }
}

void PartitionServer::compact_journal() {
  // Rewrite the journal to exactly the lines that reconstruct the live
  // job map: per job (in admission order) an accept line, its done line
  // if finished, its cancel line if cancelled. Everything evicted from
  // the done-map is dropped — those ids answer 404 either way, so the
  // journal stays bounded by done_capacity + queued + running instead of
  // lifetime traffic. Holding mu_ across the rewrite (lock order mu_ ->
  // journal_mu_) means any done line already appended is also in the
  // rebuilt state; a finish_job racing the gap between its commit and
  // its append at worst duplicates a done line, which replay treats
  // idempotently.
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<ServerJob>> by_seq;
  by_seq.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) by_seq.push_back(job);
  std::sort(by_seq.begin(), by_seq.end(),
            [](const auto& a, const auto& b) { return a->seq < b->seq; });
  std::vector<std::string> lines;
  lines.reserve(by_seq.size() * 2);
  for (const std::shared_ptr<ServerJob>& job : by_seq) {
    lines.push_back("{\"event\": \"accept\", \"priority\": " +
                    std::to_string(job->priority) + ", " +
                    to_json_line(job->spec).substr(1));
    if (job->has_outcome) {
      lines.push_back("{\"event\": \"done\", " +
                      to_json_line(job->outcome).substr(1));
    }
    if (job->state == JobState::kCancelled) {
      lines.push_back("{\"event\": \"cancel\", \"id\": \"" + job->spec.id +
                      "\"}");
    }
  }
  const std::int64_t before =
      appended_since_compact_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> journal_lock(journal_mu_);
    try {
      journal_->rewrite(lines);
    } catch (const std::exception& error) {
      // Same degradation contract as journal_append: durability suffers,
      // service continues; try again after the next batch of appends.
      obs::log_error("svc", "server journal compaction failed",
                     {{"what", error.what()}});
      appended_since_compact_.store(0, std::memory_order_release);
      return;
    }
    appended_since_compact_.store(0, std::memory_order_release);
  }
  compactions_.fetch_add(1, std::memory_order_acq_rel);
  obs::log_info("svc", "server journal compacted",
                {{"appended", before},
                 {"kept", static_cast<std::int64_t>(lines.size())},
                 {"jobs", static_cast<std::int64_t>(by_seq.size())}});
}

double PartitionServer::retry_after_locked() const {
  if (service_seconds_.empty()) {
    // No job has completed yet, so there is no observed service rate to
    // extrapolate from. The old behaviour multiplied the default budget
    // (a ceiling, not an estimate) by the backlog — telling the first
    // wave of shed clients to go away for minutes on a server that had
    // simply not finished its first job. Return the configured default:
    // deterministic, and honest about knowing nothing.
    return std::clamp(config_.retry_after_no_data_seconds, 1.0, 600.0);
  }
  const double mean = service_seconds_.mean();
  const double backlog =
      static_cast<double>(queue_.size() + running_.size() + 1);
  const double seconds =
      std::ceil(mean * backlog / static_cast<double>(config_.workers));
  return std::clamp(seconds, 1.0, 600.0);
}

std::string PartitionServer::job_json_locked(const ServerJob& job) const {
  std::string head = std::string("{\"state\": \"") + to_string(job.state) +
                     "\", \"priority\": " + std::to_string(job.priority);
  if (job.has_outcome) {
    // The outcome line carries the id; splice past its '{'.
    return head + ", " + to_json_line(job.outcome).substr(1) + "\n";
  }
  return head + ", \"id\": \"" + job.spec.id + "\"}\n";
}

SubmitResult PartitionServer::submit(const std::string& body,
                                     const std::string& query) {
  SubmitResult result;
  obs::Registry::global().add(server_metrics().submitted);
  try {
    if (draining()) {
      result.http_status = 503;
      result.body = json_error("server is draining; resubmit elsewhere");
      return result;
    }
    const auto params = parse_query(query);
    int priority = 0;
    if (const auto it = params.find("priority"); it != params.end()) {
      priority = static_cast<int>(std::clamp<std::int64_t>(
          parse_int_param("priority", it->second), -100, 100));
    }

    // Classify the body: flat JSON spec vs raw hypergraph upload.
    std::size_t first = body.find_first_not_of(" \t\r\n");
    JobSpec spec;
    std::string upload;      // non-empty = spool this content
    std::string upload_ext;  // ".fpbin", ".fpb" or ".hgr"
    if (hg::is_fpbin(body)) {
      // Binary upload. Sniffed before anything else: the magic sits at
      // byte 0 (no whitespace trimming applies to binary bodies), and
      // the textual "FPB" check below would otherwise claim the
      // "FPBIN..." prefix.
      if (config_.spool_dir.empty()) {
        throw util::InputError(
            "request: raw uploads disabled (no --spool-dir); "
            "submit a JSON job spec instead");
      }
      upload = body;
      upload_ext = ".fpbin";
    } else if (first == std::string::npos) {
      throw util::InputError("request: empty body");
    } else if (body[first] == '{') {
      std::string line = body.substr(first);
      while (!line.empty() &&
             (line.back() == '\n' || line.back() == '\r' ||
              line.back() == ' ' || line.back() == '\t')) {
        line.pop_back();
      }
      if (line.find('\n') != std::string::npos) {
        throw util::InputError("request: job spec must be a single line");
      }
      // The canonical hash becomes the id, so a client-supplied one is
      // not required (and is ignored if present for hashing purposes).
      if (line.find("\"id\"") == std::string::npos) {
        const std::size_t after = line.find_first_not_of(" \t", 1);
        if (after != std::string::npos && line[after] == '}') {
          line = "{\"id\": \"pending\"}";
        } else {
          line = "{\"id\": \"pending\", " + line.substr(1);
        }
      }
      spec = parse_spec_line(line);
    } else {
      if (config_.spool_dir.empty()) {
        throw util::InputError(
            "request: raw uploads disabled (no --spool-dir); "
            "submit a JSON job spec instead");
      }
      upload = body;
      upload_ext = body.compare(first, 3, "FPB") == 0 ? ".fpb" : ".hgr";
    }

    // Engine knobs from the query string override the spec on both paths.
    for (const auto& [key, value] : params) {
      if (key == "priority") continue;
      if (key == "starts") {
        spec.starts = static_cast<int>(parse_int_param(key, value));
      } else if (key == "seed") {
        spec.seed =
            static_cast<std::uint64_t>(parse_int_param(key, value));
      } else if (key == "budget_seconds") {
        spec.budget_seconds = parse_double_param(key, value);
      } else if (key == "tolerance_pct") {
        spec.tolerance_pct = parse_double_param(key, value);
      } else if (key == "fixed_pct") {
        spec.fixed_pct = parse_double_param(key, value);
      } else if (key == "regime") {
        spec.regime = value;
      } else if (key == "scale") {
        spec.scale = value;
      } else if (key == "circuit") {
        spec.circuit = static_cast<int>(parse_int_param(key, value));
      } else if (key == "threads_per_job") {
        spec.threads_per_job = static_cast<int>(parse_int_param(key, value));
      } else if (key == "preflight") {
        spec.preflight = value == "true" || value == "1";
      } else {
        throw util::InputError("query: unknown parameter \"" + key + "\"");
      }
    }

    // Per-request budget policy: unlimited asks get the default, and
    // nothing may exceed the ceiling — an expired budget degrades to the
    // best-so-far partition ("truncated": true), never an error.
    if (spec.budget_seconds <= 0.0) {
      spec.budget_seconds = config_.default_budget_seconds;
    }
    if (config_.max_budget_seconds > 0.0) {
      spec.budget_seconds =
          std::min(spec.budget_seconds, config_.max_budget_seconds);
    }

    // Canonical content hash = job id = cache key. Knobs that change the
    // result are part of it; the volatile id field is pinned first.
    spec.id = "x";
    std::string key_material;
    if (!upload.empty()) {
      spec.instance.clear();  // set to the spool path after hashing
      // .fpbin hashes via its canonical text rendering, which for a
      // plain bipartitioning instance is byte-for-byte the hmetis
      // serialization: the same hypergraph uploaded as .hgr or .fpbin
      // lands on the same job id (and cache entry). This also validates
      // the binary payload (checksum included) before accepting it.
      const std::string canonical =
          upload_ext == ".fpbin"
              ? canonical_content(hg::fpbin_canonical_text(
                    hg::read_fpbin_bytes(upload, "upload")))
              : canonical_content(upload);
      key_material = "content:" + canonical + "|" + to_json_line(spec);
    } else {
      key_material = "spec:" + to_json_line(spec);
    }
    // Round-trip re-parse so range violations on the query-override path
    // fail with the manifest parser's diagnostics.
    spec = parse_spec_line(to_json_line(spec));
    const std::uint64_t h1 = fnv1a(key_material);
    const std::uint64_t h2 = splitmix64(h1 ^ key_material.size());
    spec.id = hex64(h1) + hex64(h2);
    result.id = spec.id;

    std::unique_lock<std::mutex> lock(mu_);
    const auto it = jobs_.find(spec.id);
    if (it != jobs_.end()) {
      ServerJob& job = *it->second;
      if (job.state == JobState::kDone) {
        ++cache_hits_;
        obs::Registry::global().add(server_metrics().cache_hits);
        result.http_status = 200;
        result.body = job_json_locked(job);
        return result;
      }
      if (job.state == JobState::kQueued || job.state == JobState::kRunning ||
          job.slot != nullptr) {
        // Idempotent resubmission: same bytes, same handle.
        result.http_status = 202;
        result.body = job_json_locked(job);
        return result;
      }
      // Cancelled and fully unwound: fall through to re-admission below.
    }
    if (queue_.size() >= config_.queue_capacity) {
      ++shed_total_;
      obs::Registry::global().add(server_metrics().shed);
      result.http_status = 429;
      result.retry_after_seconds = retry_after_locked();
      result.body = "{\"error\": \"queue full\", \"retry_after_seconds\": " +
                    std::to_string(static_cast<int>(
                        result.retry_after_seconds)) +
                    "}\n";
      return result;
    }

    if (!upload.empty()) {
      // Spool before journaling the acceptance, so a replayed accept
      // always finds its input bytes (crash between the two just forgets
      // the request — the client retries idempotently).
      const std::string spool_path =
          config_.spool_dir + "/" + spec.id + upload_ext;
      util::write_file_atomic(spool_path, upload);
      util::sync_parent_dir(spool_path);
      spec.instance = spool_path;
    }

    // The acceptance is journaled before the job becomes visible to any
    // worker: a fast job finishing first would otherwise write its done
    // line ahead of the accept line, and a replay would resurrect it.
    // (Lock order mu_ -> journal_mu_ is the house rule.)
    journal_append(
        "{\"event\": \"accept\", \"priority\": " + std::to_string(priority) +
        ", " + to_json_line(spec).substr(1));
    std::shared_ptr<ServerJob>& job = jobs_[spec.id];
    if (job == nullptr) job = std::make_shared<ServerJob>();
    job->spec = spec;
    job->priority = priority;
    job->seq = next_seq_++;
    job->enqueue_ms = steady_ms();
    job->state = JobState::kQueued;
    job->has_outcome = false;
    job->user_cancelled.store(false, std::memory_order_release);
    queue_.push_back(job);
    result.http_status = 202;
    result.body = job_json_locked(*job);
    lock.unlock();
    cv_.notify_one();
    return result;
  } catch (const hg::ParseError& error) {
    result.http_status = 400;
    result.body = json_error(error.what());
  } catch (const util::InputError& error) {
    result.http_status = 400;
    result.body = json_error(error.what());
  } catch (const std::exception& error) {
    result.http_status = 500;
    result.body = json_error(error.what());
  }
  return result;
}

std::string PartitionServer::status_json(const std::string& id,
                                         int* http_status) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    *http_status = 404;
    return json_error("unknown job \"" + id + "\"");
  }
  *http_status = 200;
  return job_json_locked(*it->second);
}

int PartitionServer::cancel(const std::string& id, std::string* body) {
  std::string cancel_line;
  int status = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      *body = json_error("unknown job \"" + id + "\"");
      return 404;
    }
    ServerJob& job = *it->second;
    switch (job.state) {
      case JobState::kDone:
        *body = job_json_locked(job);
        return 409;  // finished work is immutable (and cached)
      case JobState::kCancelled:
        *body = job_json_locked(job);
        return 200;  // idempotent
      case JobState::kQueued: {
        queue_.erase(std::remove(queue_.begin(), queue_.end(), it->second),
                     queue_.end());
        job.state = JobState::kCancelled;
        job.user_cancelled.store(true, std::memory_order_release);
        done_order_.push_back(id);
        ++cancelled_total_;
        status = 200;
        break;
      }
      case JobState::kRunning: {
        // Cooperative: the attempt unwinds at its next deadline check and
        // finish_job records its best-so-far outcome under kCancelled.
        job.user_cancelled.store(true, std::memory_order_release);
        if (job.slot != nullptr) {
          job.slot->cancel.store(true, std::memory_order_release);
        }
        ++cancelled_total_;
        status = 202;
        break;
      }
    }
    obs::Registry::global().add(server_metrics().cancelled);
    *body = job_json_locked(job);
    cancel_line = "{\"event\": \"cancel\", \"id\": \"" + id + "\"}";
  }
  journal_append(cancel_line);
  return status;
}

bool PartitionServer::handle(const obs::HttpRequest& request,
                             obs::HttpResponse& response) {
  if (request.path == "/partition") {
    if (request.method != "POST") {
      response.status = 405;
      response.body = json_error("POST /partition");
      return true;
    }
    const SubmitResult result = submit(request.body, request.query);
    response.status = result.http_status;
    response.body = result.body;
    if (result.retry_after_seconds > 0.0) {
      response.headers.emplace_back(
          "Retry-After",
          std::to_string(static_cast<int>(
              std::ceil(result.retry_after_seconds))));
    }
    return true;
  }
  if (request.path == "/jobs") {
    response.body = progress_json();
    return true;
  }
  if (request.path == "/debug/flight") {
    if (request.method != "GET") {
      response.status = 405;
      response.body = json_error("GET /debug/flight");
      return true;
    }
    response.body = obs::FlightRecorder::global().to_json() + "\n";
    return true;
  }
  if (request.path.rfind("/jobs/", 0) == 0) {
    const std::string id = request.path.substr(6);
    constexpr const char* kTraceSuffix = "/trace";
    constexpr std::size_t kTraceSuffixLen = 6;
    if (id.size() > kTraceSuffixLen &&
        id.compare(id.size() - kTraceSuffixLen, kTraceSuffixLen,
                   kTraceSuffix) == 0) {
      if (request.method != "GET") {
        response.status = 405;
        response.body = json_error("GET /jobs/<id>/trace");
        return true;
      }
      response.body = trace_json(id.substr(0, id.size() - kTraceSuffixLen),
                                 &response.status);
      return true;
    }
    if (request.method == "GET") {
      response.body = status_json(id, &response.status);
    } else if (request.method == "DELETE") {
      response.status = cancel(id, &response.body);
    } else {
      response.status = 405;
      response.body = json_error("GET or DELETE /jobs/<id>");
    }
    return true;
  }
  return false;
}

std::string PartitionServer::trace_json(const std::string& id,
                                        int* http_status) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second->trace.empty()) {
    // Unknown, unfinished, evicted, journal-replayed (a restart recovers
    // outcomes, never in-flight spans), or OBS=OFF: a clean 404 — the
    // trace contract is all-or-nothing.
    *http_status = 404;
    return json_error("no trace for job: " + id);
  }
  *http_status = 200;
  return it->second->trace;
}

std::string PartitionServer::progress_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  out << "{\"queued\": " << queue_.size()
      << ", \"running\": " << running_.size()
      << ", \"done\": " << done_total_
      << ", \"cancelled\": " << cancelled_total_
      << ", \"shed\": " << shed_total_ << ", \"cache_hits\": " << cache_hits_
      << ", \"recovered\": " << recovered_ << ", \"mean_job_seconds\": "
      << (service_seconds_.empty() ? 0.0 : service_seconds_.mean())
      << ", \"retry_after_seconds\": " << retry_after_locked()
      << ", \"trace_bytes\": " << trace_bytes_
      << ", \"running_jobs\": [";
  // Where each running job is right now, from the flight recorder's
  // open-span stacks (keyed by the job's deterministic trace id). For
  // process-isolated jobs the parent-side phase is the supervision span;
  // the worker-side live phase is in the pool's stats_json instead.
  bool first = true;
  for (const std::shared_ptr<ServerJob>& job : running_) {
    const obs::FlightPhase phase = obs::FlightRecorder::global().current_phase(
        obs::trace_id_for(job->spec.id));
    out << (first ? "" : ", ") << "{\"id\": \"" << job->spec.id
        << "\", \"phase\": \"" << (phase.found ? phase.name : "")
        << "\", \"phase_seconds\": " << (phase.found ? phase.seconds : 0.0)
        << "}";
    first = false;
  }
  out << "], \"draining\": " << (draining() ? "true" : "false") << "}\n";
  return out.str();
}

std::size_t PartitionServer::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t PartitionServer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_.size();
}

std::int64_t PartitionServer::done_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_total_;
}

std::int64_t PartitionServer::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_total_;
}

std::int64_t PartitionServer::cache_hit_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_hits_;
}

std::int64_t PartitionServer::recovered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovered_;
}

std::int64_t PartitionServer::journal_compactions() const {
  return compactions_.load(std::memory_order_acquire);
}

double PartitionServer::retry_after_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retry_after_locked();
}

}  // namespace fixedpart::svc
