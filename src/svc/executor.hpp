#pragma once
// Supervised batch execution: a worker pool that keeps a fleet of
// partitioning jobs making progress when individual jobs crash, hang, run
// out of budget, or the whole process is killed mid-sweep.
//
// Per job: its own util::Deadline (budget + a supervisor-owned cancel
// flag), every exception caught at the job boundary and classified via
// the PR-2 taxonomy, transient failures (bad_alloc, TransientError,
// internal errors, deadline truncation) retried with exponential backoff
// and deterministic jitter, permanent failures (InputError,
// InfeasibleError) failed fast, jobs poisoned after max_attempts.
//
// Per fleet: an optional checkpoint journal (resume skips finished jobs),
// a heartbeat watchdog that cancels attempts stuck past hang_seconds
// through Deadline::set_cancel_flag, and a drain flag (SIGINT/SIGTERM)
// that finishes in-flight jobs, checkpoints them, and returns.
//
// Determinism: a job's result depends only on its JobSpec (seed included)
// — never on worker count, scheduling, or other jobs — so the canonical
// journal of a (manifest, seed) pair is byte-identical across runs.
// docs/ROBUSTNESS.md documents the job lifecycle state machine.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "svc/checkpoint.hpp"
#include "svc/job.hpp"
#include "util/deadline.hpp"
#include "util/stats.hpp"

namespace fixedpart::svc {

/// Live fleet progress, updated by the executor at job boundaries (commit
/// time) and readable concurrently from other threads — this is what the
/// obs::HttpEndpoint /progress route serves while a fleet runs. The ETA
/// is a naive extrapolation: mean finished-job wall time times remaining
/// jobs, divided by the worker count.
class FleetProgress {
 public:
  /// Resets and arms the tracker for a fleet of `total` jobs, `resumed`
  /// of which were restored from a journal (counted as done).
  void begin(std::int64_t total, std::int64_t resumed, int workers);
  /// Records one committed outcome.
  void record(const JobOutcome& outcome);

  std::int64_t total() const;
  std::int64_t done() const;
  /// {"total": ..., "done": ..., per-state counts, "mean_job_seconds":
  /// ..., "eta_seconds": ..., "best_cut": ... | null} (one line).
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::int64_t total_ = 0;
  std::int64_t done_ = 0;
  std::int64_t ok_ = 0;
  std::int64_t truncated_ = 0;
  std::int64_t failed_ = 0;
  std::int64_t poisoned_ = 0;
  std::int64_t resumed_ = 0;
  int workers_ = 1;
  util::RunningStat seconds_;  ///< per finished job, this process only
  bool has_best_ = false;
  Weight best_cut_ = 0;
};

/// What one successful attempt reports back to the executor.
struct JobResult {
  Weight cut = 0;
  bool truncated = false;
  /// Engine effort metrics (FM moves/passes summed over the multistart);
  /// deterministic given the spec, carried into JobOutcome.
  std::int64_t moves = 0;
  std::int64_t passes = 0;
};

/// Runs one attempt of one job under the supervisor's deadline. Must be
/// callable concurrently from multiple workers, and for determinism must
/// derive all randomness from the spec (not from shared mutable state).
using JobRunner =
    std::function<JobResult(const JobSpec&, const util::Deadline&)>;

struct RetryPolicy {
  /// Total attempts per job (first try included). >= 1.
  int max_attempts = 3;
  /// First retry waits base, then base*2, base*4, ... capped.
  double backoff_base_seconds = 0.5;
  double backoff_cap_seconds = 30.0;
  /// Multiplicative jitter in [0, fraction), deterministic from
  /// (job id, attempt) so reruns back off identically.
  double jitter_fraction = 0.25;
  /// Deadline truncation counts as transient: retry with a fresh budget
  /// (the expiry may be machine load); the best attempt is kept either
  /// way, so exhausting attempts yields kTruncated, never kPoisoned.
  bool retry_truncated = true;
};

/// Monotonic milliseconds (steady_clock), the time base for AttemptSlot
/// heartbeats — exposed so every supervisor (BatchExecutor, the
/// PartitionServer watchdog) ages slots against the same clock.
std::int64_t steady_ms();

/// Per-attempt heartbeat a supervisor watches: `busy` + `start_ms` say how
/// long the current attempt has been running; `cancel` is the supervisor's
/// lever, wired into the attempt's Deadline (cooperative — the engine
/// unwinds at its next deadline check and the attempt reports truncated).
struct AttemptSlot {
  std::atomic<bool> busy{false};
  std::atomic<std::int64_t> start_ms{0};
  std::atomic<bool> cancel{false};
};

/// Test and policy hooks for run_supervised_job. All optional.
struct SupervisedHooks {
  /// Called on the attempt thread before each attempt (1-based); may throw
  /// to inject failures (tests/fault_inject.hpp spirit).
  std::function<void(const JobSpec&, int attempt)> fault_hook;
  /// Backoff sleep override (tests capture delays instead of sleeping).
  std::function<void(double seconds)> sleep_fn;
  /// Polled between attempts: true stops retrying (drain, user
  /// cancellation) — the best result so far is committed as-is.
  std::function<bool()> stop_retrying;
  /// Per-job span buffer: run_supervised_job pushes a trace context
  /// (trace id = obs::trace_id_for(spec.id)) around the attempt loop so
  /// every engine span — and, in process isolation, every span streamed
  /// back over 'T' frames — lands here. When null a private buffer is
  /// used, so the phase breakdown on JobOutcome is filled either way.
  std::shared_ptr<obs::SpanBuffer> spans;
};

/// Runs every attempt of one job under the retry policy and never throws
/// (this IS the job boundary): exceptions are classified via the PR-2
/// taxonomy, transient/internal failures retried with deterministic
/// backoff, permanent ones failed fast, the job poisoned once attempts run
/// out. `slot` carries the live heartbeat; a supervisor watching it may
/// set slot.cancel to cut the running attempt short. Used by both
/// BatchExecutor workers and svc::PartitionServer.
JobOutcome run_supervised_job(const JobRunner& runner, const JobSpec& spec,
                              const RetryPolicy& retry, AttemptSlot& slot,
                              const SupervisedHooks& hooks = {});

struct ExecutorConfig {
  int workers = 1;
  RetryPolicy retry;
  /// Cancel an attempt running longer than this (0 = no watchdog). The
  /// cancellation is cooperative — the engine unwinds at its next deadline
  /// check and the attempt reports truncated.
  double hang_seconds = 0.0;
  /// Graceful drain (not owned): when it becomes true, in-flight jobs
  /// finish and are checkpointed, nothing new is dispatched.
  const std::atomic<bool>* drain = nullptr;
  /// Live progress tracker (not owned, may be null). begin() is called at
  /// fleet start and record() per committed outcome, so a /progress
  /// endpoint polling it sees job counts move while the fleet runs.
  FleetProgress* progress = nullptr;

  // --- test / fault-injection hooks -------------------------------------
  /// Called on the worker thread before each attempt (1-based); may throw
  /// to inject failures. In the spirit of tests/fault_inject.hpp.
  std::function<void(const JobSpec&, int attempt)> fault_hook;
  /// Simulated kill -9: once this many outcomes have been checkpointed,
  /// stop dispatching and *discard* in-flight results (they never reach
  /// the journal). < 0 disables.
  std::int64_t halt_after = -1;
  /// Backoff sleep override (tests capture delays instead of sleeping).
  std::function<void(double seconds)> sleep_fn;
};

struct BatchReport {
  /// One entry per finished job, in manifest order (resumed jobs keep
  /// their journaled outcome). Jobs never dispatched — drain/halt — are
  /// absent and counted in `abandoned`.
  std::vector<JobOutcome> outcomes;
  std::int64_t ok = 0;
  std::int64_t truncated = 0;
  std::int64_t failed = 0;    ///< permanent input/infeasible errors
  std::int64_t poisoned = 0;
  std::int64_t retried = 0;   ///< jobs that needed more than one attempt
  std::int64_t resumed = 0;   ///< skipped because the journal had them
  std::int64_t abandoned = 0; ///< not run: drain, halt, or journal loss
  bool drained = false;       ///< stopped early (drain flag or halt_after)

  bool complete() const { return abandoned == 0; }
  /// PR-2 exit code for the fleet: 0 when every job completed (ok or
  /// truncated); otherwise the highest-severity class — poisoned or an
  /// incomplete run -> 1, input failures -> 3, infeasible failures -> 4.
  int exit_code() const;
  /// One-line counts for logs: "ok=5 truncated=1 ...".
  std::string summary() const;
};

class BatchExecutor {
 public:
  BatchExecutor(JobRunner runner, ExecutorConfig config);

  /// Runs every manifest job without a journal entry. `journal` may be
  /// null (no checkpointing, no resume). Manifest ids must be unique.
  /// Exceptions escaping the runner never escape run(); journal IO errors
  /// and invalid manifests do.
  BatchReport run(const std::vector<JobSpec>& manifest,
                  CheckpointJournal* journal);

 private:
  JobRunner runner_;
  ExecutorConfig config_;
};

/// The standard runner: materializes the instance described by the spec
/// (reads .fpb/.hgr files, or generates the ibm-like circuit; applies the
/// good/rand fixed-vertex regime) and runs the multilevel multistart
/// under the deadline. Instances and good-regime references are memoized
/// process-wide, keyed by everything that affects them.
JobResult run_partition_job(const JobSpec& spec,
                            const util::Deadline& deadline);

}  // namespace fixedpart::svc
