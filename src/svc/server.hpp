#pragma once
// Partition-as-a-service (docs/ROBUSTNESS.md "Server lifecycle"): a
// long-running front end over the supervised job machinery, designed so a
// fleet of remote callers can share one partitioning daemon without any
// one of them wedging, starving, or losing work:
//
//  * POST /partition submits work — a raw hypergraph upload (hMETIS .hgr
//    or .fpb text, spooled to disk) or a flat-JSON job spec referencing a
//    server-side instance — and returns an async job handle;
//  * GET /jobs/<id> polls the handle; DELETE /jobs/<id> cancels
//    (cooperatively: a running attempt unwinds at its next deadline
//    check and commits its best-so-far result);
//  * admission is a bounded priority queue: when it is full the server
//    sheds load with 429 + Retry-After derived from the observed service
//    rate rather than accepting work it cannot start;
//  * the job id IS the canonical content hash of (instance, engine
//    knobs), so resubmitting the same work is idempotent and a finished
//    job's record doubles as a result cache entry (a repeat instance is
//    answered 200 from memory without touching the queue);
//  * per-request budgets map onto util::Deadline: an expired budget
//    degrades to the best partition found so far ("truncated": true)
//    instead of an error;
//  * accepted/done/cancelled transitions are journaled through the same
//    fsync-durable LineJournal discipline as batch checkpoints, so
//    kill -9 loses at most in-flight attempts — a restarted server
//    re-serves every journaled result and re-enqueues accepted-but-
//    unfinished jobs;
//  * drain() (SIGTERM) finishes running jobs, refuses new submissions
//    with 503, and leaves queued jobs journaled for the next start.
//
// The class is HTTP-agnostic at its core (submit/status_json/cancel are
// plain functions — that is what the unit tests drive); handle() adapts
// it to obs::HttpEndpoint's handler callback, and examples/partitiond.cpp
// is the daemon around it.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/http.hpp"
#include "svc/checkpoint.hpp"
#include "svc/executor.hpp"
#include "svc/job.hpp"
#include "util/stats.hpp"

namespace fixedpart::svc {

/// Where a submitted job is in its life (docs/ROBUSTNESS.md diagram).
enum class JobState : std::uint8_t {
  kQueued,     ///< admitted, waiting for a worker
  kRunning,    ///< an attempt is executing
  kDone,       ///< outcome committed (ok/truncated/failed/poisoned)
  kCancelled,  ///< cancelled by DELETE; may still carry a partial outcome
};

const char* to_string(JobState state);

struct ServerConfig {
  int workers = 1;
  /// Queued (not running) jobs the admission queue holds; submissions
  /// past this are shed with 429.
  std::size_t queue_capacity = 16;
  RetryPolicy retry;
  /// Cancel attempts running longer than this (0 = no watchdog), as in
  /// ExecutorConfig::hang_seconds.
  double hang_seconds = 0.0;
  /// Budget applied when a request does not name one (0 = unlimited).
  double default_budget_seconds = 10.0;
  /// Hard per-request ceiling; larger asks are clamped, and 0 (unlimited)
  /// requests become this when it is set. Keeps one caller from renting
  /// a worker forever.
  double max_budget_seconds = 60.0;
  /// Finished-job records kept in memory (the result cache). Oldest are
  /// evicted first; journaled results survive eviction across restarts
  /// but evicted ids answer 404 until resubmitted.
  std::size_t done_capacity = 4096;
  /// Retry-After (seconds) returned on 429 while no job has completed
  /// yet: with no observed service rate there is nothing to extrapolate
  /// from, so the estimate is this deterministic configured default
  /// instead of a backlog multiple of the budget ceiling.
  double retry_after_no_data_seconds = 2.0;
  /// Event journal path; "" runs without durability (no recovery).
  std::string journal_path;
  /// Compact the event journal once this many lines have been appended
  /// since the last compaction (or replay): superseded accept/done/cancel
  /// lines of evicted jobs are dropped in one atomic rewrite, bounding a
  /// long-lived daemon's replay cost and disk footprint by the live job
  /// set (~3 lines x done_capacity) instead of its lifetime traffic.
  /// 0 disables compaction.
  std::int64_t journal_compact_every = 4096;
  /// Directory for uploaded hypergraphs; "" rejects uploads (manifest
  /// references still work).
  std::string spool_dir;
  /// Directory for flight-recorder dumps (watchdog fires, worker
  /// crash/hang classification, fatal signals). "" disables dumping;
  /// the in-memory recorder and /debug/flight work either way.
  std::string flight_dir;
  /// The job runner; null = run_partition_job. Tests inject fakes.
  JobRunner runner;
  /// Fault/sleep test hooks forwarded into run_supervised_job.
  SupervisedHooks hooks;
};

/// What submit() decided, pre-shaped for HTTP but usable without it.
struct SubmitResult {
  int http_status = 0;  ///< 200 cache hit, 202 accepted, 400/413/429/503
  std::string id;       ///< canonical content hash ("" on 400/413/503)
  std::string body;     ///< one-line JSON response body
  double retry_after_seconds = 0.0;  ///< > 0 only on 429
};

class PartitionServer {
 public:
  explicit PartitionServer(ServerConfig config);
  ~PartitionServer();  ///< drains
  PartitionServer(const PartitionServer&) = delete;
  PartitionServer& operator=(const PartitionServer&) = delete;

  /// Replays the journal (recovering accepted-but-unfinished jobs and the
  /// result cache) and starts the worker + watchdog threads.
  void start();
  /// Graceful drain: refuse new work, finish running jobs, join every
  /// thread. Queued jobs stay journaled for the next start. Idempotent.
  void drain();
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// POST /partition: `body` is a raw .hgr/.fpb upload or a flat-JSON
  /// spec; `query` tunes priority and engine knobs
  /// ("priority=2&starts=4&budget_seconds=1.5&seed=7..."). Never throws.
  SubmitResult submit(const std::string& body, const std::string& query);
  /// GET /jobs/<id>: one-line JSON job record. Sets `http_status` to 200
  /// or 404.
  std::string status_json(const std::string& id, int* http_status);
  /// GET /jobs/<id>/trace: the job's Chrome trace JSON, rendered once at
  /// commit time and cached with the result (FIFO-evicted alongside it).
  /// 404 for unknown/unfinished jobs, journal-replayed results (only the
  /// outcome survives kill -9, never a partial trace), and OBS=OFF
  /// builds — a trace is always whole or absent, never truncated.
  std::string trace_json(const std::string& id, int* http_status);
  /// DELETE /jobs/<id>: 200 cancelled (queued), 202 cancellation
  /// requested (running, cooperative), 409 already done, 404 unknown.
  int cancel(const std::string& id, std::string* body);

  /// obs::HttpEndpoint handler adapter: POST /partition, GET|DELETE
  /// /jobs/<id>, GET /jobs. Returns false for unclaimed routes.
  bool handle(const obs::HttpRequest& request, obs::HttpResponse& response);
  /// One-line JSON for /progress: queue/running/done counts, shed and
  /// cache-hit totals, observed service rate, drain flag.
  std::string progress_json() const;

  // Introspection (tests, daemon logs).
  std::size_t queued() const;
  std::size_t running() const;
  std::int64_t done_total() const;
  std::int64_t shed_total() const;
  std::int64_t cache_hit_total() const;
  std::int64_t recovered() const;
  /// Journal compactions performed since start (tests, daemon logs).
  std::int64_t journal_compactions() const;
  /// The Retry-After a 429 would carry right now.
  double retry_after_seconds() const;

 private:
  struct ServerJob;

  std::shared_ptr<ServerJob> pop_best_locked();
  void worker_loop(AttemptSlot& slot);
  void supervisor_loop();
  void finish_job(const std::shared_ptr<ServerJob>& job, JobOutcome outcome);
  void journal_append(const std::string& line);
  void replay_journal();
  void compact_journal();
  std::string job_json_locked(const ServerJob& job) const;
  double retry_after_locked() const;

  ServerConfig config_;
  JobRunner runner_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<ServerJob>> jobs_;
  std::vector<std::shared_ptr<ServerJob>> queue_;
  std::vector<std::shared_ptr<ServerJob>> running_;
  std::deque<std::string> done_order_;  ///< eviction order for the cache
  std::uint64_t next_seq_ = 0;
  util::RunningStat service_seconds_;
  std::int64_t done_total_ = 0;
  std::int64_t shed_total_ = 0;
  std::int64_t cache_hits_ = 0;
  std::int64_t cancelled_total_ = 0;
  std::int64_t recovered_ = 0;
  /// Bytes of cached per-job trace JSON currently held (the
  /// svc.server.trace_bytes gauge); grows at commit, shrinks at eviction.
  std::int64_t trace_bytes_ = 0;

  std::mutex journal_mu_;  ///< always acquired after mu_ (or without it)
  std::unique_ptr<LineJournal> journal_;
  /// Lines appended since the last compaction/replay; the supervisor
  /// compacts once it crosses journal_compact_every.
  std::atomic<std::int64_t> appended_since_compact_{0};
  std::atomic<std::int64_t> compactions_{0};

  std::atomic<bool> draining_{false};
  bool started_ = false;
  std::mutex drain_mu_;  ///< makes drain() idempotent across threads
  bool joined_ = false;  ///< guarded by drain_mu_
  std::vector<std::unique_ptr<AttemptSlot>> slots_;
  std::vector<std::thread> workers_;
  std::thread supervisor_;
};

}  // namespace fixedpart::svc
