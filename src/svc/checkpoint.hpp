#pragma once
// Crash-safe checkpoint journal for the batch executor: an append-only
// JSONL file with one JobOutcome per line. Durability model
// (docs/ROBUSTNESS.md):
//
//  * every append is flushed and fsynced before the executor counts the
//    job as checkpointed, so a kill -9 mid-sweep loses at most the jobs
//    that were still in flight;
//  * a crash can leave at most one torn (partial) trailing line; load()
//    discards it and open_for_append() compacts the journal through the
//    write-temp + flush + atomic-rename helper (util::write_file_atomic),
//    so the on-disk file is a complete, valid snapshot before any new
//    outcome is appended;
//  * a *complete* line that fails to parse is data corruption, not a torn
//    write, and load() throws hg::ParseError with line context.
//
// canonical_journal() reduces a journal to its order- and timing-
// independent form (sorted canonical lines) for the determinism guard.

#include <cstdio>
#include <string>
#include <vector>

#include "svc/job.hpp"

namespace fixedpart::svc {

/// The untyped durability core every journal in svc shares: an
/// append-only file of complete '\n'-terminated lines, fsynced per
/// append, with the torn trailing line a crash can leave discarded on
/// load and compacted away (atomically) before new appends. What the
/// lines *mean* is the caller's business — CheckpointJournal stores
/// JobOutcomes, svc::PartitionServer stores event-tagged job records.
class LineJournal {
 public:
  /// No file is touched until load()/open_for_append()/append().
  explicit LineJournal(std::string path);
  ~LineJournal();

  LineJournal(const LineJournal&) = delete;
  LineJournal& operator=(const LineJournal&) = delete;

  /// Every complete line, in file order (missing file = empty journal).
  /// A torn trailing line — no newline terminator — is discarded.
  std::vector<std::string> load() const;

  /// Compacts the journal to its complete lines (atomic replace + parent
  /// directory fsync) and opens it for appending. Returns the survivors.
  std::vector<std::string> open_for_append();

  /// Appends one line (terminator added here) and makes it durable
  /// (flush + fsync) before returning. Opens the file first if
  /// open_for_append was not called.
  void append(const std::string& line);

  /// Replaces the journal's entire content with `lines` atomically
  /// (write-temp + rename + parent fsync) and reopens it for appending:
  /// how a long-lived writer compacts away superseded lines without a
  /// window where a crash loses the journal. Appends made by other
  /// threads must be excluded by the caller's lock.
  void rewrite(const std::vector<std::string>& lines);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

class CheckpointJournal {
 public:
  /// No file is touched until load()/open_for_append()/append().
  explicit CheckpointJournal(std::string path);

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// Parses every completed outcome (missing file = empty journal). A
  /// torn trailing line — no newline terminator — is discarded.
  std::vector<JobOutcome> load() const;

  /// Compacts the journal to the parseable prefix (atomically) and opens
  /// it for appending. Returns the outcomes that survived, i.e. the jobs
  /// --resume may skip.
  std::vector<JobOutcome> open_for_append();

  /// Appends one outcome and makes it durable (flush + fsync) before
  /// returning. Opens the file first if open_for_append was not called.
  void append(const JobOutcome& outcome);

  const std::string& path() const { return lines_.path(); }

 private:
  LineJournal lines_;
};

/// Sorted, timing-stripped journal lines: byte-identical for a given
/// manifest and seed regardless of worker count or completion order.
std::vector<std::string> canonical_journal(
    const std::vector<JobOutcome>& outcomes);

}  // namespace fixedpart::svc
