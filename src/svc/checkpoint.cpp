#include "svc/checkpoint.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/atomic_file.hpp"

namespace fixedpart::svc {

namespace {

/// Reads the journal's parseable content: complete lines only (a torn
/// trailing line without '\n' is a crash artifact and is dropped). Returns
/// false when the file does not exist.
bool read_complete_lines(const std::string& path,
                         std::vector<std::string>* lines) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) break;  // torn trailing line: discard
    if (end > start) lines->push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return true;
}

std::vector<JobOutcome> parse_lines(const std::vector<std::string>& lines,
                                    const std::string& path) {
  // Replay the journal through a LineReader so a corrupt complete line
  // reports its position like every other parser in the tree.
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  std::istringstream in(text);
  hg::LineReader reader(in, path, '#');
  std::vector<JobOutcome> outcomes;
  std::string line;
  while (reader.next(line)) {
    outcomes.push_back(job_outcome_from_json(line, reader));
  }
  return outcomes;
}

}  // namespace

LineJournal::LineJournal(std::string path) : path_(std::move(path)) {}

LineJournal::~LineJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

std::vector<std::string> LineJournal::load() const {
  std::vector<std::string> lines;
  read_complete_lines(path_, &lines);
  return lines;
}

std::vector<std::string> LineJournal::open_for_append() {
  std::vector<std::string> lines;
  if (read_complete_lines(path_, &lines)) {
    // Republish the complete prefix atomically: after this the file has
    // no torn tail.
    std::string text;
    for (const std::string& line : lines) {
      text += line;
      text += '\n';
    }
    util::write_file_atomic(path_, text);
  }
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("journal: cannot open " + path_);
  }
  // A fresh journal creates a new directory entry; make it durable before
  // appending so a post-crash resume finds the (possibly empty) journal
  // instead of appending to a file the crash un-created.
  util::sync_parent_dir(path_);
  return lines;
}

void LineJournal::rewrite(const std::vector<std::string>& lines) {
  // Close first so buffered appends cannot land after the rename.
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  util::write_file_atomic(path_, text);
  util::sync_parent_dir(path_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("journal: cannot reopen " + path_);
  }
}

void LineJournal::append(const std::string& line) {
  if (file_ == nullptr) open_for_append();
  const std::string out = line + "\n";
  if (std::fwrite(out.data(), 1, out.size(), file_) != out.size()) {
    throw std::runtime_error("journal: short write to " + path_);
  }
  util::flush_and_sync(file_, path_);
}

CheckpointJournal::CheckpointJournal(std::string path)
    : lines_(std::move(path)) {}

std::vector<JobOutcome> CheckpointJournal::load() const {
  return parse_lines(lines_.load(), lines_.path());
}

std::vector<JobOutcome> CheckpointJournal::open_for_append() {
  return parse_lines(lines_.open_for_append(), lines_.path());
}

void CheckpointJournal::append(const JobOutcome& outcome) {
  lines_.append(to_json_line(outcome));
}

std::vector<std::string> canonical_journal(
    const std::vector<JobOutcome>& outcomes) {
  std::vector<std::string> lines;
  lines.reserve(outcomes.size());
  for (const JobOutcome& outcome : outcomes) {
    lines.push_back(to_canonical_json_line(outcome));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

}  // namespace fixedpart::svc
