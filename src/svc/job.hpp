#pragma once
// Batch-job descriptions for the supervised execution engine (svc). A
// JobSpec says *what* to partition — an on-disk instance or a generated
// IBM-like circuit, plus regime/engine knobs — and a JobOutcome records
// what happened to it: result, attempts, error class, wall time. Both are
// serialized as flat single-line JSON objects so a manifest (one JobSpec
// per line) and a checkpoint journal (one JobOutcome per line) are plain
// JSONL files, diffable and greppable. Parsing reuses the hardened
// hg::LineReader, so malformed manifests fail with source:line context
// through the PR-2 error taxonomy (util::InputError, exit code 3).

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "hg/io_common.hpp"
#include "hg/types.hpp"

namespace fixedpart::svc {

using hg::Weight;

/// One unit of supervised work: an instance, a fixed-vertex regime, and
/// the multilevel engine knobs. Defaults describe a tiny smoke job.
struct JobSpec {
  /// Unique within a manifest; names the job in the journal and logs.
  std::string id;
  /// On-disk instance (.fpb or hMETIS .hgr); empty = generated circuit.
  std::string instance;
  /// Generator parameters (used when `instance` is empty).
  int circuit = 1;             ///< ibm-like preset index (1..5)
  std::string scale = "smoke"; ///< smoke | default | paper
  /// Fixed-vertex regime layered on top: free keeps the instance's own
  /// fixed vertices; good/rand fix `fixed_pct`% per the paper's protocol.
  std::string regime = "free"; ///< free | good | rand
  double fixed_pct = 0.0;
  /// Engine knobs.
  int starts = 1;                ///< multistart runs, best kept
  /// Shared-memory threads one job may use for its multistart. 1 (the
  /// default) keeps the serial protocol (best_of, the PR-5 seed path);
  /// > 1 switches to the parallel multistart protocol (best_of_parallel
  /// on the process-wide util::ThreadPool), whose result depends only on
  /// (starts, seed) — every value > 1 yields the same outcome, only
  /// wall-clock changes. Total process concurrency stays bounded by
  /// executor workers + pool size however large this knob is, because
  /// jobs borrow workers from one shared pool instead of spawning
  /// threads (docs/PARALLELISM.md).
  int threads_per_job = 1;
  std::uint64_t seed = 1;        ///< RNG seed; fully determines the result
  double tolerance_pct = 2.0;    ///< relative balance tolerance
  double budget_seconds = 0.0;   ///< per-attempt deadline; 0 = unlimited
  bool preflight = false;        ///< strict feasibility pre-flight
};

/// Terminal states of a job (docs/ROBUSTNESS.md has the state machine).
enum class JobStatus : std::uint8_t {
  kOk,         ///< completed within budget
  kTruncated,  ///< completed, but degraded by an expired deadline/cancel
  kFailed,     ///< permanent error (input/infeasible); never retried
  kPoisoned,   ///< transient errors exhausted max_attempts
};

/// Error classification at the job boundary (PR-2 taxonomy).
enum class ErrorClass : std::uint8_t {
  kNone,
  kTransient,   ///< bad_alloc, TransientError: retried with backoff
  kInput,       ///< util::InputError: permanent, failed fast
  kInfeasible,  ///< util::InfeasibleError: permanent, failed fast
  kInternal,    ///< unclassified exception: retried, then poisoned
  kCrash,       ///< worker process died (signal/OOM/hang): retried in a
                ///< fresh worker, poisoned after max_job_crashes
};

/// Retryable failure injected by infrastructure (IO hiccups, test fault
/// hooks). The executor backs off and retries these like bad_alloc.
class TransientError : public std::runtime_error {
 public:
  explicit TransientError(const std::string& msg) : std::runtime_error(msg) {}
};

/// A worker process died mid-attempt (signal, OOM kill, protocol EOF,
/// heartbeat-silent hang). Transient: the supervised loop retries the job
/// in a fresh worker with the usual backoff.
class WorkerCrashError : public TransientError {
 public:
  explicit WorkerCrashError(const std::string& msg) : TransientError(msg) {}
};

/// The same job has now crashed `max_job_crashes` workers — the circuit
/// breaker trips and the job is failed permanently as failed(crash)
/// instead of burning workers forever. NOT transient by design.
class WorkerPoisonedError : public std::runtime_error {
 public:
  explicit WorkerPoisonedError(const std::string& msg)
      : std::runtime_error(msg) {}
};

/// What happened to one job, as recorded in the checkpoint journal.
struct JobOutcome {
  std::string id;
  JobStatus status = JobStatus::kOk;
  ErrorClass error = ErrorClass::kNone;
  std::string message;   ///< diagnostic for failed/poisoned jobs
  int attempts = 1;
  Weight cut = 0;
  bool truncated = false;
  /// Engine effort of the winning attempt: FM moves/passes summed over
  /// the multistart. Deterministic given the spec (unlike `seconds`), so
  /// they are part of the canonical form. 0 for failed/poisoned jobs and
  /// for journals written before these fields existed.
  std::int64_t moves = 0;
  std::int64_t passes = 0;
  double seconds = 0.0;  ///< total wall time across attempts (a timestamp:
                         ///< excluded from the canonical form)
  /// Per-phase wall seconds of the winning job's trace, summed from the
  /// ml.coarsen_level / ml.initial / ml.refine_level spans
  /// (obs::phase_breakdown). Timing like `seconds`: excluded from the
  /// canonical form, serialized only when non-zero, and all-zero under
  /// FIXEDPART_OBS=OFF.
  double coarsen_seconds = 0.0;
  double initial_seconds = 0.0;
  double refine_seconds = 0.0;
};

const char* to_string(JobStatus status);
const char* to_string(ErrorClass error);
JobStatus job_status_from_string(const std::string& text);
ErrorClass error_class_from_string(const std::string& text);

/// One-line JSON serializations (no trailing newline).
std::string to_json_line(const JobSpec& spec);
std::string to_json_line(const JobOutcome& outcome);
/// The outcome minus wall-time: for a given manifest and seed this line is
/// byte-identical regardless of worker count or machine load, so sorted
/// canonical journals can be compared bit-for-bit (the determinism guard).
std::string to_canonical_json_line(const JobOutcome& outcome);

/// Parse one JSON line; failures throw hg::ParseError anchored at `at`.
JobSpec job_spec_from_json(const std::string& line, const hg::LineReader& at);
JobOutcome job_outcome_from_json(const std::string& line,
                                 const hg::LineReader& at);

/// Loads a JSONL manifest ('#' comments and blank lines allowed). Rejects
/// duplicate or empty ids and out-of-range knobs via util::InputError.
std::vector<JobSpec> load_manifest(std::istream& in,
                                   const std::string& source);
std::vector<JobSpec> load_manifest_file(const std::string& path);

}  // namespace fixedpart::svc
