#include "svc/process_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "hg/io_common.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "obs/trace_wire.hpp"
#include "util/errors.hpp"

namespace fixedpart::svc {

namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct WorkerMetrics {
  obs::MetricId spawned, crashed, oom_kills, respawns, hang_kills;
  obs::MetricId rss_peak_kb;
};

const WorkerMetrics& worker_metrics() {
  static const WorkerMetrics metrics = [] {
    auto& reg = obs::Registry::global();
    return WorkerMetrics{
        reg.counter("svc.worker.spawned"),
        reg.counter("svc.worker.crashed"),
        reg.counter("svc.worker.oom_kills"),
        reg.counter("svc.worker.respawns"),
        reg.counter("svc.worker.hang_kills"),
        reg.gauge("svc.worker.rss_peak_kb"),
    };
  }();
  return metrics;
}

JobOutcome parse_outcome_line(const std::string& line) {
  std::istringstream in(line + "\n");
  hg::LineReader reader(in, "worker", '#');
  std::string read;
  if (!reader.next(read)) {
    throw hg::ParseError("worker", 1, "empty outcome frame");
  }
  return job_outcome_from_json(read, reader);
}

std::string describe_signal(int sig) {
  const char* name = nullptr;
  switch (sig) {
#ifdef __unix__
    case SIGSEGV: name = "SIGSEGV"; break;
    case SIGABRT: name = "SIGABRT"; break;
    case SIGBUS: name = "SIGBUS"; break;
    case SIGILL: name = "SIGILL"; break;
    case SIGFPE: name = "SIGFPE"; break;
    case SIGKILL: name = "SIGKILL"; break;
    case SIGXCPU: name = "SIGXCPU"; break;
    case SIGTERM: name = "SIGTERM"; break;
#endif
    default: break;
  }
  std::string out = "signal " + std::to_string(sig);
  if (name != nullptr) out += std::string(" (") + name + ")";
  return out;
}

bool message_is_oom(const std::string& message) {
  return message.find("out of memory") != std::string::npos;
}

}  // namespace

std::string resolve_worker_path(const std::string& flag) {
  std::string path = flag;
  if (path.empty()) {
    const std::string dir = util::self_exe_dir();
    if (!dir.empty()) path = dir + "/fixedpart-worker";
  }
  if (path.empty() || !std::filesystem::exists(path)) {
    throw util::InputError(
        "process isolation: worker binary not found" +
        (path.empty() ? std::string() : ": " + path) +
        " (build the fixedpart_worker target or pass --worker=PATH)");
  }
  return path;
}

ProcessPool::ProcessPool(ProcessPoolConfig config)
    : config_(std::move(config)) {
  if (config_.worker_path.empty() ||
      !std::filesystem::exists(config_.worker_path)) {
    throw util::InputError("process pool: worker binary not found: " +
                           config_.worker_path);
  }
  if (config_.max_job_crashes < 1) {
    throw std::invalid_argument("process pool: max_job_crashes < 1");
  }
  // The daemon must survive a worker dying mid-frame as EPIPE, not
  // SIGPIPE (idempotent; leaves an app-installed handler alone).
  util::ignore_sigpipe();
  reaper_ = std::thread([this] { reaper_loop(); });
}

ProcessPool::~ProcessPool() {
  stopping_.store(true, std::memory_order_release);
  if (reaper_.joinable()) reaper_.join();
}

void ProcessPool::reaper_loop() {
  if (config_.heartbeat_timeout_seconds <= 0.0) return;
  const auto limit_ms =
      static_cast<std::int64_t>(config_.heartbeat_timeout_seconds * 1000.0);
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<std::shared_ptr<LiveWorker>> scan;
    {
      std::lock_guard<std::mutex> lock(mu_);
      scan.assign(live_.begin(), live_.end());
    }
    const std::int64_t now = steady_ms();
    for (const auto& worker : scan) {
      const std::int64_t age =
          now - worker->last_beat_ms.load(std::memory_order_acquire);
      if (age > limit_ms &&
          !worker->hang_killed.exchange(true, std::memory_order_acq_rel)) {
        // Heartbeat-silent past the limit: presumed wedged. The attendant
        // sees EOF, reaps, and classifies the exit as a hang crash.
        obs::log_warn("svc", "reaper killing heartbeat-silent worker",
                      {{"pid", static_cast<std::int64_t>(worker->pid)},
                       {"age_seconds", static_cast<double>(age) / 1000.0}});
        util::kill_child(worker->pid, SIGKILL);
      }
    }
  }
}

double ProcessPool::respawn_backoff_locked(const std::string& id,
                                           int streak) const {
  double delay = config_.respawn_backoff_base_seconds *
                 std::ldexp(1.0, std::min(streak - 1, 30));
  delay = std::min(delay, config_.respawn_backoff_cap_seconds);
  const std::uint64_t bits =
      splitmix64(fnv1a(id) ^ static_cast<std::uint64_t>(streak));
  const double unit = static_cast<double>(bits >> 11) * 0x1.0p-53;
  return delay * (1.0 + config_.respawn_jitter_fraction * unit);
}

JobResult ProcessPool::attempt(const JobSpec& spec,
                               const util::Deadline& deadline) {
  auto& reg = obs::Registry::global();

  // Crash-streak backoff gates the spawn, not the retry (the retry loop
  // has its own): a crash-looping fleet forks at a bounded rate.
  double backoff = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crash_streak_ > 0) {
      backoff = respawn_backoff_locked(spec.id, crash_streak_);
      ++stats_.respawns;
    }
  }
  if (backoff > 0.0) {
    reg.add(worker_metrics().respawns);
    if (config_.sleep_fn) {
      config_.sleep_fn(backoff);
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
  }

  util::SpawnLimits limits;
  limits.rlimit_as_bytes = config_.rlimit_as_bytes;
  limits.rlimit_cpu_seconds = config_.rlimit_cpu_seconds;
  limits.allow_core = config_.allow_core;
  util::ChildProcess child =
      util::spawn_worker({config_.worker_path}, limits);
  reg.add(worker_metrics().spawned);

  auto live = std::make_shared<LiveWorker>();
  live->pid = child.pid;
  live->job = spec.id;
  live->last_beat_ms.store(steady_ms(), std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.spawned;
    live_.insert(live);
  }

  // The attendant: feed the spec, consume heartbeats and span batches,
  // wait for the one outcome frame, policing the deadline with a
  // cancel-then-kill ladder. It runs on run_supervised_job's thread, so
  // the current trace context *is* the job's span buffer: worker spans
  // decoded here land next to the parent's own svc.* spans.
  const obs::TraceContext trace_ctx = obs::ScopedTraceContext::current();
  // Worker-to-parent steady-epoch offset, estimated as the minimum over
  // received 'T' frames of (parent now at receipt − worker now at
  // encode); the minimum tracks the true offset as transit jitter varies.
  std::int64_t epoch_offset_ns = 0;
  bool have_offset = false;
  std::uint64_t worker_dropped_seen = 0;
  std::string outcome_line;
  bool have_outcome = false;
  {
    (void)util::write_frame(child.to_child, util::kFrameJob,
                            to_json_line(spec));
    util::FrameReader reader(child.from_child);
    bool cancel_sent = false;
    std::int64_t kill_at_ms = 0;
    char type = 0;
    std::string payload;
    for (;;) {
      const auto status = reader.poll_frame(50, &type, &payload);
      if (status == util::FrameReader::Status::kFrame) {
        live->last_beat_ms.store(steady_ms(), std::memory_order_release);
        if (type == util::kFrameOutcome) {
          outcome_line = payload;
          have_outcome = true;
          break;
        }
        if (type == util::kFrameSpans) {
          // Untrusted payload: decode is defensive (caps, skip-and-count)
          // and a malformed batch degrades only this job's trace.
          obs::SpanBatchHeader header;
          std::vector<obs::TraceEvent> batch;
          std::size_t malformed = 0;
          if (obs::decode_span_batch(payload, &header, &batch, &malformed)) {
            const std::int64_t offset =
                obs::trace_now_ns() - header.worker_now_ns;
            if (!have_offset || offset < epoch_offset_ns) {
              epoch_offset_ns = offset;
              have_offset = true;
            }
            for (obs::TraceEvent& event : batch) {
              event.start_ns += epoch_offset_ns;
              event.pid = static_cast<std::uint32_t>(child.pid);
              event.trace_id = trace_ctx.trace_id;
              if (trace_ctx.buffer != nullptr) {
                trace_ctx.buffer->record(event);
              }
            }
            if (!batch.empty()) {
              live->last_span.store(batch.back().name,
                                    std::memory_order_release);
            }
            if (trace_ctx.buffer != nullptr) {
              if (header.dropped > worker_dropped_seen) {
                trace_ctx.buffer->add_remote_dropped(header.dropped -
                                                     worker_dropped_seen);
                worker_dropped_seen = header.dropped;
              }
              trace_ctx.buffer->add_remote_dropped(malformed);
            }
          }
          continue;
        }
        continue;  // heartbeat (or an unknown type from a newer worker)
      }
      if (status == util::FrameReader::Status::kEof) break;
      // Timeout tick: police the supervisor-side deadline (budget, user
      // cancel, watchdog — all funnel through deadline.expired()).
      const std::int64_t now = steady_ms();
      if (!cancel_sent && deadline.expired()) {
        cancel_sent = true;
        kill_at_ms =
            now + static_cast<std::int64_t>(
                      std::max(config_.cancel_grace_seconds, 0.0) * 1000.0);
        (void)util::write_frame(child.to_child, util::kFrameCancel, "");
      }
      if (cancel_sent && now >= kill_at_ms &&
          !live->hang_killed.exchange(true, std::memory_order_acq_rel)) {
        // The grace ran out without a best-so-far outcome: the worker is
        // not unwinding cooperatively — treat it like a hang.
        util::kill_child(child.pid, SIGKILL);
      }
    }
  }

#ifdef __unix__
  close(child.to_child);
  close(child.from_child);
#endif
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_.erase(live);
  }
  const util::ExitStatus exit = util::wait_child(child.pid);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (exit.max_rss_kb > stats_.rss_peak_kb) {
      stats_.rss_peak_kb = exit.max_rss_kb;
      reg.set(worker_metrics().rss_peak_kb,
              static_cast<double>(exit.max_rss_kb));
    }
  }

  if (have_outcome) {
    JobOutcome outcome;
    bool parsed = false;
    try {
      outcome = parse_outcome_line(outcome_line);
      parsed = outcome.id == spec.id;
    } catch (const hg::ParseError&) {
      parsed = false;
    }
    if (parsed) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        crash_streak_ = 0;  // a clean protocol exit ends the streak
        if (outcome.status == JobStatus::kOk ||
            outcome.status == JobStatus::kTruncated) {
          crash_counts_.erase(spec.id);
        }
      }
      if (outcome.status == JobStatus::kOk ||
          outcome.status == JobStatus::kTruncated) {
        JobResult result;
        result.cut = outcome.cut;
        result.truncated = outcome.truncated;
        result.moves = outcome.moves;
        result.passes = outcome.passes;
        return result;
      }
      // The worker caught an engine error and reported its class; rethrow
      // as the original taxonomy type so run_supervised_job's decision —
      // fail fast vs retry — is identical to the in-process path.
      switch (outcome.error) {
        case ErrorClass::kInput:
          throw util::InputError(outcome.message);
        case ErrorClass::kInfeasible:
          throw util::InfeasibleError(outcome.message);
        case ErrorClass::kTransient:
          if (message_is_oom(outcome.message)) {
            // RLIMIT_AS contained the allocation inside the worker: the
            // job is classified OOM without anything having died.
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.oom_kills;
            reg.add(worker_metrics().oom_kills);
          }
          throw TransientError(outcome.message);
        default:
          throw std::runtime_error(outcome.message);
      }
    }
    // Unparseable or mismatched outcome: fall through to crash handling.
  }

  // No clean outcome: classify the exit at the process boundary.
  const bool hang = live->hang_killed.load(std::memory_order_acquire);
  bool oom = false;
  std::string how;
  if (hang) {
    how = "worker hung (heartbeat-silent / ignored cancel); SIGKILLed";
  } else if (exit.signaled) {
    how = "worker died: " + describe_signal(exit.term_signal);
    if (exit.term_signal == SIGKILL) {
      // Not our kill (hang covers those): the kernel OOM killer is the
      // expected sender under memory pressure.
      oom = true;
      how += " [oom-kill]";
    }
  } else if (exit.exited && exit.exit_code == 127) {
    how = "worker exec failed (exit 127): " + config_.worker_path;
  } else if (exit.exited && exit.exit_code == 0) {
    how = have_outcome ? "worker sent a malformed outcome frame"
                       : "worker exited without an outcome frame";
  } else {
    how = "worker exited with code " + std::to_string(exit.exit_code);
  }
  how += " (job " + spec.id + ", pid " + std::to_string(child.pid) + ")";

  int crashes = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.crashed;
    ++crash_streak_;
    if (hang) ++stats_.hang_kills;
    if (oom) ++stats_.oom_kills;
    crashes = ++crash_counts_[spec.id];
  }
  reg.add(worker_metrics().crashed);
  if (hang) reg.add(worker_metrics().hang_kills);
  if (oom) reg.add(worker_metrics().oom_kills);
  obs::log_warn("svc", "worker crash",
                {{"id", spec.id},
                 {"pid", static_cast<std::int64_t>(child.pid)},
                 {"what", how},
                 {"job_crashes", crashes}});
  if (!config_.flight_dir.empty()) {
    // Leave the timeline that explains the crash/hang counter increment:
    // parent-side flight ring + the worker's last streamed phase.
    const char* last = live->last_span.load(std::memory_order_acquire);
    obs::FlightRecorder::global().dump(config_.flight_dir,
                                       hang ? "hang" : "crash", spec.id,
                                       last != nullptr ? last : "");
  }

  if (crashes >= config_.max_job_crashes) {
    throw WorkerPoisonedError("job crashed " + std::to_string(crashes) +
                              " workers; poisoned: " + how);
  }
  throw WorkerCrashError(how);
}

ProcessPoolStats ProcessPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string ProcessPool::stats_json() const {
  const auto escape = [](const std::string& text) {
    std::string out;
    for (const char c : text) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';
      } else {
        out += c;
      }
    }
    return out;
  };
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"spawned\": " << stats_.spawned
      << ", \"crashed\": " << stats_.crashed
      << ", \"oom_kills\": " << stats_.oom_kills
      << ", \"respawns\": " << stats_.respawns
      << ", \"hang_kills\": " << stats_.hang_kills
      << ", \"rss_peak_kb\": " << stats_.rss_peak_kb << ", \"live\": [";
  const std::int64_t now = steady_ms();
  bool first = true;
  for (const auto& worker : live_) {
    const char* span = worker->last_span.load(std::memory_order_acquire);
    const double beat_age =
        static_cast<double>(
            now - worker->last_beat_ms.load(std::memory_order_acquire)) /
        1000.0;
    out << (first ? "" : ", ") << "{\"pid\": " << worker->pid
        << ", \"job\": \"" << escape(worker->job) << "\", \"phase\": \""
        << escape(span != nullptr ? span : "") << "\", \"beat_age_seconds\": "
        << beat_age << "}";
    first = false;
  }
  out << "]}";
  return out.str();
}

}  // namespace fixedpart::svc
