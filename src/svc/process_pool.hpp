#pragma once
// Crash-isolated job execution: every attempt runs in a fork/exec'd
// `fixedpart-worker` process instead of the caller's address space, so a
// pathological instance — OOM, heap corruption, an assert, a runaway
// loop — kills one worker and not the daemon (docs/ROBUSTNESS.md
// "Process supervision tree").
//
// ProcessPool::attempt has the exact JobRunner shape, so both
// svc::PartitionServer and svc::BatchExecutor gain isolation by swapping
// the runner (--isolation=process), and a crashed attempt re-enters the
// *existing* retry/backoff loop in run_supervised_job: the pool reports a
// crash by throwing WorkerCrashError (transient → retried in a fresh
// worker) or, once the same job has crashed max_job_crashes workers,
// WorkerPoisonedError (the circuit breaker → failed(crash), never retried
// again). Because the job protocol — spec in, outcome out — is the same
// JSONL the journals use, journal bytes are identical across isolation
// modes for crash-free fleets.
//
// Supervision per attempt:
//   * the worker is spawned under SpawnLimits (RLIMIT_AS / RLIMIT_CPU /
//     RLIMIT_CORE) with the frame protocol on fds 3/4;
//   * the attendant (the calling worker thread) feeds the 'J' spec frame,
//     consumes 'H' heartbeats, and waits for the single 'O' outcome;
//   * a pool-wide reaper thread scans every live worker and SIGKILLs any
//     that has been heartbeat-silent past heartbeat_timeout_seconds (a
//     wedged worker cannot rent its attendant forever);
//   * when the attendant's own deadline expires (budget, user cancel,
//     watchdog) it sends one 'C' frame and gives the worker
//     cancel_grace_seconds to unwind cooperatively — the worker's
//     best-so-far truncated outcome still counts — before SIGKILL;
//   * every exit is classified: clean outcome; nonzero exit, fatal signal
//     (SIGSEGV/SIGABRT/...), SIGXCPU and protocol EOF → crash; SIGKILL →
//     OOM kill unless the reaper/grace timer marked it a hang.
//
// Respawn after a crash backs off exponentially with deterministic jitter
// (same discipline as the retry loop), so a crash-looping fleet cannot
// fork-bomb the host. svc.worker.{spawned,crashed,oom_kills,respawns,
// rss_peak_kb} flow into the obs registry.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "svc/executor.hpp"
#include "svc/job.hpp"
#include "util/deadline.hpp"
#include "util/subprocess.hpp"

namespace fixedpart::svc {

struct ProcessPoolConfig {
  /// Path to the fixedpart-worker binary. Required; the constructor
  /// throws util::InputError if it does not name an executable file.
  std::string worker_path;
  /// setrlimit caps applied to every worker (0 = inherit).
  long long rlimit_as_bytes = 0;
  long long rlimit_cpu_seconds = 0;
  bool allow_core = false;
  /// A worker silent (no frame of any kind) this long is presumed wedged
  /// and SIGKILLed by the reaper; its job crash-retries. Workers beat
  /// ~every 50 ms, so this measures real hangs, not load. <= 0 disables.
  double heartbeat_timeout_seconds = 10.0;
  /// After the attendant sends a cancel frame (budget expiry, user
  /// cancel), how long the worker gets to unwind and deliver its
  /// best-so-far outcome before SIGKILL.
  double cancel_grace_seconds = 5.0;
  /// A job that has crashed this many workers is poisoned as
  /// failed(crash) instead of retried (the circuit breaker). >= 1.
  int max_job_crashes = 2;
  /// Exponential respawn backoff applied before spawning while the pool
  /// is in a crash streak (deterministic jitter from the job id).
  double respawn_backoff_base_seconds = 0.05;
  double respawn_backoff_cap_seconds = 2.0;
  double respawn_jitter_fraction = 0.25;
  /// Backoff sleep override (tests capture delays instead of sleeping).
  std::function<void(double seconds)> sleep_fn;
  /// When non-empty, every crash/hang classification dumps the flight
  /// recorder to <flight_dir>/<crash|hang>-<jobid>.json naming the job
  /// and the worker's last streamed span (docs/ROBUSTNESS.md "Flight
  /// recorder").
  std::string flight_dir;
};

/// Counters the tests and /progress read back; mirrors the svc.worker.*
/// registry metrics (which compile away under FIXEDPART_OBS=OFF).
struct ProcessPoolStats {
  std::int64_t spawned = 0;    ///< workers forked (respawns included)
  std::int64_t crashed = 0;    ///< exits without a clean outcome
  std::int64_t oom_kills = 0;  ///< SIGKILLed (not by us) or worker-reported
                               ///< out-of-memory under RLIMIT_AS
  std::int64_t respawns = 0;   ///< spawns that paid a crash-streak backoff
  std::int64_t hang_kills = 0; ///< reaper/grace SIGKILLs of silent workers
  long rss_peak_kb = 0;        ///< max ru_maxrss over all reaped workers
};

class ProcessPool {
 public:
  explicit ProcessPool(ProcessPoolConfig config);
  ~ProcessPool();
  ProcessPool(const ProcessPool&) = delete;
  ProcessPool& operator=(const ProcessPool&) = delete;

  /// Runs one attempt of `spec` in a fresh worker process. JobRunner
  /// shape: returns the worker's result, or throws per the taxonomy —
  /// worker-reported errors are rethrown as their original classes
  /// (InputError/InfeasibleError/TransientError/runtime_error), a dead
  /// worker as WorkerCrashError/WorkerPoisonedError.
  JobResult attempt(const JobSpec& spec, const util::Deadline& deadline);

  /// The pool as a JobRunner (binds `this`; the pool must outlive it).
  JobRunner runner() {
    return [this](const JobSpec& spec, const util::Deadline& deadline) {
      return attempt(spec, deadline);
    };
  }

  ProcessPoolStats stats() const;
  /// `"workers": {...}` fragment (no braces balance issues: a complete
  /// JSON object) for merging into /progress bodies.
  std::string stats_json() const;

 private:
  struct LiveWorker {
    long long pid = -1;
    std::string job;  ///< set before publication into live_, then const
    std::atomic<std::int64_t> last_beat_ms{0};
    std::atomic<bool> hang_killed{false};
    /// Name of the last span streamed over a 'T' frame (an interned
    /// pointer — immortal), i.e. the worker's last recorded phase.
    std::atomic<const char*> last_span{nullptr};
  };

  void reaper_loop();
  double respawn_backoff_locked(const std::string& id, int streak) const;

  ProcessPoolConfig config_;

  mutable std::mutex mu_;
  std::set<std::shared_ptr<LiveWorker>> live_;
  std::map<std::string, int> crash_counts_;  ///< per job id
  int crash_streak_ = 0;  ///< consecutive crashes pool-wide, for backoff
  ProcessPoolStats stats_;

  std::atomic<bool> stopping_{false};
  std::thread reaper_;
};

/// Resolves the worker binary: `flag` if non-empty, else
/// "fixedpart-worker" next to the running executable. Throws
/// util::InputError when the result does not exist.
std::string resolve_worker_path(const std::string& flag);

}  // namespace fixedpart::svc
