#pragma once
// The Section II experiment behind Figs. 1 and 2: for each percentage of
// fixed vertices, for the "good" and "rand" regimes, run T independent
// trials of the multilevel partitioner with 1/2/4/8 starts and report the
// average best cut (raw), the normalized best cut, and the average CPU
// time per trial.
//
// Multistart is realized as best-of-prefix: each trial performs
// max(starts) independent runs, and the s-start result is the best of the
// first s runs — its expectation is identical to s fresh runs, at a
// quarter of the compute.
//
// Normalization follows the paper exactly: good-regime costs are divided
// by the single good reference cut; rand-regime costs are divided by the
// best cut seen across *all* starts of *all* trials for that percentage
// (each rand percentage is a distinct instance).

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "experiments/context.hpp"
#include "gen/regimes.hpp"
#include "svc/executor.hpp"
#include "util/rng.hpp"

namespace fixedpart::exp {

struct SweepConfig {
  std::vector<double> percentages = {0.0, 0.1, 0.5, 1.0,  2.0,  5.0,
                                     10.0, 15.0, 20.0, 30.0, 40.0, 50.0};
  std::vector<int> starts = {1, 2, 4, 8};
  int trials = 50;
  ml::MultilevelConfig ml;
};

/// One (regime, percentage, starts) data point.
struct SweepCell {
  double avg_best_cut = 0.0;   ///< mean over trials of best-of-starts cut
  double normalized = 0.0;     ///< avg_best_cut / regime normalizer
  double avg_seconds = 0.0;    ///< mean total CPU per trial (all starts)
};

struct SweepSeries {
  /// cells[pct_index][starts_index]
  std::vector<std::vector<SweepCell>> cells;
  /// Best cut seen over every run at each percentage (rand normalizer).
  std::vector<Weight> best_seen;
};

struct SweepResult {
  std::vector<double> percentages;
  std::vector<int> starts;
  SweepSeries good;
  SweepSeries rand;
  /// A deadline in SweepConfig::ml expired during the sweep: every cell is
  /// still populated (each run degrades to its best-so-far, see
  /// MultilevelConfig::deadline), but cuts from degraded runs are not
  /// comparable to full runs and the sweep should be reported as such.
  bool truncated = false;
};

SweepResult run_fixed_sweep(const InstanceContext& context,
                            const SweepConfig& config, util::Rng& rng);

// --- supervised (resumable) sweep ----------------------------------------
//
// The same experiment expressed as a fleet of svc::JobSpecs — one job per
// (regime, percentage, trial, run) — executed through the batch engine, so
// the paper reproductions inherit its guarantees: per-job deadlines,
// retry-with-backoff, hang cancellation, graceful drain, and crash-safe
// checkpoint/resume. Every job's seed is pre-forked from `seed` in
// manifest order, so results are deterministic regardless of worker count
// and a resumed sweep is bit-identical to an uninterrupted one.

struct SupervisedSweepOptions {
  int workers = 1;
  /// Seeds the fixed-vertex series and every job's RNG stream.
  std::uint64_t seed = 20260707;
  /// Checkpoint journal path; empty = run without checkpointing. Without
  /// `resume`, an existing journal is replaced.
  std::string journal_path;
  bool resume = false;
  /// Per-job wall-clock budget (0 = unlimited); expired jobs degrade to
  /// best-so-far and are flagged truncated.
  double job_budget_seconds = 0.0;
  svc::RetryPolicy retry;
  double hang_seconds = 0.0;
  const std::atomic<bool>* drain = nullptr;  ///< SIGINT/SIGTERM drain flag
};

struct SupervisedSweepRun {
  svc::BatchReport report;
  /// Populated only when every job finished with a usable result (ok or
  /// truncated); a drained/halted or failure-ridden fleet leaves it empty
  /// (rerun with resume to finish).
  std::optional<SweepResult> result;
};

SupervisedSweepRun run_supervised_sweep(const InstanceContext& context,
                                        const SweepConfig& config,
                                        const SupervisedSweepOptions& options);

}  // namespace fixedpart::exp
