#include "experiments/pass_experiments.hpp"

#include <stdexcept>

#include "gen/regimes.hpp"
#include "obs/pass_observer.hpp"
#include "obs/registry.hpp"
#include "part/fm.hpp"
#include "part/initial.hpp"
#include "part/partition.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace fixedpart::exp {

namespace {

hg::FixedAssignment good_instance(const InstanceContext& context, double pct,
                                  util::Rng& rng) {
  gen::FixedVertexSeries series(context.circuit.graph, 2, rng);
  return series.good_regime(pct, context.good_reference);
}

/// Table II statistics as a thin observer: per-pass aggregation happens
/// on the engine's pass-end events instead of post-processing
/// FmResult::pass_records. The accumulation below mirrors the legacy loop
/// in run_pass_stats line for line — same values, same order — which is
/// what keeps the two paths bit-identical.
class TableTwoCollector final : public obs::PassObserver {
 public:
  TableTwoCollector(util::RunningStat& pct_moved,
                    util::RunningStat& pct_performed,
                    util::Histogram& prefix_positions)
      : pct_moved_(pct_moved),
        pct_performed_(pct_performed),
        prefix_positions_(prefix_positions) {}

  void on_pass_begin(const obs::PassBegin& begin) override {
    movable_ = begin.movable;
  }

  void on_pass_end(const obs::PassEnd& end) override {
    // Skip the first pass (the paper's protocol) and degenerate passes,
    // exactly like the pass_records loop.
    if (end.pass < 1 || movable_ == 0) return;
    pct_moved_.add(100.0 * static_cast<double>(end.best_prefix) /
                   static_cast<double>(movable_));
    pct_performed_.add(100.0 * static_cast<double>(end.moves_performed) /
                       static_cast<double>(movable_));
    if (end.moves_performed > 0 && end.best_prefix > 0) {
      prefix_positions_.add(static_cast<double>(end.best_prefix) /
                            static_cast<double>(end.moves_performed));
    }
  }

 private:
  util::RunningStat& pct_moved_;
  util::RunningStat& pct_performed_;
  util::Histogram& prefix_positions_;
  std::int32_t movable_ = 0;
};

}  // namespace

std::vector<PassStatsRow> run_pass_stats(const InstanceContext& context,
                                         const PassStatsConfig& config,
                                         util::Rng& rng) {
  if (config.runs < 1) throw std::invalid_argument("pass_stats: runs < 1");
  std::vector<PassStatsRow> rows;
  for (double pct : config.percentages) {
    const hg::FixedAssignment fixed = good_instance(context, pct, rng);
    part::FmBipartitioner engine(context.circuit.graph, fixed,
                                 context.balance);
    part::FmConfig fm;
    fm.policy = part::SelectionPolicy::kLifo;

    util::RunningStat passes;
    util::RunningStat pct_moved;
    util::RunningStat pct_performed;
    util::Histogram prefix_positions(0.0, 1.0, 10);
    // Observer path: the engine streams pass events into the collector and
    // does not retain pass records at all. Falls back to the pass_records
    // loop when the hooks are compiled out (FIXEDPART_OBS=OFF).
    TableTwoCollector collector(pct_moved, pct_performed, prefix_positions);
    const bool use_observer = config.use_observer && obs::kEnabled;
    if (use_observer) {
      fm.observer = &collector;
      fm.collect_pass_records = false;
    }
    part::PartitionState state(context.circuit.graph, 2);
    for (int run = 0; run < config.runs; ++run) {
      part::random_feasible_assignment(state, fixed, context.balance, rng);
      const auto result = engine.refine(state, rng, fm);
      passes.add(static_cast<double>(result.passes));
      if (use_observer) continue;
      for (std::size_t p = 1; p < result.pass_records.size(); ++p) {
        const auto& rec = result.pass_records[p];
        if (rec.movable == 0) continue;
        pct_moved.add(100.0 * static_cast<double>(rec.best_prefix) /
                      static_cast<double>(rec.movable));
        pct_performed.add(100.0 * static_cast<double>(rec.moves_performed) /
                          static_cast<double>(rec.movable));
        if (rec.moves_performed > 0 && rec.best_prefix > 0) {
          prefix_positions.add(static_cast<double>(rec.best_prefix) /
                               static_cast<double>(rec.moves_performed));
        }
      }
    }
    PassStatsRow row;
    row.pct_fixed = pct;
    row.avg_passes = passes.mean();
    row.avg_pct_moved = pct_moved.empty() ? 0.0 : pct_moved.mean();
    row.avg_pct_performed =
        pct_performed.empty() ? 0.0 : pct_performed.mean();
    for (std::size_t d = 0; d < 10; ++d) {
      row.prefix_position_deciles[d] =
          prefix_positions.total() == 0
              ? 0.0
              : 100.0 * static_cast<double>(prefix_positions.bin_count(d)) /
                    static_cast<double>(prefix_positions.total());
    }
    rows.push_back(row);
  }
  return rows;
}

CutoffResult run_cutoff_experiment(const InstanceContext& context,
                                   const CutoffConfig& config,
                                   util::Rng& rng) {
  if (config.runs < 1) throw std::invalid_argument("cutoff: runs < 1");
  CutoffResult result;
  result.percentages = config.percentages;
  result.cutoffs = config.cutoffs;

  for (double pct : config.percentages) {
    const hg::FixedAssignment fixed = good_instance(context, pct, rng);
    part::FmBipartitioner fm_engine(context.circuit.graph, fixed,
                                    context.balance);
    std::vector<CutoffCell> row;
    for (double cutoff : config.cutoffs) {
      part::FmConfig fm;
      fm.policy = part::SelectionPolicy::kLifo;
      fm.pass_cutoff = cutoff;
      fm.collect_pass_records = false;  // only final cut and time are used
      util::RunningStat cut;
      util::RunningStat seconds;
      part::PartitionState state(context.circuit.graph, 2);
      for (int run = 0; run < config.runs; ++run) {
        // Same initial-solution stream for every cutoff column: a per-run
        // RNG from a deterministic seed keeps the columns paired.
        util::Rng run_rng(0xC0F0FFULL * 2654435761ULL +
                          static_cast<std::uint64_t>(run) * 0x9e3779b9ULL +
                          static_cast<std::uint64_t>(pct * 1000.0));
        part::random_feasible_assignment(state, fixed, context.balance,
                                         run_rng);
        util::Timer timer;
        const auto fm_result = fm_engine.refine(state, run_rng, fm);
        seconds.add(timer.seconds());
        cut.add(static_cast<double>(fm_result.final_cut));
      }
      row.push_back({cut.mean(), seconds.mean()});
    }
    result.cells.push_back(std::move(row));
  }
  (void)rng;
  return result;
}

}  // namespace fixedpart::exp
