#pragma once
// Table IV reporting: parameters of the derived fixed-terminal benchmark
// instances (cells, pads/terminals, nets, external nets, Max %), and the
// Rent's-rule cross-check the paper performs ("we have verified that the
// numbers of external nets in our benchmarks correspond reasonably to the
// statistics in Table I").

#include <string>
#include <vector>

#include "gen/derive.hpp"
#include "gen/netlist_gen.hpp"

namespace fixedpart::exp {

struct DerivedRow {
  std::string name;
  hg::VertexId cells = 0;
  hg::VertexId pads = 0;       ///< zero-area terminal vertices
  hg::NetId nets = 0;
  hg::NetId external_nets = 0; ///< nets incident to a terminal
  double max_pct = 0.0;        ///< largest cell as % of total cell area
  /// Rent's-rule expectation of terminal count for this block size
  /// (k = 3.5, p = 0.68), for the Table I cross-check.
  double rent_expected_terminals = 0.0;
};

std::vector<DerivedRow> derive_report(const gen::GeneratedCircuit& circuit,
                                      double tolerance_pct);

}  // namespace fixedpart::exp
