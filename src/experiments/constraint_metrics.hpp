#pragma once
// Candidate measures of the "strength of fixed terminals" — the paper's
// Sec. V open problem: "it is not yet clear how to measure the strength of
// fixed terminals, or alternatively the degree of constraint in particular
// problem instances ... we need to quantify the degree of constraint in an
// invariant way."
//
// The metrics below are invariant under the terminal-clustering transform
// (they depend only on which nets touch terminals of which side), which is
// exactly the invariance the paper asks for: an instance and its
// two-terminal clustered equivalent score identically.

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"

namespace fixedpart::exp {

struct ConstraintMetrics {
  /// Share of vertices that are singleton-fixed (the x-axis of the
  /// paper's plots). NOT clustering-invariant; kept for reference.
  double pct_fixed = 0.0;
  /// Share of *movable* vertices incident to >= 1 net that contains a
  /// fixed vertex: how much of the free region feels terminal pull.
  double pct_movable_adjacent = 0.0;
  /// Mean over movable vertices of the fraction of their incident nets
  /// containing a fixed vertex (0 = free instance, 1 = every net anchored).
  double avg_terminal_incidence = 0.0;
  /// Fraction of total net weight incident to >= 1 fixed vertex.
  double anchored_net_fraction = 0.0;
  /// Fraction of total net weight on nets whose *fixed* pins already span
  /// two or more partitions — such nets are cut in every feasible
  /// solution, so forced_cut_weight is a lower bound on the optimum.
  double contested_net_fraction = 0.0;
  hg::Weight forced_cut_weight = 0;
};

ConstraintMetrics compute_constraint_metrics(const hg::Hypergraph& graph,
                                             const hg::FixedAssignment& fixed);

}  // namespace fixedpart::exp
