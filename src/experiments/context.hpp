#pragma once
// Per-instance experiment context: the generated circuit, the paper's
// balance constraint (2-way, 2% tolerance, actual cell areas), and a
// best-known "good" reference solution of the free (no fixed vertices)
// instance, found by multistart multilevel partitioning. The good regime
// of Figs. 1-2 fixes vertices consistently with this reference, and good-
// regime costs are normalized against its cut.

#include <vector>

#include "gen/netlist_gen.hpp"
#include "hg/fixed.hpp"
#include "ml/multilevel.hpp"
#include "part/balance.hpp"
#include "util/rng.hpp"

namespace fixedpart::exp {

using hg::PartitionId;
using hg::VertexId;
using hg::Weight;

struct InstanceContext {
  gen::GeneratedCircuit circuit;
  part::BalanceConstraint balance;
  /// Free-hypergraph assignment with the best cut we found.
  std::vector<PartitionId> good_reference;
  Weight good_cut = 0;
};

/// Standard multilevel configuration used across all experiments (CLIP
/// refinement, no pass cutoff) — the paper's engine defaults.
ml::MultilevelConfig default_ml_config();

/// Generates the circuit and solves the free instance with
/// `reference_starts` multilevel starts to obtain the good reference.
InstanceContext make_context(const gen::CircuitSpec& spec,
                             int reference_starts, double tolerance_pct,
                             util::Rng& rng);

}  // namespace fixedpart::exp
