#include "experiments/derive_report.hpp"

#include "gen/rent.hpp"
#include "hg/stats.hpp"

namespace fixedpart::exp {

std::vector<DerivedRow> derive_report(const gen::GeneratedCircuit& circuit,
                                      double tolerance_pct) {
  std::vector<DerivedRow> rows;
  for (const gen::DerivedInstance& derived :
       gen::derive_family(circuit, tolerance_pct)) {
    const hg::InstanceStats stats = hg::compute_stats(derived.instance.graph);
    DerivedRow row;
    row.name = derived.name;
    row.cells = stats.num_cells;
    row.pads = stats.num_pads;
    row.nets = stats.num_nets;
    row.external_nets = stats.num_external_nets;
    row.max_pct = stats.max_cell_area_pct;
    row.rent_expected_terminals = gen::rent_terminals(
        static_cast<double>(stats.num_cells), /*rent_p=*/0.68,
        /*pins_per_cell=*/3.5);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace fixedpart::exp
