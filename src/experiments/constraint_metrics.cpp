#include "experiments/constraint_metrics.hpp"

#include <stdexcept>
#include <vector>

namespace fixedpart::exp {

ConstraintMetrics compute_constraint_metrics(
    const hg::Hypergraph& graph, const hg::FixedAssignment& fixed) {
  if (fixed.num_vertices() != graph.num_vertices()) {
    throw std::invalid_argument("constraint_metrics: size mismatch");
  }
  ConstraintMetrics m;
  const hg::VertexId n = graph.num_vertices();
  if (n == 0) return m;

  // Per-net: does it touch a fixed vertex, and do its fixed pins span
  // more than one partition?
  std::vector<std::uint8_t> net_anchored(
      static_cast<std::size_t>(graph.num_nets()), 0);
  hg::Weight total_net_weight = 0;
  hg::Weight anchored_weight = 0;
  hg::Weight contested_weight = 0;
  for (hg::NetId e = 0; e < graph.num_nets(); ++e) {
    const hg::Weight w = graph.net_weight(e);
    total_net_weight += w;
    hg::PartitionId first_side = hg::kNoPartition;
    bool anchored = false;
    bool contested = false;
    for (const hg::VertexId v : graph.pins(e)) {
      const hg::PartitionId p = fixed.fixed_part(v);
      if (p == hg::kNoPartition) continue;
      anchored = true;
      if (first_side == hg::kNoPartition) {
        first_side = p;
      } else if (p != first_side) {
        contested = true;
      }
    }
    net_anchored[e] = anchored ? 1 : 0;
    if (anchored) anchored_weight += w;
    if (contested) {
      contested_weight += w;
      m.forced_cut_weight += w;
    }
  }

  hg::VertexId fixed_count = 0;
  hg::VertexId movable = 0;
  hg::VertexId movable_adjacent = 0;
  double incidence_sum = 0.0;
  for (hg::VertexId v = 0; v < n; ++v) {
    if (fixed.is_fixed(v)) {
      ++fixed_count;
      continue;
    }
    ++movable;
    const auto nets = graph.nets_of(v);
    if (nets.empty()) continue;
    int anchored = 0;
    for (const hg::NetId e : nets) anchored += net_anchored[e];
    if (anchored > 0) ++movable_adjacent;
    incidence_sum +=
        static_cast<double>(anchored) / static_cast<double>(nets.size());
  }

  m.pct_fixed = 100.0 * static_cast<double>(fixed_count) /
                static_cast<double>(n);
  if (movable > 0) {
    m.pct_movable_adjacent = 100.0 * static_cast<double>(movable_adjacent) /
                             static_cast<double>(movable);
    m.avg_terminal_incidence =
        incidence_sum / static_cast<double>(movable);
  }
  if (total_net_weight > 0) {
    m.anchored_net_fraction = static_cast<double>(anchored_weight) /
                              static_cast<double>(total_net_weight);
    m.contested_net_fraction = static_cast<double>(contested_weight) /
                               static_cast<double>(total_net_weight);
  }
  return m;
}

}  // namespace fixedpart::exp
