#include "experiments/context.hpp"

namespace fixedpart::exp {

ml::MultilevelConfig default_ml_config() {
  ml::MultilevelConfig config;
  config.refine.policy = part::SelectionPolicy::kClip;
  config.refine.pass_cutoff = 1.0;
  return config;
}

InstanceContext make_context(const gen::CircuitSpec& spec,
                             int reference_starts, double tolerance_pct,
                             util::Rng& rng) {
  gen::GeneratedCircuit circuit = gen::generate_circuit(spec);
  part::BalanceConstraint balance =
      part::BalanceConstraint::relative(circuit.graph, 2, tolerance_pct);

  const hg::FixedAssignment all_free(circuit.graph.num_vertices(), 2);
  const ml::MultilevelPartitioner partitioner(circuit.graph, all_free,
                                              balance);
  ml::MultilevelResult best =
      partitioner.best_of(reference_starts, rng, default_ml_config());

  return InstanceContext{
      .circuit = std::move(circuit),
      .balance = std::move(balance),
      .good_reference = std::move(best.assignment),
      .good_cut = best.cut,
  };
}

}  // namespace fixedpart::exp
