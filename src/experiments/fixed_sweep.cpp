#include "experiments/fixed_sweep.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/stats.hpp"

namespace fixedpart::exp {

namespace {

/// Folds the per-trial, per-run cuts/seconds of one (regime, percentage)
/// point into its best-of-prefix cells (one per starts value). Shared by
/// the in-process and the supervised sweep drivers.
std::vector<SweepCell> cells_from_runs(
    const std::vector<std::vector<Weight>>& cuts,
    const std::vector<std::vector<double>>& seconds,
    const std::vector<int>& starts, double normalizer_or_zero,
    Weight best_seen) {
  std::vector<SweepCell> cells;
  for (int s : starts) {
    util::RunningStat best_cut;
    util::RunningStat total_seconds;
    for (std::size_t t = 0; t < cuts.size(); ++t) {
      Weight best = std::numeric_limits<Weight>::max();
      double secs = 0.0;
      for (int r = 0; r < s; ++r) {
        best = std::min(best, cuts[t][static_cast<std::size_t>(r)]);
        secs += seconds[t][static_cast<std::size_t>(r)];
      }
      best_cut.add(static_cast<double>(best));
      total_seconds.add(secs);
    }
    SweepCell cell;
    cell.avg_best_cut = best_cut.mean();
    cell.avg_seconds = total_seconds.mean();
    const double norm = normalizer_or_zero > 0.0
                            ? normalizer_or_zero
                            : static_cast<double>(best_seen);
    cell.normalized = norm > 0.0 ? cell.avg_best_cut / norm : 1.0;
    cells.push_back(cell);
  }
  return cells;
}

/// Runs one regime (a series of FixedAssignments indexed by percentage).
SweepSeries run_series(const InstanceContext& context,
                       const SweepConfig& config,
                       const std::vector<hg::FixedAssignment>& instances,
                       double normalizer_or_zero, util::Rng& rng,
                       bool* truncated) {
  const int max_starts =
      *std::max_element(config.starts.begin(), config.starts.end());

  SweepSeries series;
  series.cells.resize(instances.size());
  series.best_seen.assign(instances.size(),
                          std::numeric_limits<Weight>::max());

  for (std::size_t pi = 0; pi < instances.size(); ++pi) {
    const hg::FixedAssignment& fixed = instances[pi];
    const ml::MultilevelPartitioner partitioner(context.circuit.graph, fixed,
                                                context.balance);
    // cuts[t][r], seconds[t][r]: r-th independent run of trial t.
    std::vector<std::vector<Weight>> cuts(
        static_cast<std::size_t>(config.trials));
    std::vector<std::vector<double>> seconds(
        static_cast<std::size_t>(config.trials));
    for (int t = 0; t < config.trials; ++t) {
      for (int r = 0; r < max_starts; ++r) {
        const auto run = partitioner.run(rng, config.ml);
        *truncated |= run.truncated;
        cuts[t].push_back(run.cut);
        seconds[t].push_back(run.seconds);
        series.best_seen[pi] = std::min(series.best_seen[pi], run.cut);
      }
    }
    series.cells[pi] = cells_from_runs(cuts, seconds, config.starts,
                                       normalizer_or_zero,
                                       series.best_seen[pi]);
  }
  return series;
}

}  // namespace

SweepResult run_fixed_sweep(const InstanceContext& context,
                            const SweepConfig& config, util::Rng& rng) {
  if (config.trials < 1) throw std::invalid_argument("sweep: trials < 1");
  if (config.starts.empty() || config.percentages.empty()) {
    throw std::invalid_argument("sweep: empty starts/percentages");
  }

  SweepResult result;
  result.percentages = config.percentages;
  result.starts = config.starts;

  // One nested random series defines both regimes (the paper fixes the
  // same incrementally-chosen vertices; only the side assignment differs).
  gen::FixedVertexSeries series(context.circuit.graph, 2, rng);
  std::vector<hg::FixedAssignment> good_instances;
  std::vector<hg::FixedAssignment> rand_instances;
  for (double pct : config.percentages) {
    good_instances.push_back(
        series.good_regime(pct, context.good_reference));
    rand_instances.push_back(series.rand_regime(pct));
  }

  result.good = run_series(context, config, good_instances,
                           static_cast<double>(context.good_cut), rng,
                           &result.truncated);
  result.rand = run_series(context, config, rand_instances, 0.0, rng,
                           &result.truncated);
  return result;
}

SupervisedSweepRun run_supervised_sweep(
    const InstanceContext& context, const SweepConfig& config,
    const SupervisedSweepOptions& options) {
  if (config.trials < 1) throw std::invalid_argument("sweep: trials < 1");
  if (config.starts.empty() || config.percentages.empty()) {
    throw std::invalid_argument("sweep: empty starts/percentages");
  }
  const int max_starts =
      *std::max_element(config.starts.begin(), config.starts.end());
  const char* kRegimes[] = {"good", "rand"};

  // Everything randomized is derived from options.seed in a fixed order —
  // the series first, then one stream seed per job in manifest order — so
  // a resumed or differently-parallel sweep sees identical instances.
  util::Rng root(options.seed);
  gen::FixedVertexSeries series(context.circuit.graph, 2, root);
  std::vector<hg::FixedAssignment> instances[2];
  for (double pct : config.percentages) {
    instances[0].push_back(series.good_regime(pct, context.good_reference));
    instances[1].push_back(series.rand_regime(pct));
  }

  std::vector<svc::JobSpec> manifest;
  // Job id -> the prebuilt fixed assignment its runner partitions.
  std::map<std::string, const hg::FixedAssignment*> fixed_by_id;
  for (int regime = 0; regime < 2; ++regime) {
    for (std::size_t pi = 0; pi < config.percentages.size(); ++pi) {
      for (int t = 0; t < config.trials; ++t) {
        for (int r = 0; r < max_starts; ++r) {
          svc::JobSpec spec;
          spec.id = std::string(kRegimes[regime]) + "-p" +
                    std::to_string(pi) + "-t" + std::to_string(t) + "-r" +
                    std::to_string(r);
          spec.regime = kRegimes[regime];
          spec.fixed_pct = config.percentages[pi];
          spec.starts = 1;
          spec.seed = root.next();
          spec.budget_seconds = options.job_budget_seconds;
          fixed_by_id.emplace(spec.id, &instances[regime][pi]);
          manifest.push_back(std::move(spec));
        }
      }
    }
  }

  // The runner shares the already-built context and regime instances; a
  // job's result depends only on its spec (the seed picks the stream).
  const auto runner = [&](const svc::JobSpec& spec,
                          const util::Deadline& deadline) {
    ml::MultilevelConfig ml = config.ml;
    ml.deadline = &deadline;
    const ml::MultilevelPartitioner partitioner(
        context.circuit.graph, *fixed_by_id.at(spec.id), context.balance);
    util::Rng rng(spec.seed);
    const ml::MultilevelResult run = partitioner.run(rng, ml);
    return svc::JobResult{run.cut, run.truncated};
  };

  svc::ExecutorConfig exec;
  exec.workers = options.workers;
  exec.retry = options.retry;
  exec.hang_seconds = options.hang_seconds;
  exec.drain = options.drain;
  svc::BatchExecutor executor(runner, exec);

  SupervisedSweepRun out;
  if (!options.journal_path.empty()) {
    if (!options.resume) {
      // A fresh run must not resume from a stale fleet's journal.
      util::write_file_atomic(options.journal_path, "");
    }
    svc::CheckpointJournal journal(options.journal_path);
    out.report = executor.run(manifest, &journal);
  } else {
    out.report = executor.run(manifest, nullptr);
  }

  if (!out.report.complete() || out.report.failed > 0 ||
      out.report.poisoned > 0) {
    return out;  // incomplete: no table, the report says why
  }

  std::map<std::string, const svc::JobOutcome*> outcome_by_id;
  for (const svc::JobOutcome& outcome : out.report.outcomes) {
    outcome_by_id.emplace(outcome.id, &outcome);
  }

  SweepResult result;
  result.percentages = config.percentages;
  result.starts = config.starts;
  for (int regime = 0; regime < 2; ++regime) {
    SweepSeries& out_series = regime == 0 ? result.good : result.rand;
    out_series.cells.resize(config.percentages.size());
    out_series.best_seen.assign(config.percentages.size(),
                                std::numeric_limits<Weight>::max());
    for (std::size_t pi = 0; pi < config.percentages.size(); ++pi) {
      std::vector<std::vector<Weight>> cuts(
          static_cast<std::size_t>(config.trials));
      std::vector<std::vector<double>> seconds(
          static_cast<std::size_t>(config.trials));
      for (int t = 0; t < config.trials; ++t) {
        for (int r = 0; r < max_starts; ++r) {
          const std::string id = std::string(kRegimes[regime]) + "-p" +
                                 std::to_string(pi) + "-t" +
                                 std::to_string(t) + "-r" +
                                 std::to_string(r);
          const svc::JobOutcome& outcome = *outcome_by_id.at(id);
          result.truncated |= outcome.truncated;
          cuts[static_cast<std::size_t>(t)].push_back(outcome.cut);
          seconds[static_cast<std::size_t>(t)].push_back(outcome.seconds);
          out_series.best_seen[pi] =
              std::min(out_series.best_seen[pi], outcome.cut);
        }
      }
      const double normalizer =
          regime == 0 ? static_cast<double>(context.good_cut) : 0.0;
      out_series.cells[pi] =
          cells_from_runs(cuts, seconds, config.starts, normalizer,
                          out_series.best_seen[pi]);
    }
  }
  out.result = std::move(result);
  return out;
}

}  // namespace fixedpart::exp
