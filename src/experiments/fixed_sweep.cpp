#include "experiments/fixed_sweep.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/stats.hpp"

namespace fixedpart::exp {

namespace {

/// Runs one regime (a series of FixedAssignments indexed by percentage).
SweepSeries run_series(const InstanceContext& context,
                       const SweepConfig& config,
                       const std::vector<hg::FixedAssignment>& instances,
                       double normalizer_or_zero, util::Rng& rng,
                       bool* truncated) {
  const int max_starts =
      *std::max_element(config.starts.begin(), config.starts.end());

  SweepSeries series;
  series.cells.resize(instances.size());
  series.best_seen.assign(instances.size(),
                          std::numeric_limits<Weight>::max());

  for (std::size_t pi = 0; pi < instances.size(); ++pi) {
    const hg::FixedAssignment& fixed = instances[pi];
    const ml::MultilevelPartitioner partitioner(context.circuit.graph, fixed,
                                                context.balance);
    // cuts[t][r], seconds[t][r]: r-th independent run of trial t.
    std::vector<std::vector<Weight>> cuts(
        static_cast<std::size_t>(config.trials));
    std::vector<std::vector<double>> seconds(
        static_cast<std::size_t>(config.trials));
    for (int t = 0; t < config.trials; ++t) {
      for (int r = 0; r < max_starts; ++r) {
        const auto run = partitioner.run(rng, config.ml);
        *truncated |= run.truncated;
        cuts[t].push_back(run.cut);
        seconds[t].push_back(run.seconds);
        series.best_seen[pi] = std::min(series.best_seen[pi], run.cut);
      }
    }
    for (int s : config.starts) {
      util::RunningStat best_cut;
      util::RunningStat total_seconds;
      for (int t = 0; t < config.trials; ++t) {
        Weight best = std::numeric_limits<Weight>::max();
        double secs = 0.0;
        for (int r = 0; r < s; ++r) {
          best = std::min(best, cuts[t][static_cast<std::size_t>(r)]);
          secs += seconds[t][static_cast<std::size_t>(r)];
        }
        best_cut.add(static_cast<double>(best));
        total_seconds.add(secs);
      }
      SweepCell cell;
      cell.avg_best_cut = best_cut.mean();
      cell.avg_seconds = total_seconds.mean();
      const double norm = normalizer_or_zero > 0.0
                              ? normalizer_or_zero
                              : static_cast<double>(series.best_seen[pi]);
      cell.normalized = norm > 0.0 ? cell.avg_best_cut / norm : 1.0;
      series.cells[pi].push_back(cell);
    }
  }
  return series;
}

}  // namespace

SweepResult run_fixed_sweep(const InstanceContext& context,
                            const SweepConfig& config, util::Rng& rng) {
  if (config.trials < 1) throw std::invalid_argument("sweep: trials < 1");
  if (config.starts.empty() || config.percentages.empty()) {
    throw std::invalid_argument("sweep: empty starts/percentages");
  }

  SweepResult result;
  result.percentages = config.percentages;
  result.starts = config.starts;

  // One nested random series defines both regimes (the paper fixes the
  // same incrementally-chosen vertices; only the side assignment differs).
  gen::FixedVertexSeries series(context.circuit.graph, 2, rng);
  std::vector<hg::FixedAssignment> good_instances;
  std::vector<hg::FixedAssignment> rand_instances;
  for (double pct : config.percentages) {
    good_instances.push_back(
        series.good_regime(pct, context.good_reference));
    rand_instances.push_back(series.rand_regime(pct));
  }

  result.good = run_series(context, config, good_instances,
                           static_cast<double>(context.good_cut), rng,
                           &result.truncated);
  result.rand = run_series(context, config, rand_instances, 0.0, rng,
                           &result.truncated);
  return result;
}

}  // namespace fixedpart::exp
