#pragma once
// Section III experiments on flat LIFO-FM pass behaviour.
//
// Table II: average number of passes per run and average percentage of
// nodes (net) moved per pass, excluding the first pass, over R runs from
// random initial solutions. "Moved" counts the best-prefix moves — the
// moves that survive the end-of-pass rollback; everything after the best
// prefix is undone and therefore wasted (the paper's framing: "any move
// undone in this process has essentially been wasted"). Percentages are
// relative to the movable (non-fixed) vertex count.
//
// Table III: effect of cutting off every pass after the first at a given
// fraction of the movable vertices: average final cut and average CPU
// seconds per run.
//
// Both use the good regime (terminals fixed consistently with the best
// known solution), matching the paper's construction where "all terminals
// are fixed in a good location".

#include <vector>

#include "experiments/context.hpp"
#include "util/rng.hpp"

namespace fixedpart::exp {

struct PassStatsConfig {
  std::vector<double> percentages = {0.0, 10.0, 20.0, 30.0};
  int runs = 50;
  /// Collect the statistics through an obs::PassObserver attached to the
  /// engine (the default) instead of post-processing FmResult::
  /// pass_records. The two paths are bit-identical (tests/test_obs.cpp
  /// holds the differential); the legacy path remains for that check and
  /// as the automatic fallback when built with FIXEDPART_OBS=OFF.
  bool use_observer = true;
};

struct PassStatsRow {
  double pct_fixed = 0.0;
  double avg_passes = 0.0;
  /// Avg best-prefix length as % of movable vertices, passes 2..end.
  double avg_pct_moved = 0.0;
  /// Avg moves *performed* per pass (before rollback), passes 2..end, %.
  double avg_pct_performed = 0.0;
  /// Distribution of the best-prefix position within a pass (normalized
  /// to [0,1], deciles, passes 2..end): Sec. III claims the improvements
  /// concentrate near the beginning of the pass as terminals are added.
  std::vector<double> prefix_position_deciles = std::vector<double>(10, 0.0);
};

std::vector<PassStatsRow> run_pass_stats(const InstanceContext& context,
                                         const PassStatsConfig& config,
                                         util::Rng& rng);

struct CutoffConfig {
  std::vector<double> percentages = {0.0, 10.0, 20.0, 30.0};
  /// 1.0 = no cutoff (the paper's "100%" baseline column).
  std::vector<double> cutoffs = {1.0, 0.5, 0.25, 0.10, 0.05};
  int runs = 50;
};

struct CutoffCell {
  double avg_cut = 0.0;
  double avg_seconds = 0.0;
};

struct CutoffResult {
  std::vector<double> percentages;
  std::vector<double> cutoffs;
  /// cells[pct_index][cutoff_index]
  std::vector<std::vector<CutoffCell>> cells;
};

CutoffResult run_cutoff_experiment(const InstanceContext& context,
                                   const CutoffConfig& config,
                                   util::Rng& rng);

}  // namespace fixedpart::exp
