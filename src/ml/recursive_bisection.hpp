#pragma once
// k-way partitioning by recursive bisection with the multilevel engine —
// the construction used by top-down placement (and by hMETIS-style k-way
// drivers). The part-id range [0,k) is split in half recursively; each
// bisection runs on the sub-hypergraph induced by the vertices currently
// assigned to the range, with
//
//  * OR-restricted vertices honoured throughout: a vertex whose allowed
//    set intersects only one half is fixed into that half; if it
//    intersects both it stays movable at this level (Sec. IV semantics);
//  * proportional balance for uneven splits (k not a power of two):
//    absolute capacity windows sized to each half's share of the range.
//
// Nets are truncated to the subset (classic naive RB; no terminal
// propagation across sibling groups).

#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "ml/multilevel.hpp"
#include "util/rng.hpp"

namespace fixedpart::ml {

struct RbConfig {
  MultilevelConfig ml;
  /// Relative tolerance applied at every bisection level.
  double tolerance_pct = 2.0;
};

/// Returns a complete k-way assignment honouring `fixed` (whose
/// num_parts() must equal k). Throws if some vertex's allowed set is
/// empty over [0,k).
///
/// A deadline in `config.ml.deadline` bounds the whole recursion: once it
/// expires each remaining bisection degrades to its cheapest valid split
/// (see MultilevelConfig::deadline), so a complete assignment always comes
/// back. When `truncated` is non-null it is set to whether any bisection
/// ran in degraded mode.
std::vector<hg::PartitionId> recursive_bisection(
    const hg::Hypergraph& graph, const hg::FixedAssignment& fixed,
    hg::PartitionId k, const RbConfig& config, util::Rng& rng,
    bool* truncated = nullptr);

}  // namespace fixedpart::ml
