#include "ml/recursive_bisection.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "hg/subgraph.hpp"
#include "hg/io_bookshelf.hpp"
#include "part/balance.hpp"

namespace fixedpart::ml {

namespace {

std::uint64_t range_mask(hg::PartitionId lo, hg::PartitionId hi) {
  std::uint64_t mask = 0;
  for (hg::PartitionId p = lo; p < hi; ++p) mask |= std::uint64_t{1} << p;
  return mask;
}

struct Splitter {
  const hg::Hypergraph* graph;
  const hg::FixedAssignment* fixed;
  const RbConfig* config;
  util::Rng* rng;
  std::vector<hg::PartitionId>* result;
  bool truncated = false;

  /// Assigns `subset` into parts [lo, hi).
  void split(const std::vector<VertexId>& subset, hg::PartitionId lo,
             hg::PartitionId hi) {
    if (hi - lo == 1) {
      for (const VertexId v : subset) (*result)[v] = lo;
      return;
    }
    const hg::PartitionId mid = lo + (hi - lo) / 2;
    const std::uint64_t low_mask = range_mask(lo, mid);
    const std::uint64_t high_mask = range_mask(mid, hi);

    // Induced sub-hypergraph (nets truncated to the subset) with a 2-way
    // fixed assignment derived from each vertex's allowed range halves.
    const hg::Subgraph induced = hg::induce_subgraph(*graph, subset);
    const hg::Hypergraph& sub = induced.graph;

    hg::FixedAssignment sub_fixed(sub.num_vertices(), 2);
    for (const VertexId v : subset) {
      const std::uint64_t mask = fixed->allowed_mask(v);
      const bool low_ok = (mask & low_mask) != 0;
      const bool high_ok = (mask & high_mask) != 0;
      if (!low_ok && !high_ok) {
        throw std::invalid_argument(
            "recursive_bisection: vertex with empty allowed set in range");
      }
      if (low_ok != high_ok) sub_fixed.fix(induced.local_of[v], low_ok ? 0 : 1);
    }

    // Proportional capacities: side 0 targets (mid-lo)/(hi-lo) of the
    // subset weight in every resource.
    const double low_share = static_cast<double>(mid - lo) /
                             static_cast<double>(hi - lo);
    hg::BalanceSpec spec;
    spec.relative = false;
    for (int r = 0; r < sub.num_resources(); ++r) {
      const auto total = static_cast<double>(sub.total_weight(r));
      const double slack = config->tolerance_pct / 100.0;
      hg::BalanceSpec::Capacity low_cap;
      low_cap.part = 0;
      low_cap.resource = r;
      low_cap.min = 0;
      low_cap.max = static_cast<Weight>(
          std::ceil(total * low_share * (1.0 + slack)));
      hg::BalanceSpec::Capacity high_cap;
      high_cap.part = 1;
      high_cap.resource = r;
      high_cap.min = 0;
      high_cap.max = static_cast<Weight>(
          std::ceil(total * (1.0 - low_share) * (1.0 + slack)));
      spec.capacities.push_back(low_cap);
      spec.capacities.push_back(high_cap);
    }
    const auto balance = part::BalanceConstraint::from_spec(sub, 2, spec);

    const MultilevelPartitioner partitioner(sub, sub_fixed, balance);
    const MultilevelResult solved = partitioner.run(*rng, config->ml);
    truncated |= solved.truncated;

    std::vector<VertexId> low_subset;
    std::vector<VertexId> high_subset;
    for (const VertexId v : subset) {
      (solved.assignment[induced.local_of[v]] == 0 ? low_subset : high_subset)
          .push_back(v);
    }
    split(low_subset, lo, mid);
    split(high_subset, mid, hi);
  }
};

}  // namespace

std::vector<hg::PartitionId> recursive_bisection(
    const hg::Hypergraph& graph, const hg::FixedAssignment& fixed,
    hg::PartitionId k, const RbConfig& config, util::Rng& rng,
    bool* truncated) {
  if (k < 1 || k > hg::FixedAssignment::kMaxParts) {
    throw std::invalid_argument("recursive_bisection: bad k");
  }
  if (fixed.num_parts() != k) {
    throw std::invalid_argument("recursive_bisection: fixed num_parts != k");
  }
  if (fixed.num_vertices() != graph.num_vertices()) {
    throw std::invalid_argument("recursive_bisection: fixed size mismatch");
  }
  std::vector<hg::PartitionId> result(
      static_cast<std::size_t>(graph.num_vertices()), hg::kNoPartition);
  std::vector<VertexId> all(static_cast<std::size_t>(graph.num_vertices()));
  for (VertexId v = 0; v < graph.num_vertices(); ++v) all[v] = v;
  Splitter splitter{&graph, &fixed, &config, &rng, &result};
  splitter.split(all, 0, k);
  if (truncated != nullptr) *truncated = splitter.truncated;
  return result;
}

}  // namespace fixedpart::ml
