#pragma once
// Contraction of a matching into a coarser hypergraph. Coarse nets are
// re-pinned through the cluster map; pins collapsing together are merged,
// nets shrinking below two pins are dropped, and identical coarse nets are
// combined with summed weights (standard multilevel hygiene — it is what
// makes FM gains on coarse levels reflect many fine nets at once).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "ml/matching.hpp"

namespace fixedpart::ml {

struct CoarseLevel {
  hg::Hypergraph graph;
  hg::FixedAssignment fixed{0, 2};
  /// fine vertex -> coarse vertex
  std::vector<VertexId> map;
};

/// Grow-only scratch reused across contract() calls, mirroring FmScratch:
/// a multilevel run contracts once per level, and without reuse every
/// level re-allocates the staged-net arena from scratch. Buffers are
/// cleared (never shrunk) on entry, so capacity ratchets up to the
/// largest level seen. Purely an allocation diet — results are
/// bit-identical with or without it.
struct CoarsenScratch {
  std::vector<std::uint64_t> coarse_masks;
  std::vector<Weight> weights;
  // Staged coarse nets as one flat pin arena + offsets, not a
  // vector-of-vectors: one allocation instead of one per net.
  std::vector<VertexId> staged_pins;
  std::vector<std::int64_t> staged_offsets;
  std::vector<Weight> staged_weights;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_hash;
  std::vector<VertexId> pins;
};

/// Contracts `match` (as produced by heavy_edge_matching). The coarse
/// fixed assignment of a cluster is the intersection of its members'
/// allowed masks (guaranteed non-empty by the matching constraints).
/// Pass a CoarsenScratch to reuse staging buffers across levels; with
/// nullptr a private one is used.
CoarseLevel contract(const hg::Hypergraph& g, const hg::FixedAssignment& fixed,
                     const std::vector<VertexId>& match,
                     CoarsenScratch* scratch = nullptr);

}  // namespace fixedpart::ml
