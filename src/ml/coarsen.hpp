#pragma once
// Contraction of a matching into a coarser hypergraph. Coarse nets are
// re-pinned through the cluster map; pins collapsing together are merged,
// nets shrinking below two pins are dropped, and identical coarse nets are
// combined with summed weights (standard multilevel hygiene — it is what
// makes FM gains on coarse levels reflect many fine nets at once).

#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "ml/matching.hpp"

namespace fixedpart::ml {

struct CoarseLevel {
  hg::Hypergraph graph;
  hg::FixedAssignment fixed{0, 2};
  /// fine vertex -> coarse vertex
  std::vector<VertexId> map;
};

/// Contracts `match` (as produced by heavy_edge_matching). The coarse
/// fixed assignment of a cluster is the intersection of its members'
/// allowed masks (guaranteed non-empty by the matching constraints).
CoarseLevel contract(const hg::Hypergraph& g, const hg::FixedAssignment& fixed,
                     const std::vector<VertexId>& match);

}  // namespace fixedpart::ml
