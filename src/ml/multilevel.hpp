#pragma once
// The multilevel CLIP-FM bipartitioner used throughout the paper's
// Section II experiments: heavy-edge-matching coarsening, randomized
// feasible initial solutions at the coarsest level, and CLIP-FM (or LIFO
// FM) refinement on the way back up. No V-cycling — the paper found it a
// net loss for the cost/runtime profile and disabled it; so do we.

#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "ml/coarsen.hpp"
#include "part/balance.hpp"
#include "part/fm.hpp"
#include "part/partition.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"

namespace fixedpart::util {
class ThreadPool;
}

namespace fixedpart::ml {

using hg::PartitionId;

/// Shared-memory parallelism inside one partition job (docs/PARALLELISM.md).
/// `threads` is the only semantically visible knob, and only as a binary:
/// threads == 1 keeps the bit-exact serial seed path (the oracle every
/// differential test compares against); threads > 1 dispatches run() to the
/// deterministic parallel pipeline (src/ml/parallel.hpp), whose output is
/// bit-identical for every thread count, pool size and grain — those affect
/// wall-clock only.
struct ParallelConfig {
  /// Maximum concurrency of one run: the calling thread plus up to
  /// threads - 1 workers borrowed from the pool. 1 = serial seed path.
  int threads = 1;
  /// Vertices per work chunk in parallel loops. Performance-only: chunk
  /// boundaries are derived from the vertex count, never the thread count,
  /// and every chunk's output is a pure function of its range.
  VertexId grain = 4096;
  /// Cap on refinement rounds per level (each round: parallel gain
  /// proposals over boundary shards, then a sequential arbiter applies the
  /// best gain-ordered prefix that keeps balance). Rounds stop early at
  /// the first round that keeps no move.
  int max_rounds = 48;
  /// Levels with at most this many movable vertices refine with the serial
  /// FM engine instead of rounds (deterministic: per-level RNG streams).
  /// Small levels are cheap and FM's per-move gain updates beat the round
  /// model's stale gains there; large levels get the parallel rounds.
  VertexId fm_polish_max_movable = 2048;
  /// Worker pool to borrow from (not owned; must outlive the run). nullptr
  /// uses the process-wide util::ThreadPool::shared(), which is what caps
  /// total concurrency when many jobs run parallel sections at once.
  util::ThreadPool* pool = nullptr;
};

struct MultilevelConfig {
  /// Multilevel refinement has cheap restarts (multistart + many levels),
  /// so it trades the tail of each pass for throughput: stop a pass after
  /// a quarter of the movable vertices move without improving the cut.
  /// Flat FmConfig keeps the paper's full-pass default.
  MultilevelConfig() { refine.stall_fraction = 0.25; }

  /// Refinement engine settings applied at every level (policy, cutoff).
  part::FmConfig refine;
  /// Stop coarsening at (movable) vertex counts at or below this.
  VertexId coarsest_size = 160;
  /// Stop coarsening when a level shrinks by less than this factor.
  double stagnation_ratio = 0.95;
  MatchingConfig matching;
  /// Shared-memory parallelism. threads == 1 (default) is the bit-exact
  /// serial seed path; threads > 1 routes run() to the deterministic
  /// parallel pipeline (ml/parallel.hpp). best_of_parallel borrows workers
  /// from `parallel.pool` either way.
  ParallelConfig parallel;
  /// Independent random initial solutions tried at the coarsest level
  /// (refined; best kept). Cheap because the coarsest graph is tiny.
  int coarse_starts = 4;
  /// V-cycles after the initial descent: re-coarsen with solution-
  /// preserving matching, then refine back up. The paper disables this
  /// ("a net loss in terms of overall cost-runtime profile"); it is
  /// implemented so the ablation bench can check that claim. 0 = off.
  int vcycles = 0;
  /// Optional wall-clock budget (not owned; must outlive run(); nullptr =
  /// unlimited). Degradation contract (docs/ROBUSTNESS.md): on expiry,
  /// coarsening stops descending, at most one coarse start runs, every
  /// projection to a finer level still happens (projection preserves
  /// balance feasibility) but refinement is skipped, and the result
  /// carries `truncated = true`. run() therefore always returns a
  /// complete, valid assignment — the best found within the budget.
  const util::Deadline* deadline = nullptr;
  /// Strict feasibility pre-flight (part/feasibility.hpp): when set, run()
  /// throws util::InfeasibleError if the fixed assignment provably cannot
  /// satisfy the balance constraint. Off by default because the paper's
  /// rand-regime experiments deliberately run overconstrained instances
  /// best-effort and report the raw cost.
  bool preflight = false;
};

struct MultilevelResult {
  Weight cut = 0;
  std::vector<PartitionId> assignment;
  int levels = 1;           ///< number of graphs in the hierarchy
  double seconds = 0.0;     ///< wall-clock for this start
  std::int64_t total_moves = 0;
  std::int32_t total_passes = 0;
  /// The deadline expired before the pipeline completed; `assignment` is
  /// still complete and valid — the best found within the budget.
  bool truncated = false;
};

class MultilevelPartitioner {
 public:
  /// References must outlive the partitioner. Bipartitioning only
  /// (num_parts == 2 in fixed/balance).
  MultilevelPartitioner(const hg::Hypergraph& graph,
                        const hg::FixedAssignment& fixed,
                        const part::BalanceConstraint& balance);

  /// One independent start: coarsen, solve coarsest, uncoarsen+refine.
  MultilevelResult run(util::Rng& rng, const MultilevelConfig& config) const;

  /// Best of `starts` independent runs (the paper's multistart protocol);
  /// `seconds` accumulates over all starts.
  MultilevelResult best_of(int starts, util::Rng& rng,
                           const MultilevelConfig& config) const;

  /// Parallel multistart: each start gets an independent RNG stream forked
  /// from `seed` before any work begins, so the result is deterministic
  /// for a given seed regardless of `threads`. `seconds` is wall-clock.
  MultilevelResult best_of_parallel(int starts, int threads,
                                    std::uint64_t seed,
                                    const MultilevelConfig& config) const;

 private:
  const hg::Hypergraph* graph_;
  const hg::FixedAssignment* fixed_;
  const part::BalanceConstraint* balance_;
};

}  // namespace fixedpart::ml
