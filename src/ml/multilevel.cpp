#include "ml/multilevel.hpp"

#include <atomic>
#include <functional>
#include <stdexcept>
#include <tuple>

#include "ml/parallel.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "part/feasibility.hpp"
#include "part/initial.hpp"
#include "util/errors.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fixedpart::ml {

namespace {

VertexId movable_count(const hg::Hypergraph& g,
                       const hg::FixedAssignment& fixed) {
  VertexId n = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    n += (fixed.allowed_mask(v) == fixed.full_mask());
  }
  return n;
}

}  // namespace

MultilevelPartitioner::MultilevelPartitioner(
    const hg::Hypergraph& graph, const hg::FixedAssignment& fixed,
    const part::BalanceConstraint& balance)
    : graph_(&graph), fixed_(&fixed), balance_(&balance) {
  if (fixed.num_parts() != 2 || balance.num_parts() != 2) {
    throw std::invalid_argument("MultilevelPartitioner: needs 2 parts");
  }
  if (fixed.num_vertices() != graph.num_vertices()) {
    throw std::invalid_argument("MultilevelPartitioner: fixed size mismatch");
  }
}

MultilevelResult MultilevelPartitioner::run(
    util::Rng& rng, const MultilevelConfig& config) const {
  if (config.parallel.threads > 1) {
    // The parallel pipeline (src/ml/parallel.cpp) is a different — itself
    // deterministic — algorithm; threads == 1 stays on the serial path
    // below, which is the bit-exactness oracle for every existing test
    // and benchmark. One rng.next() seeds the whole parallel run, so the
    // caller's stream advances the same way regardless of thread count.
    return run_parallel_multilevel(*graph_, *fixed_, *balance_, rng.next(),
                                   config);
  }
  util::Timer timer;
  MultilevelResult result;
  if (config.preflight) {
    const part::FeasibilityReport report =
        part::check_feasibility(*graph_, *fixed_, *balance_);
    if (!report.feasible) {
      throw util::InfeasibleError("multilevel: " + report.summary());
    }
  }
  const util::Deadline* deadline = config.deadline;
  const auto expired = [&] {
    return deadline != nullptr && deadline->expired();
  };
  part::FmConfig refine_config = config.refine;
  if (deadline != nullptr) refine_config.deadline = deadline;
  // One refinement workspace for the whole descent: every level's
  // FmBipartitioner shares it, so bucket storage is sized once for the
  // largest graph and reused across levels, starts and V-cycles. The
  // coarsening scratch plays the same role for contract()'s staged-net
  // arena.
  part::FmScratch scratch;
  CoarsenScratch coarsen_scratch;

  // Builds the coarsening hierarchy; when `incumbent` is non-null the
  // matching is solution-preserving (V-cycle restriction).
  auto build_hierarchy = [&](const std::vector<PartitionId>* incumbent) {
    std::vector<CoarseLevel> levels;
    const hg::Hypergraph* g = graph_;
    const hg::FixedAssignment* f = fixed_;
    // Projections of the incumbent per level (index 0 = input graph's).
    std::vector<PartitionId> projected;
    if (incumbent != nullptr) projected = *incumbent;
    while (movable_count(*g, *f) > config.coarsest_size) {
      if (expired()) {
        // Stop descending: the levels built so far still uncoarsen
        // correctly, the coarse solve just runs on a bigger graph.
        result.truncated = true;
        break;
      }
      obs::ScopedSpan span("ml.coarsen_level");
      const auto match = heavy_edge_matching(
          *g, *f, config.matching, rng,
          incumbent != nullptr ? &projected : nullptr);
      CoarseLevel level = contract(*g, *f, match, &coarsen_scratch);
      span.arg("level", static_cast<std::int64_t>(levels.size()))
          .arg("fine_vertices", static_cast<std::int64_t>(g->num_vertices()))
          .arg("coarse_vertices",
               static_cast<std::int64_t>(level.graph.num_vertices()));
      if (static_cast<double>(level.graph.num_vertices()) >
          config.stagnation_ratio * static_cast<double>(g->num_vertices())) {
        break;  // matching stagnated; stop coarsening
      }
      if (incumbent != nullptr) {
        std::vector<PartitionId> coarse(
            static_cast<std::size_t>(level.graph.num_vertices()),
            hg::kNoPartition);
        for (VertexId v = 0; v < g->num_vertices(); ++v) {
          coarse[level.map[v]] = projected[v];
        }
        projected = std::move(coarse);
      }
      levels.push_back(std::move(level));
      g = &levels.back().graph;
      f = &levels.back().fixed;
    }
    return std::make_tuple(std::move(levels), g, f, std::move(projected));
  };

  // Refines `assignment` (on the coarsest graph of `levels`) back up to
  // the input graph, returning the final assignment and recording the cut.
  auto uncoarsen = [&](const std::vector<CoarseLevel>& levels,
                       std::vector<PartitionId> assignment) {
    for (std::size_t i = levels.size(); i-- > 0;) {
      const hg::Hypergraph& fine_graph =
          (i == 0) ? *graph_ : levels[i - 1].graph;
      const hg::FixedAssignment& fine_fixed =
          (i == 0) ? *fixed_ : levels[i - 1].fixed;
      part::PartitionState fine_state(fine_graph, 2);
      {
        obs::ScopedSpan span("ml.project");
        span.arg("level", static_cast<std::int64_t>(i))
            .arg("fine_vertices",
                 static_cast<std::int64_t>(fine_graph.num_vertices()));
        for (VertexId v = 0; v < fine_graph.num_vertices(); ++v) {
          fine_state.assign(v, assignment[levels[i].map[v]]);
        }
      }
      // Projection always happens (coarse weights are sums of fine
      // weights, so it preserves balance feasibility); refinement is what
      // an expired budget skips.
      if (expired()) {
        result.truncated = true;
      } else {
        // "ml.refine_level" (distinct from the projection above) is one
        // of the three spans obs::phase_breakdown attributes; keep the
        // name in sync with phase_breakdown and docs/OBSERVABILITY.md.
        obs::ScopedSpan span("ml.refine_level");
        span.arg("level", static_cast<std::int64_t>(i))
            .arg("fine_vertices",
                 static_cast<std::int64_t>(fine_graph.num_vertices()));
        part::FmBipartitioner fm(fine_graph, fine_fixed, *balance_, &scratch);
        const auto fm_result = fm.refine(fine_state, rng, refine_config);
        result.total_moves += fm_result.total_moves;
        result.total_passes += fm_result.passes;
        result.truncated |= fm_result.truncated;
      }
      assignment.assign(fine_state.assignment().begin(),
                        fine_state.assignment().end());
      if (i == 0) result.cut = fine_state.cut();
    }
    return assignment;
  };

  // --- Initial descent: coarsen, random coarse starts, uncoarsen.
  auto [levels, coarsest_graph, coarsest_fixed, unused] =
      build_hierarchy(nullptr);
  result.levels = static_cast<int>(levels.size()) + 1;

  part::PartitionState state(*coarsest_graph, 2);
  part::FmBipartitioner coarse_fm(*coarsest_graph, *coarsest_fixed,
                                  *balance_, &scratch);
  std::vector<PartitionId> best_assignment;
  Weight best_cut = 0;
  const int starts = std::max(1, config.coarse_starts);
  {
    // Initial-partition phase span (obs::phase_breakdown "initial"): the
    // whole coarse multistart, nested coarse FM passes included.
    obs::ScopedSpan initial_span("ml.initial");
    initial_span.arg("starts", static_cast<std::int64_t>(starts));
    for (int s = 0; s < starts; ++s) {
      // The first start always runs so there is always a complete
      // assignment to return; an expired budget only skips restarts.
      if (s > 0 && expired()) {
        result.truncated = true;
        break;
      }
      // Best-effort: rand-regime instances can be inherently over
      // capacity (see random_feasible_assignment); refinement drains what
      // it can.
      part::random_feasible_assignment(state, *coarsest_fixed, *balance_,
                                       rng, /*require_feasible=*/false);
      const auto fm = coarse_fm.refine(state, rng, refine_config);
      result.total_moves += fm.total_moves;
      result.total_passes += fm.passes;
      result.truncated |= fm.truncated;
      if (best_assignment.empty() || state.cut() < best_cut) {
        best_cut = state.cut();
        best_assignment.assign(state.assignment().begin(),
                               state.assignment().end());
      }
    }
  }

  std::vector<PartitionId> assignment;
  if (levels.empty()) {
    result.cut = best_cut;
    assignment = std::move(best_assignment);
  } else {
    assignment = uncoarsen(levels, std::move(best_assignment));
  }

  // --- Optional V-cycles: re-coarsen around the incumbent solution and
  // refine back up. Projection preserves the cut and FM is monotone, so a
  // V-cycle never worsens the solution (it spends time, which is exactly
  // the trade-off the paper rejects).
  for (int cycle = 0; cycle < config.vcycles; ++cycle) {
    if (expired()) {
      result.truncated = true;
      break;
    }
    obs::ScopedSpan span("ml.vcycle");
    span.arg("cycle", static_cast<std::int64_t>(cycle));
    auto [vlevels, vgraph, vfixed, projected] = build_hierarchy(&assignment);
    if (vlevels.empty()) break;  // nothing to re-coarsen
    part::PartitionState coarse_state(*vgraph, 2);
    for (VertexId v = 0; v < vgraph->num_vertices(); ++v) {
      coarse_state.assign(v, projected[v]);
    }
    part::FmBipartitioner vfm(*vgraph, *vfixed, *balance_, &scratch);
    const auto fm = vfm.refine(coarse_state, rng, refine_config);
    result.total_moves += fm.total_moves;
    result.total_passes += fm.passes;
    result.truncated |= fm.truncated;
    assignment = uncoarsen(
        vlevels, std::vector<PartitionId>(coarse_state.assignment().begin(),
                                          coarse_state.assignment().end()));
  }

  result.assignment = std::move(assignment);
  result.seconds = timer.seconds();
  if constexpr (obs::kEnabled) {
    auto& reg = obs::Registry::global();
    static const obs::MetricId runs = reg.counter("ml.runs");
    static const obs::MetricId levels_total = reg.counter("ml.levels");
    static const obs::MetricId truncations = reg.counter("ml.truncations");
    reg.add(runs);
    reg.add(levels_total, result.levels);
    if (result.truncated) reg.add(truncations);
  }
  return result;
}

MultilevelResult MultilevelPartitioner::best_of_parallel(
    int starts, int threads, std::uint64_t seed,
    const MultilevelConfig& config) const {
  if (starts < 1) throw std::invalid_argument("best_of_parallel: starts<1");
  if (threads < 1) throw std::invalid_argument("best_of_parallel: threads<1");
  util::Timer timer;
  // Fork every start's stream up front: the work split across threads
  // cannot change any stream, so results are thread-count independent.
  util::Rng root(seed);
  std::vector<util::Rng> streams;
  streams.reserve(static_cast<std::size_t>(starts));
  for (int s = 0; s < starts; ++s) streams.push_back(root.fork());

  std::vector<MultilevelResult> results(static_cast<std::size_t>(starts));
  std::atomic<bool> truncated{false};
  // Starts run on the shared worker pool (or the one in config.parallel)
  // instead of per-call std::threads: total process concurrency stays
  // bounded by the pool size however many callers fan out at once, and
  // the pool's section cap enforces this call's `threads` budget. A
  // worker exception (preflight InfeasibleError, bad_alloc, ...) aborts
  // the remaining starts (their slots keep the empty default result) and
  // parallel_for rethrows the first one here.
  const std::function<void(std::int64_t)> body = [&](std::int64_t s) {
    // Start 0 always runs (run() itself degrades under the deadline);
    // later starts are skipped once the budget is gone. Skipped slots
    // keep their empty default result.
    if (s > 0 && config.deadline != nullptr && config.deadline->expired()) {
      truncated.store(true, std::memory_order_relaxed);
      return;
    }
    MultilevelResult& r = results[static_cast<std::size_t>(s)];
    r = run(streams[static_cast<std::size_t>(s)], config);
    if (r.truncated) truncated.store(true, std::memory_order_relaxed);
  };
  util::ThreadPool& pool = config.parallel.pool != nullptr
                               ? *config.parallel.pool
                               : util::ThreadPool::shared();
  pool.parallel_for(starts, threads, body);

  // Start 0 always ran, so it is the fallback best (and the only
  // candidate on a zero-vertex graph, where every assignment is empty).
  std::size_t best = 0;
  for (std::size_t s = 1; s < results.size(); ++s) {
    if (results[s].assignment.empty()) continue;  // skipped at expiry
    if (results[s].cut < results[best].cut) best = s;
  }
  MultilevelResult out = std::move(results[best]);
  out.seconds = timer.seconds();
  out.truncated = truncated.load(std::memory_order_relaxed);
  return out;
}

MultilevelResult MultilevelPartitioner::best_of(
    int starts, util::Rng& rng, const MultilevelConfig& config) const {
  if (starts < 1) throw std::invalid_argument("best_of: starts < 1");
  MultilevelResult best;
  bool truncated = false;
  double total_seconds = 0.0;
  for (int s = 0; s < starts; ++s) {
    // The first start always runs; an expired budget only skips restarts.
    if (s > 0 && config.deadline != nullptr && config.deadline->expired()) {
      truncated = true;
      break;
    }
    MultilevelResult r = run(rng, config);
    total_seconds += r.seconds;
    truncated |= r.truncated;
    if (s == 0 || r.cut < best.cut) best = std::move(r);
  }
  best.seconds = total_seconds;
  best.truncated = truncated;
  return best;
}

}  // namespace fixedpart::ml
