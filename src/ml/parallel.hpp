#pragma once
// Deterministic shared-memory parallel multilevel pipeline
// (docs/PARALLELISM.md). The design goal is *scheduling-independent
// determinism*: for a given (graph, fixed, balance, seed, config) the
// result is bit-identical for every thread count, pool size and grain —
// parallelism only changes wall-clock. Three ingredients make that hold:
//
//  * Propose-resolve matching: each round, every unmatched vertex
//    computes its best unmatched neighbour as a pure function of the
//    round-start state (connectivity score desc, lowest index on ties);
//    mutual proposals become matches. No vertex ever writes another
//    vertex's slot, so the outcome is independent of execution order —
//    unlike the serial greedy matching, which is visit-order dependent.
//  * Round-based refinement: threads compute gains for disjoint shards of
//    the boundary against a frozen snapshot of the partition; a
//    sequential arbiter then applies the candidates in a total order
//    (gain desc, vertex asc), keeps the best prefix that improved the cut
//    under the balance constraint, and publishes the deltas before the
//    next round begins.
//  * Up-front RNG streams: every work item that needs randomness derives
//    util::Rng::stream(seed, item) — a pure function, no shared generator
//    to advance (see util/rng.hpp).
//
// `MultilevelConfig::parallel.threads == 1` never reaches this file: the
// serial path in multilevel.cpp is the bit-exactness oracle and stays
// untouched. threads > 1 dispatches MultilevelPartitioner::run here.

#include <cstdint>
#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "ml/multilevel.hpp"
#include "part/balance.hpp"

namespace fixedpart::ml {

/// Parallel propose-resolve heavy-edge matching. Same constraints as the
/// serial heavy_edge_matching (mask compatibility, cluster weight caps,
/// optional same_part restriction for V-cycles) but a different — and
/// deterministic — tie-breaking discipline: best connectivity score,
/// lowest vertex index on ties. Output is bit-identical for every pool
/// size, including a zero-worker pool (pure serial execution of the same
/// algorithm). match[v] = partner or v; symmetric. A non-null `deadline`
/// is checked between propose-resolve rounds: on expiry the rounds stop
/// and the matching built so far is returned — still valid and symmetric,
/// just sparser, so the caller's degradation contract (coarser hierarchy,
/// truncated flag) takes over from there.
std::vector<VertexId> parallel_heavy_edge_matching(
    const hg::Hypergraph& g, const hg::FixedAssignment& fixed,
    const MatchingConfig& config, const ParallelConfig& parallel,
    const std::vector<hg::PartitionId>* same_part = nullptr,
    const util::Deadline* deadline = nullptr);

/// One independent start of the parallel pipeline: parallel coarsening,
/// parallel random coarse starts (each on its own RNG stream), and
/// round-based parallel refinement on the way back up (levels at or below
/// parallel.fm_polish_max_movable movables refine with the serial FM
/// engine instead — cheap there, and its per-move gain updates beat the
/// round model's frozen gains on small graphs). Honours the same deadline
/// degradation contract as MultilevelPartitioner::run. Deterministic in
/// (inputs, seed, config) — thread count, pool size and grain never
/// change the result.
MultilevelResult run_parallel_multilevel(const hg::Hypergraph& graph,
                                         const hg::FixedAssignment& fixed,
                                         const part::BalanceConstraint& balance,
                                         std::uint64_t seed,
                                         const MultilevelConfig& config);

}  // namespace fixedpart::ml
