#include "ml/matching.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

namespace fixedpart::ml {

std::vector<VertexId> heavy_edge_matching(
    const hg::Hypergraph& g, const hg::FixedAssignment& fixed,
    const MatchingConfig& config, util::Rng& rng,
    const std::vector<hg::PartitionId>* same_part) {
  if (same_part != nullptr &&
      static_cast<VertexId>(same_part->size()) != g.num_vertices()) {
    throw std::invalid_argument("heavy_edge_matching: same_part size");
  }
  if (fixed.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument("heavy_edge_matching: fixed size mismatch");
  }
  const VertexId n = g.num_vertices();
  std::vector<VertexId> match(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) match[v] = v;

  std::vector<Weight> caps(static_cast<std::size_t>(g.num_resources()));
  for (int r = 0; r < g.num_resources(); ++r) {
    const auto fraction_cap = static_cast<Weight>(std::floor(
        config.max_cluster_fraction * static_cast<double>(g.total_weight(r))));
    // Never cap below twice the average vertex weight, or small/uniform
    // graphs could not match at all.
    const auto pair_cap = static_cast<Weight>(
        std::ceil(2.0 * static_cast<double>(g.total_weight(r)) /
                  std::max<double>(1.0, static_cast<double>(n))));
    caps[r] = std::max<Weight>({1, fraction_cap, pair_cap});
  }

  auto weight_ok = [&](VertexId a, VertexId b) {
    for (int r = 0; r < g.num_resources(); ++r) {
      if (g.vertex_weight(a, r) + g.vertex_weight(b, r) > caps[r]) {
        return false;
      }
    }
    return true;
  };

  std::vector<VertexId> order(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) order[v] = v;
  rng.shuffle(std::span<VertexId>(order));

  // Sparse accumulation of connectivity scores: score[u] for neighbours u
  // of the current vertex, reset via the touched list.
  std::vector<double> score(static_cast<std::size_t>(n), 0.0);
  std::vector<VertexId> touched;

  for (VertexId v : order) {
    if (match[v] != v) continue;
    touched.clear();
    for (hg::NetId e : g.nets_of(v)) {
      const std::int64_t size = g.net_size(e);
      if (size < 2 || size > config.large_net_threshold) continue;
      const double contribution =
          static_cast<double>(g.net_weight(e)) / static_cast<double>(size - 1);
      for (VertexId u : g.pins(e)) {
        if (u == v || match[u] != u) continue;
        if (score[u] == 0.0) touched.push_back(u);
        score[u] += contribution;
      }
    }
    VertexId best = hg::kNoVertex;
    double best_score = 0.0;
    for (VertexId u : touched) {
      const double s = score[u];
      score[u] = 0.0;
      if ((fixed.allowed_mask(v) & fixed.allowed_mask(u)) == 0) continue;
      if (same_part != nullptr && (*same_part)[v] != (*same_part)[u]) continue;
      if (!weight_ok(v, u)) continue;
      if (s > best_score) {
        best_score = s;
        best = u;
      }
    }
    if (best != hg::kNoVertex) {
      match[v] = best;
      match[best] = v;
    }
  }
  return match;
}

}  // namespace fixedpart::ml
