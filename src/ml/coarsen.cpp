#include "ml/coarsen.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "hg/builder.hpp"

namespace fixedpart::ml {

namespace {

/// FNV-1a over the sorted pin list, used to bucket identical coarse nets.
std::uint64_t hash_pins(const std::vector<VertexId>& pins) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (VertexId v : pins) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

CoarseLevel contract(const hg::Hypergraph& g, const hg::FixedAssignment& fixed,
                     const std::vector<VertexId>& match) {
  if (static_cast<VertexId>(match.size()) != g.num_vertices()) {
    throw std::invalid_argument("contract: match size mismatch");
  }
  CoarseLevel level;
  level.map.assign(static_cast<std::size_t>(g.num_vertices()), hg::kNoVertex);

  hg::HypergraphBuilder builder(g.num_resources());
  std::vector<std::uint64_t> coarse_masks;
  std::vector<Weight> weights(static_cast<std::size_t>(g.num_resources()));

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId partner = match[v];
    if (partner < v) continue;  // cluster created when `partner` was visited
    if (partner != v && match[partner] != v) {
      throw std::invalid_argument("contract: match not symmetric");
    }
    std::uint64_t mask = fixed.allowed_mask(v);
    bool pad = g.is_pad(v);
    for (int r = 0; r < g.num_resources(); ++r) {
      weights[static_cast<std::size_t>(r)] = g.vertex_weight(v, r);
    }
    if (partner != v) {
      mask &= fixed.allowed_mask(partner);
      pad = pad || g.is_pad(partner);
      for (int r = 0; r < g.num_resources(); ++r) {
        weights[static_cast<std::size_t>(r)] += g.vertex_weight(partner, r);
      }
    }
    if (mask == 0) {
      throw std::invalid_argument(
          "contract: matched vertices with disjoint allowed sets");
    }
    const VertexId c = builder.add_vertex(weights, pad);
    level.map[v] = c;
    if (partner != v) level.map[partner] = c;
    coarse_masks.push_back(mask);
  }

  // Re-pin nets; drop those collapsing below two pins; merge duplicates.
  struct StagedNet {
    std::vector<VertexId> pins;
    Weight weight;
  };
  std::vector<StagedNet> staged;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_hash;
  staged.reserve(static_cast<std::size_t>(g.num_nets()));

  std::vector<VertexId> pins;
  for (hg::NetId e = 0; e < g.num_nets(); ++e) {
    pins.clear();
    for (VertexId v : g.pins(e)) pins.push_back(level.map[v]);
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() < 2) continue;
    const std::uint64_t h = hash_pins(pins);
    bool merged = false;
    for (std::size_t idx : by_hash[h]) {
      if (staged[idx].pins == pins) {
        staged[idx].weight += g.net_weight(e);
        merged = true;
        break;
      }
    }
    if (!merged) {
      by_hash[h].push_back(staged.size());
      staged.push_back({pins, g.net_weight(e)});
    }
  }
  for (const StagedNet& net : staged) builder.add_net(net.pins, net.weight);

  level.graph = builder.build();
  level.fixed = hg::FixedAssignment(level.graph.num_vertices(),
                                    fixed.num_parts());
  for (VertexId c = 0; c < level.graph.num_vertices(); ++c) {
    if (coarse_masks[static_cast<std::size_t>(c)] != level.fixed.full_mask()) {
      level.fixed.restrict_to(c, coarse_masks[static_cast<std::size_t>(c)]);
    }
  }
  return level;
}

}  // namespace fixedpart::ml
