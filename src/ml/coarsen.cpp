#include "ml/coarsen.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <unordered_map>

#include "hg/builder.hpp"

namespace fixedpart::ml {

namespace {

/// FNV-1a over the sorted pin list, used to bucket identical coarse nets.
std::uint64_t hash_pins(const std::vector<VertexId>& pins) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (VertexId v : pins) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

CoarseLevel contract(const hg::Hypergraph& g, const hg::FixedAssignment& fixed,
                     const std::vector<VertexId>& match,
                     CoarsenScratch* scratch) {
  if (static_cast<VertexId>(match.size()) != g.num_vertices()) {
    throw std::invalid_argument("contract: match size mismatch");
  }
  CoarsenScratch local;
  CoarsenScratch& s = scratch != nullptr ? *scratch : local;
  CoarseLevel level;
  level.map.assign(static_cast<std::size_t>(g.num_vertices()), hg::kNoVertex);

  hg::HypergraphBuilder builder(g.num_resources());
  std::vector<std::uint64_t>& coarse_masks = s.coarse_masks;
  coarse_masks.clear();
  std::vector<Weight>& weights = s.weights;
  weights.assign(static_cast<std::size_t>(g.num_resources()), 0);

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId partner = match[v];
    if (partner < v) continue;  // cluster created when `partner` was visited
    if (partner != v && match[partner] != v) {
      throw std::invalid_argument("contract: match not symmetric");
    }
    std::uint64_t mask = fixed.allowed_mask(v);
    bool pad = g.is_pad(v);
    for (int r = 0; r < g.num_resources(); ++r) {
      weights[static_cast<std::size_t>(r)] = g.vertex_weight(v, r);
    }
    if (partner != v) {
      mask &= fixed.allowed_mask(partner);
      pad = pad || g.is_pad(partner);
      for (int r = 0; r < g.num_resources(); ++r) {
        weights[static_cast<std::size_t>(r)] += g.vertex_weight(partner, r);
      }
    }
    if (mask == 0) {
      throw std::invalid_argument(
          "contract: matched vertices with disjoint allowed sets");
    }
    const VertexId c = builder.add_vertex(weights, pad);
    level.map[v] = c;
    if (partner != v) level.map[partner] = c;
    coarse_masks.push_back(mask);
  }

  // Re-pin nets; drop those collapsing below two pins; merge duplicates.
  // Staged nets live in the scratch's flat pin arena (offsets alongside).
  std::vector<VertexId>& staged_pins = s.staged_pins;
  std::vector<std::int64_t>& staged_offsets = s.staged_offsets;
  std::vector<Weight>& staged_weights = s.staged_weights;
  staged_pins.clear();
  staged_offsets.assign(1, 0);
  staged_weights.clear();
  auto& by_hash = s.by_hash;
  by_hash.clear();
  const auto staged_slice = [&](std::size_t idx) {
    return std::span<const VertexId>(
        staged_pins.data() + staged_offsets[idx],
        staged_pins.data() + staged_offsets[idx + 1]);
  };

  std::vector<VertexId>& pins = s.pins;
  for (hg::NetId e = 0; e < g.num_nets(); ++e) {
    pins.clear();
    for (VertexId v : g.pins(e)) pins.push_back(level.map[v]);
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() < 2) continue;
    const std::uint64_t h = hash_pins(pins);
    bool merged = false;
    for (std::size_t idx : by_hash[h]) {
      const auto slice = staged_slice(idx);
      if (std::equal(slice.begin(), slice.end(), pins.begin(), pins.end())) {
        staged_weights[idx] += g.net_weight(e);
        merged = true;
        break;
      }
    }
    if (!merged) {
      by_hash[h].push_back(staged_weights.size());
      staged_pins.insert(staged_pins.end(), pins.begin(), pins.end());
      staged_offsets.push_back(static_cast<std::int64_t>(staged_pins.size()));
      staged_weights.push_back(g.net_weight(e));
    }
  }
  for (std::size_t i = 0; i < staged_weights.size(); ++i) {
    builder.add_net(staged_slice(i), staged_weights[i]);
  }

  level.graph = builder.build();
  level.fixed = hg::FixedAssignment(level.graph.num_vertices(),
                                    fixed.num_parts());
  for (VertexId c = 0; c < level.graph.num_vertices(); ++c) {
    if (coarse_masks[static_cast<std::size_t>(c)] != level.fixed.full_mask()) {
      level.fixed.restrict_to(c, coarse_masks[static_cast<std::size_t>(c)]);
    }
  }
  return level;
}

}  // namespace fixedpart::ml
