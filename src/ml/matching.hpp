#pragma once
// Heavy-edge matching for hypergraph coarsening, following the multilevel
// recipe of Alpert/Huang/Kahng (MLC) and Karypis et al. (hMETIS) that the
// paper's engine implements. Each vertex is matched with the unmatched
// neighbour of highest connectivity  sum over shared nets of
// w(e)/(|e|-1), subject to:
//
//  * fixed-vertex compatibility: the intersection of the two allowed-
//    partition masks must be non-empty (a free vertex may be absorbed into
//    a fixed cluster; vertices fixed to different sides never merge);
//  * a cluster weight cap per resource, so coarse vertices stay small
//    enough for balanced initial solutions.

#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "util/rng.hpp"

namespace fixedpart::ml {

using hg::VertexId;
using hg::Weight;

struct MatchingConfig {
  /// Per-resource cluster weight cap as a fraction of the total weight.
  double max_cluster_fraction = 0.05;
  /// Nets with more pins than this do not drive matching (their
  /// connectivity contribution is negligible and scanning them is costly).
  int large_net_threshold = 64;
};

/// match[v] = partner vertex, or v itself when unmatched. Symmetric:
/// match[match[v]] == v.
///
/// `same_part`, when non-null, restricts matching to vertices currently in
/// the same partition — the solution-preserving coarsening used by
/// V-cycling (Karypis et al.), where the hierarchy must be able to
/// represent the incumbent solution exactly.
std::vector<VertexId> heavy_edge_matching(
    const hg::Hypergraph& g, const hg::FixedAssignment& fixed,
    const MatchingConfig& config, util::Rng& rng,
    const std::vector<hg::PartitionId>* same_part = nullptr);

}  // namespace fixedpart::ml
