#include "ml/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ml/coarsen.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "part/feasibility.hpp"
#include "part/fm.hpp"
#include "part/initial.hpp"
#include "part/partition.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fixedpart::ml {

namespace {

using hg::NetId;
using hg::PartitionId;

/// Fixed-grain chunked execution over an index range. Chunk boundaries
/// depend only on (count, grain), never on the thread count or which
/// worker picks a chunk up — the determinism precondition for every
/// parallel loop in this file.
struct Exec {
  util::ThreadPool* pool;
  int threads;
  std::int64_t grain;

  std::int64_t num_chunks(std::int64_t count) const {
    return count <= 0 ? 0 : (count + grain - 1) / grain;
  }

  /// fn(chunk_index, lo, hi) over [0, count) split into grain-sized
  /// chunks. fn must write only chunk-owned state (or distinct elements
  /// keyed by index) and may read anything that no chunk writes.
  void for_chunks(
      std::int64_t count,
      const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn)
      const {
    if (count <= 0) return;
    const std::function<void(std::int64_t)> body = [&](std::int64_t c) {
      const std::int64_t lo = c * grain;
      fn(c, lo, std::min(count, lo + grain));
    };
    pool->parallel_for(num_chunks(count), threads, body);
  }
};

util::ThreadPool* resolve_pool(const ParallelConfig& parallel) {
  return parallel.pool != nullptr ? parallel.pool : &util::ThreadPool::shared();
}

VertexId movable_count(const hg::Hypergraph& g,
                       const hg::FixedAssignment& fixed) {
  VertexId n = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    n += (fixed.allowed_mask(v) == fixed.full_mask());
  }
  return n;
}

/// Classic FM move gain of v (to the opposite side), read off the current
/// pin counts. Pure read of `state` — safe to evaluate concurrently from
/// many threads while nobody moves vertices.
Weight move_gain(const part::PartitionState& state, const hg::Hypergraph& g,
                 VertexId v) {
  const PartitionId from = state.part_of(v);
  const PartitionId to = 1 - from;
  Weight gain = 0;
  for (const NetId e : g.nets_of(v)) {
    if (state.pin_count(e, from) == 1) gain += g.net_weight(e);
    if (state.pin_count(e, to) == 0) gain -= g.net_weight(e);
  }
  return gain;
}

/// A refinement candidate proposed by the parallel gain pass. Ordered by
/// (gain desc, vertex asc): a total order, so the arbiter's sequence is
/// unique whatever the shard interleaving was.
struct Candidate {
  Weight gain;
  VertexId vertex;
};

struct RoundStats {
  std::int64_t moves = 0;
  std::int32_t rounds = 0;
  bool truncated = false;
};

/// Round-based parallel refinement of one level. Each round: (1) threads
/// scan disjoint shards of the movable list and emit a gain candidate for
/// every boundary vertex — reads only, against the round-start state;
/// (2) a sequential arbiter sorts the candidates into the (gain desc,
/// vertex asc) total order and tentatively applies them, tracking the
/// best prefix that both improved the cut and kept balance (fixed
/// vertices never enter the movable list); (3) the tail past the best
/// prefix is rolled back, which publishes exactly the kept deltas to the
/// next round. Stops at the first round that keeps nothing, at
/// max_rounds, or when the deadline expires.
RoundStats refine_rounds(part::PartitionState& state, const hg::Hypergraph& g,
                         const std::vector<VertexId>& movable,
                         const part::BalanceConstraint& balance,
                         const Exec& exec, const MultilevelConfig& config,
                         std::int64_t level_index) {
  RoundStats stats;
  const auto n_mov = static_cast<std::int64_t>(movable.size());
  if (n_mov == 0) return stats;
  const util::Deadline* deadline = config.deadline;

  // Same stall discipline as the serial FM pass: a round's apply phase
  // ends after a streak of non-improving moves (stale gains concentrate
  // real improvement at the front of the order, mirroring Sec. III).
  const std::int64_t stall_limit =
      config.refine.stall_fraction >= 1.0
          ? n_mov
          : std::max<std::int64_t>(
                config.refine.stall_min,
                static_cast<std::int64_t>(config.refine.stall_fraction *
                                          static_cast<double>(n_mov)));

  std::vector<std::vector<Candidate>> shards(
      static_cast<std::size_t>(exec.num_chunks(n_mov)));
  std::vector<Candidate> candidates;
  struct Applied {
    VertexId vertex;
    PartitionId from;
  };
  std::vector<Applied> applied;

  for (int round = 0; round < config.parallel.max_rounds; ++round) {
    if (deadline != nullptr && deadline->expired()) {
      stats.truncated = true;
      break;
    }
    obs::ScopedSpan span("ml.parallel_round");

    // (1) Parallel proposal: each chunk owns shards[c]; state is frozen.
    exec.for_chunks(n_mov, [&](std::int64_t c, std::int64_t lo,
                               std::int64_t hi) {
      auto& out = shards[static_cast<std::size_t>(c)];
      out.clear();
      for (std::int64_t i = lo; i < hi; ++i) {
        const VertexId v = movable[static_cast<std::size_t>(i)];
        if (!state.is_boundary(v)) continue;
        out.push_back(Candidate{move_gain(state, g, v), v});
      }
    });

    // (2) Deterministic merge + total order.
    candidates.clear();
    for (const auto& shard : shards) {
      candidates.insert(candidates.end(), shard.begin(), shard.end());
    }
    if (candidates.empty()) break;
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.gain != b.gain) return a.gain > b.gain;
                return a.vertex < b.vertex;
              });

    // (3) Sequential arbiter: apply in order, keep the best prefix.
    const Weight cut_before = state.cut();
    Weight best_cut = cut_before;
    applied.clear();
    std::size_t best_prefix = 0;
    std::int64_t since_best = 0;
    for (const Candidate& cand : candidates) {
      const PartitionId from = state.part_of(cand.vertex);
      const PartitionId to = 1 - from;
      if (!balance.fits(state.part_weight_vector(to),
                        g.vertex_weights(cand.vertex), to)) {
        continue;
      }
      state.move(cand.vertex, to);
      applied.push_back(Applied{cand.vertex, from});
      if (state.cut() < best_cut) {
        best_cut = state.cut();
        best_prefix = applied.size();
        since_best = 0;
      } else if (++since_best >= stall_limit) {
        break;
      }
    }
    for (std::size_t i = applied.size(); i > best_prefix; --i) {
      state.move(applied[i - 1].vertex, applied[i - 1].from);
    }
    stats.moves += static_cast<std::int64_t>(applied.size());
    stats.rounds += 1;

    span.arg("level", level_index)
        .arg("round", static_cast<std::int64_t>(round))
        .arg("proposed", static_cast<std::int64_t>(candidates.size()))
        .arg("kept", static_cast<std::int64_t>(best_prefix));
    if constexpr (obs::kEnabled) {
      auto& reg = obs::Registry::global();
      static const obs::MetricId rounds_total =
          reg.counter("ml.parallel.rounds");
      static const obs::MetricId kept_fraction =
          reg.histogram("ml.parallel.prefix_kept_fraction", 0.0, 1.0, 20);
      reg.add(rounds_total);
      if (!applied.empty()) {
        reg.observe(kept_fraction,
                    static_cast<double>(best_prefix) /
                        static_cast<double>(applied.size()));
      }
    }
    if (best_prefix == 0) break;  // no improvement kept: converged
  }
  return stats;
}

}  // namespace

std::vector<VertexId> parallel_heavy_edge_matching(
    const hg::Hypergraph& g, const hg::FixedAssignment& fixed,
    const MatchingConfig& config, const ParallelConfig& parallel,
    const std::vector<hg::PartitionId>* same_part,
    const util::Deadline* deadline) {
  if (same_part != nullptr &&
      static_cast<VertexId>(same_part->size()) != g.num_vertices()) {
    throw std::invalid_argument("parallel_heavy_edge_matching: same_part size");
  }
  if (fixed.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument(
        "parallel_heavy_edge_matching: fixed size mismatch");
  }
  if (parallel.threads < 1) {
    throw std::invalid_argument("parallel_heavy_edge_matching: threads < 1");
  }
  if (parallel.grain < 1) {
    throw std::invalid_argument("parallel_heavy_edge_matching: grain < 1");
  }
  const Exec exec{resolve_pool(parallel), parallel.threads,
                  static_cast<std::int64_t>(parallel.grain)};
  const VertexId n = g.num_vertices();
  std::vector<VertexId> match(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) match[v] = v;
  if (n == 0) return match;

  // Same cluster-weight caps as the serial matcher.
  std::vector<Weight> caps(static_cast<std::size_t>(g.num_resources()));
  for (int r = 0; r < g.num_resources(); ++r) {
    const auto fraction_cap = static_cast<Weight>(std::floor(
        config.max_cluster_fraction * static_cast<double>(g.total_weight(r))));
    const auto pair_cap = static_cast<Weight>(
        std::ceil(2.0 * static_cast<double>(g.total_weight(r)) /
                  std::max<double>(1.0, static_cast<double>(n))));
    caps[r] = std::max<Weight>({1, fraction_cap, pair_cap});
  }
  const auto weight_ok = [&](VertexId a, VertexId b) {
    for (int r = 0; r < g.num_resources(); ++r) {
      if (g.vertex_weight(a, r) + g.vertex_weight(b, r) > caps[r]) {
        return false;
      }
    }
    return true;
  };

  std::vector<VertexId> propose(static_cast<std::size_t>(n));
  // A few propose-resolve rounds capture almost all of the matching;
  // the tail would add rounds for single pairs, and an unmatched residue
  // only costs coarsening ratio (the stagnation check upstream handles a
  // genuinely unmatchable graph).
  constexpr int kMaxMatchRounds = 16;

  for (int round = 0; round < kMaxMatchRounds; ++round) {
    // An expired per-request budget stops the pipeline between rounds:
    // the matching accumulated so far is complete and symmetric, so the
    // caller just coarsens less this level and flags truncation itself.
    if (deadline != nullptr && deadline->expired()) break;
    // Propose: for every unmatched v, the best unmatched compatible
    // neighbour — a pure function of v and the round-start match state.
    // (score desc, lowest index on ties; score accumulation follows v's
    // net order, so the float sums are reproducible too.)
    exec.for_chunks(n, [&](std::int64_t, std::int64_t lo, std::int64_t hi) {
      // Worker-lifetime scratch: a dense score array with a touched list,
      // as in the serial matcher. Only ever non-zero inside one vertex's
      // scan (the touched loop restores zeros), so reuse across chunks,
      // levels and calls is safe.
      thread_local std::vector<double> score;
      thread_local std::vector<VertexId> touched;
      if (score.size() < static_cast<std::size_t>(n)) {
        score.assign(static_cast<std::size_t>(n), 0.0);
      }
      for (std::int64_t i = lo; i < hi; ++i) {
        const auto v = static_cast<VertexId>(i);
        propose[static_cast<std::size_t>(v)] = hg::kNoVertex;
        if (match[static_cast<std::size_t>(v)] != v) continue;
        touched.clear();
        for (const NetId e : g.nets_of(v)) {
          const std::int64_t size = g.net_size(e);
          if (size < 2 || size > config.large_net_threshold) continue;
          const double contribution = static_cast<double>(g.net_weight(e)) /
                                      static_cast<double>(size - 1);
          for (const VertexId u : g.pins(e)) {
            if (u == v || match[static_cast<std::size_t>(u)] != u) continue;
            if (score[u] == 0.0) touched.push_back(u);
            score[u] += contribution;
          }
        }
        VertexId best = hg::kNoVertex;
        double best_score = 0.0;
        for (const VertexId u : touched) {
          const double s = score[u];
          score[u] = 0.0;
          if ((fixed.allowed_mask(v) & fixed.allowed_mask(u)) == 0) continue;
          if (same_part != nullptr && (*same_part)[v] != (*same_part)[u]) {
            continue;
          }
          if (!weight_ok(v, u)) continue;
          if (s > best_score ||
              (s == best_score && best != hg::kNoVertex && u < best)) {
            best_score = s;
            best = u;
          }
        }
        propose[static_cast<std::size_t>(v)] = best;
      }
    });

    // Resolve: mutual proposals match. Each chunk writes only match[v]
    // for its own v; the partner's slot is written by the partner's chunk
    // with the symmetric value, so no slot has two writers.
    std::atomic<std::int64_t> matched_pairs{0};
    exec.for_chunks(n, [&](std::int64_t, std::int64_t lo, std::int64_t hi) {
      std::int64_t local = 0;
      for (std::int64_t i = lo; i < hi; ++i) {
        const auto v = static_cast<VertexId>(i);
        const VertexId u = propose[static_cast<std::size_t>(v)];
        if (u != hg::kNoVertex && propose[static_cast<std::size_t>(u)] == v) {
          match[static_cast<std::size_t>(v)] = u;
          if (v < u) ++local;
        }
      }
      if (local != 0) {
        matched_pairs.fetch_add(local, std::memory_order_relaxed);
      }
    });
    if (matched_pairs.load(std::memory_order_relaxed) == 0) break;
  }
  return match;
}

MultilevelResult run_parallel_multilevel(const hg::Hypergraph& graph,
                                         const hg::FixedAssignment& fixed,
                                         const part::BalanceConstraint& balance,
                                         std::uint64_t seed,
                                         const MultilevelConfig& config) {
  if (fixed.num_parts() != 2 || balance.num_parts() != 2) {
    throw std::invalid_argument("run_parallel_multilevel: needs 2 parts");
  }
  if (fixed.num_vertices() != graph.num_vertices()) {
    throw std::invalid_argument(
        "run_parallel_multilevel: fixed size mismatch");
  }
  if (config.parallel.threads < 1) {
    throw std::invalid_argument("run_parallel_multilevel: threads < 1");
  }
  if (config.parallel.grain < 1) {
    throw std::invalid_argument("run_parallel_multilevel: grain < 1");
  }
  util::Timer timer;
  MultilevelResult result;
  if (config.preflight) {
    const part::FeasibilityReport report =
        part::check_feasibility(graph, fixed, balance);
    if (!report.feasible) {
      throw util::InfeasibleError("parallel multilevel: " + report.summary());
    }
  }
  const util::Deadline* deadline = config.deadline;
  const auto expired = [&] {
    return deadline != nullptr && deadline->expired();
  };
  part::FmConfig refine_config = config.refine;
  if (deadline != nullptr) refine_config.deadline = deadline;
  // Serial FM calls inside this pipeline (coarse starts, small-level
  // polish) shard their initial gain computation at the same width; this
  // is bit-identical to serial gain init (see FmConfig::threads).
  refine_config.threads = config.parallel.threads;
  const Exec exec{resolve_pool(config.parallel), config.parallel.threads,
                  static_cast<std::int64_t>(config.parallel.grain)};
  if constexpr (obs::kEnabled) {
    auto& reg = obs::Registry::global();
    static const obs::MetricId threads_gauge = reg.gauge("ml.parallel.threads");
    reg.set(threads_gauge, static_cast<double>(exec.threads));
  }
  // One FM workspace for every serial polish in this run. Polishes only
  // ever run on the orchestrating thread (the arbiter), so one is enough.
  // Likewise one coarsening scratch: contract() always runs on the
  // orchestrating thread (only the matching inside a level is parallel).
  part::FmScratch scratch;
  CoarsenScratch coarsen_scratch;
  // RNG streams are handed out by this serially-advanced counter; every
  // consumer derives util::Rng::stream(seed, id) — a pure function — so
  // the streams are identical whatever the thread schedule was. Parallel
  // consumers (coarse starts) reserve a contiguous id block up front.
  std::uint64_t next_stream = 0;

  // Parallel-matching hierarchy builder; `incumbent` non-null makes the
  // matching solution-preserving (V-cycle restriction), as in the serial
  // builder.
  auto build_hierarchy = [&](const std::vector<PartitionId>* incumbent) {
    std::vector<CoarseLevel> levels;
    const hg::Hypergraph* g = &graph;
    const hg::FixedAssignment* f = &fixed;
    std::vector<PartitionId> projected;
    if (incumbent != nullptr) projected = *incumbent;
    while (movable_count(*g, *f) > config.coarsest_size) {
      if (expired()) {
        result.truncated = true;
        break;
      }
      obs::ScopedSpan span("ml.coarsen_level");
      const auto match = parallel_heavy_edge_matching(
          *g, *f, config.matching, config.parallel,
          incumbent != nullptr ? &projected : nullptr, deadline);
      CoarseLevel level = contract(*g, *f, match, &coarsen_scratch);
      span.arg("level", static_cast<std::int64_t>(levels.size()))
          .arg("fine_vertices", static_cast<std::int64_t>(g->num_vertices()))
          .arg("coarse_vertices",
               static_cast<std::int64_t>(level.graph.num_vertices()));
      if (static_cast<double>(level.graph.num_vertices()) >
          config.stagnation_ratio * static_cast<double>(g->num_vertices())) {
        break;
      }
      if (incumbent != nullptr) {
        std::vector<PartitionId> coarse(
            static_cast<std::size_t>(level.graph.num_vertices()),
            hg::kNoPartition);
        for (VertexId v = 0; v < g->num_vertices(); ++v) {
          coarse[level.map[v]] = projected[v];
        }
        projected = std::move(coarse);
      }
      levels.push_back(std::move(level));
      g = &levels.back().graph;
      f = &levels.back().fixed;
    }
    return std::make_tuple(std::move(levels), g, f, std::move(projected));
  };

  // Refines one complete level in place. Small levels use the serial FM
  // engine on a private stream (deterministic, better quality there);
  // large levels run the parallel rounds.
  auto refine_level = [&](part::PartitionState& state,
                          const hg::Hypergraph& g,
                          const hg::FixedAssignment& f,
                          std::int64_t level_index) {
    std::vector<VertexId> movable;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (f.allowed_mask(v) == f.full_mask()) movable.push_back(v);
    }
    if (static_cast<VertexId>(movable.size()) <=
        config.parallel.fm_polish_max_movable) {
      part::FmBipartitioner fm(g, f, balance, &scratch);
      util::Rng rng = util::Rng::stream(seed, next_stream++);
      const auto r = fm.refine(state, rng, refine_config);
      result.total_moves += r.total_moves;
      result.total_passes += r.passes;
      result.truncated |= r.truncated;
      return;
    }
    const RoundStats stats =
        refine_rounds(state, g, movable, balance, exec, config, level_index);
    result.total_moves += stats.moves;
    result.total_passes += stats.rounds;
    result.truncated |= stats.truncated;
  };

  // Parallel random starts at the coarsest level: every start owns a
  // pre-reserved RNG stream and a private state/refiner, so results per
  // start are schedule-independent; the best (cut asc, start index asc on
  // ties) wins deterministically.
  auto coarse_solve = [&](const hg::Hypergraph& cg,
                          const hg::FixedAssignment& cf) {
    const int starts = std::max(1, config.coarse_starts);
    const std::uint64_t stream_base = next_stream;
    next_stream += static_cast<std::uint64_t>(starts);
    std::vector<std::vector<PartitionId>> assigns(
        static_cast<std::size_t>(starts));
    std::vector<Weight> cuts(static_cast<std::size_t>(starts), 0);
    std::vector<char> ran(static_cast<std::size_t>(starts), 0);
    std::atomic<std::int64_t> moves{0};
    std::atomic<std::int32_t> passes{0};
    std::atomic<bool> truncated{false};
    const std::function<void(std::int64_t)> body = [&](std::int64_t s) {
      // Start 0 always runs so there is always a complete assignment;
      // an expired budget only skips restarts (degradation contract).
      if (s > 0 && expired()) {
        truncated.store(true, std::memory_order_relaxed);
        return;
      }
      const auto idx = static_cast<std::size_t>(s);
      util::Rng rng = util::Rng::stream(
          seed, stream_base + static_cast<std::uint64_t>(s));
      part::PartitionState state(cg, 2);
      part::random_feasible_assignment(state, cf, balance, rng,
                                       /*require_feasible=*/false);
      part::FmBipartitioner fm(cg, cf, balance);
      const auto r = fm.refine(state, rng, refine_config);
      moves.fetch_add(r.total_moves, std::memory_order_relaxed);
      passes.fetch_add(r.passes, std::memory_order_relaxed);
      if (r.truncated) truncated.store(true, std::memory_order_relaxed);
      cuts[idx] = state.cut();
      assigns[idx].assign(state.assignment().begin(),
                          state.assignment().end());
      ran[idx] = 1;
    };
    exec.pool->parallel_for(starts, exec.threads, body);
    result.total_moves += moves.load(std::memory_order_relaxed);
    result.total_passes += passes.load(std::memory_order_relaxed);
    result.truncated |= truncated.load(std::memory_order_relaxed);
    std::size_t best = 0;  // start 0 always ran
    for (std::size_t s = 1; s < assigns.size(); ++s) {
      if (ran[s] != 0 && cuts[s] < cuts[best]) best = s;
    }
    return std::make_pair(std::move(assigns[best]), cuts[best]);
  };

  // Projects `assignment` (on the coarsest graph of `levels`) back to the
  // input graph, refining every level on the way. Projection always
  // happens; an expired budget skips refinement only.
  auto uncoarsen = [&](const std::vector<CoarseLevel>& levels,
                       std::vector<PartitionId> assignment) {
    for (std::size_t i = levels.size(); i-- > 0;) {
      const hg::Hypergraph& fine_graph = (i == 0) ? graph : levels[i - 1].graph;
      const hg::FixedAssignment& fine_fixed =
          (i == 0) ? fixed : levels[i - 1].fixed;
      obs::ScopedSpan span("ml.project");
      span.arg("level", static_cast<std::int64_t>(i))
          .arg("fine_vertices",
               static_cast<std::int64_t>(fine_graph.num_vertices()));
      part::PartitionState fine_state(fine_graph, 2);
      for (VertexId v = 0; v < fine_graph.num_vertices(); ++v) {
        fine_state.assign(v, assignment[levels[i].map[v]]);
      }
      if (expired()) {
        result.truncated = true;
      } else {
        refine_level(fine_state, fine_graph, fine_fixed,
                     static_cast<std::int64_t>(i));
      }
      assignment.assign(fine_state.assignment().begin(),
                        fine_state.assignment().end());
      if (i == 0) result.cut = fine_state.cut();
    }
    return assignment;
  };

  // --- Initial descent.
  auto [levels, coarsest_graph, coarsest_fixed, unused] =
      build_hierarchy(nullptr);
  result.levels = static_cast<int>(levels.size()) + 1;
  auto [best_assignment, best_cut] =
      coarse_solve(*coarsest_graph, *coarsest_fixed);

  std::vector<PartitionId> assignment;
  if (levels.empty()) {
    result.cut = best_cut;
    assignment = std::move(best_assignment);
  } else {
    assignment = uncoarsen(levels, std::move(best_assignment));
  }

  // --- Optional V-cycles (same protocol as the serial path).
  for (int cycle = 0; cycle < config.vcycles; ++cycle) {
    if (expired()) {
      result.truncated = true;
      break;
    }
    obs::ScopedSpan span("ml.vcycle");
    span.arg("cycle", static_cast<std::int64_t>(cycle));
    auto [vlevels, vgraph, vfixed, projected] = build_hierarchy(&assignment);
    if (vlevels.empty()) break;
    part::PartitionState coarse_state(*vgraph, 2);
    for (VertexId v = 0; v < vgraph->num_vertices(); ++v) {
      coarse_state.assign(v, projected[v]);
    }
    refine_level(coarse_state, *vgraph, *vfixed,
                 static_cast<std::int64_t>(vlevels.size()));
    assignment = uncoarsen(
        vlevels, std::vector<PartitionId>(coarse_state.assignment().begin(),
                                          coarse_state.assignment().end()));
  }

  result.assignment = std::move(assignment);
  result.seconds = timer.seconds();
  if constexpr (obs::kEnabled) {
    auto& reg = obs::Registry::global();
    static const obs::MetricId runs = reg.counter("ml.runs");
    static const obs::MetricId levels_total = reg.counter("ml.levels");
    static const obs::MetricId truncations = reg.counter("ml.truncations");
    reg.add(runs);
    reg.add(levels_total, result.levels);
    if (result.truncated) reg.add(truncations);
  }
  return result;
}

}  // namespace fixedpart::ml
