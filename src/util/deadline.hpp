#pragma once
// Cooperative wall-clock budgets for the partitioning engines. A Deadline
// is checked (never enforced preemptively) at natural rollback points —
// FM move selection, multilevel level boundaries, multistart loop heads —
// so an expired budget always degrades to the best feasible solution
// found so far instead of aborting mid-mutation. Engines that honour a
// deadline report the degradation through a `truncated` flag in their
// result structs; see docs/ROBUSTNESS.md for the contract.
//
// A Deadline may also carry an external cancellation flag (e.g. set from
// a signal handler or another thread), which expires it immediately.

#include <atomic>
#include <chrono>
#include <limits>

namespace fixedpart::util {

class Deadline {
 public:
  /// Budgets are measured on the monotonic clock exclusively: a step of
  /// the system (wall) clock — NTP correction, suspend/resume, a manual
  /// `date` — must never fire a deadline early or stall it forever.
  /// tests/test_guardrails.cpp pins this contract.
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "Deadline must be immune to system-clock jumps");

  /// Unlimited: never expires (and costs nothing to check).
  Deadline() = default;

  /// Expires `seconds` of wall-clock time after construction. Negative or
  /// zero budgets are already expired.
  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.limited_ = true;
    d.expires_at_ =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    return d;
  }

  /// Attach an external cancellation flag; when `*cancel` becomes true the
  /// deadline reads as expired. The flag must outlive the deadline.
  void set_cancel_flag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  bool limited() const { return limited_ || cancel_ != nullptr; }

  bool expired() const {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return true;
    }
    return limited_ && Clock::now() >= expires_at_;
  }

  /// Seconds left before expiry; +infinity when unlimited, never negative.
  double remaining_seconds() const {
    if (!limited_) return std::numeric_limits<double>::infinity();
    const auto left =
        std::chrono::duration<double>(expires_at_ - Clock::now()).count();
    return left > 0.0 ? left : 0.0;
  }

 private:
  bool limited_ = false;
  Clock::time_point expires_at_{};
  const std::atomic<bool>* cancel_ = nullptr;
};

}  // namespace fixedpart::util
