#include "util/atomic_file.hpp"

#include <cstdio>
#include <stdexcept>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace fixedpart::util {

void flush_and_sync(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    throw std::runtime_error("atomic_file: flush failed for " + path);
  }
#ifndef _WIN32
  // Durability, not just ordering: without fsync a power loss can leave a
  // renamed-but-empty file on some filesystems.
  if (::fsync(::fileno(file)) != 0) {
    throw std::runtime_error("atomic_file: fsync failed for " + path);
  }
#endif
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("atomic_file: cannot open " + tmp);
  }
  const bool wrote =
      content.empty() ||
      std::fwrite(content.data(), 1, content.size(), file) == content.size();
  bool ok = wrote;
  if (ok) {
    try {
      flush_and_sync(file, tmp);
    } catch (...) {
      std::fclose(file);
      std::remove(tmp.c_str());
      throw;
    }
  }
  ok = (std::fclose(file) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    throw std::runtime_error("atomic_file: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("atomic_file: cannot rename " + tmp + " -> " +
                             path);
  }
}

}  // namespace fixedpart::util
