#include "util/atomic_file.hpp"

#include <cstdio>
#include <stdexcept>

#ifndef _WIN32
#include <cerrno>
#include <fcntl.h>
#include <unistd.h>
#endif

namespace fixedpart::util {

void flush_and_sync(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    throw std::runtime_error("atomic_file: flush failed for " + path);
  }
#ifndef _WIN32
  // Durability, not just ordering: without fsync a power loss can leave a
  // renamed-but-empty file on some filesystems.
  if (::fsync(::fileno(file)) != 0) {
    throw std::runtime_error("atomic_file: fsync failed for " + path);
  }
#endif
}

void sync_parent_dir(const std::string& path) {
#ifndef _WIN32
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    // tmpfs-style filesystems and restricted mounts may refuse directory
    // reads; the rename itself already happened, so degrade silently.
    return;
  }
  const int rc = ::fsync(fd);
  const int sync_errno = errno;
  ::close(fd);
  if (rc != 0 && sync_errno != EINVAL && sync_errno != ENOTSUP &&
      sync_errno != EBADF) {
    throw std::runtime_error("atomic_file: directory fsync failed for " +
                             dir);
  }
#else
  (void)path;
#endif
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("atomic_file: cannot open " + tmp);
  }
  const bool wrote =
      content.empty() ||
      std::fwrite(content.data(), 1, content.size(), file) == content.size();
  bool ok = wrote;
  if (ok) {
    try {
      flush_and_sync(file, tmp);
    } catch (...) {
      std::fclose(file);
      std::remove(tmp.c_str());
      throw;
    }
  }
  ok = (std::fclose(file) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    throw std::runtime_error("atomic_file: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("atomic_file: cannot rename " + tmp + " -> " +
                             path);
  }
  // The rename is atomic but not durable: on ext4/xfs the new directory
  // entry can be lost on power failure unless the parent directory is
  // fsynced too.
  sync_parent_dir(path);
}

}  // namespace fixedpart::util
