#include "util/env.hpp"

#include <cstdlib>

namespace fixedpart::util {

Scale scale_from_env() {
  const char* raw = std::getenv("REPRO_SCALE");
  if (raw == nullptr) return Scale::kDefault;
  const std::string value = raw;
  if (value == "smoke") return Scale::kSmoke;
  if (value == "paper") return Scale::kPaper;
  return Scale::kDefault;
}

std::string to_string(Scale scale) {
  switch (scale) {
    case Scale::kSmoke: return "smoke";
    case Scale::kPaper: return "paper";
    case Scale::kDefault: break;
  }
  return "default";
}

}  // namespace fixedpart::util
