#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fixedpart::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: wrong cell count");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << "  ";
      out << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string q = "\"";
    for (char ch : cell) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << quote(cells[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_cut_time(double cut, double seconds) {
  return fmt(cut, 1) + " (" + fmt(seconds, 2) + "s)";
}

}  // namespace fixedpart::util
