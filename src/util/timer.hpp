#pragma once
// Wall-clock timing for experiment CPU-time columns. The paper reports CPU
// seconds on late-90s SPARC hardware; we report wall-clock seconds on the
// host and compare only time *ratios* across regimes.

#include <chrono>

namespace fixedpart::util {

class Timer {
 public:
  /// Monotonic, like every timing source in this repo (Deadline, the svc
  /// heartbeat watchdog, obs::Tracer): a wall-clock step must not bend
  /// measured durations.
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "Timer must be immune to system-clock jumps");

  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  Clock::time_point start_;
};

}  // namespace fixedpart::util
