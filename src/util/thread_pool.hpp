#pragma once
// A reusable shared-memory worker pool for the parallel multilevel
// pipeline (docs/PARALLELISM.md). One process-wide pool is shared by every
// parallel section — multistart workers, coarsening proposal chunks,
// refinement gain shards — so concurrent jobs divide the machine instead
// of oversubscribing it: total runnable threads is bounded by the pool
// size plus the number of caller threads, never by the *sum* of each
// call site's requested width.
//
// The only primitive is parallel_for: the calling thread always
// participates (so a parallel section inside a pool worker — nested
// parallelism — can never deadlock, it simply degrades toward serial
// execution when every worker is busy), and pool workers join a section
// only up to its max_threads cap. Work items are claimed dynamically from
// a shared atomic counter; callers that need deterministic output must
// make each item's result a pure function of its index, which is exactly
// the discipline the deterministic parallel pipeline follows.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fixedpart::util {

class ThreadPool {
 public:
  /// A pool with `workers` resident worker threads (>= 0). Zero workers is
  /// valid: every parallel_for then runs entirely on the calling thread.
  explicit ThreadPool(int workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// The process-wide pool: hardware_concurrency() - 1 workers (callers
  /// participate, so total concurrency matches the core count), overridable
  /// via FIXEDPART_POOL_THREADS. Created on first use, never destroyed
  /// before process exit.
  static ThreadPool& shared();

  /// Runs fn(i) exactly once for every i in [0, count), on the calling
  /// thread plus at most max_threads - 1 pool workers (max_threads <= 0:
  /// no cap beyond the pool size). Blocks until every index has finished.
  /// The first exception thrown by fn is rethrown here after the section
  /// drains; remaining unclaimed indices are skipped once an exception is
  /// recorded. Reentrant: fn may itself call parallel_for on this pool.
  void parallel_for(std::int64_t count,
                    int max_threads,
                    const std::function<void(std::int64_t)>& fn);

 private:
  /// One parallel section. Indices are claimed via `next`; `completed`
  /// counts indices whose fn call (or post-abort skip) has finished, and
  /// reaching `count` signals the waiting caller through `cv`.
  struct Section {
    const std::function<void(std::int64_t)>* fn = nullptr;
    std::int64_t count = 0;
    int max_helpers = 0;  ///< pool workers allowed to join (caller excluded)
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> completed{0};
    std::atomic<int> helpers{0};
    std::atomic<bool> aborted{false};
    std::mutex mu;  ///< guards error + completion signalling
    std::condition_variable cv;
    std::exception_ptr error;
  };

  void worker_loop();
  /// Claims and runs indices of `section` until none are left.
  static void drain(Section& section);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Section>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fixedpart::util
