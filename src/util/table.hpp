#pragma once
// Plain-text table rendering for the benchmark harnesses. Every table and
// figure of the paper is regenerated as an aligned ASCII table (plus an
// optional CSV dump) so runs are directly diffable against EXPERIMENTS.md.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace fixedpart::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }

  /// Render with aligned columns and a separator under the header.
  std::string to_string() const;
  /// Render as RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.34"); trims to integer-looking
/// output when decimals == 0.
std::string fmt(double value, int decimals = 2);

/// "cut (time)" cell format used by Table III of the paper.
std::string fmt_cut_time(double cut, double seconds);

}  // namespace fixedpart::util
