#pragma once
// Experiment-scale selection. The paper's protocol (50 trials x 8 starts x
// 12 fixed-percentages x 2 regimes on >12k-vertex circuits) takes hours;
// every bench binary honours REPRO_SCALE so the default full-suite run
// finishes in minutes while `REPRO_SCALE=paper` reproduces the full
// protocol.

#include <cstdint>
#include <string>

namespace fixedpart::util {

enum class Scale : std::uint8_t {
  kSmoke,    ///< tiny instances, 1-2 trials; CI smoke runs
  kDefault,  ///< reduced instances/trials; minutes for the whole suite
  kPaper,    ///< paper-scale instances, trials and start counts
};

/// Reads REPRO_SCALE (smoke|default|paper); unset/unknown -> kDefault.
Scale scale_from_env();

std::string to_string(Scale scale);

/// Scale-dependent pick helper.
template <typename T>
T by_scale(Scale s, T smoke, T def, T paper) {
  switch (s) {
    case Scale::kSmoke: return smoke;
    case Scale::kPaper: return paper;
    case Scale::kDefault: break;
  }
  return def;
}

}  // namespace fixedpart::util
