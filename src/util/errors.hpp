#pragma once
// Error taxonomy and the shared CLI entry-point wrapper. Every tool in
// examples/ and bench/ funnels its body through run_cli_main so that any
// failure — a typo on the command line, a malformed input file, an
// infeasible instance, or an internal bug — exits with a diagnostic on
// stderr and a *distinct* exit code instead of an uncaught throw. The
// taxonomy and codes are documented in docs/ROBUSTNESS.md.

#include <functional>
#include <stdexcept>
#include <string>

namespace fixedpart::util {

/// Exit codes returned by run_cli_main. Scripts may branch on these.
enum ExitCode : int {
  kExitOk = 0,
  kExitInternal = 1,    ///< unclassified exception (a bug, or resource loss)
  kExitUsage = 2,       ///< bad command line (UsageError)
  kExitInput = 3,       ///< malformed/unreadable input data (InputError)
  kExitInfeasible = 4,  ///< structurally infeasible instance (InfeasibleError)
};

/// Bad command-line arguments; run_cli_main exits with kExitUsage.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Malformed or unreadable input data (parsers derive ParseError from
/// this); run_cli_main exits with kExitInput.
class InputError : public std::runtime_error {
 public:
  explicit InputError(const std::string& msg) : std::runtime_error(msg) {}
};

/// The instance itself admits no solution under its constraints (e.g.
/// fixed vertices overflow a balance capacity); run_cli_main exits with
/// kExitInfeasible. `detail` carries the per-issue diagnostics.
class InfeasibleError : public std::runtime_error {
 public:
  explicit InfeasibleError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Runs `body`, mapping exceptions to stderr diagnostics and exit codes:
/// UsageError -> 2, InputError -> 3, InfeasibleError -> 4, any other
/// std::exception -> 1. `program` prefixes every diagnostic. The body's
/// own return value is passed through on success.
int run_cli_main(const char* program, const std::function<int()>& body);

}  // namespace fixedpart::util
