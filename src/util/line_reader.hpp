#pragma once
// Shared line/token machinery for every hardened text parser in the tree
// (hg/io_*, svc manifests, checkpoint journals): source/line error
// context, a buffered line scanner, and a zero-copy whitespace tokenizer
// with overflow-checked integer parsing. Hoisted out of hg/io_common so
// non-hypergraph parsers (svc, util) can use it without a layering
// inversion; hg/io_common re-exports the names for its historical users.

#include <cstdint>
#include <istream>
#include <string>
#include <string_view>

#include "util/errors.hpp"

namespace fixedpart::util {

/// Parse failure carrying source name and 1-based line number. Derives
/// from util::InputError so run_cli_main maps it to the input exit code
/// (and from std::runtime_error, preserving every existing catch site).
class ParseError : public InputError {
 public:
  ParseError(const std::string& source, std::int64_t line,
             const std::string& msg);

  std::int64_t line() const { return line_; }

 private:
  std::int64_t line_;
};

/// Line-oriented scanner that skips blank and comment lines while
/// tracking the 1-based line number of the line most recently returned,
/// so every diagnostic can say where it happened.
class LineReader {
 public:
  /// `source` names the stream in diagnostics (a path, or "<fpb>" style
  /// tags for in-memory streams). `comment` starts a comment line.
  LineReader(std::istream& in, std::string source, char comment);

  /// Advances to the next non-blank, non-comment line; false at EOF.
  bool next(std::string& line);

  /// Line number of the last line handed out (0 before the first next()).
  std::int64_t line_number() const { return line_no_; }
  const std::string& source() const { return source_; }

  /// Throws ParseError anchored at the current line.
  [[noreturn]] void fail(const std::string& msg) const;

 private:
  std::istream* in_;
  std::string source_;
  char comment_;
  std::int64_t line_no_ = 0;
};

/// Zero-copy whitespace tokenizer over a single line. The hot-loop
/// replacement for per-line std::istringstream extraction: no stream
/// construction, no locale machinery, no string copies — each token is a
/// view into the caller's line buffer, which must outlive the token.
class Tokens {
 public:
  explicit Tokens(std::string_view line) : rest_(line) {}

  /// Extracts the next space/tab/CR-delimited token; false when the line
  /// is exhausted.
  bool next(std::string_view& token) {
    std::size_t i = 0;
    while (i < rest_.size() && is_space(rest_[i])) ++i;
    if (i == rest_.size()) {
      rest_ = {};
      return false;
    }
    std::size_t j = i;
    while (j < rest_.size() && !is_space(rest_[j])) ++j;
    token = rest_.substr(i, j - i);
    rest_.remove_prefix(j);
    return true;
  }

  /// True when only whitespace remains.
  bool done() {
    std::size_t i = 0;
    while (i < rest_.size() && is_space(rest_[i])) ++i;
    rest_.remove_prefix(i);
    return rest_.empty();
  }

 private:
  static bool is_space(char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  }

  std::string_view rest_;
};

/// Extracts the next whitespace-delimited integer from `in`, failing via
/// `at` with line context when the token is missing, malformed, overflows
/// std::int64_t, or falls outside [min, max]. `what` names the field in
/// the diagnostic.
std::int64_t parse_int(std::istream& in, const LineReader& at,
                       const char* what, std::int64_t min, std::int64_t max);

/// Parses all of `text` as an integer in [min, max] without exceptions
/// leaking (std::from_chars underneath); fails via `at` with context.
/// Used for the numeric suffixes of module/partition tokens ("a17", "p3").
std::int64_t parse_int_text(std::string_view text, const LineReader& at,
                            const char* what, std::int64_t min,
                            std::int64_t max);

/// Extracts the next token from `toks` and parses it as an integer in
/// [min, max]; fails via `at` when the token is missing or malformed.
std::int64_t parse_int_token(Tokens& toks, const LineReader& at,
                             const char* what, std::int64_t min,
                             std::int64_t max);

}  // namespace fixedpart::util
