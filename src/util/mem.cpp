#include "util/mem.hpp"

#include <sys/resource.h>

namespace fixedpart::util {

std::int64_t peak_rss_kb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#ifdef __APPLE__
  return static_cast<std::int64_t>(usage.ru_maxrss) / 1024;  // bytes
#else
  return static_cast<std::int64_t>(usage.ru_maxrss);  // KiB on Linux
#endif
}

}  // namespace fixedpart::util
