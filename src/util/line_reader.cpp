#include "util/line_reader.hpp"

#include <charconv>
#include <system_error>

namespace fixedpart::util {

namespace {

std::string format_context(const std::string& source, std::int64_t line,
                           const std::string& msg) {
  std::string out = source;
  if (line > 0) {
    out += ':';
    out += std::to_string(line);
  }
  out += ": ";
  out += msg;
  return out;
}

}  // namespace

ParseError::ParseError(const std::string& source, std::int64_t line,
                       const std::string& msg)
    : InputError(format_context(source, line, msg)), line_(line) {}

LineReader::LineReader(std::istream& in, std::string source, char comment)
    : in_(&in), source_(std::move(source)), comment_(comment) {}

bool LineReader::next(std::string& line) {
  while (std::getline(*in_, line)) {
    ++line_no_;
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                               line[i] == '\r')) {
      ++i;
    }
    if (i == line.size() || line[i] == comment_) continue;
    return true;
  }
  return false;
}

void LineReader::fail(const std::string& msg) const {
  throw ParseError(source_, line_no_, msg);
}

std::int64_t parse_int(std::istream& in, const LineReader& at,
                       const char* what, std::int64_t min, std::int64_t max) {
  std::string token;
  if (!(in >> token)) at.fail(std::string("missing ") + what);
  return parse_int_text(token, at, what, min, max);
}

std::int64_t parse_int_text(std::string_view text, const LineReader& at,
                            const char* what, std::int64_t min,
                            std::int64_t max) {
  std::int64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    at.fail(std::string(what) + " overflows 64-bit integer: '" +
            std::string(text) + "'");
  }
  if (ec != std::errc() || ptr != last) {
    at.fail(std::string("bad ") + what + ": '" + std::string(text) + "'");
  }
  if (value < min || value > max) {
    at.fail(std::string(what) + " out of range [" + std::to_string(min) +
            ", " + std::to_string(max) + "]: " + std::to_string(value));
  }
  return value;
}

std::int64_t parse_int_token(Tokens& toks, const LineReader& at,
                             const char* what, std::int64_t min,
                             std::int64_t max) {
  std::string_view token;
  if (!toks.next(token)) at.fail(std::string("missing ") + what);
  return parse_int_text(token, at, what, min, max);
}

}  // namespace fixedpart::util
