#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomized components in the library (initial partitions, tie breaking,
// synthetic netlist generation, fixed-vertex selection) draw from Rng so that
// a (seed, code path) pair fully determines the outcome on every platform.
// std::mt19937 + distribution objects are deliberately avoided: the standard
// distributions are implementation-defined and would make experiment results
// differ across standard libraries.

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace fixedpart::util {

/// xoshiro256** by Blackman/Vigna, seeded via SplitMix64. Fast, 256-bit
/// state, passes BigCrush; sufficient for all experiment randomization.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Reset the state from a 64-bit seed (expanded by SplitMix64).
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (for std::shuffle-style use).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// true with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Standard normal via Box-Muller (no cached second value; simple and
  /// deterministic).
  double next_gaussian();

  /// Fork an independent child stream; children of distinct calls are
  /// decorrelated. Used to give each trial/start its own stream.
  Rng fork();

  /// The `stream`-th child stream of `seed`: a pure function of its two
  /// arguments, so any thread can derive stream i independently — no
  /// parent state to advance, no ordering between derivations — and the
  /// resulting sequence is identical regardless of which thread derives
  /// it, when, or how many threads exist. This is the seed-splitting
  /// discipline of the parallel pipeline (docs/PARALLELISM.md): every
  /// parallel work item that needs randomness derives stream(seed, item)
  /// and never shares a generator. Distinct (seed, stream) pairs map to
  /// decorrelated states (SplitMix64 over a mixed 64-bit combination).
  static Rng stream(std::uint64_t seed, std::uint64_t stream);

  /// Fisher-Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Sample k distinct indices from [0, n) in uniformly random order.
  std::vector<std::uint32_t> sample_indices(std::uint32_t n, std::uint32_t k);

 private:
  std::uint64_t state_[4];
};

}  // namespace fixedpart::util
