#pragma once
// Small statistics helpers used by the experiment harnesses to aggregate
// per-trial results (cut sizes, CPU times, pass statistics).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fixedpart::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples and
  /// never negative (Welford round-off is clamped), so stddev() is never
  /// NaN.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact percentile of a sample (linear interpolation between order
/// statistics). Throws on an empty sample and on q outside [0,1],
/// including NaN.
double percentile(std::span<const double> values, double q);

double mean_of(std::span<const double> values);
double min_of(std::span<const double> values);

/// Histogram with fixed-width bins over [lo, hi); finite values outside
/// are clamped into the edge bins, NaN is dropped (and counted). Used for
/// per-pass move-position statistics.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// NaN samples rejected by add(); never part of total().
  std::size_t dropped() const { return dropped_; }
  /// Fraction of mass at or below bin i (inclusive CDF).
  double cdf(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace fixedpart::util
