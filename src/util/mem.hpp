#pragma once
// Process memory accounting. peak_rss_kb() is the number the scale
// benchmarks regress (BENCH_LARGE, docs/PERF.md): the high-water resident
// set of *this* process, as the kernel accounts it. Subprocess peak RSS
// (isolated workers) is reported separately by util::Subprocess via
// wait4's rusage.

#include <cstdint>

namespace fixedpart::util {

/// Peak resident set size of the calling process in KiB (ru_maxrss).
/// Monotone over the process lifetime — it never decreases when memory is
/// freed, so per-stage deltas only attribute growth. Returns 0 when the
/// platform cannot report it.
std::int64_t peak_rss_kb();

}  // namespace fixedpart::util
