#pragma once
// Crash-safe whole-file writes. write_file_atomic publishes `content`
// under `path` via write-temp + flush(+fsync) + atomic rename, so readers
// never observe a truncated or half-written file: they see either the old
// content or the new content, even if the writer dies mid-write. Used by
// the svc checkpoint journal (compaction and summaries) and by
// bench/bench_to_json for the tracked BENCH_*.json trajectory files.

#include <cstdio>
#include <string>

namespace fixedpart::util {

/// Atomically replaces (or creates) `path` with `content`. The temporary
/// sibling is named `path` + ".tmp" and is removed on failure. Throws
/// std::runtime_error naming the path on any IO error.
void write_file_atomic(const std::string& path, const std::string& content);

/// Flushes `content` to an open FILE-descriptor-backed stream and fsyncs
/// it (no-op fsync on platforms without one). Shared by write_file_atomic
/// and the append-mode checkpoint journal.
void flush_and_sync(std::FILE* file, const std::string& path);

/// Fsyncs the directory containing `path`, making a just-created or
/// just-renamed entry durable (rename alone is atomic but not durable on
/// ext4/xfs). Filesystems that cannot fsync directories (EINVAL/ENOTSUP)
/// are tolerated; other errors throw std::runtime_error. No-op on
/// platforms without directory fds.
void sync_parent_dir(const std::string& path);

}  // namespace fixedpart::util
