#pragma once
// Crash-safe whole-file writes. write_file_atomic publishes `content`
// under `path` via write-temp + flush(+fsync) + atomic rename, so readers
// never observe a truncated or half-written file: they see either the old
// content or the new content, even if the writer dies mid-write. Used by
// the svc checkpoint journal (compaction and summaries) and by
// bench/bench_to_json for the tracked BENCH_*.json trajectory files.

#include <cstdio>
#include <string>

namespace fixedpart::util {

/// Atomically replaces (or creates) `path` with `content`. The temporary
/// sibling is named `path` + ".tmp" and is removed on failure. Throws
/// std::runtime_error naming the path on any IO error.
void write_file_atomic(const std::string& path, const std::string& content);

/// Flushes `content` to an open FILE-descriptor-backed stream and fsyncs
/// it (no-op fsync on platforms without one). Shared by write_file_atomic
/// and the append-mode checkpoint journal.
void flush_and_sync(std::FILE* file, const std::string& path);

}  // namespace fixedpart::util
