#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace fixedpart::util {

ThreadPool::ThreadPool(int workers) {
  if (workers < 0) {
    throw std::invalid_argument("ThreadPool: workers must be >= 0");
  }
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool* pool = [] {
    int workers =
        static_cast<int>(std::thread::hardware_concurrency()) - 1;
    if (const char* env = std::getenv("FIXEDPART_POOL_THREADS")) {
      try {
        workers = std::stoi(env) - 1;
      } catch (const std::exception&) {
        // Unparseable override: keep the hardware-derived default.
      }
    }
    // Leaked intentionally: the shared pool must outlive every static
    // destructor that might still run a parallel section at exit.
    return new ThreadPool(std::max(0, workers));
  }();
  return *pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Section> section;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (stop_) return;
        // Front-to-back scan for a section with unclaimed work and a free
        // helper slot; exhausted sections are retired along the way.
        for (auto it = queue_.begin(); it != queue_.end();) {
          if ((*it)->next.load(std::memory_order_relaxed) >= (*it)->count) {
            it = queue_.erase(it);
            continue;
          }
          if ((*it)->helpers.load(std::memory_order_relaxed) <
              (*it)->max_helpers) {
            section = *it;
            section->helpers.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          ++it;
        }
        if (section != nullptr) break;
        cv_.wait(lock);
      }
    }
    drain(*section);
    section->helpers.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ThreadPool::drain(Section& section) {
  for (;;) {
    const std::int64_t i = section.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= section.count) return;
    if (!section.aborted.load(std::memory_order_acquire)) {
      try {
        (*section.fn)(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(section.mu);
          if (!section.error) section.error = std::current_exception();
        }
        section.aborted.store(true, std::memory_order_release);
      }
    }
    const std::int64_t done =
        section.completed.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == section.count) {
      // Notify under the lock so the caller's predicate check cannot race
      // past the notification.
      std::lock_guard<std::mutex> lock(section.mu);
      section.cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::int64_t count, int max_threads,
                              const std::function<void(std::int64_t)>& fn) {
  if (count <= 0) return;
  const auto section = std::make_shared<Section>();
  section->fn = &fn;
  section->count = count;
  const int cap = max_threads <= 0 ? worker_count() : max_threads - 1;
  section->max_helpers =
      static_cast<int>(std::min<std::int64_t>(
          std::min(cap, worker_count()), count - 1));
  if (section->max_helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(section);
    }
    cv_.notify_all();
  }
  drain(*section);
  {
    std::unique_lock<std::mutex> lock(section->mu);
    section->cv.wait(lock, [&] {
      return section->completed.load(std::memory_order_acquire) >= count;
    });
  }
  if (section->max_helpers > 0) {
    // Retire the (now exhausted) section so the queue never grows; workers
    // also prune it, so it may already be gone.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->get() == section.get()) {
        queue_.erase(it);
        break;
      }
    }
  }
  if (section->error) std::rethrow_exception(section->error);
}

}  // namespace fixedpart::util
