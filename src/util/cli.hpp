#pragma once
// Minimal --key=value command-line parsing shared by examples and benches.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fixedpart::util {

/// Parses "--key=value" and bare "--flag" (value "true") arguments.
/// Positional (non ``--``) arguments are collected in order. Unknown keys
/// are kept; callers may query everything they understand and ignore the
/// rest, or call require_known() to reject typos.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, std::string def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Throws std::invalid_argument if any parsed key is not in `known`.
  void require_known(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace fixedpart::util
