#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fixedpart::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const {
  if (n_ == 0) throw std::logic_error("RunningStat::mean: empty");
  return mean_;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  // Welford's m2 is mathematically non-negative but can round a hair below
  // zero for near-constant samples; clamp so stddev() never returns NaN.
  return std::max(0.0, m2_) / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const {
  if (n_ == 0) throw std::logic_error("RunningStat::min: empty");
  return min_;
}

double RunningStat::max() const {
  if (n_ == 0) throw std::logic_error("RunningStat::max: empty");
  return max_;
}

double percentile(std::span<const double> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  // Negated comparison so NaN fails too: `q < 0.0 || q > 1.0` is false for
  // NaN and would fall through to an undefined float->int cast below.
  if (!(q >= 0.0 && q <= 1.0)) throw std::invalid_argument("percentile: bad q");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> values) {
  RunningStat s;
  for (double v : values) s.add(v);
  return s.mean();
}

double min_of(std::span<const double> values) {
  RunningStat s;
  for (double v : values) s.add(v);
  return s.min();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: zero bins");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo >= hi");
}

void Histogram::add(double x) {
  if (std::isnan(x)) {
    ++dropped_;
    return;
  }
  // Clamp in the double domain: casting an out-of-range double (e.g. from
  // an infinite x) to an integer is undefined behaviour, so the old
  // cast-then-clamp order could corrupt the bin index before the clamp.
  const std::size_t bins = counts_.size();
  std::size_t bin = 0;
  if (x >= hi_) {
    bin = bins - 1;
  } else if (x > lo_) {
    const double t = (x - lo_) / (hi_ - lo_);
    bin = std::min(static_cast<std::size_t>(t * static_cast<double>(bins)),
                   bins - 1);
  }
  ++counts_[bin];
  ++total_;
}

double Histogram::cdf(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::cdf");
  if (total_ == 0) return 0.0;
  std::size_t acc = 0;
  for (std::size_t b = 0; b <= i; ++b) acc += counts_[b];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

}  // namespace fixedpart::util
