#include "util/errors.hpp"

#include <iostream>

namespace fixedpart::util {

int run_cli_main(const char* program, const std::function<int()>& body) {
  try {
    return body();
  } catch (const UsageError& error) {
    std::cerr << program << ": usage error: " << error.what() << "\n";
    return kExitUsage;
  } catch (const InputError& error) {
    std::cerr << program << ": input error: " << error.what() << "\n";
    return kExitInput;
  } catch (const InfeasibleError& error) {
    std::cerr << program << ": infeasible: " << error.what() << "\n";
    return kExitInfeasible;
  } catch (const std::invalid_argument& error) {
    // In a CLI, std::invalid_argument means bad user parameters (unknown
    // flags from Cli::require_known, out-of-range --k, bad enum names).
    std::cerr << program << ": usage error: " << error.what() << "\n";
    return kExitUsage;
  } catch (const std::exception& error) {
    std::cerr << program << ": error: " << error.what() << "\n";
    return kExitInternal;
  }
}

}  // namespace fixedpart::util
