#pragma once
// POSIX subprocess plumbing for the crash-isolated worker pool
// (docs/ROBUSTNESS.md "Process supervision tree"). A supervisor process
// fork/execs `fixedpart-worker` children and talks to each one over a
// pair of pipes using a tiny length-prefixed frame protocol; the child
// runs under setrlimit caps applied between fork and exec, so a runaway
// allocation, an infinite loop, or a hard crash is contained to the
// worker's address space and shows up here as a classifiable exit status
// instead of taking the daemon down.
//
// Layout inside the child: the job pipe is dup2'd to fd 3 (supervisor ->
// worker) and fd 4 (worker -> supervisor), leaving stdin/stdout/stderr
// untouched so engine logging cannot corrupt the protocol stream.
//
// Everything here is deliberately low-level and svc-agnostic: what the
// frames *mean* (job specs, heartbeats, outcomes) is svc::ProcessPool's
// business. Non-POSIX platforms get throwing stubs — the pool refuses to
// construct rather than pretending to isolate.

#include <cstdint>
#include <string>
#include <vector>

namespace fixedpart::util {

/// The two protocol fds a spawned worker inherits (child side).
constexpr int kWorkerInFd = 3;   ///< supervisor -> worker frames
constexpr int kWorkerOutFd = 4;  ///< worker -> supervisor frames

/// Frame wire format: a 4-byte little-endian payload length, one type
/// byte, then the payload. Payloads above kMaxFrameBytes are a protocol
/// violation (a corrupted stream reads as garbage lengths; the cap turns
/// that into a clean error instead of an unbounded allocation).
constexpr std::size_t kMaxFrameBytes = 64u << 20;

// Frame types of the worker protocol (svc::ProcessPool <-> worker main).
constexpr char kFrameJob = 'J';        ///< job spec JSON line (to worker)
constexpr char kFrameCancel = 'C';     ///< cooperative cancel (to worker)
constexpr char kFrameHeartbeat = 'H';  ///< liveness beat (from worker)
constexpr char kFrameOutcome = 'O';    ///< JobOutcome JSON line (from worker)
constexpr char kFrameSpans = 'T';      ///< span batch (from worker; doubles
                                       ///< as a heartbeat — see
                                       ///< obs/trace_wire.hpp for the
                                       ///< payload format)

/// Resource caps applied to a spawned child between fork and exec.
/// Zero/negative values leave the corresponding limit untouched.
struct SpawnLimits {
  /// RLIMIT_AS in bytes: a worker allocating past this sees failing
  /// allocations (std::bad_alloc) instead of dragging the host into swap
  /// or the kernel OOM killer into the supervisor.
  long long rlimit_as_bytes = 0;
  /// RLIMIT_CPU in seconds: a busy-looping worker is killed by SIGXCPU.
  long long rlimit_cpu_seconds = 0;
  /// When false, RLIMIT_CORE is set to 0 so a crashing fleet cannot fill
  /// the disk with cores; true leaves the inherited limit alone.
  bool allow_core = false;
};

/// A spawned worker as the supervisor sees it.
struct ChildProcess {
  long long pid = -1;
  int to_child = -1;    ///< write end: frames to the worker's fd 3
  int from_child = -1;  ///< read end: frames from the worker's fd 4
};

/// What became of a reaped child.
struct ExitStatus {
  bool exited = false;    ///< normal exit; `exit_code` is valid
  int exit_code = 0;
  bool signaled = false;  ///< killed by a signal; `term_signal` is valid
  int term_signal = 0;
  long max_rss_kb = 0;    ///< peak RSS of the child (ru_maxrss)
};

/// fork/execs `argv` (argv[0] is the executable path) with the protocol
/// pipes on fds 3/4 and `limits` applied in the child. The parent-side
/// fds are close-on-exec so concurrently spawned siblings do not inherit
/// each other's pipes. Throws std::runtime_error on pipe/fork failure;
/// an exec failure surfaces as the child exiting with code 127.
ChildProcess spawn_worker(const std::vector<std::string>& argv,
                          const SpawnLimits& limits);

/// Blocking wait4 for `pid`, EINTR-retried. Throws std::runtime_error if
/// the pid is not a waitable child.
ExitStatus wait_child(long long pid);

/// Best-effort kill (no throw; ESRCH is fine — the child already died).
void kill_child(long long pid, int sig);

/// Writes one frame, EINTR-retried. Returns false when the peer is gone
/// (EPIPE/ECONNRESET) or any other write error occurs — the caller reaps
/// and classifies; nothing here throws on a dead peer.
bool write_frame(int fd, char type, const std::string& payload);

/// Incremental frame parser over a nonblocking-ish fd: poll_frame waits
/// up to `timeout_ms` for enough bytes to complete the next frame.
class FrameReader {
 public:
  enum class Status {
    kFrame,    ///< *type/*payload filled with one complete frame
    kTimeout,  ///< no complete frame within timeout_ms
    kEof,      ///< peer closed (or a read error / oversized frame)
  };

  explicit FrameReader(int fd) : fd_(fd) {}

  /// Waits for and extracts the next frame. A malformed length (over
  /// kMaxFrameBytes) is reported as kEof: the stream is unusable.
  Status poll_frame(int timeout_ms, char* type, std::string* payload);

 private:
  bool extract(char* type, std::string* payload);

  int fd_;
  std::string buffer_;
  bool broken_ = false;
};

/// Directory containing the running executable ("" when undeterminable);
/// used to locate the fixedpart-worker binary next to the daemon.
std::string self_exe_dir();

/// Idempotently ignores SIGPIPE process-wide *if the handler is still
/// SIG_DFL* (an application-installed handler is left alone). A peer —
/// HTTP client or worker process — that dies mid-write must surface as
/// EPIPE on the write call, never as a fatal signal to the daemon.
void ignore_sigpipe();

}  // namespace fixedpart::util
