#include "util/subprocess.hpp"

#include <cstring>
#include <stdexcept>

#ifdef __unix__
#include <errno.h>
#include <fcntl.h>
#include <limits.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace fixedpart::util {

#ifdef __unix__

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

void set_cloexec(int fd) {
  int flags = fcntl(fd, F_GETFD);
  if (flags >= 0) fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

// Child side, between fork and exec: only async-signal-safe calls.
void apply_limits(const SpawnLimits& limits) {
  struct rlimit rl;
  if (limits.rlimit_as_bytes > 0) {
    rl.rlim_cur = static_cast<rlim_t>(limits.rlimit_as_bytes);
    rl.rlim_max = static_cast<rlim_t>(limits.rlimit_as_bytes);
    setrlimit(RLIMIT_AS, &rl);
  }
  if (limits.rlimit_cpu_seconds > 0) {
    rl.rlim_cur = static_cast<rlim_t>(limits.rlimit_cpu_seconds);
    rl.rlim_max = static_cast<rlim_t>(limits.rlimit_cpu_seconds);
    setrlimit(RLIMIT_CPU, &rl);
  }
  if (!limits.allow_core) {
    rl.rlim_cur = 0;
    rl.rlim_max = 0;
    setrlimit(RLIMIT_CORE, &rl);
  }
}

}  // namespace

ChildProcess spawn_worker(const std::vector<std::string>& argv,
                          const SpawnLimits& limits) {
  if (argv.empty()) throw std::runtime_error("spawn_worker: empty argv");

  int to_child[2];    // [0]=child reads (fd 3), [1]=parent writes
  int from_child[2];  // [0]=parent reads, [1]=child writes (fd 4)
  if (pipe(to_child) != 0) throw_errno("pipe");
  if (pipe(from_child) != 0) {
    close(to_child[0]);
    close(to_child[1]);
    throw_errno("pipe");
  }

  // argv must be materialised before fork: building it after fork in the
  // child would allocate, which is not async-signal-safe.
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  pid_t pid = fork();
  if (pid < 0) {
    int saved = errno;
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    errno = saved;
    throw_errno("fork");
  }

  if (pid == 0) {
    // Child: async-signal-safe calls only until execv.
    close(to_child[1]);
    close(from_child[0]);
    // pipe() hands out the lowest free fds, which — depending on what the
    // parent happens to have open (a test runner's inherited fds, for
    // example) — can land a pipe end ON 3 or 4. Park both ends at >= 5
    // first so the dup2s below can never clobber the other end.
    const int in_hi = fcntl(to_child[0], F_DUPFD, 5);
    const int out_hi = fcntl(from_child[1], F_DUPFD, 5);
    if (in_hi < 0 || out_hi < 0) _exit(127);
    close(to_child[0]);
    close(from_child[1]);
    if (dup2(in_hi, kWorkerInFd) < 0) _exit(127);
    if (dup2(out_hi, kWorkerOutFd) < 0) _exit(127);
    close(in_hi);
    close(out_hi);
    // Drop every other inherited descriptor (journal, spool files,
    // sockets accepted mid-fork, ...). A leaked socket keeps the peer's
    // connection open for the worker's whole lifetime; a leaked journal
    // fd outlives a daemon restart. Raw syscall: async-signal-safe.
#ifdef SYS_close_range
    (void)syscall(SYS_close_range, kWorkerOutFd + 1,
                  static_cast<unsigned int>(~0u), 0);
#else
    for (int fd = kWorkerOutFd + 1; fd < 1024; ++fd) close(fd);
#endif
    // The worker must die on EPIPE if the supervisor vanishes, so restore
    // default SIGPIPE disposition in case the parent ignores it.
    signal(SIGPIPE, SIG_DFL);
    apply_limits(limits);
    execv(cargv[0], cargv.data());
    _exit(127);
  }

  // Parent.
  close(to_child[0]);
  close(from_child[1]);
  set_cloexec(to_child[1]);
  set_cloexec(from_child[0]);

  ChildProcess child;
  child.pid = pid;
  child.to_child = to_child[1];
  child.from_child = from_child[0];
  return child;
}

ExitStatus wait_child(long long pid) {
  int status = 0;
  struct rusage usage;
  std::memset(&usage, 0, sizeof(usage));
  for (;;) {
    pid_t r = wait4(static_cast<pid_t>(pid), &status, 0, &usage);
    if (r >= 0) break;
    if (errno == EINTR) continue;
    throw_errno("wait4");
  }
  ExitStatus es;
  if (WIFEXITED(status)) {
    es.exited = true;
    es.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    es.signaled = true;
    es.term_signal = WTERMSIG(status);
  }
  es.max_rss_kb = usage.ru_maxrss;
  return es;
}

void kill_child(long long pid, int sig) {
  if (pid > 0) (void)kill(static_cast<pid_t>(pid), sig);
}

bool write_frame(int fd, char type, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  char header[5];
  header[0] = static_cast<char>(n & 0xff);
  header[1] = static_cast<char>((n >> 8) & 0xff);
  header[2] = static_cast<char>((n >> 16) & 0xff);
  header[3] = static_cast<char>((n >> 24) & 0xff);
  header[4] = type;
  std::string wire(header, sizeof(header));
  wire += payload;
  std::size_t off = 0;
  while (off < wire.size()) {
    ssize_t w = write(fd, wire.data() + off, wire.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE et al.: peer gone, caller reaps.
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

bool FrameReader::extract(char* type, std::string* payload) {
  if (buffer_.size() < 5) return false;
  const unsigned char* b =
      reinterpret_cast<const unsigned char*>(buffer_.data());
  const std::uint64_t n = static_cast<std::uint64_t>(b[0]) |
                          (static_cast<std::uint64_t>(b[1]) << 8) |
                          (static_cast<std::uint64_t>(b[2]) << 16) |
                          (static_cast<std::uint64_t>(b[3]) << 24);
  if (n > kMaxFrameBytes) {
    broken_ = true;
    return false;
  }
  if (buffer_.size() < 5 + n) return false;
  *type = buffer_[4];
  payload->assign(buffer_, 5, n);
  buffer_.erase(0, 5 + n);
  return true;
}

FrameReader::Status FrameReader::poll_frame(int timeout_ms, char* type,
                                            std::string* payload) {
  for (;;) {
    if (broken_) return Status::kEof;
    if (extract(type, payload)) return Status::kFrame;
    if (broken_) return Status::kEof;

    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int r = poll(&pfd, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::kEof;
    }
    if (r == 0) return Status::kTimeout;

    char chunk[4096];
    ssize_t got = read(fd_, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::kEof;
    }
    if (got == 0) {
      // Peer closed. A complete frame may still sit in the buffer.
      if (extract(type, payload)) return Status::kFrame;
      return Status::kEof;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

std::string self_exe_dir() {
  char buf[PATH_MAX];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  std::string path(buf);
  auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return "";
  return path.substr(0, slash);
}

void ignore_sigpipe() {
  struct sigaction cur;
  std::memset(&cur, 0, sizeof(cur));
  if (sigaction(SIGPIPE, nullptr, &cur) != 0) return;
  if (cur.sa_handler != SIG_DFL) return;  // app installed something: keep it
  struct sigaction ign;
  std::memset(&ign, 0, sizeof(ign));
  ign.sa_handler = SIG_IGN;
  sigemptyset(&ign.sa_mask);
  (void)sigaction(SIGPIPE, &ign, nullptr);
}

#else  // !__unix__

namespace {
[[noreturn]] void unsupported() {
  throw std::runtime_error(
      "process isolation requires a POSIX platform (fork/exec unavailable)");
}
}  // namespace

ChildProcess spawn_worker(const std::vector<std::string>&,
                          const SpawnLimits&) {
  unsupported();
}
ExitStatus wait_child(long long) { unsupported(); }
void kill_child(long long, int) {}
bool write_frame(int, char, const std::string&) { return false; }
FrameReader::Status FrameReader::poll_frame(int, char*, std::string*) {
  return Status::kEof;
}
bool FrameReader::extract(char*, std::string*) { return false; }
std::string self_exe_dir() { return ""; }
void ignore_sigpipe() {}

#endif

}  // namespace fixedpart::util
