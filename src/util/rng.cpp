#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace fixedpart::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // A zero state would be a fixed point of the generator.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_in: lo > hi");
  const auto range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit span
  return lo + static_cast<std::int64_t>(next_below(range));
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_gaussian() {
  // Box-Muller; u1 is bounded away from zero so log() is finite.
  const double u1 = (static_cast<double>(next() >> 11) + 0.5) * 0x1.0p-53;
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::fork() {
  Rng child;
  child.reseed(next() ^ 0xd1b54a32d192ed03ULL);
  return child;
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream index through SplitMix64 before combining so that
  // consecutive indices land on unrelated seeds (seed ^ stream alone would
  // make streams 2k/2k+1 of seed 0/1 collide pairwise).
  std::uint64_t s = stream ^ 0xa0761d6478bd642fULL;
  const std::uint64_t mixed = splitmix64(s);
  Rng child;
  child.reseed(seed ^ mixed);
  return child;
}

std::vector<std::uint32_t> Rng::sample_indices(std::uint32_t n,
                                               std::uint32_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  std::vector<std::uint32_t> all(n);
  for (std::uint32_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k slots become the sample.
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::uint32_t>(next_below(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace fixedpart::util
