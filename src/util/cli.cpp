#include "util/cli.hpp"

#include <algorithm>
#include <stdexcept>

namespace fixedpart::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "true";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

std::optional<std::string> Cli::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& key, std::string def) const {
  const auto v = get(key);
  return v ? *v : std::move(def);
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t def) const {
  const auto v = get(key);
  if (!v) return def;
  return std::stoll(*v);
}

double Cli::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  if (!v) return def;
  return std::stod(*v);
}

bool Cli::get_bool(const std::string& key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("Cli: bad boolean for --" + key + ": " + *v);
}

void Cli::require_known(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : values_) {
    (void)value;
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      throw std::invalid_argument("Cli: unknown flag --" + key);
    }
  }
}

}  // namespace fixedpart::util
