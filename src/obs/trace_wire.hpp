#pragma once
// Wire codec for the 'T' (span-batch) frame of the worker protocol
// (util::subprocess kFrameSpans; docs/OBSERVABILITY.md "Traces").
//
// A 'T' payload is line-oriented text:
//
//   spans v1 now=<worker steady ns> dropped=<count>
//   <name>\t<start_ns>\t<dur_ns>\t<tid>[\t<key>=<i|d><value>]...
//   ...
//
// Names and arg keys are backslash-escaped (\\, \t, \n) so they can
// never break the framing. `now` is the worker's trace_now_ns() at
// encode time; the parent estimates the steady-epoch offset as
// min over frames of (parent now at receipt - worker now) and rebases
// every span onto its own timebase.
//
// decode_span_batch is the untrusted-input boundary: a malicious or
// crashing worker owns the payload bytes. It never throws, skips (and
// counts) malformed lines, caps batch size and name length, and interns
// decoded names through the bounded obs::intern_name pool — so the worst
// a bad payload can do is produce a garbled trace for its own job.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace fixedpart::obs {

struct SpanBatchHeader {
  std::int64_t worker_now_ns = 0;
  std::uint64_t dropped = 0;
};

/// Hard caps enforced by decode (and respected by encode).
constexpr std::size_t kMaxSpansPerBatch = 1u << 16;
constexpr std::size_t kMaxWireNameBytes = 256;

std::string encode_span_batch(const SpanBatchHeader& header,
                              const std::vector<TraceEvent>& events);

/// Returns false only when the header line is unusable; otherwise fills
/// `header`, appends the well-formed spans to `events`, and counts the
/// skipped lines in `*malformed` (may be non-null-checked by callers).
bool decode_span_batch(const std::string& payload, SpanBatchHeader* header,
                       std::vector<TraceEvent>* events,
                       std::size_t* malformed);

}  // namespace fixedpart::obs
