#include "obs/trace_wire.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace fixedpart::obs {

namespace {

void append_escaped(std::string& out, const char* text) {
  for (const char* p = text; p != nullptr && *p != '\0'; ++p) {
    switch (*p) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out += *p;
    }
  }
}

std::string unescape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 == text.size()) {
      out += text[i];
      continue;
    }
    ++i;
    switch (text[i]) {
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      default: out += text[i];
    }
  }
  return out;
}

/// strtoll with a full-consumption check; returns false on any junk.
bool parse_i64(const std::string& text, std::int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

bool parse_f64(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

/// Decodes one span line into `event`; false = malformed, skip it.
bool decode_span_line(const std::string& line, TraceEvent* event) {
  const std::vector<std::string> fields = split(line, '\t');
  if (fields.size() < 4) return false;
  if (fields[0].empty() || fields[0].size() > kMaxWireNameBytes) return false;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::int64_t tid = 0;
  if (!parse_i64(fields[1], &start_ns)) return false;
  if (!parse_i64(fields[2], &dur_ns)) return false;
  if (!parse_i64(fields[3], &tid) || tid < 0) return false;
  TraceEvent out;
  out.name = intern_name(unescape(fields[0]));
  out.start_ns = start_ns;
  out.dur_ns = dur_ns;
  out.tid = static_cast<std::uint32_t>(tid);
  for (std::size_t i = 4; i < fields.size() && out.num_args < out.args.size();
       ++i) {
    const std::size_t eq = fields[i].find('=');
    if (eq == std::string::npos || eq == 0 ||
        eq > kMaxWireNameBytes || eq + 1 >= fields[i].size()) {
      continue;  // a bad arg degrades the span, not the batch
    }
    const std::string key = unescape(fields[i].substr(0, eq));
    const char kind = fields[i][eq + 1];
    const std::string value = fields[i].substr(eq + 2);
    TraceArg arg;
    arg.key = intern_name(key);
    if (kind == 'i') {
      if (!parse_i64(value, &arg.int_value)) continue;
      arg.is_int = true;
    } else if (kind == 'd') {
      if (!parse_f64(value, &arg.double_value)) continue;
      arg.is_int = false;
    } else {
      continue;
    }
    out.args[out.num_args++] = arg;
  }
  *event = out;
  return true;
}

}  // namespace

std::string encode_span_batch(const SpanBatchHeader& header,
                              const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(64 + events.size() * 48);
  char head[96];
  std::snprintf(head, sizeof head, "spans v1 now=%lld dropped=%llu",
                static_cast<long long>(header.worker_now_ns),
                static_cast<unsigned long long>(header.dropped));
  out += head;
  std::size_t count = 0;
  for (const TraceEvent& e : events) {
    if (count++ >= kMaxSpansPerBatch) break;
    out += '\n';
    append_escaped(out, e.name);
    char nums[96];
    std::snprintf(nums, sizeof nums, "\t%lld\t%lld\t%u",
                  static_cast<long long>(e.start_ns),
                  static_cast<long long>(e.dur_ns), e.tid);
    out += nums;
    for (std::uint32_t a = 0; a < e.num_args && a < e.args.size(); ++a) {
      const TraceArg& arg = e.args[a];
      if (arg.key == nullptr) continue;
      out += '\t';
      append_escaped(out, arg.key);
      if (arg.is_int) {
        std::snprintf(nums, sizeof nums, "=i%lld",
                      static_cast<long long>(arg.int_value));
      } else {
        std::snprintf(nums, sizeof nums, "=d%.9g", arg.double_value);
      }
      out += nums;
    }
  }
  return out;
}

bool decode_span_batch(const std::string& payload, SpanBatchHeader* header,
                       std::vector<TraceEvent>* events,
                       std::size_t* malformed) {
  std::size_t bad = 0;
  const std::vector<std::string> lines = split(payload, '\n');
  long long now = 0;
  unsigned long long dropped = 0;
  if (lines.empty() ||
      std::sscanf(lines[0].c_str(), "spans v1 now=%lld dropped=%llu", &now,
                  &dropped) != 2) {
    if (malformed != nullptr) *malformed = lines.size();
    return false;
  }
  header->worker_now_ns = now;
  header->dropped = dropped;
  std::size_t decoded = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    if (decoded >= kMaxSpansPerBatch) {
      bad += lines.size() - i;
      break;
    }
    TraceEvent event;
    if (!decode_span_line(lines[i], &event)) {
      ++bad;
      continue;
    }
    events->push_back(event);
    ++decoded;
  }
  if (malformed != nullptr) *malformed = bad;
  return true;
}

}  // namespace fixedpart::obs
