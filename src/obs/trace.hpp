#pragma once
// Per-job distributed tracing (docs/OBSERVABILITY.md "Traces").
//
// Spans are recorded by RAII `ScopedSpan` objects at fm/kway/ml/svc call
// sites. Every span routes, at destruction, to up to three sinks:
//
//   1. The *current trace context* — a thread-local stack pushed by
//      `ScopedTraceContext`, carrying a deterministic per-job trace id
//      (`trace_id_for(job id)`) and a bounded per-job `SpanBuffer` owned
//      by the job record. This is how `PartitionServer` and
//      `run_supervised_job` attribute engine spans to a request with no
//      call-site churn, and how `fixedpart-worker` collects spans for
//      streaming over the `'T'` frame (src/obs/trace_wire.hpp).
//   2. The legacy process-global `Tracer`, when armed via start() — kept
//      for `--trace-out` style whole-process dumps (bench_to_json).
//   3. The always-on `FlightRecorder` ring (src/obs/flight.hpp).
//
// Timestamps come from one process-wide steady epoch (`trace_now_ns`);
// wall-clock jumps cannot reorder spans, and the worker/parent epoch
// offset is estimated once per job attempt when merging worker spans.
//
// Span names and arg keys are either string literals or pointers from
// `intern_name()` (a bounded process-lifetime pool), so events can store
// raw pointers safely; the `ScopedSpan(const std::string&)` overload
// interns dynamically-built names.
//
// Under FIXEDPART_OBS=OFF every member compiles to an empty inline stub;
// the pure helpers (trace_events_to_json, phase_breakdown, trace_id_for)
// stay available so svc/ code needs no #if guards.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.hpp"  // FIXEDPART_OBS_ENABLED / kEnabled

namespace fixedpart::obs {

struct TraceArg {
  const char* key = nullptr;
  bool is_int = true;
  std::int64_t int_value = 0;
  double double_value = 0.0;
};

struct TraceEvent {
  const char* name = "";
  std::uint32_t tid = 0;
  /// Originating process: 0 = this process (rendered as pid 1); worker
  /// spans merged over the 'T' frame carry the worker's real pid.
  std::uint32_t pid = 0;
  std::uint64_t trace_id = 0;
  std::int64_t start_ns = 0;  ///< steady time (see class comments)
  std::int64_t dur_ns = 0;
  std::array<TraceArg, 4> args{};
  std::uint32_t num_args = 0;
};

/// Chrome trace JSON ({"traceEvents": [...], "displayTimeUnit": "ms"}) for
/// an event list; shared by Tracer::to_json and the per-job trace cache.
std::string trace_events_to_json(const std::vector<TraceEvent>& events);

/// Deterministic trace id for a job: FNV-1a of the job id (itself derived
/// from the canonical content hash in PartitionServer::submit), so the
/// same job gets the same trace id on every attempt, restart and host.
std::uint64_t trace_id_for(const std::string& job_id);

/// Seconds attributed to the multilevel phases of a job's trace, summed
/// from the "ml.coarsen_level" / "ml.initial" / "ml.refine_level" spans.
struct PhaseBreakdown {
  double coarsen_seconds = 0.0;
  double initial_seconds = 0.0;
  double refine_seconds = 0.0;
};
PhaseBreakdown phase_breakdown(const std::vector<TraceEvent>& events);

#if FIXEDPART_OBS_ENABLED

/// Nanoseconds since the process-wide steady trace epoch (latched on
/// first use). The common timebase of every TraceEvent in this process.
std::int64_t trace_now_ns();

/// Small sequential id of the calling thread (1, 2, ...): the "tid" of
/// every span/flight entry this thread records.
std::uint32_t trace_local_tid();

/// Copies `name` into a bounded process-lifetime intern pool and returns
/// a stable pointer. Past kMaxInternedNames distinct names (a cap that
/// also bounds what a malicious worker can allocate via 'T' frames) the
/// overflow marker "trace.name_overflow" is returned instead.
const char* intern_name(const std::string& name);
constexpr std::size_t kMaxInternedNames = 4096;

/// Bounded, thread-safe per-job span store. Owned by the job record
/// (ServerJob / worker serve()); full buffers drop and count (surfaced as
/// the obs.trace.dropped counter).
class SpanBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit SpanBuffer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}
  SpanBuffer(const SpanBuffer&) = delete;
  SpanBuffer& operator=(const SpanBuffer&) = delete;

  /// Appends one event (fills tid from the calling thread when 0).
  void record(TraceEvent event);
  /// Snapshot of the buffered events.
  std::vector<TraceEvent> events() const;
  /// Moves the buffered events out (the worker's streaming path).
  std::vector<TraceEvent> drain();
  std::size_t size() const;
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Folds drops observed remotely (a worker's 'T' header, malformed
  /// wire lines) into dropped() and the obs.trace.dropped counter.
  void add_remote_dropped(std::uint64_t count);

 private:
  const std::size_t capacity_;
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// The ambient trace attribution for the calling thread.
struct TraceContext {
  std::uint64_t trace_id = 0;
  SpanBuffer* buffer = nullptr;
  bool active() const { return buffer != nullptr; }
};

/// RAII push/pop of the thread-local trace-context stack. The pushed
/// buffer must outlive the scope; spans recorded on this thread inside
/// the scope land in it, tagged with `trace_id`.
class ScopedTraceContext {
 public:
  ScopedTraceContext(std::uint64_t trace_id, SpanBuffer* buffer);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  /// The top of the calling thread's context stack ({} when empty).
  static TraceContext current();

 private:
  TraceContext prev_;
};

/// Process-global whole-run tracer (armed via start(); bench --trace-out).
/// Events recorded while armed are rebased to the start() epoch.
class Tracer {
 public:
  static constexpr std::size_t kMaxEvents = 1u << 20;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The tracer the built-in spans record into.
  static Tracer& global();

  /// Clears the buffer, resets the epoch to now, and starts collecting.
  void start();
  /// Stops collecting (buffered events are kept until the next start()).
  void stop();
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the last start(); the timebase of this buffer.
  std::int64_t now_ns() const {
    return trace_now_ns() - epoch_offset_ns_.load(std::memory_order_relaxed);
  }

  /// Appends one event (dropped when inactive or past kMaxEvents). The
  /// event's start_ns is interpreted on the process epoch and rebased.
  void record(const TraceEvent& event);

  std::size_t event_count() const;
  std::uint64_t dropped_count() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::vector<TraceEvent> events() const;

  /// Chrome trace: {"traceEvents": [...], "displayTimeUnit": "ms"}.
  std::string to_json() const;
  /// to_json() published via util::write_file_atomic.
  void write_json(const std::string& path) const;

 private:
  std::atomic<bool> active_{false};
  std::atomic<std::int64_t> epoch_offset_ns_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span. Always live (the flight recorder never disarms): records
/// into the current TraceContext buffer, the armed global Tracer, and
/// the flight-recorder ring at destruction.
class ScopedSpan {
 public:
  /// `name` must be a string literal (or otherwise immortal).
  explicit ScopedSpan(const char* name);
  /// Dynamically-built names are interned (safe after `name` dies).
  explicit ScopedSpan(const std::string& name);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric argument (first 4 kept). `key` must be a string
  /// literal or interned.
  ScopedSpan& arg(const char* key, std::int64_t value) {
    if (num_args_ < args_.size()) {
      args_[num_args_++] = TraceArg{key, true, value, 0.0};
    }
    return *this;
  }
  ScopedSpan& arg(const char* key, double value) {
    if (num_args_ < args_.size()) {
      args_[num_args_++] = TraceArg{key, false, 0, value};
    }
    return *this;
  }

  ~ScopedSpan();

 private:
  const char* name_ = "";
  std::int64_t start_ns_ = 0;
  std::uint64_t trace_id_ = 0;
  std::array<TraceArg, 4> args_{};
  std::uint32_t num_args_ = 0;
};

#else  // FIXEDPART_OBS_ENABLED == 0: tracing compiles away entirely.

inline std::int64_t trace_now_ns() { return 0; }
inline std::uint32_t trace_local_tid() { return 0; }
inline const char* intern_name(const std::string&) { return ""; }
constexpr std::size_t kMaxInternedNames = 0;

class SpanBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 0;
  explicit SpanBuffer(std::size_t = 0) {}
  SpanBuffer(const SpanBuffer&) = delete;
  SpanBuffer& operator=(const SpanBuffer&) = delete;
  void record(TraceEvent) {}
  std::vector<TraceEvent> events() const { return {}; }
  std::vector<TraceEvent> drain() { return {}; }
  std::size_t size() const { return 0; }
  std::uint64_t dropped() const { return 0; }
  void add_remote_dropped(std::uint64_t) {}
};

struct TraceContext {
  std::uint64_t trace_id = 0;
  SpanBuffer* buffer = nullptr;
  bool active() const { return false; }
};

class ScopedTraceContext {
 public:
  ScopedTraceContext(std::uint64_t, SpanBuffer*) {}
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;
  static TraceContext current() { return {}; }
};

class Tracer {
 public:
  static constexpr std::size_t kMaxEvents = 0;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& global() {
    static Tracer tracer;
    return tracer;
  }

  void start() {}
  void stop() {}
  bool active() const { return false; }
  std::int64_t now_ns() const { return 0; }
  void record(const TraceEvent&) {}
  std::size_t event_count() const { return 0; }
  std::uint64_t dropped_count() const { return 0; }
  std::vector<TraceEvent> events() const { return {}; }
  std::string to_json() const {
    return "{\"traceEvents\": [], \"displayTimeUnit\": \"ms\"}\n";
  }
  void write_json(const std::string& path) const;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
  explicit ScopedSpan(const std::string&) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan& arg(const char*, std::int64_t) { return *this; }
  ScopedSpan& arg(const char*, double) { return *this; }
};

#endif

}  // namespace fixedpart::obs
