#pragma once
// Scoped-span tracing with Chrome-trace-format JSON output: load the file
// written by Tracer::write_json into chrome://tracing (or https://ui.
// perfetto.dev) to see coarsen levels, FM passes, projections, V-cycles
// and svc job attempts on a per-thread timeline (docs/OBSERVABILITY.md).
//
// Collection is off by default; an inactive tracer costs one relaxed
// atomic load per span. start() arms the global tracer, spans record
// complete events ("ph":"X") with microsecond timestamps from
// steady_clock (wall-clock jumps cannot reorder spans), stop() disarms.
// The buffer is bounded (kMaxEvents); overflow drops events and counts
// them instead of growing without bound.
//
// Span names and arg keys must be string literals (or otherwise outlive
// the tracer): events store the pointers, not copies.
//
// Under FIXEDPART_OBS=OFF every member compiles to an empty inline stub.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.hpp"  // FIXEDPART_OBS_ENABLED / kEnabled

namespace fixedpart::obs {

struct TraceArg {
  const char* key = nullptr;
  bool is_int = true;
  std::int64_t int_value = 0;
  double double_value = 0.0;
};

struct TraceEvent {
  const char* name = "";
  std::uint32_t tid = 0;
  std::int64_t start_ns = 0;  ///< steady time since the tracer epoch
  std::int64_t dur_ns = 0;
  std::array<TraceArg, 4> args{};
  std::uint32_t num_args = 0;
};

#if FIXEDPART_OBS_ENABLED

class Tracer {
 public:
  static constexpr std::size_t kMaxEvents = 1u << 20;
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady, "trace timestamps must be jump-immune");

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The tracer the built-in spans record into.
  static Tracer& global();

  /// Clears the buffer, resets the epoch to now, and starts collecting.
  void start();
  /// Stops collecting (buffered events are kept until the next start()).
  void stop();
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the last start(); the timebase of TraceEvent.
  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                epoch_)
        .count();
  }

  /// Appends one event (dropped when inactive or past kMaxEvents).
  void record(const TraceEvent& event);

  std::size_t event_count() const;
  std::uint64_t dropped_count() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::vector<TraceEvent> events() const;

  /// Chrome trace: {"traceEvents": [...], "displayTimeUnit": "ms"}.
  std::string to_json() const;
  /// to_json() published via util::write_file_atomic.
  void write_json(const std::string& path) const;

 private:
  std::atomic<bool> active_{false};
  Clock::time_point epoch_{};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span over the global tracer. Construction samples the clock only
/// when the tracer is active; destruction records a complete event.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Tracer::global().active()) {
      name_ = name;
      start_ns_ = Tracer::global().now_ns();
      live_ = true;
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric argument (first 4 kept). `key` must outlive the
  /// tracer buffer — use string literals.
  ScopedSpan& arg(const char* key, std::int64_t value) {
    if (live_ && num_args_ < args_.size()) {
      args_[num_args_++] = TraceArg{key, true, value, 0.0};
    }
    return *this;
  }
  ScopedSpan& arg(const char* key, double value) {
    if (live_ && num_args_ < args_.size()) {
      args_[num_args_++] = TraceArg{key, false, 0, value};
    }
    return *this;
  }

  ~ScopedSpan() {
    if (!live_) return;
    TraceEvent event;
    event.name = name_;
    event.start_ns = start_ns_;
    event.dur_ns = Tracer::global().now_ns() - start_ns_;
    event.args = args_;
    event.num_args = num_args_;
    Tracer::global().record(event);
  }

 private:
  const char* name_ = "";
  std::int64_t start_ns_ = 0;
  std::array<TraceArg, 4> args_{};
  std::uint32_t num_args_ = 0;
  bool live_ = false;
};

#else  // FIXEDPART_OBS_ENABLED == 0: tracing compiles away entirely.

class Tracer {
 public:
  static constexpr std::size_t kMaxEvents = 0;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& global() {
    static Tracer tracer;
    return tracer;
  }

  void start() {}
  void stop() {}
  bool active() const { return false; }
  std::int64_t now_ns() const { return 0; }
  void record(const TraceEvent&) {}
  std::size_t event_count() const { return 0; }
  std::uint64_t dropped_count() const { return 0; }
  std::vector<TraceEvent> events() const { return {}; }
  std::string to_json() const {
    return "{\"traceEvents\": [], \"displayTimeUnit\": \"ms\"}\n";
  }
  void write_json(const std::string& path) const;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan& arg(const char*, std::int64_t) { return *this; }
  ScopedSpan& arg(const char*, double) { return *this; }
};

#endif

}  // namespace fixedpart::obs
