#include "obs/log.hpp"

#include <chrono>

#include "obs/flight.hpp"
#include <cmath>
#include <sstream>
#include <stdexcept>

#ifdef __unix__
#include <unistd.h>
#endif

namespace fixedpart::obs {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kFatal: return "fatal";
  }
  return "info";
}

LogLevel log_level_from_string(const std::string& text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "fatal") return LogLevel::kFatal;
  return LogLevel::kInfo;
}

#if FIXEDPART_OBS_ENABLED

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void append_json_escaped(std::string& out, const std::string& text) {
  static const char* hex = "0123456789abcdef";
  for (const char c : text) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (u < 0x20) {
      out += "\\u00";
      out += hex[u >> 4];
      out += hex[u & 0xF];
    } else {
      out += c;
    }
  }
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/NaN literal; stringify so the line stays parseable.
    out += '"';
    out += std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf");
    out += '"';
    return;
  }
  std::ostringstream text;
  text.precision(6);
  text << v;
  out += text.str();
}

}  // namespace

Log::Log() : epoch_steady_ns_(steady_ns()) {}

Log::~Log() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) std::fclose(sink_);
}

Log& Log::global() {
  static Log log;
  return log;
}

void Log::set_min_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  min_level_ = level;
}

LogLevel Log::min_level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_level_;
}

void Log::set_sink_path(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    throw std::runtime_error("obs::Log: cannot open sink " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) std::fclose(sink_);
  sink_ = file;
  sink_path_ = path;
}

void Log::set_sink_stderr() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) std::fclose(sink_);
  sink_ = nullptr;
  sink_path_.clear();
}

void Log::emit_locked(const std::string& line) {
  std::FILE* out = sink_ != nullptr ? sink_ : stderr;
  std::fputs(line.c_str(), out);
  std::fputc('\n', out);
  ++lines_written_;
}

void Log::write(LogLevel level, const char* subsystem, const std::string& msg,
                std::initializer_list<LogField> fields) {
  std::string line;
  line.reserve(128 + msg.size());
  line += "{\"ts_ms\": ";
  line += std::to_string(wall_ms());
  line += ", \"mono_ms\": ";
  append_double(line, static_cast<double>(steady_ns() - epoch_steady_ns_) /
                          1e6);
  line += ", \"level\": \"";
  line += to_string(level);
  line += "\", \"sub\": \"";
  append_json_escaped(line, subsystem != nullptr ? subsystem : "");
  line += "\", \"msg\": \"";
  append_json_escaped(line, msg);
  line += '"';
  for (const LogField& field : fields) {
    line += ", \"";
    append_json_escaped(line, field.key != nullptr ? field.key : "");
    line += "\": ";
    switch (field.kind) {
      case LogField::Kind::kString:
        line += '"';
        append_json_escaped(line, field.str);
        line += '"';
        break;
      case LogField::Kind::kInt:
        line += std::to_string(field.int_value);
        break;
      case LogField::Kind::kDouble:
        append_double(line, field.double_value);
        break;
      case LogField::Kind::kBool:
        line += field.bool_value ? "true" : "false";
        break;
    }
  }
  line += '}';

  // Mirror into the always-on flight recorder so a crash dump carries the
  // recent log timeline next to the spans (docs/ROBUSTNESS.md).
  FlightRecorder::global().record_event(to_string(level), subsystem, msg);

  std::lock_guard<std::mutex> lock(mu_);
  const bool on_sink = level >= min_level_;
  if (ring_.size() < kRingCapacity) {
    ring_.push_back({line, on_sink});
  } else {
    ring_[ring_next_] = {line, on_sink};
  }
  ring_next_ = (ring_next_ + 1) % kRingCapacity;
  if (on_sink) emit_locked(line);
  if (level == LogLevel::kFatal) {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      RingEntry& entry = ring_[(ring_next_ + i) % ring_.size()];
      if (!entry.on_sink) {
        emit_locked(entry.line);
        entry.on_sink = true;
      }
    }
    std::FILE* out = sink_ != nullptr ? sink_ : stderr;
    std::fflush(out);
#ifdef __unix__
    if (sink_ != nullptr) ::fsync(::fileno(sink_));
#endif
  }
}

void Log::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* out = sink_ != nullptr ? sink_ : stderr;
  std::fflush(out);
#ifdef __unix__
  if (sink_ != nullptr) ::fsync(::fileno(sink_));
#endif
}

void Log::flush_ring() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      RingEntry& entry = ring_[(ring_next_ + i) % ring_.size()];
      if (!entry.on_sink) {
        emit_locked(entry.line);
        entry.on_sink = true;
      }
    }
  }
  flush();
}

std::vector<std::string> Log::ring_lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> lines;
  lines.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    lines.push_back(ring_[(ring_next_ + i) % ring_.size()].line);
  }
  return lines;
}

std::uint64_t Log::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_written_;
}

#endif  // FIXEDPART_OBS_ENABLED

}  // namespace fixedpart::obs
