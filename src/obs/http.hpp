#pragma once
// Minimal embedded HTTP endpoint (docs/OBSERVABILITY.md): a blocking
// HTTP/1.1 server over plain POSIX sockets, bound to 127.0.0.1 only, with
// no dependencies. One background accept thread serves one request per
// connection (Connection: close). Built-in operator routes:
//
//   GET /metrics       Prometheus text format 0.0.4 of a fresh scrape
//   GET /metrics.json  Snapshot::to_json of a fresh scrape
//   GET /healthz       "ok"
//   GET /progress      the configured progress callback's JSON (else {})
//
// Everything else — any method, any path — is offered to the optional
// `handler` callback, which is how svc::PartitionServer layers POST
// /partition and friends on top (docs/ROBUSTNESS.md). Requests may carry
// a Content-Length body, capped at `max_request_bytes` (413 past the
// cap), and every connection lives under a wall-clock I/O budget
// (`io_timeout_seconds`): a client that trickles bytes or stalls
// mid-request is cut off when the budget expires instead of wedging the
// accept loop forever (the slowloris guard — per-recv socket timeouts
// alone do not bound the total connection time).
//
// start() binds (port 0 = kernel-assigned, read back via port()) and
// spawns the serve thread; stop() (idempotent, also run by the
// destructor) wakes the thread through a self-pipe, joins it, and closes
// every fd — the lifecycle test holds the no-fd-leak contract. Under
// FIXEDPART_OBS=OFF the class is an inert stub: start() does nothing and
// port() stays 0, so callers can keep one code path.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/registry.hpp"

namespace fixedpart::obs {

/// One parsed request, as handed to HttpEndpointConfig::handler.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", "DELETE", ... (verbatim)
  std::string path;    ///< request target with the query string stripped
  std::string query;   ///< raw query string after '?' ("" when absent)
  std::string body;    ///< Content-Length bytes (possibly empty)
};

/// What a handler sends back. `headers` carries extras such as
/// Retry-After; Content-Type/Content-Length/Connection are always set by
/// the endpoint itself.
struct HttpResponse {
  int status = 200;
  std::string reason;  ///< "" = derived from `status`
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;
};

struct HttpEndpointConfig {
  /// TCP port on 127.0.0.1; 0 asks the kernel for an ephemeral port.
  std::uint16_t port = 0;
  /// Scraped per /metrics and /metrics.json request; never owned.
  Registry* registry = nullptr;  ///< nullptr = Registry::global()
  /// Body of GET /progress (should be a JSON object). Called from the
  /// serve thread; must be thread-safe. Empty = a constant "{}".
  std::function<std::string()> progress;
  /// Application routes: consulted for every request the built-in GET
  /// routes above do not claim. Return true when handled; false falls
  /// through to 404 (or 405 for a non-GET on a built-in path). Called
  /// from the serve thread; must be thread-safe and must not block for
  /// long — one connection is served at a time.
  std::function<bool(const HttpRequest&, HttpResponse&)> handler;
  /// Total wall-clock budget for one connection (read + handle + write).
  /// A slow or stalled client is dropped when it expires, so the worst
  /// case head-of-line delay for the next connection is bounded.
  double io_timeout_seconds = 5.0;
  /// Cap on the request size (header block and body, each). Larger
  /// requests are answered 413 and the connection is closed.
  std::size_t max_request_bytes = 1u << 20;
};

#if FIXEDPART_OBS_ENABLED

class HttpEndpoint {
 public:
  explicit HttpEndpoint(HttpEndpointConfig config);
  ~HttpEndpoint();
  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Binds, listens and starts the serve thread. Throws
  /// std::runtime_error on socket errors (port in use, ...).
  void start();
  /// Stops serving and releases every fd. Safe to call twice.
  void stop();

  bool running() const { return thread_.joinable(); }
  /// The bound port (after start()); 0 before.
  std::uint16_t port() const { return port_; }
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve();
  void handle_connection(int fd);

  HttpEndpointConfig config_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

#else  // FIXEDPART_OBS_ENABLED == 0: the endpoint compiles out.

class HttpEndpoint {
 public:
  explicit HttpEndpoint(HttpEndpointConfig) {}
  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  void start() {}
  void stop() {}
  bool running() const { return false; }
  std::uint16_t port() const { return 0; }
  std::uint64_t requests_served() const { return 0; }
};

#endif

}  // namespace fixedpart::obs
