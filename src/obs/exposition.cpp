#include "obs/exposition.hpp"

#include <cmath>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <vector>

namespace fixedpart::obs {

namespace {

bool valid_name_char(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

/// Splits a registered name into its sanitized family and the verbatim
/// label body ("" when unlabeled): "svc.jobs{state=\"ok\"}" ->
/// {"svc_jobs", "state=\"ok\""}.
struct ParsedName {
  std::string family;
  std::string labels;
};

ParsedName parse_name(const std::string& name) {
  ParsedName parsed;
  const std::size_t brace = name.find('{');
  const std::size_t base_len =
      brace == std::string::npos ? name.size() : brace;
  parsed.family.reserve(base_len + 1);
  for (std::size_t i = 0; i < base_len; ++i) {
    const char c = name[i];
    parsed.family += valid_name_char(c, parsed.family.empty()) ? c : '_';
  }
  if (parsed.family.empty()) parsed.family = "_";
  if (brace != std::string::npos) {
    std::size_t end = name.size();
    if (end > brace && name[end - 1] == '}') --end;
    parsed.labels = name.substr(brace + 1, end - brace - 1);
  }
  return parsed;
}

/// Sample value formatting: integral values print without an exponent or
/// trailing zeros, everything else with enough digits to round-trip the
/// operator-facing precision.
std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0.0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  std::ostringstream out;
  out << std::setprecision(12) << v;
  return out.str();
}

/// One family: TYPE line emitted once, then every member sample.
template <typename Member>
struct Family {
  std::string name;
  std::vector<Member> members;
};

template <typename Member>
Family<Member>& family_slot(std::vector<Family<Member>>& families,
                            const std::string& name) {
  for (Family<Member>& family : families) {
    if (family.name == name) return family;
  }
  families.push_back({name, {}});
  return families.back();
}

void append_sample(std::string& out, const std::string& family,
                   const std::string& labels, const std::string& value) {
  out += family;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

/// `labels` with `extra` ('le="..."') appended, comma-separated.
std::string with_label(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return extra;
  return labels + "," + extra;
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  return parse_name(name).family;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;

  struct Scalar {
    std::string labels;
    std::string value;
  };
  std::vector<Family<Scalar>> counter_families;
  for (const CounterValue& c : snapshot.counters) {
    const ParsedName parsed = parse_name(c.name);
    family_slot(counter_families, parsed.family)
        .members.push_back({parsed.labels, std::to_string(c.value)});
  }
  for (const Family<Scalar>& family : counter_families) {
    out += "# TYPE " + family.name + " counter\n";
    for (const Scalar& member : family.members) {
      append_sample(out, family.name, member.labels, member.value);
    }
  }

  std::vector<Family<Scalar>> gauge_families;
  for (const GaugeValue& g : snapshot.gauges) {
    const ParsedName parsed = parse_name(g.name);
    family_slot(gauge_families, parsed.family)
        .members.push_back({parsed.labels, format_value(g.value)});
  }
  for (const Family<Scalar>& family : gauge_families) {
    out += "# TYPE " + family.name + " gauge\n";
    for (const Scalar& member : family.members) {
      append_sample(out, family.name, member.labels, member.value);
    }
  }

  struct Hist {
    std::string labels;
    const HistogramValue* value;
  };
  std::vector<Family<Hist>> histogram_families;
  for (const HistogramValue& h : snapshot.histograms) {
    const ParsedName parsed = parse_name(h.name);
    family_slot(histogram_families, parsed.family)
        .members.push_back({parsed.labels, &h});
  }
  for (const Family<Hist>& family : histogram_families) {
    out += "# TYPE " + family.name + " histogram\n";
    for (const Hist& member : family.members) {
      const HistogramValue& h = *member.value;
      const std::size_t bins = h.counts.size();
      std::uint64_t cumulative = 0;
      // Finite edges for all bins but the last: the top bin also holds
      // clamped >= hi observations, so only "+Inf" covers it honestly.
      for (std::size_t b = 0; b + 1 < bins; ++b) {
        cumulative += h.counts[b];
        const double edge =
            h.lo + (h.hi - h.lo) * static_cast<double>(b + 1) /
                       static_cast<double>(bins);
        append_sample(out, family.name + "_bucket",
                      with_label(member.labels,
                                 "le=\"" + format_value(edge) + "\""),
                      std::to_string(cumulative));
      }
      append_sample(out, family.name + "_bucket",
                    with_label(member.labels, "le=\"+Inf\""),
                    std::to_string(h.total));
      append_sample(out, family.name + "_sum", member.labels,
                    format_value(h.sum));
      append_sample(out, family.name + "_count", member.labels,
                    std::to_string(h.total));
    }
  }

  return out;
}

}  // namespace fixedpart::obs
