#include "obs/exporter.hpp"

#if FIXEDPART_OBS_ENABLED

#include <chrono>
#include <utility>

#include "obs/exposition.hpp"
#include "obs/log.hpp"
#include "util/atomic_file.hpp"

namespace fixedpart::obs {

Exporter::Exporter(ExporterConfig config) : config_(std::move(config)) {
  if (config_.registry == nullptr) config_.registry = &Registry::global();
  if (config_.interval_seconds <= 0.0) config_.interval_seconds = 5.0;
}

Exporter::~Exporter() { stop(); }

void Exporter::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    stopping_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void Exporter::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Exporter::tick_now() {
  const Snapshot snapshot = config_.registry->scrape();
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!config_.json_path.empty()) {
    util::write_file_atomic(config_.json_path, snapshot.to_json());
  }
  if (!config_.prom_path.empty()) {
    util::write_file_atomic(config_.prom_path, to_prometheus(snapshot));
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

void Exporter::loop() {
  std::unique_lock<std::mutex> lock(cv_mu_);
  while (!stopping_) {
    const bool stop_now = cv_.wait_for(
        lock, std::chrono::duration<double>(config_.interval_seconds),
        [this] { return stopping_; });
    if (stop_now) break;
    lock.unlock();
    try {
      tick_now();
    } catch (const std::exception& error) {
      // Disk hiccups must not kill the fleet; retry next interval.
      log_error("obs", "metrics export tick failed",
                {{"what", error.what()}});
    }
    lock.lock();
  }
}

}  // namespace fixedpart::obs

#endif  // FIXEDPART_OBS_ENABLED
