#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace fixedpart::obs {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // metric names are plain identifiers; keep it simple
    } else {
      out += c;
    }
  }
  return out;
}

std::string format_double(double value) {
  std::ostringstream out;
  out.precision(6);
  out << value;
  return out.str();
}

}  // namespace

std::int64_t Snapshot::counter(const std::string& name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const HistogramValue* Snapshot::histogram(const std::string& name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string Snapshot::to_json() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(counters[i].name)
        << "\": " << counters[i].value;
  }
  out << (counters.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(h.name)
        << "\": {\"lo\": " << format_double(h.lo)
        << ", \"hi\": " << format_double(h.hi) << ", \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      out << (b == 0 ? "" : ", ") << h.counts[b];
    }
    out << "], \"total\": " << h.total << ", \"dropped\": " << h.dropped
        << "}";
  }
  out << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

#if FIXEDPART_OBS_ENABLED

namespace {

std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Registry::Registry() : uid_(next_registry_uid()) {}

Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

MetricId Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) return static_cast<MetricId>(i);
  }
  if (counter_names_.size() >= kMaxCounters) {
    throw std::length_error("obs::Registry: counter capacity exhausted");
  }
  counter_names_.push_back(name);
  return static_cast<MetricId>(counter_names_.size() - 1);
}

MetricId Registry::histogram(const std::string& name, double lo, double hi,
                             std::uint32_t bins) {
  if (bins == 0) throw std::invalid_argument("obs histogram: zero bins");
  if (!(lo < hi)) throw std::invalid_argument("obs histogram: lo >= hi");
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    if (histogram_names_[i] != name) continue;
    const HistogramMeta& meta = histogram_meta_[i];
    if (meta.lo != lo || meta.hi != hi || meta.bins != bins) {
      throw std::invalid_argument("obs histogram \"" + name +
                                  "\": re-registered with different shape");
    }
    return static_cast<MetricId>(i);
  }
  if (histogram_names_.size() >= kMaxHistograms) {
    throw std::length_error("obs::Registry: histogram capacity exhausted");
  }
  if (next_cell_ + bins > kMaxHistogramCells) {
    throw std::length_error("obs::Registry: histogram cell capacity exhausted");
  }
  const auto id = static_cast<MetricId>(histogram_names_.size());
  histogram_names_.push_back(name);
  HistogramMeta& meta = histogram_meta_[id];
  meta.lo = lo;
  meta.hi = hi;
  meta.scale = static_cast<double>(bins) / (hi - lo);
  meta.bins = bins;
  meta.offset = next_cell_;
  next_cell_ += bins;
  // Publish: observe() loads num_histograms_ with acquire, so the meta
  // writes above are visible to any thread holding a valid id.
  num_histograms_.store(id + 1, std::memory_order_release);
  return id;
}

Registry::Shard& Registry::local_shard() const {
  struct CacheEntry {
    std::uint64_t registry_uid;
    std::shared_ptr<Shard> shard;
  };
  thread_local std::vector<CacheEntry> cache;
  for (CacheEntry& entry : cache) {
    if (entry.registry_uid == uid_) return *entry.shard;
  }
  auto shard = std::make_shared<Shard>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(shard);
  }
  cache.push_back({uid_, shard});
  return *cache.back().shard;
}

void Registry::add(MetricId id, std::int64_t delta) {
  if (id >= kMaxCounters) return;
  local_shard().counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::observe(MetricId id, double x) {
  if (id >= num_histograms_.load(std::memory_order_acquire)) return;
  const HistogramMeta& meta = histogram_meta_[id];
  Shard& shard = local_shard();
  if (std::isnan(x)) {
    shard.dropped[id].fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Clamp in the double domain before any integer cast: +/-inf and values
  // far outside [lo, hi) land in the edge bins instead of invoking UB.
  std::uint32_t bin;
  if (x <= meta.lo) {
    bin = 0;
  } else if (x >= meta.hi) {
    bin = meta.bins - 1;
  } else {
    bin = std::min(static_cast<std::uint32_t>((x - meta.lo) * meta.scale),
                   meta.bins - 1);
  }
  shard.cells[meta.offset + bin].fetch_add(1, std::memory_order_relaxed);
}

Snapshot Registry::scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    std::int64_t sum = 0;
    for (const auto& shard : shards_) {
      sum += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.push_back({counter_names_[i], sum});
  }
  snap.histograms.reserve(histogram_names_.size());
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    const HistogramMeta& meta = histogram_meta_[i];
    HistogramValue value;
    value.name = histogram_names_[i];
    value.lo = meta.lo;
    value.hi = meta.hi;
    value.counts.assign(meta.bins, 0);
    for (const auto& shard : shards_) {
      for (std::uint32_t b = 0; b < meta.bins; ++b) {
        value.counts[b] +=
            shard->cells[meta.offset + b].load(std::memory_order_relaxed);
      }
      value.dropped += shard->dropped[i].load(std::memory_order_relaxed);
    }
    for (const std::uint64_t c : value.counts) value.total += c;
    snap.histograms.push_back(std::move(value));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (auto& cell : shard->counters) {
      cell.store(0, std::memory_order_relaxed);
    }
    for (auto& cell : shard->cells) cell.store(0, std::memory_order_relaxed);
    for (auto& cell : shard->dropped) {
      cell.store(0, std::memory_order_relaxed);
    }
  }
}

#endif  // FIXEDPART_OBS_ENABLED

}  // namespace fixedpart::obs
