#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace fixedpart::obs {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // metric names are plain identifiers; keep it simple
    } else {
      out += c;
    }
  }
  return out;
}

std::string format_double(double value) {
  std::ostringstream out;
  out.precision(6);
  out << value;
  return out.str();
}

}  // namespace

std::string labeled(
    const std::string& name,
    std::initializer_list<std::pair<const char*, std::string>> labels) {
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    for (const char c : value) {
      if (c == '\\' || c == '"') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += '"';
  }
  out += '}';
  return out;
}

std::int64_t Snapshot::counter(const std::string& name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const GaugeValue* Snapshot::gauge(const std::string& name) const {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramValue* Snapshot::histogram(const std::string& name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string Snapshot::to_json() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(counters[i].name)
        << "\": " << counters[i].value;
  }
  out << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(gauges[i].name)
        << "\": " << format_double(gauges[i].value);
  }
  out << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(h.name)
        << "\": {\"lo\": " << format_double(h.lo)
        << ", \"hi\": " << format_double(h.hi) << ", \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      out << (b == 0 ? "" : ", ") << h.counts[b];
    }
    out << "], \"total\": " << h.total << ", \"sum\": " << format_double(h.sum)
        << ", \"dropped\": " << h.dropped << "}";
  }
  out << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

#if FIXEDPART_OBS_ENABLED

namespace {

std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Relaxed floating-point accumulation (CAS loop: std::atomic<double>::
/// fetch_add is C++20 but not yet universal across toolchains).
void atomic_add_double(std::atomic<double>& cell, double delta) {
  double expected = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(expected, expected + delta,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

/// Enforces Registry::kMaxLabelSets: a labeled name ("family{...}") may
/// coexist with at most kMaxLabelSets - 1 other members of its family.
void check_label_cap(const std::vector<std::string>& names,
                     const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return;
  const std::string prefix = name.substr(0, brace + 1);
  std::uint32_t members = 0;
  for (const std::string& existing : names) {
    if (existing.compare(0, prefix.size(), prefix) == 0) ++members;
  }
  if (members >= Registry::kMaxLabelSets) {
    throw std::length_error("obs::Registry: label-set capacity exhausted for "
                            "family \"" +
                            name.substr(0, brace) + "\"");
  }
}

}  // namespace

Registry::Registry() : uid_(next_registry_uid()) {}

Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

MetricId Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) return static_cast<MetricId>(i);
  }
  if (counter_names_.size() >= kMaxCounters) {
    throw std::length_error("obs::Registry: counter capacity exhausted");
  }
  check_label_cap(counter_names_, name);
  counter_names_.push_back(name);
  return static_cast<MetricId>(counter_names_.size() - 1);
}

MetricId Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    if (gauge_names_[i] == name) return static_cast<MetricId>(i);
  }
  if (gauge_names_.size() >= kMaxGauges) {
    throw std::length_error("obs::Registry: gauge capacity exhausted");
  }
  check_label_cap(gauge_names_, name);
  gauge_names_.push_back(name);
  return static_cast<MetricId>(gauge_names_.size() - 1);
}

MetricId Registry::histogram(const std::string& name, double lo, double hi,
                             std::uint32_t bins) {
  if (bins == 0) throw std::invalid_argument("obs histogram: zero bins");
  if (!(lo < hi)) throw std::invalid_argument("obs histogram: lo >= hi");
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    if (histogram_names_[i] != name) continue;
    const HistogramMeta& meta = histogram_meta_[i];
    if (meta.lo != lo || meta.hi != hi || meta.bins != bins) {
      throw std::invalid_argument("obs histogram \"" + name +
                                  "\": re-registered with different shape");
    }
    return static_cast<MetricId>(i);
  }
  if (histogram_names_.size() >= kMaxHistograms) {
    throw std::length_error("obs::Registry: histogram capacity exhausted");
  }
  if (next_cell_ + bins > kMaxHistogramCells) {
    throw std::length_error("obs::Registry: histogram cell capacity exhausted");
  }
  check_label_cap(histogram_names_, name);
  const auto id = static_cast<MetricId>(histogram_names_.size());
  histogram_names_.push_back(name);
  HistogramMeta& meta = histogram_meta_[id];
  meta.lo = lo;
  meta.hi = hi;
  meta.scale = static_cast<double>(bins) / (hi - lo);
  meta.bins = bins;
  meta.offset = next_cell_;
  next_cell_ += bins;
  // Publish: observe() loads num_histograms_ with acquire, so the meta
  // writes above are visible to any thread holding a valid id.
  num_histograms_.store(id + 1, std::memory_order_release);
  return id;
}

Registry::Shard& Registry::local_shard() const {
  struct CacheEntry {
    std::uint64_t registry_uid;
    std::shared_ptr<Shard> shard;
  };
  thread_local std::vector<CacheEntry> cache;
  for (CacheEntry& entry : cache) {
    if (entry.registry_uid == uid_) return *entry.shard;
  }
  auto shard = std::make_shared<Shard>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(shard);
  }
  cache.push_back({uid_, shard});
  return *cache.back().shard;
}

void Registry::add(MetricId id, std::int64_t delta) {
  if (id >= kMaxCounters) return;
  local_shard().counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::set(MetricId id, double value) {
  if (id >= kMaxGauges || std::isnan(value)) return;
  // Tag the write with a registry-wide sequence so scrape() can decide
  // which thread's shard holds the newest value. Value first (relaxed),
  // then seq with release: a reader that observes seq also observes the
  // matching (or a newer) value.
  const std::uint64_t seq =
      gauge_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  GaugeCell& cell = local_shard().gauges[id];
  cell.value.store(value, std::memory_order_relaxed);
  cell.seq.store(seq, std::memory_order_release);
}

void Registry::observe(MetricId id, double x) {
  if (id >= num_histograms_.load(std::memory_order_acquire)) return;
  const HistogramMeta& meta = histogram_meta_[id];
  Shard& shard = local_shard();
  if (std::isnan(x)) {
    shard.dropped[id].fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Clamp in the double domain before any integer cast: +/-inf and values
  // far outside [lo, hi) land in the edge bins instead of invoking UB.
  std::uint32_t bin;
  if (x <= meta.lo) {
    bin = 0;
  } else if (x >= meta.hi) {
    bin = meta.bins - 1;
  } else {
    bin = std::min(static_cast<std::uint32_t>((x - meta.lo) * meta.scale),
                   meta.bins - 1);
  }
  shard.cells[meta.offset + bin].fetch_add(1, std::memory_order_relaxed);
  // The exposition `_sum` series; clamped so +/-inf cannot poison it.
  atomic_add_double(shard.sums[id],
                    std::min(std::max(x, meta.lo), meta.hi));
}

Snapshot Registry::scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    std::int64_t sum = 0;
    for (const auto& shard : shards_) {
      sum += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.push_back({counter_names_[i], sum});
  }
  snap.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    double value = 0.0;
    std::uint64_t best_seq = 0;
    for (const auto& shard : shards_) {
      const GaugeCell& cell = shard->gauges[i];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      if (seq > best_seq) {
        best_seq = seq;
        value = cell.value.load(std::memory_order_relaxed);
      }
    }
    snap.gauges.push_back({gauge_names_[i], value});
  }
  snap.histograms.reserve(histogram_names_.size());
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    const HistogramMeta& meta = histogram_meta_[i];
    HistogramValue value;
    value.name = histogram_names_[i];
    value.lo = meta.lo;
    value.hi = meta.hi;
    value.counts.assign(meta.bins, 0);
    for (const auto& shard : shards_) {
      for (std::uint32_t b = 0; b < meta.bins; ++b) {
        value.counts[b] +=
            shard->cells[meta.offset + b].load(std::memory_order_relaxed);
      }
      value.dropped += shard->dropped[i].load(std::memory_order_relaxed);
      value.sum += shard->sums[i].load(std::memory_order_relaxed);
    }
    for (const std::uint64_t c : value.counts) value.total += c;
    snap.histograms.push_back(std::move(value));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (auto& cell : shard->counters) {
      cell.store(0, std::memory_order_relaxed);
    }
    for (GaugeCell& cell : shard->gauges) {
      cell.value.store(0.0, std::memory_order_relaxed);
      cell.seq.store(0, std::memory_order_relaxed);
    }
    for (auto& cell : shard->cells) cell.store(0, std::memory_order_relaxed);
    for (auto& cell : shard->dropped) {
      cell.store(0, std::memory_order_relaxed);
    }
    for (auto& cell : shard->sums) cell.store(0.0, std::memory_order_relaxed);
  }
}

#endif  // FIXEDPART_OBS_ENABLED

}  // namespace fixedpart::obs
