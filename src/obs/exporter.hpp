#pragma once
// Periodic metrics snapshots on disk (docs/OBSERVABILITY.md): a background
// thread that scrapes the registry every interval_seconds and atomically
// publishes the snapshot via util::write_file_atomic — as JSON
// (Snapshot::to_json) and/or Prometheus text format (obs::to_prometheus).
// Because every write is write-temp + rename, a reader (or a post-mortem
// after the process is killed) always sees a complete snapshot from at
// most one interval ago, never a torn file.
//
// tick_now() scrapes and writes immediately from the calling thread
// (start() is not required): used for the final end-of-fleet write and the
// SIGINT/SIGTERM drain path. A failing tick inside the background thread
// is logged and retried next interval — disk hiccups must not kill the
// fleet. stop() (idempotent, also run by the destructor) only joins the
// thread; callers that want a last-state file do a final tick_now().
//
// Under FIXEDPART_OBS=OFF the class is an inert stub.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/registry.hpp"

namespace fixedpart::obs {

struct ExporterConfig {
  double interval_seconds = 5.0;
  std::string json_path;  ///< empty = skip the JSON file
  std::string prom_path;  ///< empty = skip the Prometheus file
  Registry* registry = nullptr;  ///< nullptr = Registry::global()
};

#if FIXEDPART_OBS_ENABLED

class Exporter {
 public:
  explicit Exporter(ExporterConfig config);
  ~Exporter();
  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  /// Starts the periodic background thread (no-op if already running).
  void start();
  /// Stops and joins it. No implicit final tick.
  void stop();

  /// Scrapes and writes both files now, from the calling thread. Throws
  /// on IO errors (background ticks catch and log instead).
  void tick_now();

  std::uint64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  ExporterConfig config_;
  std::mutex write_mu_;  ///< serializes tick_now vs the background tick
  std::mutex cv_mu_;
  std::condition_variable cv_;
  bool stopping_ = false;  ///< guarded by cv_mu_
  std::atomic<std::uint64_t> ticks_{0};
  std::thread thread_;
};

#else  // FIXEDPART_OBS_ENABLED == 0: the exporter compiles out.

class Exporter {
 public:
  explicit Exporter(ExporterConfig) {}
  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  void start() {}
  void stop() {}
  void tick_now() {}
  std::uint64_t ticks() const { return 0; }
};

#endif

}  // namespace fixedpart::obs
