#pragma once
// Low-overhead named metrics: monotonic counters, last-write-wins gauges
// and fixed-bin histograms (docs/OBSERVABILITY.md). The hot path —
// Registry::add / Registry::set / Registry::observe
// — touches only a thread-local shard with relaxed atomic increments: no
// locks, no shared cache lines between threads. scrape() takes the registry
// mutex, sums every shard ever created (shards of exited threads are kept
// alive by the registry and retain their final values) and returns a
// consistent-enough Snapshot: each cell is read atomically; cells may be
// torn *relative to each other* while writers are still running, which is
// the standard monotonic-counter contract.
//
// Registration (counter()/histogram()) is the cold path and takes a lock;
// call it once and cache the MetricId (a function-local static is the
// idiomatic pattern, see src/part/fm.cpp). Capacities are fixed so shards
// never reallocate under concurrent readers: kMaxCounters counters,
// kMaxHistograms histograms, kMaxHistogramCells total bins per registry.
//
// Compile-time kill switch: building with -DFIXEDPART_OBS=OFF defines
// FIXEDPART_OBS_ENABLED=0 and every member below compiles to an empty
// inline stub, so instrumented call sites cost literally nothing.

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#ifndef FIXEDPART_OBS_ENABLED
#define FIXEDPART_OBS_ENABLED 1
#endif

namespace fixedpart::obs {

/// True when the observability layer is compiled in. Use
/// `if constexpr (obs::kEnabled)` around hooks that must vanish entirely
/// under FIXEDPART_OBS=OFF.
inline constexpr bool kEnabled = FIXEDPART_OBS_ENABLED != 0;

/// Dense handle for a registered metric; stable for the registry lifetime.
using MetricId = std::uint32_t;

struct CounterValue {
  std::string name;
  std::int64_t value = 0;
};

/// Last-write-wins scalar (queue depth, heartbeat age, best cut so far).
struct GaugeValue {
  std::string name;
  double value = 0.0;
};

struct HistogramValue {
  std::string name;
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::uint64_t> counts;  ///< one entry per bin
  std::uint64_t total = 0;            ///< sum of counts
  std::uint64_t dropped = 0;          ///< NaN observations, excluded above
  /// Sum of observed values, each clamped into [lo, hi] (so +/-inf cannot
  /// poison it); the `_sum` series of the Prometheus exposition.
  double sum = 0.0;
};

/// Point-in-time merge of every shard, in registration order.
struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of a counter by name; 0 when the name was never registered.
  std::int64_t counter(const std::string& name) const;
  /// Gauge by name; nullptr when never registered.
  const GaugeValue* gauge(const std::string& name) const;
  /// Histogram by name; nullptr when never registered.
  const HistogramValue* histogram(const std::string& name) const;
  /// Three-section JSON object:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string to_json() const;
};

/// Renders a labeled-family member name, `name{key="value",...}`, with
/// Prometheus label-value escaping. The result is an ordinary metric name:
/// register it with counter()/gauge()/histogram() and the exposition layer
/// re-emits the label set verbatim. Distinct label values of one family
/// are capped at Registry::kMaxLabelSets (mirroring kMaxCounters, so an
/// unbounded label domain cannot exhaust the registry).
std::string labeled(
    const std::string& name,
    std::initializer_list<std::pair<const char*, std::string>> labels);

#if FIXEDPART_OBS_ENABLED

class Registry {
 public:
  static constexpr std::uint32_t kMaxCounters = 256;
  static constexpr std::uint32_t kMaxGauges = 128;
  static constexpr std::uint32_t kMaxHistograms = 64;
  static constexpr std::uint32_t kMaxHistogramCells = 4096;
  /// Cap on distinct label sets per family name (the part before '{').
  static constexpr std::uint32_t kMaxLabelSets = 64;

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry used by the built-in instrumentation.
  static Registry& global();

  /// Registers (or finds) a monotonic counter. Idempotent per name.
  /// Throws std::length_error past kMaxCounters (or, for a labeled name,
  /// past kMaxLabelSets members of its family).
  MetricId counter(const std::string& name);

  /// Registers (or finds) a last-write-wins gauge. Idempotent per name.
  /// Throws std::length_error past kMaxGauges / kMaxLabelSets.
  MetricId gauge(const std::string& name);

  /// Registers (or finds) a histogram over [lo, hi) with `bins` equal
  /// bins. Re-registration with different parameters throws
  /// std::invalid_argument; values outside the range clamp into the edge
  /// bins; NaN observations are dropped (and counted).
  MetricId histogram(const std::string& name, double lo, double hi,
                     std::uint32_t bins);

  /// Hot path: adds `delta` to this thread's shard of the counter.
  void add(MetricId id, std::int64_t delta = 1);

  /// Hot path: sets the gauge, last write (across all threads) wins.
  /// NaN values are ignored (a gauge must always render as a number).
  void set(MetricId id, double value);

  /// Hot path: bins `x` into this thread's shard of the histogram.
  void observe(MetricId id, double x);

  /// Merges all shards into a Snapshot (takes the registry lock).
  Snapshot scrape() const;

  /// Zeroes every cell of every shard. Keeps registrations. Concurrent
  /// adds during a reset land on either side of it (test/tool use only).
  void reset();

 private:
  /// One gauge slot per shard. Last-write-wins across threads is resolved
  /// at scrape time: set() tags the value with a registry-wide sequence
  /// number (value stored relaxed, then seq with release; the scraper
  /// loads seq with acquire first), and the shard holding the highest
  /// sequence owns the current value.
  struct GaugeCell {
    std::atomic<double> value{0.0};
    std::atomic<std::uint64_t> seq{0};
  };
  struct Shard {
    std::array<std::atomic<std::int64_t>, kMaxCounters> counters{};
    std::array<GaugeCell, kMaxGauges> gauges{};
    std::array<std::atomic<std::uint64_t>, kMaxHistogramCells> cells{};
    std::array<std::atomic<std::uint64_t>, kMaxHistograms> dropped{};
    std::array<std::atomic<double>, kMaxHistograms> sums{};
  };
  struct HistogramMeta {
    double lo = 0.0;
    double hi = 1.0;
    double scale = 0.0;  ///< bins / (hi - lo), for the hot-path bin compute
    std::uint32_t bins = 0;
    std::uint32_t offset = 0;  ///< first cell index in Shard::cells
  };

  Shard& local_shard() const;

  /// Distinguishes registries in the thread-local shard cache even when a
  /// destroyed registry's address is reused.
  const std::uint64_t uid_;

  mutable std::mutex mu_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  /// Tags gauge writes so scrape() can pick the globally newest one.
  std::atomic<std::uint64_t> gauge_seq_{0};
  std::array<HistogramMeta, kMaxHistograms> histogram_meta_{};
  std::uint32_t next_cell_ = 0;
  /// Published count of registered histograms; the release store in
  /// histogram() / acquire load in observe() orders the meta writes.
  std::atomic<std::uint32_t> num_histograms_{0};
  mutable std::vector<std::shared_ptr<Shard>> shards_;
};

#else  // FIXEDPART_OBS_ENABLED == 0: every hook is a no-op.

class Registry {
 public:
  static constexpr std::uint32_t kMaxCounters = 256;
  static constexpr std::uint32_t kMaxGauges = 128;
  static constexpr std::uint32_t kMaxHistograms = 64;
  static constexpr std::uint32_t kMaxHistogramCells = 4096;
  static constexpr std::uint32_t kMaxLabelSets = 64;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global() {
    static Registry registry;
    return registry;
  }

  MetricId counter(const std::string&) { return 0; }
  MetricId gauge(const std::string&) { return 0; }
  MetricId histogram(const std::string&, double, double, std::uint32_t) {
    return 0;
  }
  void add(MetricId, std::int64_t = 1) {}
  void set(MetricId, double) {}
  void observe(MetricId, double) {}
  Snapshot scrape() const { return {}; }
  void reset() {}
};

#endif

}  // namespace fixedpart::obs
