#include "obs/http.hpp"

#if FIXEDPART_OBS_ENABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/exposition.hpp"
#include "obs/log.hpp"

namespace fixedpart::obs {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("obs::HttpEndpoint: " + what + ": " +
                           std::strerror(errno));
}

void set_io_timeouts(int fd) {
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone or timeout; nothing to salvage
    sent += static_cast<std::size_t>(n);
  }
}

std::string make_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpEndpoint::HttpEndpoint(HttpEndpointConfig config)
    : config_(std::move(config)) {
  if (config_.registry == nullptr) config_.registry = &Registry::global();
}

HttpEndpoint::~HttpEndpoint() { stop(); }

void HttpEndpoint::start() {
  if (thread_.joinable()) {
    throw std::logic_error("obs::HttpEndpoint: already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int saved = errno;
    close_fd(listen_fd_);
    errno = saved;
    throw_errno("bind 127.0.0.1:" + std::to_string(config_.port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int saved = errno;
    close_fd(listen_fd_);
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const int saved = errno;
    close_fd(listen_fd_);
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  if (::pipe(wake_pipe_) != 0) {
    const int saved = errno;
    close_fd(listen_fd_);
    errno = saved;
    throw_errno("pipe");
  }
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
}

void HttpEndpoint::stop() {
  if (!thread_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  const char wake = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &wake, 1);
  thread_.join();
  close_fd(listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
  port_ = 0;
}

void HttpEndpoint::serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, 500);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;  // timeout or EINTR: re-check the flag
    if ((fds[0].revents & POLLIN) != 0) {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn >= 0) {
        handle_connection(conn);
        ::close(conn);
      }
    }
  }
}

void HttpEndpoint::handle_connection(int fd) {
  set_io_timeouts(fd);
  // Read until the end of the header block; requests have no body.
  std::string request;
  char buffer[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    request.append(buffer, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // malformed/timeout: drop

  const std::string line = request.substr(0, line_end);
  const std::size_t method_end = line.find(' ');
  const std::size_t target_end =
      method_end == std::string::npos ? std::string::npos
                                      : line.find(' ', method_end + 1);
  if (target_end == std::string::npos) {
    send_all(fd, make_response(400, "Bad Request", "text/plain",
                               "bad request\n"));
    return;
  }
  const std::string method = line.substr(0, method_end);
  std::string path = line.substr(method_end + 1, target_end - method_end - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  requests_.fetch_add(1, std::memory_order_relaxed);
  static const MetricId requests_counter =
      Registry::global().counter("obs.http_requests");
  Registry::global().add(requests_counter);

  if (method != "GET") {
    send_all(fd, make_response(405, "Method Not Allowed", "text/plain",
                               "only GET is supported\n"));
    return;
  }
  try {
    if (path == "/metrics") {
      send_all(fd, make_response(
                       200, "OK",
                       "text/plain; version=0.0.4; charset=utf-8",
                       to_prometheus(config_.registry->scrape())));
    } else if (path == "/metrics.json") {
      send_all(fd, make_response(200, "OK", "application/json",
                                 config_.registry->scrape().to_json()));
    } else if (path == "/healthz") {
      send_all(fd, make_response(200, "OK", "text/plain", "ok\n"));
    } else if (path == "/progress") {
      const std::string body =
          config_.progress ? config_.progress() : std::string("{}\n");
      send_all(fd, make_response(200, "OK", "application/json", body));
    } else {
      send_all(fd, make_response(404, "Not Found", "text/plain",
                                 "unknown path\n"));
    }
  } catch (const std::exception& error) {
    // A scrape/progress failure must not kill the serve thread.
    log_error("obs", "metrics endpoint request failed",
              {{"path", path}, {"what", error.what()}});
    send_all(fd, make_response(500, "Internal Server Error", "text/plain",
                               "scrape failed\n"));
  }
}

}  // namespace fixedpart::obs

#endif  // FIXEDPART_OBS_ENABLED
