#include "obs/http.hpp"

#if FIXEDPART_OBS_ENABLED

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "obs/exposition.hpp"
#include "obs/log.hpp"
#include "util/subprocess.hpp"

// MSG_NOSIGNAL is POSIX.1-2008 but historically absent on some BSDs;
// degrade to 0 there and rely on the process-wide SIGPIPE disposition
// installed in start().
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace fixedpart::obs {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

// Every endpoint fd is CLOEXEC: other threads fork worker processes, and
// an inherited socket would keep the peer's connection open until the
// worker exits.
void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("obs::HttpEndpoint: " + what + ": " +
                           std::strerror(errno));
}

const char* reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

/// Wall-clock budget for one connection. Every socket operation sets its
/// per-call timeout from the remaining budget, so the *total* time a
/// client can hold the serve thread is bounded — per-call socket timeouts
/// alone would let a byte-at-a-time client (slowloris) stretch a request
/// indefinitely.
class ConnBudget {
 public:
  explicit ConnBudget(double seconds)
      : deadline_(std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds))) {}

  bool expired() const {
    return std::chrono::steady_clock::now() >= deadline_;
  }

  /// Arms SO_RCVTIMEO/SO_SNDTIMEO with the remaining budget. Returns
  /// false when the budget is already gone.
  bool arm(int fd) const {
    const auto left = std::chrono::duration<double>(
                          deadline_ - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0.0) return false;
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(left);
    tv.tv_usec = static_cast<suseconds_t>((left - static_cast<double>(
                                                      tv.tv_sec)) *
                                          1e6);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    return true;
  }

 private:
  std::chrono::steady_clock::time_point deadline_;
};

/// recv with EINTR retry under the connection budget. Returns > 0 on
/// data, 0 on orderly close, < 0 on timeout/error/budget-exhaustion.
ssize_t recv_some(int fd, char* buffer, std::size_t size,
                  const ConnBudget& budget) {
  while (true) {
    if (!budget.arm(fd)) return -1;
    const ssize_t n = ::recv(fd, buffer, size, 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;  // signal mid-read: not a failure
    return -1;                     // timeout (EAGAIN) or a real error
  }
}

/// Sends all of `data`; gives up on budget expiry or a gone peer. EINTR
/// retries like recv_some. A client that closes (or resets) mid-response
/// is routine — scrapers time out, curls get ^C'd — so it must surface
/// as a counted early return, never as SIGPIPE killing the process:
/// MSG_NOSIGNAL suppresses the signal per-call and the EPIPE/ECONNRESET
/// result is swallowed here after bumping obs.http_peer_gone.
void send_all(int fd, const std::string& data, const ConnBudget& budget) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    if (!budget.arm(fd)) return;
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      static const MetricId peer_gone =
          Registry::global().counter("obs.http_peer_gone");
      Registry::global().add(peer_gone);
      return;
    }
    if (n <= 0) return;  // timeout or budget exhausted
    sent += static_cast<std::size_t>(n);
  }
}

std::string render_response(const HttpResponse& response) {
  const char* reason = response.reason.empty() ? reason_for(response.status)
                                               : response.reason.c_str();
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    reason + "\r\nContent-Type: " + response.content_type +
                    "\r\nContent-Length: " +
                    std::to_string(response.body.size());
  for (const auto& [key, value] : response.headers) {
    out += "\r\n" + key + ": " + value;
  }
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

HttpResponse text_response(int status, const std::string& body) {
  HttpResponse response;
  response.status = status;
  response.content_type = "text/plain";
  response.body = body;
  return response;
}

bool iequals(const std::string& a, const char* b) {
  const std::size_t len = std::strlen(b);
  if (a.size() != len) return false;
  for (std::size_t i = 0; i < len; ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Header field value by case-insensitive name from the raw header block
/// (without the request line). nullopt-like: returns false when absent.
bool find_header(const std::string& headers, const char* name,
                 std::string* value) {
  std::size_t start = 0;
  while (start < headers.size()) {
    std::size_t end = headers.find("\r\n", start);
    if (end == std::string::npos) end = headers.size();
    const std::string line = headers.substr(start, end - start);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string key = line.substr(0, colon);
      if (iequals(key, name)) {
        std::size_t vbegin = colon + 1;
        while (vbegin < line.size() &&
               std::isspace(static_cast<unsigned char>(line[vbegin]))) {
          ++vbegin;
        }
        std::size_t vend = line.size();
        while (vend > vbegin &&
               std::isspace(static_cast<unsigned char>(line[vend - 1]))) {
          --vend;
        }
        *value = line.substr(vbegin, vend - vbegin);
        return true;
      }
    }
    start = end + 2;
    if (end == headers.size()) break;
  }
  return false;
}

bool is_builtin_path(const std::string& path) {
  return path == "/metrics" || path == "/metrics.json" ||
         path == "/healthz" || path == "/progress";
}

}  // namespace

HttpEndpoint::HttpEndpoint(HttpEndpointConfig config)
    : config_(std::move(config)) {
  if (config_.registry == nullptr) config_.registry = &Registry::global();
  if (config_.io_timeout_seconds <= 0.0) config_.io_timeout_seconds = 5.0;
  if (config_.max_request_bytes == 0) config_.max_request_bytes = 1u << 20;
}

HttpEndpoint::~HttpEndpoint() { stop(); }

void HttpEndpoint::start() {
  if (thread_.joinable()) {
    throw std::logic_error("obs::HttpEndpoint: already started");
  }
  // Belt and braces with send_all's MSG_NOSIGNAL: MSG_NOSIGNAL only
  // covers ::send calls (and is 0 where the platform lacks it), while a
  // default SIGPIPE disposition turns any stray write to a dead peer
  // into process death. Idempotent, and an application-installed handler
  // is left alone.
  util::ignore_sigpipe();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  set_cloexec(listen_fd_);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int saved = errno;
    close_fd(listen_fd_);
    errno = saved;
    throw_errno("bind 127.0.0.1:" + std::to_string(config_.port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int saved = errno;
    close_fd(listen_fd_);
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const int saved = errno;
    close_fd(listen_fd_);
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  if (::pipe(wake_pipe_) != 0) {
    const int saved = errno;
    close_fd(listen_fd_);
    errno = saved;
    throw_errno("pipe");
  }
  set_cloexec(wake_pipe_[0]);
  set_cloexec(wake_pipe_[1]);
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
}

void HttpEndpoint::stop() {
  if (!thread_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  const char wake = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &wake, 1);
  thread_.join();
  close_fd(listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
  port_ = 0;
}

void HttpEndpoint::serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, 500);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;  // timeout or EINTR: re-check the flag
    if ((fds[0].revents & POLLIN) != 0) {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn >= 0) {
        // CLOEXEC before handling: a worker forked while this connection
        // is open would otherwise inherit the socket and hold it — the
        // client then sees EOF only when the worker exits, not when the
        // response is done.
        set_cloexec(conn);
        handle_connection(conn);
        ::close(conn);
      }
    }
  }
}

void HttpEndpoint::handle_connection(int fd) {
  const ConnBudget budget(config_.io_timeout_seconds);
  const auto started = std::chrono::steady_clock::now();

  // Read the header block. Bytes past "\r\n\r\n" belong to the body and
  // are kept. The whole block is capped: a client pumping unbounded
  // headers gets 413, a client trickling them runs out the budget.
  std::string data;
  std::size_t header_end = std::string::npos;
  char buffer[4096];
  while (true) {
    header_end = data.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (data.size() > config_.max_request_bytes) {
      send_all(fd, render_response(
                       text_response(413, "request header block too large\n")),
               budget);
      return;
    }
    const ssize_t n = recv_some(fd, buffer, sizeof(buffer), budget);
    if (n < 0 && budget.expired()) {
      // Slowloris guard: the connection ran out its wall budget before
      // producing a complete request. 408 is best-effort — the client
      // may well be gone.
      send_all(fd, render_response(text_response(408, "request timeout\n")),
               budget);
      return;
    }
    if (n <= 0) return;  // peer closed or errored mid-request: drop
    data.append(buffer, static_cast<std::size_t>(n));
  }

  const std::size_t line_end = data.find("\r\n");
  if (line_end == std::string::npos || line_end > header_end) return;
  const std::string line = data.substr(0, line_end);
  const std::string header_block =
      data.substr(line_end + 2, header_end - line_end - 2);

  const std::size_t method_end = line.find(' ');
  const std::size_t target_end =
      method_end == std::string::npos ? std::string::npos
                                      : line.find(' ', method_end + 1);
  if (target_end == std::string::npos) {
    send_all(fd, render_response(text_response(400, "bad request\n")),
             budget);
    return;
  }

  HttpRequest request;
  request.method = line.substr(0, method_end);
  std::string target =
      line.substr(method_end + 1, target_end - method_end - 1);
  const std::size_t query = target.find('?');
  if (query != std::string::npos) {
    request.query = target.substr(query + 1);
    target.resize(query);
  }
  request.path = target;

  // Body: exactly Content-Length bytes, capped. "Expect: 100-continue"
  // clients are told to proceed (otherwise they stall for their own
  // timeout before sending the body).
  std::size_t content_length = 0;
  std::string header_value;
  if (find_header(header_block, "Content-Length", &header_value)) {
    char* parse_end = nullptr;
    const unsigned long long parsed =
        std::strtoull(header_value.c_str(), &parse_end, 10);
    if (parse_end == header_value.c_str() || *parse_end != '\0') {
      send_all(fd, render_response(text_response(400, "bad Content-Length\n")),
               budget);
      return;
    }
    content_length = static_cast<std::size_t>(parsed);
  }
  if (content_length > config_.max_request_bytes) {
    send_all(fd,
             render_response(text_response(
                 413, "request body exceeds " +
                          std::to_string(config_.max_request_bytes) +
                          " bytes\n")),
             budget);
    return;
  }
  if (find_header(header_block, "Expect", &header_value) &&
      iequals(header_value, "100-continue")) {
    send_all(fd, "HTTP/1.1 100 Continue\r\n\r\n", budget);
  }
  request.body = data.substr(header_end + 4);
  while (request.body.size() < content_length) {
    const ssize_t n = recv_some(fd, buffer, sizeof(buffer), budget);
    if (n <= 0) return;  // torn body within budget: nothing to salvage
    request.body.append(buffer, static_cast<std::size_t>(n));
  }
  request.body.resize(content_length);  // ignore pipelined extra bytes

  requests_.fetch_add(1, std::memory_order_relaxed);
  static const MetricId requests_counter =
      Registry::global().counter("obs.http_requests");
  Registry::global().add(requests_counter);

  HttpResponse response;
  try {
    const bool builtin = is_builtin_path(request.path);
    if (builtin && request.method == "GET") {
      if (request.path == "/metrics") {
        response.content_type = "text/plain; version=0.0.4; charset=utf-8";
        response.body = to_prometheus(config_.registry->scrape());
      } else if (request.path == "/metrics.json") {
        response.body = config_.registry->scrape().to_json();
      } else if (request.path == "/healthz") {
        response.content_type = "text/plain";
        response.body = "ok\n";
      } else {  // /progress
        response.body =
            config_.progress ? config_.progress() : std::string("{}\n");
      }
    } else if (config_.handler && config_.handler(request, response)) {
      // handled by the application routes
    } else if (builtin) {
      response = text_response(405, "only GET is supported\n");
    } else {
      response = text_response(404, "unknown path\n");
    }
  } catch (const std::exception& error) {
    // A scrape/progress/handler failure must not kill the serve thread.
    log_error("obs", "http request failed",
              {{"path", request.path}, {"what", error.what()}});
    response = text_response(500, "request failed\n");
  }
  send_all(fd, render_response(response), budget);

  static const MetricId latency = Registry::global().histogram(
      "obs.http_request_seconds", 0.0, 2.0, 40);
  Registry::global().observe(
      latency, std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - started)
                   .count());
}

}  // namespace fixedpart::obs

#endif  // FIXEDPART_OBS_ENABLED
