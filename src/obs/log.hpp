#pragma once
// Leveled structured logging (docs/OBSERVABILITY.md): one JSON object per
// line, so fleet logs are greppable/jq-able next to the JSONL manifests
// and journals the svc layer already emits. Each line carries the level,
// the subsystem, a wall-clock timestamp ("ts_ms", system_clock epoch
// milliseconds, for correlation with the outside world) and a monotonic
// timestamp ("mono_ms", steady_clock milliseconds since logger creation,
// for durations — a wall-clock step cannot reorder lines), the message,
// and any number of typed key=value fields.
//
// Lines at or above the sink level are written to the sink (stderr by
// default, or an append-mode file) immediately. Every line — including
// suppressed ones — also lands in a fixed-size in-memory ring; a kFatal
// write (or an explicit flush_ring(), e.g. from a SIGTERM drain path)
// dumps the suppressed context lines and fsyncs the sink, so the last
// kRingCapacity lines survive a crash that manages to log at all.
//
// Logging is mutex-serialized — it is for job boundaries and operator
// events, not for per-move hot paths (use obs::Registry there). Under
// FIXEDPART_OBS=OFF every member compiles to an empty inline stub.

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.hpp"  // FIXEDPART_OBS_ENABLED / kEnabled

namespace fixedpart::obs {

enum class LogLevel : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kFatal = 4,
};

const char* to_string(LogLevel level);
/// "debug"/"info"/"warn"/"error"/"fatal" -> level; anything else kInfo.
LogLevel log_level_from_string(const std::string& text);

/// One typed key=value attachment. Keys must be plain identifiers (they
/// are emitted as JSON keys after escaping); values are escaped strings,
/// integers, doubles, or booleans.
struct LogField {
  enum class Kind : std::uint8_t { kString, kInt, kDouble, kBool };

  LogField(const char* k, const std::string& v)
      : key(k), kind(Kind::kString), str(v) {}
  LogField(const char* k, const char* v)
      : key(k), kind(Kind::kString), str(v) {}
  LogField(const char* k, std::int64_t v)
      : key(k), kind(Kind::kInt), int_value(v) {}
  LogField(const char* k, int v)
      : key(k), kind(Kind::kInt), int_value(v) {}
  LogField(const char* k, double v)
      : key(k), kind(Kind::kDouble), double_value(v) {}
  LogField(const char* k, bool v)
      : key(k), kind(Kind::kBool), bool_value(v) {}

  const char* key;
  Kind kind;
  std::string str;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
};

#if FIXEDPART_OBS_ENABLED

class Log {
 public:
  static constexpr std::size_t kRingCapacity = 256;

  Log();
  ~Log();
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  /// The process-wide logger the log_*() helpers write to.
  static Log& global();

  /// Lines below this level skip the sink (but still enter the ring).
  void set_min_level(LogLevel level);
  LogLevel min_level() const;

  /// Redirects the sink to an append-mode file (throws std::runtime_error
  /// on open failure) or back to stderr. Flushes the old sink first.
  void set_sink_path(const std::string& path);
  void set_sink_stderr();

  /// Formats and emits one line. kFatal implies flush_ring() + flush().
  void write(LogLevel level, const char* subsystem, const std::string& msg,
             std::initializer_list<LogField> fields = {});

  /// fflush + best-effort fsync of the sink.
  void flush();
  /// Writes every ring line not yet on the sink (i.e. suppressed by the
  /// level filter), oldest first, then flush(). Crash/drain path.
  void flush_ring();

  /// The ring contents, oldest first (test hook; takes the lock).
  std::vector<std::string> ring_lines() const;
  std::uint64_t lines_written() const;

 private:
  struct RingEntry {
    std::string line;
    bool on_sink = false;
  };

  void emit_locked(const std::string& line);

  mutable std::mutex mu_;
  LogLevel min_level_ = LogLevel::kInfo;
  std::FILE* sink_ = nullptr;  ///< nullptr = stderr
  std::string sink_path_;
  std::vector<RingEntry> ring_;
  std::size_t ring_next_ = 0;
  std::uint64_t lines_written_ = 0;
  const std::int64_t epoch_steady_ns_;
};

#else  // FIXEDPART_OBS_ENABLED == 0: logging compiles away entirely.

class Log {
 public:
  static constexpr std::size_t kRingCapacity = 0;

  Log() = default;
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  static Log& global() {
    static Log log;
    return log;
  }

  void set_min_level(LogLevel) {}
  LogLevel min_level() const { return LogLevel::kInfo; }
  void set_sink_path(const std::string&) {}
  void set_sink_stderr() {}
  void write(LogLevel, const char*, const std::string&,
             std::initializer_list<LogField> = {}) {}
  void flush() {}
  void flush_ring() {}
  std::vector<std::string> ring_lines() const { return {}; }
  std::uint64_t lines_written() const { return 0; }
};

#endif

// Convenience wrappers over Log::global().
inline void log_debug(const char* subsystem, const std::string& msg,
                      std::initializer_list<LogField> fields = {}) {
  Log::global().write(LogLevel::kDebug, subsystem, msg, fields);
}
inline void log_info(const char* subsystem, const std::string& msg,
                     std::initializer_list<LogField> fields = {}) {
  Log::global().write(LogLevel::kInfo, subsystem, msg, fields);
}
inline void log_warn(const char* subsystem, const std::string& msg,
                     std::initializer_list<LogField> fields = {}) {
  Log::global().write(LogLevel::kWarn, subsystem, msg, fields);
}
inline void log_error(const char* subsystem, const std::string& msg,
                      std::initializer_list<LogField> fields = {}) {
  Log::global().write(LogLevel::kError, subsystem, msg, fields);
}
inline void log_fatal(const char* subsystem, const std::string& msg,
                      std::initializer_list<LogField> fields = {}) {
  Log::global().write(LogLevel::kFatal, subsystem, msg, fields);
}

}  // namespace fixedpart::obs
