#pragma once
// Prometheus text exposition format 0.0.4 rendering of an obs::Snapshot,
// the live sibling of Snapshot::to_json (docs/OBSERVABILITY.md). Pure
// functions over an already-scraped snapshot — no registry access, so
// they are available (and return an empty page) under FIXEDPART_OBS=OFF.
//
// Mapping:
//  * metric names are sanitized to the Prometheus grammar
//    [a-zA-Z_:][a-zA-Z0-9_:]* ('.' and every other invalid byte -> '_');
//  * names built with obs::labeled() ("family{key=\"value\"}") are split
//    back into family + label set and emitted as one grouped family;
//  * counters  -> `# TYPE f counter`,   one sample per member;
//  * gauges    -> `# TYPE f gauge`,     one sample per member;
//  * histograms-> `# TYPE f histogram`, cumulative `f_bucket{le="..."}`
//    series per bin edge plus `le="+Inf"`, then `f_sum` and `f_count`.
//    The top bin also holds clamped out-of-range observations, so its
//    upper edge is rendered only as "+Inf" (never as a finite `le` that
//    would under-promise what the bucket contains).

#include <string>

#include "obs/registry.hpp"

namespace fixedpart::obs {

/// Renders the whole snapshot as a /metrics page (trailing newline
/// included; empty snapshot renders an empty string).
std::string to_prometheus(const Snapshot& snapshot);

/// Sanitizes one metric (or label-family) base name to the Prometheus
/// name grammar. Exposed for tests.
std::string prometheus_name(const std::string& name);

}  // namespace fixedpart::obs
