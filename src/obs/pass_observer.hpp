#pragma once
// Profiling hook interface for the FM engines (docs/OBSERVABILITY.md).
//
// The paper's Table II/III evidence is *pass-level*: moves per pass, the
// best prefix actually kept, where in the pass the gains concentrate.
// Instead of baking those statistics into src/part/fm.cpp, the engine
// invokes an optional PassObserver per pass begin / move / pass end, and
// the statistics become a thin observer (src/experiments/
// pass_experiments.cpp). Set FmConfig::observer / KwayConfig::observer to
// attach one; the default (nullptr) costs a single branch per event, and
// under FIXEDPART_OBS=OFF the call sites compile away entirely via
// `if constexpr (obs::kEnabled)`.
//
// Events fire on the refinement hot path — implementations must be cheap
// and must NOT mutate the partition state or re-enter the refiner.
// Callbacks always see the physical move/rollback sequence the engine
// actually performed, so an observer can reproduce PassRecord-derived
// statistics bit-identically (tests/test_obs.cpp holds that differential).

#include <cstdint>

#include "hg/types.hpp"

namespace fixedpart::obs {

/// Pass start, after bucket population and before the first move.
struct PassBegin {
  int pass = 0;  ///< 0-based pass index within this refine() call
  std::int32_t movable = 0;  ///< movable (non-fixed) vertices
  /// Movable vertices touching a cut net at pass start (-1 when the
  /// engine does not track a boundary, e.g. k-way).
  std::int32_t boundary_vertices = -1;
  hg::Weight cut = 0;  ///< cut at pass start
};

/// One accepted move, immediately after the engine applied it.
struct MoveEvent {
  int pass = 0;
  std::int32_t move_index = 0;  ///< 0-based within the pass
  hg::VertexId vertex = hg::kNoVertex;
  hg::PartitionId from = hg::kNoPartition;
  hg::PartitionId to = hg::kNoPartition;
  hg::Weight gain = 0;  ///< cut delta of this move (positive improves)
  hg::Weight cut = 0;   ///< cut after the move
};

/// Pass end, after rollback to the best prefix.
struct PassEnd {
  int pass = 0;
  std::int32_t moves_performed = 0;  ///< moves made before pass end/cutoff
  std::int32_t best_prefix = 0;      ///< moves kept after rollback
  hg::Weight cut_before = 0;         ///< cut at pass start
  hg::Weight cut_best = 0;           ///< cut after rollback
};

/// Callback interface the FM engines drive. Default implementations are
/// no-ops so observers override only what they need.
class PassObserver {
 public:
  virtual ~PassObserver() = default;

  virtual void on_pass_begin(const PassBegin&) {}
  virtual void on_move(const MoveEvent&) {}
  virtual void on_pass_end(const PassEnd&) {}
};

}  // namespace fixedpart::obs
