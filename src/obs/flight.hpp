#pragma once
// Always-on flight recorder (docs/ROBUSTNESS.md "Flight recorder").
//
// A fixed-size ring of the most recent spans and log events, built from
// lock-free thread-local shards like obs::Registry: each thread owns one
// shard and is its only writer; entry fields are individual atomics with
// a publish stamp, so readers (the dump paths, /debug/flight, a fatal
// signal handler) can walk every shard without taking a lock and without
// data races under TSan. A torn read across a ring-wraparound rewrite is
// detected by re-checking the stamp and the entry is skipped.
//
// Name/message pointers stored in entries are string literals or
// obs::intern_name pointers — immortal, so a dump never dereferences
// freed memory even from a signal handler.
//
// Dumps: dump() writes <dir>/<reason>-<job>.json atomically (watchdog
// fire, worker crash/hang classification); arm_signal_dump() installs
// fatal-signal handlers (SEGV/ABRT/BUS/ILL/FPE) that write a best-effort
// <dir>/fatal-sig<N>-<pid>.json using only write(2)-level I/O, then
// re-raise for the default action.
//
// Each shard additionally tracks its stack of *open* spans (pushed by
// ScopedSpan construction), which is what current_phase() scans so
// /progress can say where a running job is stuck right now.
//
// Under FIXEDPART_OBS=OFF everything compiles to inline no-op stubs.

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/registry.hpp"  // FIXEDPART_OBS_ENABLED / kEnabled

namespace fixedpart::obs {

/// The deepest currently-open span attributed to a trace id.
struct FlightPhase {
  std::string name;
  double seconds = 0.0;  ///< time since the span opened
  bool found = false;
};

#if FIXEDPART_OBS_ENABLED

class FlightRecorder {
 public:
  static constexpr std::size_t kShardEntries = 512;
  static constexpr std::size_t kOpenDepth = 16;

  /// The process-wide recorder (immortal: never destroyed, so late
  /// threads and signal handlers can always reach it).
  static FlightRecorder& global();

  /// Appends a completed span to the calling thread's shard.
  void record_span(const char* name, std::uint64_t trace_id,
                   std::int64_t start_ns, std::int64_t dur_ns);
  /// Appends a log event (message is interned; level/subsystem must be
  /// literals). Hooked from obs::Log::write.
  void record_event(const char* level, const char* subsystem,
                    const std::string& message);

  /// Open-span stack maintenance (ScopedSpan ctor/dtor).
  void push_open(const char* name, std::uint64_t trace_id,
                 std::int64_t start_ns);
  void pop_open();

  /// Scans every shard's open-span stack for the most recently opened
  /// span with this trace id.
  FlightPhase current_phase(std::uint64_t trace_id) const;

  /// {"entries": [...], "recorded": N, "retained": M} — entries sorted
  /// by publish order, oldest first.
  std::string to_json() const;

  /// Atomically writes <dir>/<reason>-<job>.json with a header naming
  /// the reason/job/phase plus to_json(). Creates <dir> if needed.
  /// Returns the path written, or "" on failure (best-effort: a failed
  /// dump never takes down the server).
  std::string dump(const std::string& dir, const std::string& reason,
                   const std::string& job_id, const std::string& phase) const;

  /// Installs fatal-signal handlers that dump into `dir` and re-raise.
  /// Call once at process start (partitiond / fixedpart-worker).
  void arm_signal_dump(const std::string& dir);

 private:
  FlightRecorder() = default;
  struct Shard;
  Shard& local_shard();
  friend void flight_signal_handler_entry(int);

  std::atomic<Shard*> head_{nullptr};  ///< signal-safe shard list
};

#else  // FIXEDPART_OBS_ENABLED == 0

class FlightRecorder {
 public:
  static constexpr std::size_t kShardEntries = 0;
  static constexpr std::size_t kOpenDepth = 0;

  static FlightRecorder& global() {
    static FlightRecorder recorder;
    return recorder;
  }

  void record_span(const char*, std::uint64_t, std::int64_t, std::int64_t) {}
  void record_event(const char*, const char*, const std::string&) {}
  void push_open(const char*, std::uint64_t, std::int64_t) {}
  void pop_open() {}
  FlightPhase current_phase(std::uint64_t) const { return {}; }
  std::string to_json() const {
    return "{\"entries\": [], \"recorded\": 0, \"retained\": 0}";
  }
  std::string dump(const std::string&, const std::string&, const std::string&,
                   const std::string&) const {
    return "";
  }
  void arm_signal_dump(const std::string&) {}
};


#endif

}  // namespace fixedpart::obs
