#include "obs/trace.hpp"

#include <cstdio>
#include <sstream>

#include "util/atomic_file.hpp"

namespace fixedpart::obs {

#if FIXEDPART_OBS_ENABLED

namespace {

std::string json_escape(const char* text) {
  std::string out;
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

/// Microseconds with sub-microsecond fraction: chrome://tracing's "ts" and
/// "dur" are in us; many spans here are shorter than one.
std::string format_us(std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns < 0 ? 0 : ns % 1000));
  return buf;
}

std::string format_arg(const TraceArg& arg) {
  if (arg.is_int) return std::to_string(arg.int_value);
  std::ostringstream out;
  out.precision(6);
  out << arg.double_value;
  return out.str();
}

std::uint32_t local_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::start() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ = Clock::now();
  active_.store(true, std::memory_order_release);
}

void Tracer::stop() { active_.store(false, std::memory_order_release); }

void Tracer::record(const TraceEvent& event) {
  if (!active()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(event);
  events_.back().tid = event.tid != 0 ? event.tid : local_thread_id();
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string Tracer::to_json() const {
  const std::vector<TraceEvent> events = this->events();
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "{\"name\": \"" << json_escape(e.name)
        << "\", \"cat\": \"fixedpart\", \"ph\": \"X\", \"ts\": "
        << format_us(e.start_ns) << ", \"dur\": " << format_us(e.dur_ns)
        << ", \"pid\": 1, \"tid\": " << e.tid;
    if (e.num_args > 0) {
      out << ", \"args\": {";
      for (std::uint32_t a = 0; a < e.num_args; ++a) {
        out << (a == 0 ? "" : ", ") << "\"" << json_escape(e.args[a].key)
            << "\": " << format_arg(e.args[a]);
      }
      out << "}";
    }
    out << "}";
  }
  out << (events.empty() ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

void Tracer::write_json(const std::string& path) const {
  util::write_file_atomic(path, to_json());
}

#else

void Tracer::write_json(const std::string& path) const {
  util::write_file_atomic(path, to_json());
}

#endif  // FIXEDPART_OBS_ENABLED

}  // namespace fixedpart::obs
