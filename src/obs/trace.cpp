#include "obs/trace.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <unordered_set>

#include "obs/flight.hpp"
#include "util/atomic_file.hpp"

namespace fixedpart::obs {

namespace {

std::string json_escape(const char* text) {
  std::string out;
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

/// Microseconds with sub-microsecond fraction: chrome://tracing's "ts" and
/// "dur" are in us; many spans here are shorter than one.
std::string format_us(std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns < 0 ? 0 : ns % 1000));
  return buf;
}

std::string format_arg(const TraceArg& arg) {
  if (arg.is_int) return std::to_string(arg.int_value);
  std::ostringstream out;
  out.precision(6);
  out << arg.double_value;
  return out.str();
}

}  // namespace

std::string trace_events_to_json(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "{\"name\": \"" << json_escape(e.name)
        << "\", \"cat\": \"fixedpart\", \"ph\": \"X\", \"ts\": "
        << format_us(e.start_ns) << ", \"dur\": " << format_us(e.dur_ns)
        << ", \"pid\": " << (e.pid != 0 ? e.pid : 1u)
        << ", \"tid\": " << e.tid;
    if (e.num_args > 0) {
      out << ", \"args\": {";
      for (std::uint32_t a = 0; a < e.num_args && a < e.args.size(); ++a) {
        out << (a == 0 ? "" : ", ") << "\"" << json_escape(e.args[a].key)
            << "\": " << format_arg(e.args[a]);
      }
      out << "}";
    }
    out << "}";
  }
  out << (events.empty() ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

std::uint64_t trace_id_for(const std::string& job_id) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : job_id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

PhaseBreakdown phase_breakdown(const std::vector<TraceEvent>& events) {
  PhaseBreakdown out;
  for (const TraceEvent& e : events) {
    if (e.name == nullptr) continue;
    // Worker-decoded names are interned copies: compare by content.
    if (std::strcmp(e.name, "ml.coarsen_level") == 0) {
      out.coarsen_seconds += static_cast<double>(e.dur_ns) / 1e9;
    } else if (std::strcmp(e.name, "ml.initial") == 0) {
      out.initial_seconds += static_cast<double>(e.dur_ns) / 1e9;
    } else if (std::strcmp(e.name, "ml.refine_level") == 0) {
      out.refine_seconds += static_cast<double>(e.dur_ns) / 1e9;
    }
  }
  return out;
}

#if FIXEDPART_OBS_ENABLED

namespace {

using Clock = std::chrono::steady_clock;
static_assert(Clock::is_steady, "trace timestamps must be jump-immune");

std::uint32_t local_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

MetricId dropped_metric() {
  static const MetricId id = Registry::global().counter("obs.trace.dropped");
  return id;
}

thread_local TraceContext t_context;

}  // namespace

std::int64_t trace_now_ns() {
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

std::uint32_t trace_local_tid() { return local_thread_id(); }

const char* intern_name(const std::string& name) {
  static std::mutex mu;
  // node-based: element addresses (and so c_str()) are stable forever.
  static std::unordered_set<std::string>* pool =
      new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = pool->find(name);
  if (it != pool->end()) return it->c_str();
  if (pool->size() >= kMaxInternedNames) return "trace.name_overflow";
  return pool->insert(name).first->c_str();
}

void SpanBuffer::record(TraceEvent event) {
  if (event.tid == 0) event.tid = local_thread_id();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    Registry::global().add(dropped_metric());
    return;
  }
  events_.push_back(event);
}

std::vector<TraceEvent> SpanBuffer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<TraceEvent> SpanBuffer::drain() {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.swap(events_);
  return out;
}

std::size_t SpanBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void SpanBuffer::add_remote_dropped(std::uint64_t count) {
  if (count == 0) return;
  dropped_.fetch_add(count, std::memory_order_relaxed);
  Registry::global().add(dropped_metric(), static_cast<std::int64_t>(count));
}

ScopedTraceContext::ScopedTraceContext(std::uint64_t trace_id,
                                       SpanBuffer* buffer)
    : prev_(t_context) {
  t_context = TraceContext{trace_id, buffer};
}

ScopedTraceContext::~ScopedTraceContext() { t_context = prev_; }

TraceContext ScopedTraceContext::current() { return t_context; }

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::start() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  epoch_offset_ns_.store(trace_now_ns(), std::memory_order_relaxed);
  active_.store(true, std::memory_order_release);
}

void Tracer::stop() { active_.store(false, std::memory_order_release); }

void Tracer::record(const TraceEvent& event) {
  if (!active()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    Registry::global().add(dropped_metric());
    return;
  }
  events_.push_back(event);
  TraceEvent& back = events_.back();
  back.start_ns -= epoch_offset_ns_.load(std::memory_order_relaxed);
  back.tid = event.tid != 0 ? event.tid : local_thread_id();
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string Tracer::to_json() const { return trace_events_to_json(events()); }

void Tracer::write_json(const std::string& path) const {
  util::write_file_atomic(path, to_json());
}

ScopedSpan::ScopedSpan(const char* name)
    : name_(name != nullptr ? name : ""), start_ns_(trace_now_ns()) {
  trace_id_ = t_context.trace_id;
  FlightRecorder::global().push_open(name_, trace_id_, start_ns_);
}

ScopedSpan::ScopedSpan(const std::string& name)
    : ScopedSpan(intern_name(name)) {}

ScopedSpan::~ScopedSpan() {
  FlightRecorder::global().pop_open();
  TraceEvent event;
  event.name = name_;
  event.tid = local_thread_id();
  event.trace_id = trace_id_;
  event.start_ns = start_ns_;
  event.dur_ns = trace_now_ns() - start_ns_;
  event.args = args_;
  event.num_args = num_args_;
  const TraceContext& ctx = t_context;
  if (ctx.buffer != nullptr) ctx.buffer->record(event);
  Tracer::global().record(event);
  FlightRecorder::global().record_span(name_, trace_id_, start_ns_,
                                       event.dur_ns);
}

#else

void Tracer::write_json(const std::string& path) const {
  util::write_file_atomic(path, to_json());
}

#endif  // FIXEDPART_OBS_ENABLED

}  // namespace fixedpart::obs
