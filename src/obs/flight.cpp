#include "obs/flight.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <vector>

#ifdef __unix__
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

#include "obs/trace.hpp"
#include "util/atomic_file.hpp"

namespace fixedpart::obs {

#if FIXEDPART_OBS_ENABLED

namespace {

/// Global publish order across all shards; 0 marks an empty/torn entry.
std::atomic<std::uint64_t> g_stamp{1};

std::string json_escape(const char* text) {
  std::string out;
  for (const char* p = text; p != nullptr && *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

std::string format_us(std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns < 0 ? 0 : ns % 1000));
  return buf;
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace

struct FlightRecorder::Shard {
  struct Entry {
    std::atomic<std::uint64_t> stamp{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> level{nullptr};      ///< nullptr for spans
    std::atomic<const char*> subsystem{nullptr};  ///< nullptr for spans
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<std::int64_t> dur_ns{0};
  };
  struct OpenSlot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::int64_t> start_ns{0};
  };

  std::atomic<std::uint64_t> next{0};  ///< total writes; ring index mod cap
  Entry entries[kShardEntries];
  std::atomic<std::uint32_t> open_depth{0};
  OpenSlot open[kOpenDepth];
  std::uint32_t tid = 0;
  Shard* next_shard = nullptr;  ///< linked before head_ publish, then const

  void write(const char* name, const char* level, const char* subsystem,
             std::uint64_t trace_id, std::int64_t start_ns,
             std::int64_t dur_ns) {
    const std::uint64_t slot = next.fetch_add(1, std::memory_order_relaxed);
    Entry& e = entries[slot % kShardEntries];
    // Invalidate while rewriting so a concurrent reader skips the entry
    // instead of seeing half-old, half-new fields.
    e.stamp.store(0, std::memory_order_release);
    e.name.store(name, std::memory_order_relaxed);
    e.level.store(level, std::memory_order_relaxed);
    e.subsystem.store(subsystem, std::memory_order_relaxed);
    e.trace_id.store(trace_id, std::memory_order_relaxed);
    e.start_ns.store(start_ns, std::memory_order_relaxed);
    e.dur_ns.store(dur_ns, std::memory_order_relaxed);
    e.stamp.store(g_stamp.fetch_add(1, std::memory_order_relaxed),
                  std::memory_order_release);
  }
};

FlightRecorder& FlightRecorder::global() {
  // Intentionally immortal (never destroyed): shards stay reachable for
  // signal handlers and for threads that outlive static destruction.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::Shard& FlightRecorder::local_shard() {
  thread_local Shard* shard = nullptr;
  if (shard == nullptr) {
    shard = new Shard();  // owned by the recorder's list, never freed
    shard->tid = trace_local_tid();
    Shard* head = head_.load(std::memory_order_relaxed);
    do {
      shard->next_shard = head;
    } while (!head_.compare_exchange_weak(head, shard,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
  }
  return *shard;
}

void FlightRecorder::record_span(const char* name, std::uint64_t trace_id,
                                 std::int64_t start_ns, std::int64_t dur_ns) {
  local_shard().write(name, nullptr, nullptr, trace_id, start_ns, dur_ns);
}

void FlightRecorder::record_event(const char* level, const char* subsystem,
                                  const std::string& message) {
  local_shard().write(intern_name(message), level,
                      subsystem != nullptr ? subsystem : "", 0,
                      trace_now_ns(), 0);
}

void FlightRecorder::push_open(const char* name, std::uint64_t trace_id,
                               std::int64_t start_ns) {
  Shard& shard = local_shard();
  const std::uint32_t depth = shard.open_depth.load(std::memory_order_relaxed);
  if (depth < kOpenDepth) {
    Shard::OpenSlot& slot = shard.open[depth];
    slot.name.store(name, std::memory_order_relaxed);
    slot.trace_id.store(trace_id, std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
  }
  shard.open_depth.store(depth + 1, std::memory_order_release);
}

void FlightRecorder::pop_open() {
  Shard& shard = local_shard();
  const std::uint32_t depth = shard.open_depth.load(std::memory_order_relaxed);
  if (depth > 0) {
    shard.open_depth.store(depth - 1, std::memory_order_release);
  }
}

FlightPhase FlightRecorder::current_phase(std::uint64_t trace_id) const {
  FlightPhase best;
  std::int64_t best_start = 0;
  for (const Shard* shard = head_.load(std::memory_order_acquire);
       shard != nullptr; shard = shard->next_shard) {
    const std::uint32_t depth =
        std::min<std::uint32_t>(shard->open_depth.load(
                                    std::memory_order_acquire),
                                kOpenDepth);
    for (std::uint32_t i = 0; i < depth; ++i) {
      const Shard::OpenSlot& slot = shard->open[i];
      if (slot.trace_id.load(std::memory_order_acquire) != trace_id) continue;
      const char* name = slot.name.load(std::memory_order_acquire);
      const std::int64_t start = slot.start_ns.load(std::memory_order_acquire);
      if (name == nullptr) continue;
      if (!best.found || start >= best_start) {
        best.name = name;
        best_start = start;
        best.found = true;
      }
    }
  }
  if (best.found) {
    best.seconds =
        static_cast<double>(trace_now_ns() - best_start) / 1e9;
    if (best.seconds < 0) best.seconds = 0;
  }
  return best;
}

std::string FlightRecorder::to_json() const {
  struct Row {
    std::uint64_t stamp;
    const char* name;
    const char* level;
    const char* subsystem;
    std::uint64_t trace_id;
    std::int64_t start_ns;
    std::int64_t dur_ns;
    std::uint32_t tid;
  };
  std::vector<Row> rows;
  std::uint64_t recorded = 0;
  for (const Shard* shard = head_.load(std::memory_order_acquire);
       shard != nullptr; shard = shard->next_shard) {
    recorded += shard->next.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kShardEntries; ++i) {
      const Shard::Entry& e = shard->entries[i];
      const std::uint64_t s1 = e.stamp.load(std::memory_order_acquire);
      if (s1 == 0) continue;
      Row row;
      row.stamp = s1;
      row.name = e.name.load(std::memory_order_acquire);
      row.level = e.level.load(std::memory_order_acquire);
      row.subsystem = e.subsystem.load(std::memory_order_acquire);
      row.trace_id = e.trace_id.load(std::memory_order_acquire);
      row.start_ns = e.start_ns.load(std::memory_order_acquire);
      row.dur_ns = e.dur_ns.load(std::memory_order_acquire);
      row.tid = shard->tid;
      // Skip entries rewritten underneath us (ring wraparound).
      if (e.stamp.load(std::memory_order_acquire) != s1) continue;
      if (row.name == nullptr) continue;
      rows.push_back(row);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.stamp < b.stamp; });

  std::string out = "{\"entries\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out += i == 0 ? "\n" : ",\n";
    if (r.level == nullptr) {
      out += "{\"kind\": \"span\", \"name\": \"" + json_escape(r.name) +
             "\", \"trace\": \"" + hex64(r.trace_id) + "\", \"tid\": " +
             std::to_string(r.tid) + ", \"ts_us\": " + format_us(r.start_ns) +
             ", \"dur_us\": " + format_us(r.dur_ns) + "}";
    } else {
      out += "{\"kind\": \"log\", \"level\": \"" + json_escape(r.level) +
             "\", \"sub\": \"" + json_escape(r.subsystem) + "\", \"msg\": \"" +
             json_escape(r.name) + "\", \"tid\": " + std::to_string(r.tid) +
             ", \"ts_us\": " + format_us(r.start_ns) + "}";
    }
  }
  out += rows.empty() ? "" : "\n";
  out += "], \"recorded\": " + std::to_string(recorded) +
         ", \"retained\": " + std::to_string(rows.size()) + "}";
  return out;
}

std::string FlightRecorder::dump(const std::string& dir,
                                 const std::string& reason,
                                 const std::string& job_id,
                                 const std::string& phase) const {
  try {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::string body = "{\"reason\": \"" + json_escape(reason.c_str()) +
                       "\", \"job\": \"" + json_escape(job_id.c_str()) +
                       "\", \"phase\": \"" + json_escape(phase.c_str()) +
                       "\", \"pid\": ";
#ifdef __unix__
    body += std::to_string(static_cast<long long>(::getpid()));
#else
    body += "0";
#endif
    body += ", \"flight\": " + to_json() + "}\n";
    const std::string path = dir + "/" + reason + "-" +
                             (job_id.empty() ? "unknown" : job_id) + ".json";
    util::write_file_atomic(path, body);
    return path;
  } catch (...) {
    return "";
  }
}

#ifdef __unix__

namespace {

char g_signal_dir[512] = {0};

void signal_write(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ::ssize_t n = ::write(fd, data + off, size - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

/// Copies `src` into `dst`, replacing JSON-breaking bytes: interned
/// worker-supplied names may contain anything, and a signal handler
/// cannot heap-allocate an escaped copy.
void signal_sanitize(char* dst, std::size_t cap, const char* src) {
  std::size_t i = 0;
  for (; src != nullptr && src[i] != '\0' && i + 1 < cap; ++i) {
    const char c = src[i];
    dst[i] =
        (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) ? '_'
                                                                        : c;
  }
  dst[i] = '\0';
}

}  // namespace

void flight_signal_handler_entry(int sig) {
  char path[640];
  std::snprintf(path, sizeof path, "%s/fatal-sig%d-%d.json", g_signal_dir,
                sig, static_cast<int>(::getpid()));
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    char buf[512];
    int n = std::snprintf(buf, sizeof buf,
                          "{\"reason\": \"fatal-sig%d\", \"pid\": %d, "
                          "\"entries\": [",
                          sig, static_cast<int>(::getpid()));
    signal_write(fd, buf, static_cast<std::size_t>(n));
    bool first = true;
    FlightRecorder& recorder = FlightRecorder::global();
    for (const FlightRecorder::Shard* shard =
             recorder.head_.load(std::memory_order_acquire);
         shard != nullptr; shard = shard->next_shard) {
      for (std::size_t i = 0; i < FlightRecorder::kShardEntries; ++i) {
        const auto& e = shard->entries[i];
        if (e.stamp.load(std::memory_order_acquire) == 0) continue;
        char name[128];
        signal_sanitize(name, sizeof name,
                        e.name.load(std::memory_order_acquire));
        const char* level = e.level.load(std::memory_order_acquire);
        n = std::snprintf(
            buf, sizeof buf,
            "%s\n{\"kind\": \"%s\", \"name\": \"%s\", \"tid\": %u, "
            "\"ts_us\": %lld, \"dur_us\": %lld}",
            first ? "" : ",", level == nullptr ? "span" : "log", name,
            shard->tid,
            static_cast<long long>(
                e.start_ns.load(std::memory_order_acquire) / 1000),
            static_cast<long long>(
                e.dur_ns.load(std::memory_order_acquire) / 1000));
        signal_write(fd, buf, static_cast<std::size_t>(n));
        first = false;
      }
    }
    signal_write(fd, "\n]}\n", 4);
    ::fsync(fd);
    ::close(fd);
  }
  ::raise(sig);  // SA_RESETHAND reinstated the default action
}

void FlightRecorder::arm_signal_dump(const std::string& dir) {
  std::snprintf(g_signal_dir, sizeof g_signal_dir, "%s", dir.c_str());
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = flight_signal_handler_entry;
  sa.sa_flags = SA_RESETHAND;
  sigemptyset(&sa.sa_mask);
  const int signals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGILL, SIGFPE};
  for (const int sig : signals) ::sigaction(sig, &sa, nullptr);
}

#else

void FlightRecorder::arm_signal_dump(const std::string&) {}

#endif  // __unix__

#endif  // FIXEDPART_OBS_ENABLED

}  // namespace fixedpart::obs
