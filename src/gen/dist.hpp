#pragma once
// The ISPD-98-shaped sampling distributions shared by the in-memory
// generator (netlist_gen) and the streaming generator (stream_gen). Kept
// in one place so "IBM-like" means the same thing at 10k and at 10M
// vertices: identical area skew, net-degree tail and locality decay.

#include <cmath>

#include "hg/types.hpp"
#include "util/rng.hpp"

namespace fixedpart::gen::dist {

/// Skewed standard-cell area distribution (in abstract area units).
inline hg::Weight sample_cell_area(util::Rng& rng) {
  const double u = rng.next_double();
  if (u < 0.55) return 1;
  if (u < 0.75) return 2;
  if (u < 0.87) return 3;
  if (u < 0.94) return 4;
  if (u < 0.98) return 6;
  return 8 + static_cast<hg::Weight>(rng.next_below(9));  // 8..16
}

/// Net degree distribution: dominated by 2-3 pin nets, geometric tail.
/// Mean ~= 3.6, matching ISPD-98 pins-per-net.
inline int sample_net_degree(util::Rng& rng) {
  const double u = rng.next_double();
  if (u < 0.46) return 2;
  if (u < 0.68) return 3;
  if (u < 0.80) return 4;
  if (u < 0.87) return 5;
  if (u < 0.92) return 6;
  int d = 7;
  while (d < 40 && rng.next_bool(0.72)) ++d;
  return d;
}

/// Laplace-distributed offset with the given scale.
inline double sample_laplace(util::Rng& rng, double scale) {
  const double u = rng.next_double() - 0.5;
  const double mag = -scale * std::log(1.0 - 2.0 * std::abs(u) + 1e-12);
  return u >= 0 ? mag : -mag;
}

}  // namespace fixedpart::gen::dist
