#pragma once
// Empirical Rent-exponent measurement of a placed circuit, used to
// validate that the synthetic generator produces Rentian wiring locality
// (p ~ 0.6-0.7 for ISPD-98-era designs). The classical geometric method:
// recursively quadrisect the placement, and for each block record
// (cells inside, nets crossing the block boundary); a least-squares fit of
// log T = log k + p log C over all blocks gives k and p.

#include <vector>

#include "gen/netlist_gen.hpp"

namespace fixedpart::gen {

struct RentPoint {
  double cells = 0.0;      ///< average cells per block at this level
  double terminals = 0.0;  ///< average boundary-crossing nets per block
  int level = 0;           ///< quadrisection depth (0 = whole die)
};

struct RentFit {
  double p = 0.0;               ///< fitted Rent exponent
  double k = 0.0;               ///< fitted pins-per-block constant
  std::vector<RentPoint> points;
};

/// Fits Rent's rule over quadrisection levels 1..max_levels (level 0, the
/// whole die, sits in Region II and is excluded from the fit, as are
/// blocks with fewer than `min_cells` cells).
RentFit fit_rent_exponent(const GeneratedCircuit& circuit, int max_levels = 5,
                          int min_cells = 12);

}  // namespace fixedpart::gen
