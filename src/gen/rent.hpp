#pragma once
// Rent's-rule analytics behind Table I of the paper. Rent's rule states
// that a block of C cells exposes T = k * C^p external/propagated
// terminals (k = average pins per cell, ~3.5 for the designs the paper
// considers; p = Rent parameter, ~0.68 for modern designs). In a top-down
// placement a block-partitioning instance therefore has C + T vertices of
// which T are fixed; Table I reports the block sizes below which the fixed
// fraction T/(C+T) exceeds 5%, 10% or 20%.

namespace fixedpart::gen {

/// Expected propagated/external terminals of a block of `cells` cells
/// (Rent's rule, Region I).
double rent_terminals(double cells, double rent_p, double pins_per_cell);

/// Fraction of fixed vertices T/(C+T) in the induced partitioning
/// instance.
double fixed_fraction(double cells, double rent_p, double pins_per_cell);

/// Largest block size C such that the fixed fraction is at least
/// `fraction` (e.g. 0.05). Closed form:
///   T/(C+T) >= a  <=>  C <= (k*(1-a)/a)^(1/(1-p)).
/// Requires 0 < fraction < 1 and 0 < rent_p < 1.
double threshold_block_size(double rent_p, double pins_per_cell,
                            double fraction);

}  // namespace fixedpart::gen
