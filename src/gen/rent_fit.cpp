#include "gen/rent_fit.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace fixedpart::gen {

RentFit fit_rent_exponent(const GeneratedCircuit& circuit, int max_levels,
                          int min_cells) {
  if (max_levels < 1) throw std::invalid_argument("fit_rent: max_levels<1");
  const hg::Hypergraph& g = circuit.graph;
  const double width = circuit.placement.width;
  const double height = circuit.placement.height;

  RentFit fit;
  std::vector<double> log_c;
  std::vector<double> log_t;

  for (int level = 0; level <= max_levels; ++level) {
    const int grid = 1 << level;  // grid x grid blocks
    // Block index of every cell (pads map to -1: outside every block).
    std::vector<int> block_of(static_cast<std::size_t>(g.num_vertices()), -1);
    std::vector<std::int64_t> cells(static_cast<std::size_t>(grid) * grid, 0);
    for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.is_pad(v)) continue;
      auto bx = static_cast<int>(circuit.placement.x[v] / width *
                                 static_cast<double>(grid));
      auto by = static_cast<int>(circuit.placement.y[v] / height *
                                 static_cast<double>(grid));
      bx = std::min(std::max(bx, 0), grid - 1);
      by = std::min(std::max(by, 0), grid - 1);
      block_of[v] = by * grid + bx;
      ++cells[static_cast<std::size_t>(block_of[v])];
    }
    // A net crossing a block boundary contributes one terminal to every
    // block it touches.
    std::vector<std::int64_t> terminals(static_cast<std::size_t>(grid) * grid,
                                        0);
    std::vector<int> touched;
    for (hg::NetId e = 0; e < g.num_nets(); ++e) {
      touched.clear();
      bool has_pad = false;
      for (hg::VertexId v : g.pins(e)) {
        const int b = block_of[v];
        if (b < 0) {
          has_pad = true;
          continue;
        }
        bool seen = false;
        for (int t : touched) seen |= (t == b);
        if (!seen) touched.push_back(b);
      }
      if (touched.size() > 1 || (has_pad && !touched.empty())) {
        for (int b : touched) {
          ++terminals[static_cast<std::size_t>(b)];
        }
      }
    }
    double avg_cells = 0.0;
    double avg_terms = 0.0;
    int populated = 0;
    for (std::size_t b = 0; b < cells.size(); ++b) {
      if (cells[b] < min_cells) continue;
      avg_cells += static_cast<double>(cells[b]);
      avg_terms += static_cast<double>(terminals[b]);
      ++populated;
    }
    if (populated == 0) break;
    avg_cells /= populated;
    avg_terms /= populated;
    fit.points.push_back({avg_cells, avg_terms, level});
    if (level >= 1 && avg_terms > 0.0) {  // level 0 is Region II
      log_c.push_back(std::log(avg_cells));
      log_t.push_back(std::log(avg_terms));
    }
  }

  if (log_c.size() < 2) {
    throw std::runtime_error("fit_rent: not enough levels for a fit");
  }
  // Least squares on log T = log k + p log C.
  double mean_c = 0.0;
  double mean_t = 0.0;
  for (std::size_t i = 0; i < log_c.size(); ++i) {
    mean_c += log_c[i];
    mean_t += log_t[i];
  }
  mean_c /= static_cast<double>(log_c.size());
  mean_t /= static_cast<double>(log_t.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < log_c.size(); ++i) {
    num += (log_c[i] - mean_c) * (log_t[i] - mean_t);
    den += (log_c[i] - mean_c) * (log_c[i] - mean_c);
  }
  if (den == 0.0) throw std::runtime_error("fit_rent: degenerate fit");
  fit.p = num / den;
  fit.k = std::exp(mean_t - fit.p * mean_c);
  return fit;
}

}  // namespace fixedpart::gen
