#include "gen/stream_gen.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "gen/dist.hpp"
#include "hg/io_binary.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace fixedpart::gen {

namespace {

using hg::VertexId;
using hg::Weight;

// Domain tags keep the per-cell and per-net stream families decorrelated
// from each other (and from every other Rng::stream user of the seed).
constexpr std::uint64_t kCellTag = 0x9e11'ce11'0000'0001ULL;
constexpr std::uint64_t kAreaTag = 0x9e11'a4ea'0000'0002ULL;
constexpr std::uint64_t kNetTag = 0x9e11'0e70'0000'0003ULL;

/// Grid shape and derived counts; everything needed to compute any
/// vertex's position in O(1) without a placement array.
struct Geometry {
  std::int64_t side = 0;
  std::int64_t rows = 0;
  double width = 0.0;
  double height = 0.0;
};

Geometry geometry_of(const StreamSpec& spec) {
  Geometry g;
  g.side = static_cast<std::int64_t>(
      std::ceil(std::sqrt(static_cast<double>(spec.num_cells))));
  g.rows = (spec.num_cells + g.side - 1) / g.side;
  g.width = static_cast<double>(g.side);
  g.height = std::ceil(static_cast<double>(spec.num_cells) /
                       static_cast<double>(g.side));
  return g;
}

/// Jittered-grid position of cell c — pure in (seed, c), mirroring
/// netlist_gen's placement model without storing a placement.
void cell_position(const StreamSpec& spec, const Geometry& geo, VertexId c,
                   double& x, double& y) {
  util::Rng rng = util::Rng::stream(spec.seed ^ kCellTag,
                                    static_cast<std::uint64_t>(c));
  x = static_cast<double>(c % geo.side) + 0.3 * (rng.next_double() - 0.5);
  y = static_cast<double>(c / geo.side) + 0.3 * (rng.next_double() - 0.5);
}

Weight cell_area(const StreamSpec& spec, VertexId c) {
  util::Rng rng = util::Rng::stream(spec.seed ^ kAreaTag,
                                    static_cast<std::uint64_t>(c));
  return dist::sample_cell_area(rng);
}

VertexId cell_at(const StreamSpec& spec, const Geometry& geo, double x,
                 double y) {
  auto col = static_cast<std::int64_t>(std::llround(x));
  auto row = static_cast<std::int64_t>(std::llround(y));
  col = std::clamp<std::int64_t>(col, 0, geo.side - 1);
  row = std::clamp<std::int64_t>(row, 0, geo.rows - 1);
  std::int64_t c = row * geo.side + col;
  if (c >= spec.num_cells) c = spec.num_cells - 1;
  return static_cast<VertexId>(c);
}

/// Samples net e's sorted, duplicate-free pin list into `pins`. Pure in
/// (spec, e): both writer passes call this and get the identical net.
void sample_net(const StreamSpec& spec, const Geometry& geo,
                double external_fraction, hg::NetId e,
                std::vector<VertexId>& pins) {
  util::Rng rng =
      util::Rng::stream(spec.seed ^ kNetTag, static_cast<std::uint64_t>(e));
  const int degree = dist::sample_net_degree(rng);
  const bool global = rng.next_bool(spec.global_net_fraction);
  const bool external =
      spec.num_pads > 0 && rng.next_bool(external_fraction);

  const auto source = static_cast<VertexId>(
      rng.next_below(static_cast<std::uint64_t>(spec.num_cells)));
  pins.clear();
  pins.push_back(source);
  double sx = 0.0;
  double sy = 0.0;
  cell_position(spec, geo, source, sx, sy);
  int sinks = degree - 1;
  if (external) --sinks;  // one pin is a pad
  for (int s = 0; s < sinks; ++s) {
    VertexId sink;
    if (global) {
      sink = static_cast<VertexId>(
          rng.next_below(static_cast<std::uint64_t>(spec.num_cells)));
    } else {
      const double dx = dist::sample_laplace(rng, spec.local_scale);
      const double dy = dist::sample_laplace(rng, spec.local_scale);
      sink = cell_at(spec, geo, sx + dx, sy + dy);
    }
    pins.push_back(sink);
  }
  if (external) {
    // Pads are perimeter-ordered; wire the one matching the source's
    // angular position around the die centre (netlist_gen's model).
    const double angle =
        std::atan2(sy - geo.height / 2.0, sx - geo.width / 2.0);
    const double unit = angle / (2.0 * std::numbers::pi) + 0.5;  // [0,1)
    auto pad_index = static_cast<VertexId>(
        static_cast<std::int64_t>(unit * static_cast<double>(spec.num_pads)));
    pad_index = std::min(pad_index, spec.num_pads - 1);
    pins.push_back(spec.num_cells + pad_index);
  }
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  if (pins.size() < 2) {
    // Degenerate (all-same) local net: retry once with a random extra
    // sink, as in netlist_gen.
    const auto extra = static_cast<VertexId>(
        rng.next_below(static_cast<std::uint64_t>(spec.num_cells)));
    pins.push_back(extra);
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  }
}

}  // namespace

StreamSpec stream_spec_for_cells(hg::VertexId cells, std::uint64_t seed) {
  if (cells < 4) {
    throw std::invalid_argument("stream_spec_for_cells: too few cells");
  }
  StreamSpec spec;
  spec.num_cells = cells;
  spec.num_nets = static_cast<hg::NetId>(
      static_cast<std::int64_t>(1.15 * static_cast<double>(cells)));
  const auto side = static_cast<std::int64_t>(
      std::ceil(std::sqrt(static_cast<double>(cells))));
  spec.num_pads = static_cast<VertexId>(4 * side);
  spec.seed = seed;
  return spec;
}

StreamSpec stream_preset(const std::string& name) {
  StreamSpec spec;
  if (name == "1m") {
    spec = stream_spec_for_cells(1'000'000);
  } else if (name == "5m") {
    spec = stream_spec_for_cells(5'000'000);
  } else if (name == "10m") {
    spec = stream_spec_for_cells(10'000'000);
  } else {
    throw util::UsageError("unknown stream preset '" + name +
                           "' (want 1m, 5m or 10m)");
  }
  spec.name = "stream-" + name;
  return spec;
}

void stream_circuit_fpbin(const StreamSpec& spec, const std::string& path) {
  if (spec.num_cells < 4) {
    throw std::invalid_argument("stream_circuit_fpbin: too few cells");
  }
  if (spec.num_pads < 0 || spec.num_nets < 1) {
    throw std::invalid_argument("stream_circuit_fpbin: bad counts");
  }
  const Geometry geo = geometry_of(spec);
  const double external_fraction =
      spec.external_net_fraction > 0.0
          ? spec.external_net_fraction
          : std::min(0.25, 1.3 * static_cast<double>(spec.num_pads) /
                               static_cast<double>(spec.num_nets));

  hg::FpbinWriter writer(path, /*num_resources=*/1, /*num_parts=*/2);
  for (VertexId c = 0; c < spec.num_cells; ++c) {
    writer.add_vertex(cell_area(spec, c), /*is_pad=*/false);
  }
  for (VertexId p = 0; p < spec.num_pads; ++p) {
    writer.add_vertex(Weight{0}, /*is_pad=*/true);
  }

  std::vector<VertexId> pins;
  for (hg::NetId e = 0; e < spec.num_nets; ++e) {
    sample_net(spec, geo, external_fraction, e, pins);
    writer.count_net(pins);
  }
  writer.begin_nets();
  for (hg::NetId e = 0; e < spec.num_nets; ++e) {
    sample_net(spec, geo, external_fraction, e, pins);
    writer.add_net(pins, /*weight=*/1);
  }
  writer.finish();
}

}  // namespace fixedpart::gen
