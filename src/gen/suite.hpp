#pragma once
// Presets mirroring the ISPD-98 circuits the paper evaluates (IBM01-IBM05).
// Vertex/net/pad counts at `paper` scale match the published suite sizes;
// `default` scale shrinks instances ~4x (and `smoke` ~25x) so the full
// benchmark sweep runs in minutes while preserving every qualitative
// characteristic (degree distributions, area skew, locality, pad ratio).

#include <vector>

#include "gen/netlist_gen.hpp"
#include "util/env.hpp"

namespace fixedpart::gen {

/// ibm01 through ibm05 (index 1..5). Throws for other indices.
CircuitSpec ibm_like_spec(int index, util::Scale scale);

/// All five presets at the given scale.
std::vector<CircuitSpec> ibm_suite(util::Scale scale);

}  // namespace fixedpart::gen
