#pragma once
// Streaming Rent-rule generator: the scale-frontier twin of netlist_gen.
// Where generate_circuit materializes builder staging arrays plus a
// placement (O(pins) heap, ~3 copies of the instance at peak), this
// generator samples every net as a *pure function* of (seed, net id) via
// util::Rng::stream and feeds the two-phase FpbinWriter — pass 1 counts
// pin totals, pass 2 replays the identical sample and scatters pins
// straight into the memory-mapped .fpbin. No pin list is ever stored
// twice; heap stays O(vertices), which is what makes the 10M-vertex
// preset generate in a container-sized RSS budget.
//
// The sampled family matches netlist_gen (same gen/dist.hpp
// distributions, same jittered-grid placement model, same
// distance-decaying sink selection and perimeter-pad wiring), so
// downstream partitioning behaviour is comparable across scales. Macros
// are not sampled (they exist to exercise balance edge cases, which the
// small suites cover).

#include <cstdint>
#include <string>

#include "hg/types.hpp"

namespace fixedpart::gen {

struct StreamSpec {
  std::string name = "large";
  hg::VertexId num_cells = 1'000'000;
  hg::NetId num_nets = 0;     ///< 0 -> ~1.15x cells (ISPD-98-like ratio)
  hg::VertexId num_pads = 0;  ///< 0 -> 4 * grid side (perimeter density)
  /// Fraction of nets wired without locality (long/global nets).
  double global_net_fraction = 0.03;
  /// Laplace scale (in cell pitches) of local sink offsets.
  double local_scale = 2.5;
  /// Fraction of nets that include a pad terminal; 0 -> derived.
  double external_net_fraction = 0.0;
  std::uint64_t seed = 1;
};

/// Spec for a given cell count with the derived defaults filled in.
StreamSpec stream_spec_for_cells(hg::VertexId cells, std::uint64_t seed = 1);

/// Named presets for the scale ladder: "1m", "5m", "10m" (1/5/10 million
/// cells). Throws util::UsageError on unknown names.
StreamSpec stream_preset(const std::string& name);

/// Generates `spec` and writes it to `path` as .fpbin. Deterministic:
/// the same spec always produces a byte-identical file.
void stream_circuit_fpbin(const StreamSpec& spec, const std::string& path);

}  // namespace fixedpart::gen
