#pragma once
// Benchmark derivation from placements — Section IV of the paper:
// "A block is defined by a rectangular axis-parallel bounding box. An
// axis-parallel cutline bisects a given block. Each cell contained in the
// block induces a movable vertex of the hypergraph. Each pad adjacent to
// some cell in the block induces a zero-area terminal vertex, fixed in the
// closest partition; adjacent cells not in the block similarly induce
// terminal vertices."
//
// From each placed circuit we extract the four-block family IBMxxA-D the
// paper describes (whole die; the left half L1_V0; the bottom-left
// quadrant L2_V0H0; and its left half L3_V0H0V0), each with vertical and
// horizontal cutline terminal assignments — Table IV's row set.

#include <string>
#include <vector>

#include "gen/netlist_gen.hpp"
#include "hg/io_bookshelf.hpp"
#include "hg/stats.hpp"

namespace fixedpart::gen {

struct Block {
  double xlo = 0.0;
  double ylo = 0.0;
  double xhi = 0.0;
  double yhi = 0.0;

  bool contains(double x, double y) const {
    return x >= xlo && x < xhi && y >= ylo && y < yhi;
  }
  /// Left (vertical cut) or bottom (horizontal cut) half of the block.
  Block half(bool vertical, bool low) const;
};

enum class CutDirection { kVertical, kHorizontal };

struct DerivedInstance {
  std::string name;
  hg::BenchmarkInstance instance;
  hg::VertexId movable_cells = 0;  ///< block cells (the terminals are the rest)
};

/// Derives one partitioning-with-fixed-terminals instance. The cutline
/// bisects `block` in the given direction; every terminal is fixed into
/// the side nearest its placed location.
DerivedInstance derive_block_instance(const GeneratedCircuit& circuit,
                                      const Block& block, CutDirection cut,
                                      double tolerance_pct,
                                      const std::string& name);

/// Full-die bounding box of a circuit.
Block full_die(const GeneratedCircuit& circuit);

/// The A-D block family x {V, H} cutlines (8 instances), named e.g.
/// "ibm01B_H". Blocks: A = L0 (whole die), B = L1_V0, C = L2_V0H0,
/// D = L3_V0H0V0.
std::vector<DerivedInstance> derive_family(const GeneratedCircuit& circuit,
                                           double tolerance_pct);

}  // namespace fixedpart::gen
