#include "gen/regimes.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fixedpart::gen {

FixedVertexSeries::FixedVertexSeries(const hg::Hypergraph& graph,
                                     hg::PartitionId num_parts,
                                     util::Rng& rng, SelectionOrder order)
    : num_vertices_(graph.num_vertices()), num_parts_(num_parts) {
  permutation_.resize(static_cast<std::size_t>(num_vertices_));
  for (hg::VertexId v = 0; v < num_vertices_; ++v) permutation_[v] = v;
  rng.shuffle(std::span<hg::VertexId>(permutation_));
  if (order == SelectionOrder::kHighDegreeFirst) {
    std::stable_sort(permutation_.begin(), permutation_.end(),
                     [&](hg::VertexId a, hg::VertexId b) {
                       return graph.degree(a) > graph.degree(b);
                     });
  }
  random_side_.resize(static_cast<std::size_t>(num_vertices_));
  for (auto& side : random_side_) {
    side = static_cast<hg::PartitionId>(
        rng.next_below(static_cast<std::uint64_t>(num_parts_)));
  }
}

hg::VertexId FixedVertexSeries::count_at(double pct) const {
  if (pct < 0.0 || pct > 100.0) {
    throw std::invalid_argument("FixedVertexSeries: pct out of range");
  }
  return static_cast<hg::VertexId>(
      std::llround(pct / 100.0 * static_cast<double>(num_vertices_)));
}

hg::FixedAssignment FixedVertexSeries::rand_regime(double pct) const {
  hg::FixedAssignment fixed(num_vertices_, num_parts_);
  const hg::VertexId count = count_at(pct);
  for (hg::VertexId i = 0; i < count; ++i) {
    const hg::VertexId v = permutation_[i];
    fixed.fix(v, random_side_[v]);
  }
  return fixed;
}

hg::FixedAssignment FixedVertexSeries::good_regime(
    double pct, std::span<const hg::PartitionId> reference) const {
  if (static_cast<hg::VertexId>(reference.size()) != num_vertices_) {
    throw std::invalid_argument("good_regime: reference size mismatch");
  }
  hg::FixedAssignment fixed(num_vertices_, num_parts_);
  const hg::VertexId count = count_at(pct);
  for (hg::VertexId i = 0; i < count; ++i) {
    const hg::VertexId v = permutation_[i];
    if (reference[v] < 0 || reference[v] >= num_parts_) {
      throw std::invalid_argument("good_regime: reference has bad side");
    }
    fixed.fix(v, reference[v]);
  }
  return fixed;
}

}  // namespace fixedpart::gen
