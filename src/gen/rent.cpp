#include "gen/rent.hpp"

#include <cmath>
#include <stdexcept>

namespace fixedpart::gen {

double rent_terminals(double cells, double rent_p, double pins_per_cell) {
  if (cells < 0) throw std::invalid_argument("rent_terminals: cells < 0");
  return pins_per_cell * std::pow(cells, rent_p);
}

double fixed_fraction(double cells, double rent_p, double pins_per_cell) {
  const double t = rent_terminals(cells, rent_p, pins_per_cell);
  if (cells + t == 0.0) return 0.0;
  return t / (cells + t);
}

double threshold_block_size(double rent_p, double pins_per_cell,
                            double fraction) {
  if (!(fraction > 0.0 && fraction < 1.0)) {
    throw std::invalid_argument("threshold_block_size: fraction not in (0,1)");
  }
  if (!(rent_p > 0.0 && rent_p < 1.0)) {
    throw std::invalid_argument("threshold_block_size: rent_p not in (0,1)");
  }
  const double base = pins_per_cell * (1.0 - fraction) / fraction;
  return std::pow(base, 1.0 / (1.0 - rent_p));
}

}  // namespace fixedpart::gen
