#include "gen/derive.hpp"

#include <stdexcept>
#include <vector>

#include "hg/builder.hpp"

namespace fixedpart::gen {

Block Block::half(bool vertical, bool low) const {
  Block b = *this;
  if (vertical) {
    const double mid = (xlo + xhi) / 2.0;
    (low ? b.xhi : b.xlo) = mid;
  } else {
    const double mid = (ylo + yhi) / 2.0;
    (low ? b.yhi : b.ylo) = mid;
  }
  return b;
}

Block full_die(const GeneratedCircuit& circuit) {
  // Cells sit on a jittered grid within (-0.5, width-0.5); pads are placed
  // a full unit outside the die. A half-unit margin therefore covers every
  // cell while excluding every pad.
  return Block{-0.5, -0.5, circuit.placement.width,
               circuit.placement.height};
}

DerivedInstance derive_block_instance(const GeneratedCircuit& circuit,
                                      const Block& block, CutDirection cut,
                                      double tolerance_pct,
                                      const std::string& name) {
  const hg::Hypergraph& g = circuit.graph;
  if (static_cast<hg::VertexId>(circuit.placement.x.size()) !=
      g.num_vertices()) {
    throw std::invalid_argument("derive_block_instance: placement mismatch");
  }

  // Movable = non-pad cells placed inside the block.
  std::vector<std::uint8_t> in_block(
      static_cast<std::size_t>(g.num_vertices()), 0);
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!g.is_pad(v) &&
        block.contains(circuit.placement.x[v], circuit.placement.y[v])) {
      in_block[v] = 1;
    }
  }

  // Terminals = outside vertices (cells or pads) adjacent to a block cell.
  std::vector<std::uint8_t> is_terminal(
      static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<hg::NetId> kept_nets;
  for (hg::NetId e = 0; e < g.num_nets(); ++e) {
    bool touches_block = false;
    for (hg::VertexId v : g.pins(e)) {
      if (in_block[v]) {
        touches_block = true;
        break;
      }
    }
    if (!touches_block) continue;
    kept_nets.push_back(e);
    for (hg::VertexId v : g.pins(e)) {
      if (!in_block[v]) is_terminal[v] = 1;
    }
  }

  const bool vertical = (cut == CutDirection::kVertical);
  const double cutline = vertical ? (block.xlo + block.xhi) / 2.0
                                  : (block.ylo + block.yhi) / 2.0;
  auto side_of = [&](hg::VertexId v) -> hg::PartitionId {
    const double coord =
        vertical ? circuit.placement.x[v] : circuit.placement.y[v];
    return coord < cutline ? 0 : 1;
  };

  DerivedInstance out;
  out.name = name;
  hg::HypergraphBuilder builder;
  std::vector<hg::VertexId> map(static_cast<std::size_t>(g.num_vertices()),
                                hg::kNoVertex);
  std::vector<hg::VertexId> terminal_ids;
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (in_block[v]) {
      map[v] = builder.add_vertex(g.vertex_weight(v), /*is_pad=*/false);
      out.instance.names.push_back("c" + std::to_string(v));
      ++out.movable_cells;
    } else if (is_terminal[v]) {
      // Zero-area terminal, regardless of what the source vertex weighed.
      map[v] = builder.add_vertex(hg::Weight{0}, /*is_pad=*/true);
      out.instance.names.push_back("t" + std::to_string(v));
      terminal_ids.push_back(v);
    }
  }
  std::vector<hg::VertexId> pins;
  for (hg::NetId e : kept_nets) {
    pins.clear();
    for (hg::VertexId v : g.pins(e)) {
      if (map[v] != hg::kNoVertex) pins.push_back(map[v]);
    }
    builder.add_net(pins, g.net_weight(e));
  }

  out.instance.graph = builder.build();
  out.instance.num_parts = 2;
  out.instance.balance.relative = true;
  out.instance.balance.tolerance_pct = tolerance_pct;
  out.instance.fixed =
      hg::FixedAssignment(out.instance.graph.num_vertices(), 2);
  for (hg::VertexId v : terminal_ids) {
    out.instance.fixed.fix(map[v], side_of(v));
  }
  return out;
}

std::vector<DerivedInstance> derive_family(const GeneratedCircuit& circuit,
                                           double tolerance_pct) {
  const Block a = full_die(circuit);
  const Block b = a.half(/*vertical=*/true, /*low=*/true);      // L1_V0
  const Block c = b.half(/*vertical=*/false, /*low=*/true);     // L2_V0H0
  const Block d = c.half(/*vertical=*/true, /*low=*/true);      // L3_V0H0V0
  const Block blocks[] = {a, b, c, d};
  const char suffix[] = {'A', 'B', 'C', 'D'};

  std::vector<DerivedInstance> out;
  for (int i = 0; i < 4; ++i) {
    for (CutDirection cut :
         {CutDirection::kVertical, CutDirection::kHorizontal}) {
      const std::string name =
          circuit.name + suffix[i] +
          (cut == CutDirection::kVertical ? "_V" : "_H");
      out.push_back(derive_block_instance(circuit, blocks[i], cut,
                                          tolerance_pct, name));
    }
  }
  return out;
}

}  // namespace fixedpart::gen
