#include "gen/netlist_gen.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "gen/dist.hpp"
#include "hg/builder.hpp"

namespace fixedpart::gen {

// Sampling distributions live in gen/dist.hpp, shared with the streaming
// generator so both emit the same instance family.
using dist::sample_cell_area;
using dist::sample_laplace;
using dist::sample_net_degree;

GeneratedCircuit add_pin_resource(const GeneratedCircuit& circuit) {
  const hg::Hypergraph& g = circuit.graph;
  hg::HypergraphBuilder builder(2);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const Weight weights[2] = {g.vertex_weight(v),
                               static_cast<Weight>(g.degree(v))};
    builder.add_vertex(std::span<const Weight>(weights, 2), g.is_pad(v));
  }
  for (NetId e = 0; e < g.num_nets(); ++e) {
    builder.add_net(g.pins(e), g.net_weight(e));
  }
  GeneratedCircuit out;
  out.name = circuit.name + "-mb";
  out.graph = builder.build();
  out.placement = circuit.placement;
  return out;
}

GeneratedCircuit generate_circuit(const CircuitSpec& spec) {
  if (spec.num_cells < 4) {
    throw std::invalid_argument("generate_circuit: too few cells");
  }
  if (spec.num_pads < 0 || spec.num_nets < 1) {
    throw std::invalid_argument("generate_circuit: bad counts");
  }
  util::Rng rng(spec.seed ^ 0x5eedf1c5u);

  const auto side = static_cast<std::int64_t>(
      std::ceil(std::sqrt(static_cast<double>(spec.num_cells))));
  GeneratedCircuit out;
  out.name = spec.name;
  out.placement.width = static_cast<double>(side);
  out.placement.height =
      std::ceil(static_cast<double>(spec.num_cells) / static_cast<double>(side));

  hg::HypergraphBuilder builder;

  // Cells on a jittered grid, row-major: cell c at (c % side, c / side).
  for (VertexId c = 0; c < spec.num_cells; ++c) {
    builder.add_vertex(sample_cell_area(rng), /*is_pad=*/false);
    out.placement.x.push_back(static_cast<double>(c % side) +
                              0.3 * (rng.next_double() - 0.5));
    out.placement.y.push_back(static_cast<double>(c / side) +
                              0.3 * (rng.next_double() - 0.5));
  }

  // Pads evenly spaced along the perimeter, zero area (the paper's
  // derived benchmarks use zero-area terminals; pads never affect
  // balance).
  const double perimeter = 2.0 * (out.placement.width + out.placement.height);
  for (VertexId i = 0; i < spec.num_pads; ++i) {
    const double t = perimeter * static_cast<double>(i) /
                     static_cast<double>(std::max<VertexId>(spec.num_pads, 1));
    double px = 0.0;
    double py = 0.0;
    if (t < out.placement.width) {
      px = t;
      py = -1.0;
    } else if (t < out.placement.width + out.placement.height) {
      px = out.placement.width + 1.0;
      py = t - out.placement.width;
    } else if (t < 2.0 * out.placement.width + out.placement.height) {
      px = t - out.placement.width - out.placement.height;
      py = out.placement.height + 1.0;
    } else {
      px = -1.0;
      py = t - 2.0 * out.placement.width - out.placement.height;
    }
    builder.add_vertex(Weight{0}, /*is_pad=*/true);
    out.placement.x.push_back(px);
    out.placement.y.push_back(py);
  }

  auto cell_at = [&](double x, double y) -> VertexId {
    auto col = static_cast<std::int64_t>(std::llround(x));
    auto row = static_cast<std::int64_t>(std::llround(y));
    col = std::clamp<std::int64_t>(col, 0, side - 1);
    const std::int64_t rows =
        (spec.num_cells + side - 1) / side;
    row = std::clamp<std::int64_t>(row, 0, rows - 1);
    std::int64_t c = row * side + col;
    if (c >= spec.num_cells) c = spec.num_cells - 1;
    return static_cast<VertexId>(c);
  };

  const double external_fraction =
      spec.external_net_fraction > 0.0
          ? spec.external_net_fraction
          : std::min(0.25, 1.3 * static_cast<double>(spec.num_pads) /
                               static_cast<double>(spec.num_nets));

  std::vector<VertexId> pins;
  for (NetId e = 0; e < spec.num_nets; ++e) {
    const int degree = sample_net_degree(rng);
    const bool global = rng.next_bool(spec.global_net_fraction);
    const bool external = spec.num_pads > 0 && rng.next_bool(external_fraction);

    const auto source = static_cast<VertexId>(rng.next_below(
        static_cast<std::uint64_t>(spec.num_cells)));
    pins.clear();
    pins.push_back(source);
    const double sx = out.placement.x[source];
    const double sy = out.placement.y[source];
    int sinks = degree - 1;
    if (external) --sinks;  // one pin is a pad
    for (int s = 0; s < sinks; ++s) {
      VertexId sink;
      if (global) {
        sink = static_cast<VertexId>(
            rng.next_below(static_cast<std::uint64_t>(spec.num_cells)));
      } else {
        const double dx = sample_laplace(rng, spec.local_scale);
        const double dy = sample_laplace(rng, spec.local_scale);
        sink = cell_at(sx + dx, sy + dy);
      }
      pins.push_back(sink);
    }
    if (external) {
      // Wire a pad on the source's side of the chip: I/O connects to
      // nearby logic. Pads are perimeter-ordered, so map the source's
      // angular position around the die centre to a pad index.
      const double angle = std::atan2(sy - out.placement.height / 2.0,
                                      sx - out.placement.width / 2.0);
      const double unit = angle / (2.0 * std::numbers::pi) + 0.5;  // [0,1)
      auto pad_index = static_cast<VertexId>(static_cast<std::int64_t>(
          unit * static_cast<double>(spec.num_pads)));
      pad_index = std::min(pad_index, spec.num_pads - 1);
      pins.push_back(spec.num_cells + pad_index);
    }
    // Builder dedupes; retry degenerate (all-same) local nets once with a
    // random extra sink so nearly every net has >= 2 distinct pins.
    std::sort(pins.begin(), pins.end());
    if (std::unique(pins.begin(), pins.end()) - pins.begin() < 2) {
      pins.push_back(static_cast<VertexId>(
          rng.next_below(static_cast<std::uint64_t>(spec.num_cells))));
    }
    builder.add_net(pins);
  }

  // Macro cells: bump a few random cells to several % of total area.
  hg::Hypergraph staged = builder.build();
  if (spec.num_macros > 0 && spec.macro_area_pct > 0.0) {
    hg::HypergraphBuilder rebuilt;
    const Weight total = staged.total_weight(0);
    std::vector<Weight> area(static_cast<std::size_t>(staged.num_vertices()));
    for (VertexId v = 0; v < staged.num_vertices(); ++v) {
      area[v] = staged.vertex_weight(v);
    }
    for (int m = 0; m < spec.num_macros; ++m) {
      const auto v = static_cast<VertexId>(
          rng.next_below(static_cast<std::uint64_t>(spec.num_cells)));
      // Scale so the macro ends at ~macro_area_pct of the *final* total:
      // pct/100 * total / (1 - num_macros*pct/100) is close enough.
      const double frac = spec.macro_area_pct / 100.0;
      area[v] = std::max<Weight>(
          area[v],
          static_cast<Weight>(std::llround(
              frac * static_cast<double>(total) /
              std::max(0.5, 1.0 - spec.num_macros * frac))));
    }
    for (VertexId v = 0; v < staged.num_vertices(); ++v) {
      rebuilt.add_vertex(area[v], staged.is_pad(v));
    }
    for (NetId e = 0; e < staged.num_nets(); ++e) {
      rebuilt.add_net(staged.pins(e), staged.net_weight(e));
    }
    out.graph = rebuilt.build();
  } else {
    out.graph = std::move(staged);
  }
  return out;
}

}  // namespace fixedpart::gen
