#include "gen/suite.hpp"

#include <algorithm>
#include <stdexcept>

namespace fixedpart::gen {

namespace {

struct SuiteRow {
  const char* name;
  VertexId cells;   // ISPD-98 module counts (cells excl. pads)
  NetId nets;
  VertexId pads;
  int macros;
  double macro_pct;
};

// Published ISPD-98 sizes (Alpert, ISPD-98): modules/nets; pad counts and
// macro skew approximate the suite's reported characteristics ("individual
// cells that occupy several percent of the total area").
constexpr SuiteRow kRows[] = {
    {"ibm01", 12506, 14111, 246, 3, 3.0},
    {"ibm02", 19342, 19584, 259, 4, 2.0},
    {"ibm03", 22853, 27401, 283, 4, 2.5},
    {"ibm04", 27220, 31970, 287, 3, 2.0},
    {"ibm05", 28146, 28446, 1201, 2, 1.5},
};

}  // namespace

CircuitSpec ibm_like_spec(int index, util::Scale scale) {
  if (index < 1 || index > 5) {
    throw std::invalid_argument("ibm_like_spec: index must be 1..5");
  }
  const SuiteRow& row = kRows[index - 1];
  const double shrink = util::by_scale(scale, 25.0, 4.0, 1.0);
  CircuitSpec spec;
  spec.name = row.name;
  spec.num_cells = std::max<VertexId>(
      64, static_cast<VertexId>(static_cast<double>(row.cells) / shrink));
  spec.num_nets = std::max<NetId>(
      72, static_cast<NetId>(static_cast<double>(row.nets) / shrink));
  spec.num_pads = std::max<VertexId>(
      8, static_cast<VertexId>(static_cast<double>(row.pads) / shrink));
  spec.num_macros = row.macros;
  spec.macro_area_pct = row.macro_pct;
  spec.seed = 0x1b501000u + static_cast<std::uint64_t>(index);
  return spec;
}

std::vector<CircuitSpec> ibm_suite(util::Scale scale) {
  std::vector<CircuitSpec> specs;
  for (int i = 1; i <= 5; ++i) specs.push_back(ibm_like_spec(i, scale));
  return specs;
}

}  // namespace fixedpart::gen
