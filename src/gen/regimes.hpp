#pragma once
// The paper's Section II experimental protocol for constructing fixed-
// vertex instances from a free hypergraph:
//
//  * a random subset of vertices is chosen and fixed, *incrementally* —
//    "all vertices fixed at 1.0% are also fixed at 2.0%" — so a single
//    random permutation defines the whole percentage series;
//  * "rand" regime: each chosen vertex is fixed into an independently
//    random partition (the random side is also decided once per vertex, so
//    the series is nested);
//  * "good" regime: each chosen vertex is fixed into its side in the best
//    known solution of the free instance.

#include <span>
#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "util/rng.hpp"

namespace fixedpart::gen {

/// Which vertices are fixed first as the percentage grows.
enum class SelectionOrder : std::uint8_t {
  kRandom,          ///< the paper's main protocol
  kHighDegreeFirst, ///< Sec. V: "it is always possible to fix vertices of
                    ///< very high degree to yield qualitatively different
                    ///< problem instances"
};

class FixedVertexSeries {
 public:
  /// Draws the permutation and the per-vertex random sides. Deterministic
  /// given `rng` state. With kHighDegreeFirst the permutation is ordered
  /// by descending vertex degree (ties randomly).
  FixedVertexSeries(const hg::Hypergraph& graph, hg::PartitionId num_parts,
                    util::Rng& rng,
                    SelectionOrder order = SelectionOrder::kRandom);

  /// Number of vertices fixed at `pct` percent (rounded).
  hg::VertexId count_at(double pct) const;

  /// "rand" regime instance at the given percentage of fixed vertices.
  hg::FixedAssignment rand_regime(double pct) const;

  /// "good" regime: sides taken from `reference` (a complete assignment
  /// of the free instance, e.g. the best solution found).
  hg::FixedAssignment good_regime(
      double pct, std::span<const hg::PartitionId> reference) const;

  /// The first `count_at(pct)` entries are the fixed subset.
  std::span<const hg::VertexId> permutation() const { return permutation_; }

 private:
  hg::VertexId num_vertices_;
  hg::PartitionId num_parts_;
  std::vector<hg::VertexId> permutation_;
  std::vector<hg::PartitionId> random_side_;
};

}  // namespace fixedpart::gen
