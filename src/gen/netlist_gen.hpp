#pragma once
// Synthetic placed-circuit generator: the repository's stand-in for the
// ISPD-98 IBM benchmarks and their (IBM-internal) placements, which are
// not redistributable. The generator *places first and wires second*:
// cells are laid out on a jittered grid, pads on the perimeter, and nets
// are sampled with distance-decaying sink selection, which yields the
// Rentian wiring locality that makes min-cut partitioning (and terminal
// propagation) behave like it does on real circuits. Knobs reproduce the
// ISPD-98 instance characteristics the paper relies on:
//
//  * net-degree distribution dominated by 2-3 pin nets with a heavy tail,
//    average pins-per-cell ~= 3.5-4;
//  * actual cell areas with a skewed distribution including a few macro
//    cells occupying several percent of total area (Table IV "Max %");
//  * perimeter pads (< ~1-2% of vertices), each a zero-area terminal,
//    wired into nearby nets so external-net counts track Rent's rule.

#include <string>
#include <vector>

#include "hg/hypergraph.hpp"
#include "util/rng.hpp"

namespace fixedpart::gen {

using hg::NetId;
using hg::VertexId;
using hg::Weight;

/// Locations for every vertex (cells and pads) of a generated circuit.
struct Placement {
  std::vector<double> x;
  std::vector<double> y;
  double width = 0.0;
  double height = 0.0;
};

struct CircuitSpec {
  std::string name = "synth";
  VertexId num_cells = 10000;
  NetId num_nets = 11000;
  VertexId num_pads = 200;
  /// Fraction of nets wired without locality (long/global nets).
  double global_net_fraction = 0.03;
  /// Laplace scale (in cell pitches) of local sink offsets.
  double local_scale = 2.5;
  /// Fraction of nets that include a pad terminal (external nets).
  double external_net_fraction = 0.0;  ///< 0 -> derived from num_pads
  /// Macro cells: count and per-macro area as % of total standard area.
  int num_macros = 4;
  double macro_area_pct = 2.0;
  std::uint64_t seed = 1;
};

struct GeneratedCircuit {
  std::string name;
  hg::Hypergraph graph;
  Placement placement;
};

/// Deterministic for a given spec (seed included in the spec).
GeneratedCircuit generate_circuit(const CircuitSpec& spec);

/// Rebuilds the circuit's hypergraph with a second balance resource equal
/// to each vertex's pin count — the multi-balanced ("multi-area")
/// partitioning scenario of the paper's Sec. IV, where cell area and cell
/// pin count must both be evenly distributed. Placement and topology are
/// unchanged.
GeneratedCircuit add_pin_resource(const GeneratedCircuit& circuit);

}  // namespace fixedpart::gen
