#include "place/hpwl.hpp"

#include <algorithm>
#include <stdexcept>

namespace fixedpart::place {

double net_hpwl(const hg::Hypergraph& graph, hg::NetId e,
                std::span<const double> x, std::span<const double> y) {
  const auto pins = graph.pins(e);
  if (pins.size() < 2) return 0.0;
  double xlo = x[pins[0]];
  double xhi = xlo;
  double ylo = y[pins[0]];
  double yhi = ylo;
  for (std::size_t i = 1; i < pins.size(); ++i) {
    xlo = std::min(xlo, x[pins[i]]);
    xhi = std::max(xhi, x[pins[i]]);
    ylo = std::min(ylo, y[pins[i]]);
    yhi = std::max(yhi, y[pins[i]]);
  }
  return (xhi - xlo) + (yhi - ylo);
}

double half_perimeter_wirelength(const hg::Hypergraph& graph,
                                 std::span<const double> x,
                                 std::span<const double> y) {
  if (static_cast<hg::VertexId>(x.size()) != graph.num_vertices() ||
      static_cast<hg::VertexId>(y.size()) != graph.num_vertices()) {
    throw std::invalid_argument("half_perimeter_wirelength: size mismatch");
  }
  double total = 0.0;
  for (hg::NetId e = 0; e < graph.num_nets(); ++e) {
    total += net_hpwl(graph, e, x, y);
  }
  return total;
}

}  // namespace fixedpart::place
