#pragma once
// Top-down recursive-bisection placement with terminal propagation
// (Dunlop-Kernighan; the paper's motivating application). Every block
// split below the top level is a partitioning instance *with fixed
// vertices*: the projections of outside cells and pads onto the block —
// exactly the regime the paper studies. The placer therefore exposes the
// engine knobs the paper evaluates (refinement policy, the Table III pass
// cutoff) plus an optimal end-case solver for tiny blocks
// (Caldwell-Kahng-Markov end-case processing).

#include <vector>

#include "hg/hypergraph.hpp"
#include "ml/multilevel.hpp"
#include "part/exact.hpp"
#include "util/rng.hpp"

namespace fixedpart::place {

/// Input: a netlist plus immovable terminal locations. Cells (non-pad
/// vertices) are placed by the placer; pad coordinates are honoured as
/// given.
struct PlacementProblem {
  const hg::Hypergraph* graph = nullptr;
  double width = 0.0;
  double height = 0.0;
  /// Per-vertex coordinates; only pad entries are read.
  std::vector<double> pad_x;
  std::vector<double> pad_y;
};

struct PlacerConfig {
  /// Bisection levels (each level doubles the block count).
  int max_levels = 8;
  /// Blocks with fewer cells than this are not split further.
  int min_block_cells = 8;
  /// Blocks with at most this many movable cells are solved with the
  /// exact branch-and-bound end-case partitioner instead of the
  /// multilevel heuristic (0 disables end-case processing).
  int exact_threshold = 0;
  /// Balance tolerance of each bisection.
  double tolerance_pct = 10.0;
  /// Multilevel engine settings (refinement policy, pass cutoff, ...).
  ml::MultilevelConfig ml;
};

struct LevelStats {
  int blocks_split = 0;
  /// Mean percentage of fixed (terminal) vertices in the block instances
  /// of this level — watch it climb with depth, per Table I.
  double avg_fixed_pct = 0.0;
  double avg_cut = 0.0;
  double seconds = 0.0;
};

struct PlacementResult {
  std::vector<double> x;  ///< final per-vertex positions (pads unchanged)
  std::vector<double> y;
  std::vector<LevelStats> levels;
  double hpwl = 0.0;
  double seconds = 0.0;
};

class TopDownPlacer {
 public:
  explicit TopDownPlacer(const PlacementProblem& problem);

  PlacementResult run(const PlacerConfig& config, util::Rng& rng) const;

 private:
  PlacementProblem problem_;
};

}  // namespace fixedpart::place
