#pragma once
// Half-perimeter wirelength — the placement cost metric of the top-down
// placement literature the paper's experiments serve.

#include <span>

#include "hg/hypergraph.hpp"

namespace fixedpart::place {

/// Sum over nets (>= 2 pins) of the half perimeter of the pin bounding
/// box. x/y are per-vertex coordinates (size num_vertices).
double half_perimeter_wirelength(const hg::Hypergraph& graph,
                                 std::span<const double> x,
                                 std::span<const double> y);

/// HPWL of a single net (returns 0 for nets below 2 pins).
double net_hpwl(const hg::Hypergraph& graph, hg::NetId e,
                std::span<const double> x, std::span<const double> y);

}  // namespace fixedpart::place
