#include "place/placer.hpp"

#include <stdexcept>
#include <vector>

#include "hg/subgraph.hpp"
#include "place/hpwl.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace fixedpart::place {

namespace {

struct Region {
  double xlo, ylo, xhi, yhi;
  std::vector<hg::VertexId> cells;

  double cx() const { return (xlo + xhi) / 2.0; }
  double cy() const { return (ylo + yhi) / 2.0; }
};

/// Builds the block partitioning instance of `region` (movable cells plus
/// propagated zero-area terminals) and solves it; returns the two child
/// cell lists. Positions in pos_x/pos_y give every vertex's current
/// location (block centres for unplaced cells, true locations for pads).
struct BlockSplitter {
  const hg::Hypergraph& graph;
  const PlacerConfig& config;
  const std::vector<double>& pos_x;
  const std::vector<double>& pos_y;
  util::Rng& rng;

  std::pair<Region, Region> split(const Region& region,
                                  util::RunningStat& fixed_pct,
                                  util::RunningStat& cut_stat) const {
    const bool vertical = (region.xhi - region.xlo) >= (region.yhi - region.ylo);
    const double cutline = vertical ? region.cx() : region.cy();

    // The Sec. IV block construction: movable cells plus one zero-area
    // propagated terminal per outside vertex, fixed to the cutline side
    // of its current position.
    hg::SubgraphOptions options;
    options.outside = hg::SubgraphOptions::OutsidePins::kTerminalPerVertex;
    const hg::Subgraph induced =
        hg::induce_subgraph(graph, region.cells, options);
    const hg::Hypergraph& block = induced.graph;
    const hg::VertexId num_movable = induced.num_movable;

    hg::FixedAssignment fixed(block.num_vertices(), 2);
    for (hg::VertexId t = num_movable; t < block.num_vertices(); ++t) {
      const hg::VertexId u = induced.original_of[t];
      const double coord = vertical ? pos_x[u] : pos_y[u];
      fixed.fix(t, coord < cutline ? 0 : 1);
    }
    fixed_pct.add(100.0 *
                  static_cast<double>(block.num_vertices() - num_movable) /
                  static_cast<double>(block.num_vertices()));

    const auto balance =
        part::BalanceConstraint::relative(block, 2, config.tolerance_pct);
    std::vector<hg::PartitionId> assignment;
    if (config.exact_threshold > 0 &&
        num_movable <= config.exact_threshold) {
      const part::ExactResult exact =
          part::exact_bipartition(block, fixed, balance);
      if (exact.feasible) {
        assignment = exact.assignment;
        cut_stat.add(static_cast<double>(exact.cut));
      }
    }
    if (assignment.empty()) {
      const ml::MultilevelPartitioner partitioner(block, fixed, balance);
      ml::MultilevelResult solved = partitioner.run(rng, config.ml);
      cut_stat.add(static_cast<double>(solved.cut));
      assignment = std::move(solved.assignment);
    }

    Region low = region;
    Region high = region;
    (vertical ? low.xhi : low.yhi) = cutline;
    (vertical ? high.xlo : high.ylo) = cutline;
    low.cells.clear();
    high.cells.clear();
    for (hg::VertexId local = 0; local < num_movable; ++local) {
      const hg::VertexId v = region.cells[local];
      (assignment[local] == 0 ? low : high).cells.push_back(v);
    }
    return {std::move(low), std::move(high)};
  }
};

}  // namespace

TopDownPlacer::TopDownPlacer(const PlacementProblem& problem)
    : problem_(problem) {
  if (problem.graph == nullptr) {
    throw std::invalid_argument("TopDownPlacer: null graph");
  }
  if (problem.width <= 0.0 || problem.height <= 0.0) {
    throw std::invalid_argument("TopDownPlacer: empty die");
  }
  const auto n = static_cast<std::size_t>(problem.graph->num_vertices());
  if (problem.pad_x.size() != n || problem.pad_y.size() != n) {
    throw std::invalid_argument("TopDownPlacer: pad coordinate size");
  }
}

PlacementResult TopDownPlacer::run(const PlacerConfig& config,
                                   util::Rng& rng) const {
  const hg::Hypergraph& graph = *problem_.graph;
  util::Timer total_timer;
  PlacementResult result;
  result.x = problem_.pad_x;
  result.y = problem_.pad_y;

  Region top{0.0, 0.0, problem_.width, problem_.height, {}};
  for (hg::VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (!graph.is_pad(v)) {
      top.cells.push_back(v);
      result.x[v] = top.cx();
      result.y[v] = top.cy();
    }
  }

  std::vector<Region> current;
  current.push_back(std::move(top));
  for (int level = 0; level < config.max_levels; ++level) {
    util::Timer level_timer;
    util::RunningStat fixed_pct;
    util::RunningStat cut_stat;
    const BlockSplitter splitter{graph, config, result.x, result.y, rng};
    std::vector<Region> next;
    bool any_split = false;
    for (Region& region : current) {
      if (static_cast<int>(region.cells.size()) < config.min_block_cells) {
        next.push_back(std::move(region));
        continue;
      }
      auto [low, high] = splitter.split(region, fixed_pct, cut_stat);
      for (Region* child : {&low, &high}) {
        for (const hg::VertexId v : child->cells) {
          result.x[v] = child->cx();
          result.y[v] = child->cy();
        }
      }
      next.push_back(std::move(low));
      next.push_back(std::move(high));
      any_split = true;
    }
    current = std::move(next);
    LevelStats stats;
    stats.blocks_split = static_cast<int>(fixed_pct.count());
    stats.avg_fixed_pct = fixed_pct.empty() ? 0.0 : fixed_pct.mean();
    stats.avg_cut = cut_stat.empty() ? 0.0 : cut_stat.mean();
    stats.seconds = level_timer.seconds();
    result.levels.push_back(stats);
    if (!any_split) break;
  }

  result.hpwl = half_perimeter_wirelength(graph, result.x, result.y);
  result.seconds = total_timer.seconds();
  return result;
}

}  // namespace fixedpart::place
