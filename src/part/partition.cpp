#include "part/partition.hpp"

#include <stdexcept>

namespace fixedpart::part {

PartitionState::PartitionState(const hg::Hypergraph& g, PartitionId num_parts)
    : graph_(&g), num_parts_(num_parts), num_resources_(g.num_resources()) {
  if (num_parts < 1) throw std::invalid_argument("PartitionState: parts<1");
  part_.assign(static_cast<std::size_t>(g.num_vertices()), hg::kNoPartition);
  pin_counts_.assign(static_cast<std::size_t>(g.num_nets()) *
                         static_cast<std::size_t>(num_parts),
                     0);
  populated_parts_.assign(static_cast<std::size_t>(g.num_nets()), 0);
  boundary_nets_.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  part_weights_.assign(static_cast<std::size_t>(num_parts) *
                           static_cast<std::size_t>(num_resources_),
                       0);
}

void PartitionState::add_to_part(VertexId v, PartitionId p) {
  part_[v] = p;
  for (int r = 0; r < num_resources_; ++r) {
    part_weights_[static_cast<std::size_t>(p) *
                      static_cast<std::size_t>(num_resources_) +
                  static_cast<std::size_t>(r)] += graph_->vertex_weight(v, r);
  }
  for (NetId e : graph_->nets_of(v)) {
    auto& count = pin_counts_[static_cast<std::size_t>(e) *
                                  static_cast<std::size_t>(num_parts_) +
                              static_cast<std::size_t>(p)];
    if (count == 0) {
      ++populated_parts_[e];
      if (populated_parts_[e] == 2) {
        cut_ += graph_->net_weight(e);
        for (VertexId u : graph_->pins(e)) ++boundary_nets_[u];
      }
    }
    ++count;
  }
}

void PartitionState::remove_from_part(VertexId v, PartitionId p) {
  part_[v] = hg::kNoPartition;
  for (int r = 0; r < num_resources_; ++r) {
    part_weights_[static_cast<std::size_t>(p) *
                      static_cast<std::size_t>(num_resources_) +
                  static_cast<std::size_t>(r)] -= graph_->vertex_weight(v, r);
  }
  for (NetId e : graph_->nets_of(v)) {
    auto& count = pin_counts_[static_cast<std::size_t>(e) *
                                  static_cast<std::size_t>(num_parts_) +
                              static_cast<std::size_t>(p)];
    --count;
    if (count == 0) {
      --populated_parts_[e];
      if (populated_parts_[e] == 1) {
        cut_ -= graph_->net_weight(e);
        for (VertexId u : graph_->pins(e)) --boundary_nets_[u];
      }
    }
  }
}

void PartitionState::assign(VertexId v, PartitionId p) {
  if (v < 0 || v >= graph_->num_vertices()) {
    throw std::out_of_range("PartitionState::assign: vertex");
  }
  if (p < 0 || p >= num_parts_) {
    throw std::out_of_range("PartitionState::assign: partition");
  }
  if (part_[v] != hg::kNoPartition) {
    throw std::logic_error("PartitionState::assign: already assigned");
  }
  add_to_part(v, p);
  ++num_assigned_;
}

void PartitionState::move(VertexId v, PartitionId to) {
  if (to < 0 || to >= num_parts_) {
    throw std::out_of_range("PartitionState::move: partition");
  }
  const PartitionId from = part_[v];
  if (from == hg::kNoPartition) {
    throw std::logic_error("PartitionState::move: vertex unassigned");
  }
  if (from == to) return;
  remove_from_part(v, from);
  add_to_part(v, to);
}

void PartitionState::unassign(VertexId v) {
  if (v < 0 || v >= graph_->num_vertices()) {
    throw std::out_of_range("PartitionState::unassign: vertex");
  }
  const PartitionId p = part_[v];
  if (p == hg::kNoPartition) {
    throw std::logic_error("PartitionState::unassign: not assigned");
  }
  remove_from_part(v, p);
  --num_assigned_;
}

Weight PartitionState::recompute_cut() const {
  Weight cut = 0;
  for (NetId e = 0; e < graph_->num_nets(); ++e) {
    PartitionId first = hg::kNoPartition;
    for (VertexId v : graph_->pins(e)) {
      const PartitionId p = part_[v];
      if (p == hg::kNoPartition) continue;
      if (first == hg::kNoPartition) {
        first = p;
      } else if (p != first) {
        cut += graph_->net_weight(e);
        break;
      }
    }
  }
  return cut;
}

void PartitionState::check_invariants() const {
  const hg::Hypergraph& g = *graph_;
  std::vector<std::int32_t> pins(pin_counts_.size(), 0);
  std::vector<Weight> weights(part_weights_.size(), 0);
  VertexId assigned = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartitionId p = part_[v];
    if (p == hg::kNoPartition) continue;
    if (p < 0 || p >= num_parts_) {
      throw std::logic_error("PartitionState: vertex " + std::to_string(v) +
                             " holds invalid partition " + std::to_string(p));
    }
    ++assigned;
    for (int r = 0; r < num_resources_; ++r) {
      weights[static_cast<std::size_t>(p) *
                  static_cast<std::size_t>(num_resources_) +
              static_cast<std::size_t>(r)] += g.vertex_weight(v, r);
    }
    for (NetId e : g.nets_of(v)) {
      ++pins[static_cast<std::size_t>(e) *
                 static_cast<std::size_t>(num_parts_) +
             static_cast<std::size_t>(p)];
    }
  }
  if (assigned != num_assigned_) {
    throw std::logic_error("PartitionState: assigned count diverged");
  }
  if (weights != part_weights_) {
    throw std::logic_error("PartitionState: part weights diverged");
  }
  if (pins != pin_counts_) {
    throw std::logic_error("PartitionState: pin counts diverged");
  }
  Weight cut = 0;
  for (NetId e = 0; e < g.num_nets(); ++e) {
    std::int16_t populated = 0;
    for (PartitionId p = 0; p < num_parts_; ++p) {
      populated += pins[static_cast<std::size_t>(e) *
                            static_cast<std::size_t>(num_parts_) +
                        static_cast<std::size_t>(p)] > 0;
    }
    if (populated != populated_parts_[e]) {
      throw std::logic_error("PartitionState: populated-part count diverged "
                             "on net " +
                             std::to_string(e));
    }
    if (populated > 1) cut += g.net_weight(e);
  }
  if (cut != cut_) {
    throw std::logic_error("PartitionState: cut diverged (incremental " +
                           std::to_string(cut_) + ", recomputed " +
                           std::to_string(cut) + ")");
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::int32_t on_cut = 0;
    for (NetId e : g.nets_of(v)) on_cut += populated_parts_[e] > 1;
    if (on_cut != boundary_nets_[v]) {
      throw std::logic_error("PartitionState: boundary degree diverged on "
                             "vertex " +
                             std::to_string(v));
    }
  }
}

void PartitionState::clear() {
  std::fill(part_.begin(), part_.end(), hg::kNoPartition);
  std::fill(pin_counts_.begin(), pin_counts_.end(), 0);
  std::fill(populated_parts_.begin(), populated_parts_.end(), 0);
  std::fill(boundary_nets_.begin(), boundary_nets_.end(), 0);
  std::fill(part_weights_.begin(), part_weights_.end(), 0);
  cut_ = 0;
  num_assigned_ = 0;
}

}  // namespace fixedpart::part
