#pragma once
// Flat Fiduccia-Mattheyses bipartitioning refinement with fixed vertices,
// the engine behind the paper's Section III studies:
//
//  * LIFO FM: bucket keys are true move gains, head insertion (classic).
//  * CLIP FM (Dutt-Deng cluster-oriented selection, used by the paper's
//    multilevel engine): all bucket keys start at zero and only gain
//    *updates* reorder the buckets, so vertices adjacent to just-moved
//    vertices float to the top and clusters are peeled off together.
//  * Pass-length cutoff (Table III): after the first pass, a pass may be
//    cut off after a fraction of the movable vertices has been moved,
//    which the paper shows is safe once enough terminals are fixed.
//  * Per-pass statistics (Table II): moves performed, best-prefix length
//    (moves actually kept — the rest are "wasted"), cut trajectory.
//
// A pass moves each movable vertex at most once (highest-feasible-gain
// first), then rolls back to the best prefix of the move sequence. Passes
// repeat until one fails to improve the cut.

#include <cstdint>
#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "part/balance.hpp"
#include "part/gain_buckets.hpp"
#include "part/partition.hpp"
#include "util/rng.hpp"

namespace fixedpart::part {

enum class SelectionPolicy : std::uint8_t {
  kLifo,  ///< classic FM: buckets keyed by true gain, ties last-in first-out
  kFifo,  ///< buckets keyed by true gain, ties first-in first-out
  kClip,  ///< CLIP: keys seeded at zero; only deltas order the buckets
};

struct FmConfig {
  SelectionPolicy policy = SelectionPolicy::kLifo;
  /// Fraction of movable vertices a pass may move before it is cut off
  /// (1.0 = full pass). Applied starting from the second pass unless
  /// cutoff_first_pass is set, mirroring the paper's Table III protocol
  /// ("cutting off all passes (after the first) at the given move limit").
  double pass_cutoff = 1.0;
  bool cutoff_first_pass = false;
  /// Hard cap on passes; refinement normally stops earlier, at the first
  /// non-improving pass.
  int max_passes = 64;
  /// Record per-pass statistics (cheap; on by default).
  bool collect_pass_records = true;
  /// Debug mode: after every move, verify that each bucketed vertex's key
  /// equals its true gain (LIFO/FIFO; CLIP keys are deltas and are checked
  /// against gain change instead). O(movable * degree) per move — tests
  /// only. Throws std::logic_error on the first violation.
  bool check_invariants = false;
};

struct PassRecord {
  std::int32_t moves_performed = 0;  ///< moves made before pass end/cutoff
  std::int32_t best_prefix = 0;      ///< moves kept after rollback
  std::int32_t movable = 0;          ///< movable (non-fixed) vertex count
  Weight cut_before = 0;
  Weight cut_best = 0;
  /// Fraction of performed moves that were undone ("wasted", Sec. III).
  double wasted_fraction() const {
    return moves_performed == 0
               ? 0.0
               : 1.0 - static_cast<double>(best_prefix) /
                           static_cast<double>(moves_performed);
  }
};

struct FmResult {
  Weight initial_cut = 0;
  Weight final_cut = 0;
  std::int32_t passes = 0;
  std::int64_t total_moves = 0;
  std::vector<PassRecord> pass_records;
};

class FmBipartitioner {
 public:
  /// All references must outlive the partitioner. num_parts must be 2 in
  /// `fixed` and `balance`.
  FmBipartitioner(const hg::Hypergraph& graph, const hg::FixedAssignment& fixed,
                  const BalanceConstraint& balance);

  /// Iteratively improves `state` (which must be a complete assignment
  /// consistent with the fixed vertices). Deterministic given `rng` state.
  FmResult refine(PartitionState& state, util::Rng& rng,
                  const FmConfig& config);

  /// Vertices free to move between both sides.
  VertexId num_movable() const {
    return static_cast<VertexId>(movable_.size());
  }

 private:
  struct MoveLog {
    VertexId vertex;
    PartitionId from;
  };

  /// One FM pass; returns the improvement (>= 0) kept after rollback.
  Weight run_pass(PartitionState& state, util::Rng& rng,
                  const FmConfig& config, bool first_pass, PassRecord& record);

  Weight true_gain(const PartitionState& state, VertexId v) const;
  /// Policy-aware re-keying: LIFO/CLIP move updated vertices to the bucket
  /// head, FIFO to the tail.
  void bucket_adjust(PartitionId side, VertexId u, Weight delta);
  void apply_gain_updates(PartitionState& state, VertexId v, PartitionId from,
                          PartitionId to);

  const hg::Hypergraph* graph_;
  const hg::FixedAssignment* fixed_;
  const BalanceConstraint* balance_;
  std::vector<VertexId> movable_;
  std::vector<std::uint8_t> locked_;
  SelectionPolicy policy_ = SelectionPolicy::kLifo;  ///< of the active pass
  GainBuckets buckets_[2];
  std::vector<VertexId> order_;     // per-pass random insertion order
  std::vector<Weight> gain_scratch_;  // CLIP: cached actual gains for sorting
  std::vector<MoveLog> move_log_;
};

}  // namespace fixedpart::part
