#pragma once
// Flat Fiduccia-Mattheyses bipartitioning refinement with fixed vertices,
// the engine behind the paper's Section III studies:
//
//  * LIFO FM: bucket keys are true move gains, head insertion (classic).
//  * CLIP FM (Dutt-Deng cluster-oriented selection, used by the paper's
//    multilevel engine): all bucket keys start at zero and only gain
//    *updates* reorder the buckets, so vertices adjacent to just-moved
//    vertices float to the top and clusters are peeled off together.
//  * Pass-length cutoff (Table III): after the first pass, a pass may be
//    cut off after a fraction of the movable vertices has been moved,
//    which the paper shows is safe once enough terminals are fixed.
//  * Stall exit (generalizing the Table III observation): a pass may also
//    end after a configurable streak of non-improving moves, trimming the
//    "wasted" tail adaptively instead of at a fixed move count.
//  * Per-pass statistics (Table II): moves performed, best-prefix length
//    (moves actually kept — the rest are "wasted"), cut trajectory.
//
// A pass moves each movable vertex at most once (highest-feasible-gain
// first), then rolls back to the best prefix of the move sequence. Passes
// repeat until one fails to improve the cut.
//
// The hot path is boundary-driven (docs/PERF.md): only vertices touching a
// cut net enter the gain buckets eagerly; interior vertices sit in a static
// per-side structure keyed by their constant gain (-interior degree) and
// are activated lazily when a move first cuts one of their nets. Insertion
// phases and activation points are arranged so that boundary-driven passes
// replay *bit-identical* trajectories to full bucket population.

#include <cstdint>
#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "obs/pass_observer.hpp"
#include "part/balance.hpp"
#include "part/gain_buckets.hpp"
#include "part/partition.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"

namespace fixedpart::part {

enum class SelectionPolicy : std::uint8_t {
  kLifo,  ///< classic FM: buckets keyed by true gain, ties last-in first-out
  kFifo,  ///< buckets keyed by true gain, ties first-in first-out
  kClip,  ///< CLIP: keys seeded at zero; only deltas order the buckets
};

struct FmConfig {
  SelectionPolicy policy = SelectionPolicy::kLifo;
  /// Fraction of movable vertices a pass may move before it is cut off
  /// (1.0 = full pass). Applied starting from the second pass unless
  /// cutoff_first_pass is set, mirroring the paper's Table III protocol
  /// ("cutting off all passes (after the first) at the given move limit").
  double pass_cutoff = 1.0;
  bool cutoff_first_pass = false;
  /// Early pass exit generalizing the Table III cutoff: a pass also ends
  /// once max(stall_min, stall_fraction * movable) consecutive moves fail
  /// to improve on the pass-best cut. Unlike pass_cutoff this adapts to
  /// where improvement actually stops (Sec. III: gains concentrate at the
  /// start of a pass). >= 1.0 disables (the paper's full-pass protocol);
  /// the multilevel engine enables it by default.
  double stall_fraction = 1.0;
  /// Floor of the stall window, so small instances still run full passes.
  std::int32_t stall_min = 64;
  /// Hard cap on passes; refinement normally stops earlier, at the first
  /// non-improving pass.
  int max_passes = 64;
  /// Record per-pass statistics (cheap; on by default).
  bool collect_pass_records = true;
  /// Boundary-driven bucket population (the default). Produces the same
  /// moves, cuts and pass counts as full population (boundary = false,
  /// the reference implementation kept for differential testing) while
  /// skipping gain recomputation for interior vertices. CLIP ignores this
  /// flag for population (its zero-seeded keys make insertion order itself
  /// the selection signal, which requires every vertex) but still uses the
  /// boundary set to compute initial gains cheaply.
  bool boundary = true;
  /// Parallel initial-gain computation: total concurrency (the calling
  /// thread plus workers borrowed from util::ThreadPool::shared()) used to
  /// fill the per-pass gain cache over disjoint shards of the movable
  /// list. 1 = serial (the default). Gains are pure reads of the frozen
  /// pass-start state and the cache holds exactly the values the serial
  /// pin scans would produce, so refinement trajectories are bit-identical
  /// for every value — this knob is wall-clock only. The move loop itself
  /// stays serial (FM is inherently sequential; the parallel round model
  /// in src/ml/parallel.hpp is the alternative for large levels).
  int threads = 1;
  /// Optional wall-clock budget (not owned; must outlive the refinement;
  /// nullptr = unlimited). Checked between moves and between passes: on
  /// expiry the current pass ends early, rolls back to its best prefix as
  /// usual, and refine() returns with `truncated` set — the state is
  /// always the best solution seen, never a mid-move snapshot.
  const util::Deadline* deadline = nullptr;
  /// Optional profiling hook (not owned; must outlive the refinement;
  /// nullptr = none). Invoked per pass begin / accepted move / pass end
  /// with the physical sequence the engine performed — see
  /// obs::PassObserver. Ignored when built with FIXEDPART_OBS=OFF.
  obs::PassObserver* observer = nullptr;
  /// Debug mode: after every move, verify that each bucketed vertex's key
  /// equals its true gain (LIFO/FIFO; CLIP keys are deltas and are checked
  /// against gain change instead), and that parked interior vertices'
  /// static keys equal their true gains. O(movable * degree) per move —
  /// tests only. Throws std::logic_error on the first violation.
  bool check_invariants = false;
};

struct PassRecord {
  std::int32_t moves_performed = 0;  ///< moves made before pass end/cutoff
  std::int32_t best_prefix = 0;      ///< moves kept after rollback
  std::int32_t movable = 0;          ///< movable (non-fixed) vertex count
  std::int32_t boundary_vertices = 0;  ///< movables on the cut at pass start
  Weight cut_before = 0;
  Weight cut_best = 0;
  /// Fraction of performed moves that were undone ("wasted", Sec. III).
  double wasted_fraction() const {
    return moves_performed == 0
               ? 0.0
               : 1.0 - static_cast<double>(best_prefix) /
                           static_cast<double>(moves_performed);
  }
};

struct FmResult {
  Weight initial_cut = 0;
  Weight final_cut = 0;
  std::int32_t passes = 0;
  std::int64_t total_moves = 0;
  /// The deadline expired before refinement converged; the state holds the
  /// best solution found so far (degraded mode, not an error).
  bool truncated = false;
  std::vector<PassRecord> pass_records;
};

/// Reusable refinement workspace: the gain buckets, the interior-vertex
/// side structure, the per-pass insertion order, the CLIP gain cache and
/// the move log. Setting these up per level used to dominate multilevel
/// refinement setup, so MultilevelPartitioner::run owns one scratch and
/// threads it through every level's FmBipartitioner: storage grows to the
/// largest level of the hierarchy once and is reused across levels, passes
/// and V-cycles. A scratch may serve any number of refiners sequentially
/// but is exclusive to one refine() at a time — use one per thread.
class FmScratch {
 public:
  FmScratch() = default;
  FmScratch(const FmScratch&) = delete;
  FmScratch& operator=(const FmScratch&) = delete;

 private:
  friend class FmBipartitioner;
  struct MoveLog {
    VertexId vertex;
    PartitionId from;
  };

  /// Grow-only sizing for a graph with `vertices` vertices and dynamic
  /// keys within [-max_key, max_key] (interior keys within [-interior_key,
  /// 0]). Clears all four bucket structures.
  void reserve(VertexId vertices, Weight max_key, Weight interior_key);

  GainBuckets buckets_[2];   ///< boundary/activated vertices, live keys
  GainBuckets interior_[2];  ///< parked interior vertices, static keys
  std::vector<VertexId> order_;       ///< per-pass random insertion order
  std::vector<Weight> gain_scratch_;  ///< CLIP: initial gains for sorting
  std::vector<MoveLog> move_log_;
};

class FmBipartitioner {
 public:
  /// All references must outlive the partitioner. num_parts must be 2 in
  /// `fixed` and `balance`. When `scratch` is non-null its storage is used
  /// (and grown) instead of partitioner-owned buffers; pass the same
  /// scratch to successive refiners to amortize setup across a hierarchy.
  FmBipartitioner(const hg::Hypergraph& graph, const hg::FixedAssignment& fixed,
                  const BalanceConstraint& balance,
                  FmScratch* scratch = nullptr);

  /// Iteratively improves `state` (which must be a complete assignment
  /// consistent with the fixed vertices). Deterministic given `rng` state.
  FmResult refine(PartitionState& state, util::Rng& rng,
                  const FmConfig& config);

  /// Vertices free to move between both sides.
  VertexId num_movable() const {
    return static_cast<VertexId>(movable_.size());
  }

 private:
  /// One FM pass; returns the improvement (>= 0) kept after rollback.
  Weight run_pass(PartitionState& state, util::Rng& rng,
                  const FmConfig& config, int pass_index, PassRecord& record);

  Weight true_gain(const PartitionState& state, VertexId v) const;
  /// Policy-aware re-keying: LIFO/CLIP move updated vertices to the bucket
  /// head, FIFO to the tail.
  void bucket_adjust(PartitionId side, VertexId u, Weight delta);
  /// Applies a gain delta to u on `side`: adjusts it in the live buckets,
  /// or — if u is parked as interior — activates it. Activation links u
  /// exactly where a full-population pass's adjust would have re-linked
  /// it, which is what keeps the two population modes bit-identical.
  void touch(PartitionId side, VertexId u, Weight delta);
  void apply_gain_updates(PartitionState& state, VertexId v, PartitionId from,
                          PartitionId to);
  void verify_invariants(const PartitionState& state,
                         const FmConfig& config) const;

  const hg::Hypergraph* graph_;
  const hg::FixedAssignment* fixed_;
  const BalanceConstraint* balance_;
  std::vector<VertexId> movable_;
  /// Gain of v while it touches no cut net: -(weighted degree over nets
  /// with >= 2 pins). Constant per graph; lets pass setup skip the pin
  /// scan for every interior vertex.
  std::vector<Weight> interior_key_;
  SelectionPolicy policy_ = SelectionPolicy::kLifo;  ///< of the active pass
  bool boundary_pass_ = false;  ///< active pass populates boundary-only
  FmScratch owned_scratch_;     ///< used when no shared scratch is given
  FmScratch* scratch_;
};

}  // namespace fixedpart::part
