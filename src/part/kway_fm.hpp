#pragma once
// k-way FM refinement — the paper's Sec. V asks "whether multiway
// partitioning is as affected by fixed terminals"; this engine powers that
// extension experiment. It also honours OR-restricted vertices (fixed into
// a *set* of allowed partitions, Sec. IV) since a move target is only ever
// chosen from the vertex's allowed mask.
//
// Design: one bucket structure keyed by each vertex's best feasible move
// gain (target memoized). Neighbour gains are recomputed exactly after
// every move; stale tops are lazily re-keyed at pop time. Passes use
// best-prefix rollback like the bipartitioner.

#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "part/balance.hpp"
#include "part/fm.hpp"
#include "part/gain_buckets.hpp"
#include "part/partition.hpp"
#include "util/rng.hpp"

namespace fixedpart::part {

struct KwayConfig {
  /// Pass move cutoff as a fraction of movable vertices (Table III
  /// heuristic generalized to k-way); applied after the first pass.
  double pass_cutoff = 1.0;
  int max_passes = 64;
  /// Optional profiling hook (not owned; must outlive the refinement;
  /// nullptr = none) — see obs::PassObserver. boundary_vertices is -1 in
  /// PassBegin (this engine tracks no boundary set). Ignored when built
  /// with FIXEDPART_OBS=OFF.
  obs::PassObserver* observer = nullptr;
};

class KwayFmRefiner {
 public:
  KwayFmRefiner(const hg::Hypergraph& graph, const hg::FixedAssignment& fixed,
                const BalanceConstraint& balance);

  FmResult refine(PartitionState& state, util::Rng& rng,
                  const KwayConfig& config);

  VertexId num_movable() const {
    return static_cast<VertexId>(movable_.size());
  }

 private:
  struct BestMove {
    Weight gain = 0;
    PartitionId target = hg::kNoPartition;  ///< kNoPartition: no feasible move
  };
  struct MoveLog {
    VertexId vertex;
    PartitionId from;
  };

  Weight move_gain(const PartitionState& state, VertexId v,
                   PartitionId to) const;
  BestMove best_move(const PartitionState& state, VertexId v) const;
  bool feasible(const PartitionState& state, VertexId v, PartitionId to) const;
  Weight run_pass(PartitionState& state, util::Rng& rng,
                  const KwayConfig& config, int pass_index,
                  PassRecord& record);

  const hg::Hypergraph* graph_;
  const hg::FixedAssignment* fixed_;
  const BalanceConstraint* balance_;
  std::vector<VertexId> movable_;
  std::vector<std::uint8_t> locked_;
  std::vector<PartitionId> target_;  ///< memoized target per bucketed vertex
  GainBuckets buckets_;
  std::vector<MoveLog> move_log_;
  std::vector<VertexId> order_;
};

}  // namespace fixedpart::part
