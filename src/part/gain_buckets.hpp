#pragma once
// The classic Fiduccia-Mattheyses bucket-list priority structure: an array
// of doubly-linked lists indexed by gain, with O(1) insert / remove /
// adjust and amortized-O(1) max tracking. Insertion is at the list head,
// which yields LIFO tie-breaking among equal gains — the "LIFO FM" of the
// paper; CLIP is realized by the caller seeding all keys at zero so that
// only *deltas* (cluster signals) order the bucket.

#include <vector>

#include "hg/types.hpp"

namespace fixedpart::part {

using hg::VertexId;
using hg::Weight;

class GainBuckets {
 public:
  /// capacity: vertex id space; keys must stay within [-max_key, +max_key].
  GainBuckets(VertexId capacity, Weight max_key);

  /// Remove all vertices (O(buckets + contents)).
  void clear();

  bool empty() const { return size_ == 0; }
  VertexId size() const { return size_; }
  bool contains(VertexId v) const { return in_[v] != 0; }
  Weight key_of(VertexId v) const { return key_[v]; }

  /// Insert v with the given key at the head of its bucket.
  void insert(VertexId v, Weight key);
  /// Insert v at the tail of its bucket (FIFO tie-breaking).
  void insert_back(VertexId v, Weight key);
  void remove(VertexId v);
  /// Add delta to v's key and move it to the head of the new bucket (FM
  /// convention: freshly-updated vertices are preferred among equals).
  void adjust(VertexId v, Weight delta);
  /// As adjust, but re-inserts at the tail (FIFO: updated vertices queue
  /// behind equals).
  void adjust_back(VertexId v, Weight delta);

  /// Highest key present; requires !empty().
  Weight max_key() const;

  /// Highest-key vertex satisfying `feasible`, scanning buckets downward
  /// and each bucket front-to-back. Returns kNoVertex if none qualifies.
  template <typename Pred>
  VertexId find_best(Pred&& feasible) const {
    if (size_ == 0) return hg::kNoVertex;
    settle_max();
    for (std::ptrdiff_t b = max_bucket_; b >= 0; --b) {
      for (VertexId v = head_[static_cast<std::size_t>(b)];
           v != hg::kNoVertex; v = next_[v]) {
        if (feasible(v)) return v;
      }
    }
    return hg::kNoVertex;
  }

 private:
  std::size_t bucket_of_key(Weight key) const;
  void settle_max() const;
  void unlink(VertexId v);
  void link_front(VertexId v, Weight key);
  void link_back(VertexId v, Weight key);

  Weight max_key_bound_;
  std::vector<VertexId> head_;
  std::vector<VertexId> tail_;
  std::vector<VertexId> next_;
  std::vector<VertexId> prev_;
  std::vector<Weight> key_;
  std::vector<std::uint8_t> in_;
  mutable std::ptrdiff_t max_bucket_ = -1;  // lazy upper bound
  VertexId size_ = 0;
};

}  // namespace fixedpart::part
