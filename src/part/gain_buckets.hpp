#pragma once
// The classic Fiduccia-Mattheyses bucket-list priority structure: an array
// of doubly-linked lists indexed by gain, with O(1) insert / remove /
// adjust and amortized-O(1) max tracking. Insertion is at the list head,
// which yields LIFO tie-breaking among equal gains — the "LIFO FM" of the
// paper; CLIP is realized by the caller seeding all keys at zero so that
// only *deltas* (cluster signals) order the bucket.
//
// Built for reuse across passes and hierarchy levels: clear() touches only
// the buckets populated since the last clear (not the whole key range), and
// reshape() grows capacity/key range in place so one structure serves every
// level of a multilevel hierarchy without reallocation.

#include <vector>

#include "hg/types.hpp"

namespace fixedpart::part {

using hg::VertexId;
using hg::Weight;

class GainBuckets {
 public:
  /// An empty structure with zero capacity; reshape() before use.
  GainBuckets() = default;

  /// capacity: vertex id space; keys must stay within [-max_key, +max_key].
  GainBuckets(VertexId capacity, Weight max_key);

  /// Grow-only resize (capacity and/or key range); keeps existing storage
  /// when the request already fits. Must be empty. The accepted key range
  /// only ever widens, so callers can size per use (e.g. per selection
  /// policy) and share one structure across differently-sized graphs.
  void reshape(VertexId capacity, Weight max_key);

  VertexId capacity() const { return static_cast<VertexId>(in_.size()); }
  Weight max_key_bound() const { return max_key_bound_; }

  /// Remove all vertices: O(touched buckets + contents), NOT O(key range) —
  /// a pass that populated few buckets pays only for those.
  void clear();

  bool empty() const { return size_ == 0; }
  VertexId size() const { return size_; }
  bool contains(VertexId v) const { return in_[v] != 0; }
  Weight key_of(VertexId v) const { return key_[v]; }

  /// Insert v with the given key at the head of its bucket.
  void insert(VertexId v, Weight key);
  /// Insert v at the tail of its bucket (FIFO tie-breaking).
  void insert_back(VertexId v, Weight key);
  void remove(VertexId v);
  /// Add delta to v's key and move it to the head of the new bucket (FM
  /// convention: freshly-updated vertices are preferred among equals).
  void adjust(VertexId v, Weight delta);
  /// As adjust, but re-inserts at the tail (FIFO: updated vertices queue
  /// behind equals).
  void adjust_back(VertexId v, Weight delta);

  /// Highest key present; requires !empty().
  Weight max_key() const;

  /// Highest-key vertex satisfying `feasible`, scanning buckets downward
  /// and each bucket front-to-back. Returns kNoVertex if none qualifies.
  template <typename Pred>
  VertexId find_best(Pred&& feasible) const {
    if (size_ == 0) return hg::kNoVertex;
    settle_max();
    for (std::ptrdiff_t b = max_bucket_; b >= 0; --b) {
      for (VertexId v = head_[static_cast<std::size_t>(b)];
           v != hg::kNoVertex; v = next_[v]) {
        if (feasible(v)) return v;
      }
    }
    return hg::kNoVertex;
  }

 private:
  std::size_t bucket_of_key(Weight key) const;
  void settle_max() const;
  void unlink(VertexId v);
  void link_front(VertexId v, Weight key);
  void link_back(VertexId v, Weight key);
  void note_touched(std::size_t b);

  Weight max_key_bound_ = -1;  // -1: no key range allocated yet
  std::vector<VertexId> head_;
  std::vector<VertexId> tail_;
  std::vector<VertexId> next_;
  std::vector<VertexId> prev_;
  std::vector<Weight> key_;
  std::vector<std::uint8_t> in_;
  std::vector<std::size_t> touched_;      // buckets populated since clear()
  std::vector<std::uint8_t> bucket_used_;  // dedups touched_ entries
  mutable std::ptrdiff_t max_bucket_ = -1;  // lazy upper bound
  VertexId size_ = 0;
};

}  // namespace fixedpart::part
