#pragma once
// Pairwise k-way refinement: the classic alternative to direct k-way FM.
// Sweeps over part pairs (a,b) and improves each pair with 2-way moves
// while every other vertex stays put, until a full sweep yields no
// improvement. Realized by reusing the k-way engine with a temporary
// allowed-mask restriction (vertices outside the pair pinned in place,
// pair vertices restricted to {a,b} intersected with their own allowed
// sets), so fixed vertices and Sec. IV OR-sets are honoured for free.

#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "part/balance.hpp"
#include "part/kway_fm.hpp"
#include "part/partition.hpp"
#include "util/rng.hpp"

namespace fixedpart::part {

struct PairwiseConfig {
  /// Maximum full sweeps over all pairs; stops earlier when a sweep
  /// yields no improvement.
  int max_sweeps = 8;
  /// Pass cutoff for the inner 2-way refinements (Table III heuristic).
  double pass_cutoff = 1.0;
};

struct PairwiseResult {
  Weight initial_cut = 0;
  Weight final_cut = 0;
  int sweeps = 0;
};

class PairwiseRefiner {
 public:
  PairwiseRefiner(const hg::Hypergraph& graph,
                  const hg::FixedAssignment& fixed,
                  const BalanceConstraint& balance);

  /// Refines a complete k-way `state` in place.
  PairwiseResult refine(PartitionState& state, util::Rng& rng,
                        const PairwiseConfig& config);

 private:
  const hg::Hypergraph* graph_;
  const hg::FixedAssignment* fixed_;
  const BalanceConstraint* balance_;
};

}  // namespace fixedpart::part
