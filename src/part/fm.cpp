#include "part/fm.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

namespace fixedpart::part {

namespace {

/// CLIP keys accumulate deltas on top of a zero seed, so they can drift to
/// (initial gain distance) beyond the true gain range; 2x covers it.
Weight key_range(const hg::Hypergraph& g) {
  return 2 * g.max_weighted_vertex_degree() + 1;
}

}  // namespace

FmBipartitioner::FmBipartitioner(const hg::Hypergraph& graph,
                                 const hg::FixedAssignment& fixed,
                                 const BalanceConstraint& balance)
    : graph_(&graph),
      fixed_(&fixed),
      balance_(&balance),
      locked_(static_cast<std::size_t>(graph.num_vertices()), 0),
      buckets_{GainBuckets(graph.num_vertices(), key_range(graph)),
               GainBuckets(graph.num_vertices(), key_range(graph))} {
  if (fixed.num_parts() != 2 || balance.num_parts() != 2) {
    throw std::invalid_argument("FmBipartitioner: needs exactly 2 parts");
  }
  if (fixed.num_vertices() != graph.num_vertices()) {
    throw std::invalid_argument("FmBipartitioner: fixed size mismatch");
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (fixed.is_allowed(v, 0) && fixed.is_allowed(v, 1)) {
      movable_.push_back(v);
    }
  }
  move_log_.reserve(movable_.size());
}

Weight FmBipartitioner::true_gain(const PartitionState& state,
                                  VertexId v) const {
  const PartitionId from = state.part_of(v);
  const PartitionId to = 1 - from;
  Weight gain = 0;
  for (hg::NetId e : graph_->nets_of(v)) {
    const Weight w = graph_->net_weight(e);
    if (state.pin_count(e, from) == 1) gain += w;  // move uncuts e
    if (state.pin_count(e, to) == 0) gain -= w;    // move newly cuts e
  }
  return gain;
}

void FmBipartitioner::bucket_adjust(PartitionId side, VertexId u, Weight delta) {
  if (policy_ == SelectionPolicy::kFifo) {
    buckets_[side].adjust_back(u, delta);
  } else {
    buckets_[side].adjust(u, delta);
  }
}

void FmBipartitioner::apply_gain_updates(PartitionState& state, VertexId v,
                                         PartitionId from, PartitionId to) {
  // Standard FM delta rules, evaluated on the pre-move pin counts. The
  // bucket keys of unlocked pins shift by the change in their true gain;
  // under CLIP the same deltas are applied to the zero-seeded keys.
  for (hg::NetId e : graph_->nets_of(v)) {
    const Weight w = graph_->net_weight(e);
    if (w == 0) continue;
    const int cnt_to = state.pin_count(e, to);
    const int cnt_from_after = state.pin_count(e, from) - 1;
    const bool all_updates_trivial = cnt_to > 1 && cnt_from_after > 1;
    if (all_updates_trivial) continue;

    const auto pins = graph_->pins(e);
    if (cnt_to == 0) {
      // Net was uncut on `from`; every other pin gains w.
      for (VertexId u : pins) {
        if (u != v && buckets_[from].contains(u)) {
          bucket_adjust(from, u, +w);
        }
      }
    } else if (cnt_to == 1) {
      // The single `to`-side pin loses its uncut-by-moving gain.
      for (VertexId u : pins) {
        if (u != v && state.part_of(u) == to) {
          if (buckets_[to].contains(u)) bucket_adjust(to, u, -w);
          break;
        }
      }
    }
    if (cnt_from_after == 0) {
      // Net becomes uncut on `to`; every other pin now cuts by moving.
      for (VertexId u : pins) {
        if (u != v && buckets_[to].contains(u)) {
          bucket_adjust(to, u, -w);
        }
      }
    } else if (cnt_from_after == 1) {
      // The single remaining `from`-side pin can now uncut the net.
      for (VertexId u : pins) {
        if (u != v && u != hg::kNoVertex && state.part_of(u) == from) {
          if (buckets_[from].contains(u)) bucket_adjust(from, u, +w);
          break;
        }
      }
    }
  }
}

Weight FmBipartitioner::run_pass(PartitionState& state, util::Rng& rng,
                                 const FmConfig& config, bool first_pass,
                                 PassRecord& record) {
  const auto movable_count = static_cast<std::int32_t>(movable_.size());
  record.movable = movable_count;
  record.cut_before = state.cut();
  record.cut_best = state.cut();
  if (movable_count == 0) return 0;

  // Random insertion order diversifies LIFO tie-breaking between passes.
  order_ = movable_;
  rng.shuffle(std::span<VertexId>(order_));
  if (config.policy == SelectionPolicy::kClip) {
    // CLIP seeds every key at zero, so bucket order IS the tie-break for
    // the first selection: insert in ascending actual gain (head insertion
    // reverses it) so the pass starts from the highest-actual-gain vertex
    // and then follows update gains — the cluster signal (Dutt-Deng).
    gain_scratch_.resize(static_cast<std::size_t>(graph_->num_vertices()));
    for (VertexId v : order_) gain_scratch_[v] = true_gain(state, v);
    std::stable_sort(order_.begin(), order_.end(),
                     [&](VertexId a, VertexId b) {
                       return gain_scratch_[a] < gain_scratch_[b];
                     });
  }
  policy_ = config.policy;
  buckets_[0].clear();
  buckets_[1].clear();
  for (VertexId v : order_) {
    locked_[v] = 0;
    const Weight key =
        config.policy == SelectionPolicy::kClip ? 0 : true_gain(state, v);
    if (config.policy == SelectionPolicy::kFifo) {
      buckets_[state.part_of(v)].insert_back(v, key);
    } else {
      buckets_[state.part_of(v)].insert(v, key);
    }
  }

  std::int32_t move_limit = movable_count;
  if (!first_pass || config.cutoff_first_pass) {
    if (config.pass_cutoff < 1.0) {
      move_limit = std::max<std::int32_t>(
          1, static_cast<std::int32_t>(
                 std::llround(config.pass_cutoff * movable_count)));
    }
  }

  move_log_.clear();
  const Weight cut_start = state.cut();
  Weight best_cut = cut_start;
  std::int32_t best_prefix = 0;

  while (static_cast<std::int32_t>(move_log_.size()) < move_limit) {
    // Best feasible candidate from each side; feasibility = target side
    // stays under its capacity in every resource.
    VertexId candidate[2] = {hg::kNoVertex, hg::kNoVertex};
    for (PartitionId side = 0; side < 2; ++side) {
      const PartitionId target = 1 - side;
      candidate[side] = buckets_[side].find_best([&](VertexId u) {
        Weight add[8];
        const int nr = graph_->num_resources();
        for (int r = 0; r < nr; ++r) add[r] = graph_->vertex_weight(u, r);
        return balance_->fits(state.part_weight_vector(target),
                              std::span<const Weight>(add, nr), target);
      });
    }
    PartitionId side;
    if (candidate[0] == hg::kNoVertex && candidate[1] == hg::kNoVertex) break;
    if (candidate[0] == hg::kNoVertex) {
      side = 1;
    } else if (candidate[1] == hg::kNoVertex) {
      side = 0;
    } else {
      const Weight k0 = buckets_[0].key_of(candidate[0]);
      const Weight k1 = buckets_[1].key_of(candidate[1]);
      if (k0 != k1) {
        side = k0 > k1 ? 0 : 1;
      } else {
        // Tie: move from the heavier side (improves balance slack).
        side = state.part_weight(0) >= state.part_weight(1) ? 0 : 1;
      }
    }
    const VertexId v = candidate[side];
    const PartitionId from = side;
    const PartitionId to = 1 - side;

    buckets_[from].remove(v);
    locked_[v] = 1;
    apply_gain_updates(state, v, from, to);
    state.move(v, to);
    move_log_.push_back({v, from});

    if (config.check_invariants) {
      // Every unlocked vertex's key must track its true gain: exactly for
      // LIFO/FIFO, and up to the constant CLIP zero-seed offset otherwise.
      for (VertexId u : order_) {
        for (PartitionId side = 0; side < 2; ++side) {
          if (!buckets_[side].contains(u)) continue;
          const Weight expected =
              config.policy == SelectionPolicy::kClip
                  ? true_gain(state, u) - gain_scratch_[u]
                  : true_gain(state, u);
          if (buckets_[side].key_of(u) != expected) {
            throw std::logic_error(
                "FmBipartitioner: bucket key diverged from true gain");
          }
        }
      }
    }

    if (state.cut() < best_cut) {
      best_cut = state.cut();
      best_prefix = static_cast<std::int32_t>(move_log_.size());
    }
  }

  // Roll back to the best prefix; the undone tail is the "wasted" work of
  // Sec. III.
  for (std::size_t i = move_log_.size(); i > static_cast<std::size_t>(best_prefix);
       --i) {
    const MoveLog& entry = move_log_[i - 1];
    state.move(entry.vertex, entry.from);
  }

  record.moves_performed = static_cast<std::int32_t>(move_log_.size());
  record.best_prefix = best_prefix;
  record.cut_best = best_cut;
  return cut_start - best_cut;
}

FmResult FmBipartitioner::refine(PartitionState& state, util::Rng& rng,
                                 const FmConfig& config) {
  if (state.num_parts() != 2) {
    throw std::invalid_argument("FmBipartitioner::refine: needs 2 parts");
  }
  if (state.num_assigned() != graph_->num_vertices()) {
    throw std::invalid_argument("FmBipartitioner::refine: incomplete state");
  }
  if (graph_->num_resources() > 8) {
    throw std::invalid_argument("FmBipartitioner: more than 8 resources");
  }
  for (VertexId v : movable_) locked_[v] = 0;

  FmResult result;
  result.initial_cut = state.cut();
  for (int pass = 0; pass < config.max_passes; ++pass) {
    PassRecord record;
    const Weight gain = run_pass(state, rng, config, pass == 0, record);
    ++result.passes;
    result.total_moves += record.moves_performed;
    if (config.collect_pass_records) result.pass_records.push_back(record);
    if (gain <= 0) break;
  }
  result.final_cut = state.cut();
  return result;
}

}  // namespace fixedpart::part
