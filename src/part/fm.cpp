#include "part/fm.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <span>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace fixedpart::part {

void FmScratch::reserve(VertexId vertices, Weight max_key,
                        Weight interior_key) {
  for (int s = 0; s < 2; ++s) {
    buckets_[s].clear();
    buckets_[s].reshape(vertices, max_key);
    interior_[s].clear();
    interior_[s].reshape(vertices, interior_key);
  }
  order_.clear();
  order_.reserve(static_cast<std::size_t>(vertices));
  move_log_.clear();
  move_log_.reserve(static_cast<std::size_t>(vertices));
}

FmBipartitioner::FmBipartitioner(const hg::Hypergraph& graph,
                                 const hg::FixedAssignment& fixed,
                                 const BalanceConstraint& balance,
                                 FmScratch* scratch)
    : graph_(&graph),
      fixed_(&fixed),
      balance_(&balance),
      scratch_(scratch != nullptr ? scratch : &owned_scratch_) {
  if (fixed.num_parts() != 2 || balance.num_parts() != 2) {
    throw std::invalid_argument("FmBipartitioner: needs exactly 2 parts");
  }
  if (fixed.num_vertices() != graph.num_vertices()) {
    throw std::invalid_argument("FmBipartitioner: fixed size mismatch");
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (fixed.is_allowed(v, 0) && fixed.is_allowed(v, 1)) {
      movable_.push_back(v);
    }
  }
  // A vertex with no incident cut net loses every >= 2-pin net by moving
  // and uncuts none, so its gain is the negated weighted interior degree —
  // a graph constant. Single-pin nets stay uncut either way (+w - w = 0).
  interior_key_.assign(static_cast<std::size_t>(graph.num_vertices()), 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    Weight key = 0;
    for (hg::NetId e : graph.nets_of(v)) {
      if (graph.net_size(e) >= 2) key -= graph.net_weight(e);
    }
    interior_key_[v] = key;
  }
}

Weight FmBipartitioner::true_gain(const PartitionState& state,
                                  VertexId v) const {
  const PartitionId from = state.part_of(v);
  const PartitionId to = 1 - from;
  Weight gain = 0;
  for (hg::NetId e : graph_->nets_of(v)) {
    const Weight w = graph_->net_weight(e);
    if (state.pin_count(e, from) == 1) gain += w;  // move uncuts e
    if (state.pin_count(e, to) == 0) gain -= w;    // move newly cuts e
  }
  return gain;
}

void FmBipartitioner::bucket_adjust(PartitionId side, VertexId u, Weight delta) {
  if (policy_ == SelectionPolicy::kFifo) {
    scratch_->buckets_[side].adjust_back(u, delta);
  } else {
    scratch_->buckets_[side].adjust(u, delta);
  }
}

void FmBipartitioner::touch(PartitionId side, VertexId u, Weight delta) {
  if (scratch_->buckets_[side].contains(u)) {
    bucket_adjust(side, u, delta);
    return;
  }
  if (!boundary_pass_) return;  // not in buckets => locked or fixed
  GainBuckets& parked = scratch_->interior_[side];
  if (!parked.contains(u)) return;  // locked or fixed
  // Activation: u's first nonzero delta coincides with a net of u turning
  // cut, i.e. with u joining the boundary. Its static key equals its true
  // gain up to now, and linking at the head (LIFO/CLIP) or tail (FIFO) of
  // the live bucket is exactly where a full-population pass's adjust()
  // would have re-linked it — trajectories stay identical.
  const Weight key = parked.key_of(u) + delta;
  parked.remove(u);
  if (policy_ == SelectionPolicy::kFifo) {
    scratch_->buckets_[side].insert_back(u, key);
  } else {
    scratch_->buckets_[side].insert(u, key);
  }
}

void FmBipartitioner::apply_gain_updates(PartitionState& state, VertexId v,
                                         PartitionId from, PartitionId to) {
  // Standard FM delta rules, evaluated on the pre-move pin counts. The
  // keys of unlocked pins shift by the change in their true gain; under
  // CLIP the same deltas are applied to the zero-seeded keys. touch()
  // also pulls still-parked interior pins into the live buckets.
  for (hg::NetId e : graph_->nets_of(v)) {
    const Weight w = graph_->net_weight(e);
    if (w == 0) continue;
    const int cnt_to = state.pin_count(e, to);
    const int cnt_from_after = state.pin_count(e, from) - 1;
    const bool all_updates_trivial = cnt_to > 1 && cnt_from_after > 1;
    if (all_updates_trivial) continue;

    const auto pins = graph_->pins(e);
    if (cnt_to == 0) {
      // Net was uncut on `from`; every other pin gains w.
      for (VertexId u : pins) {
        if (u != v) touch(from, u, +w);
      }
    } else if (cnt_to == 1) {
      // The single `to`-side pin loses its uncut-by-moving gain.
      for (VertexId u : pins) {
        if (u != v && state.part_of(u) == to) {
          touch(to, u, -w);
          break;
        }
      }
    }
    if (cnt_from_after == 0) {
      // Net becomes uncut on `to`; every other pin now cuts by moving.
      for (VertexId u : pins) {
        if (u != v) touch(to, u, -w);
      }
    } else if (cnt_from_after == 1) {
      // The single remaining `from`-side pin can now uncut the net.
      for (VertexId u : pins) {
        if (u != v && state.part_of(u) == from) {
          touch(from, u, +w);
          break;
        }
      }
    }
  }
}

void FmBipartitioner::verify_invariants(const PartitionState& state,
                                        const FmConfig& config) const {
  // Full recompute-and-compare of the partition bookkeeping (pin counts,
  // boundary set, weights, cut) before checking the gain structures on
  // top of it.
  state.check_invariants();
  for (VertexId u : movable_) {
    for (PartitionId side = 0; side < 2; ++side) {
      if (scratch_->buckets_[side].contains(u)) {
        // Live keys track true gain exactly (LIFO/FIFO) or up to the
        // constant zero-seed offset (CLIP).
        const Weight expected =
            config.policy == SelectionPolicy::kClip
                ? true_gain(state, u) - scratch_->gain_scratch_[u]
                : true_gain(state, u);
        if (scratch_->buckets_[side].key_of(u) != expected) {
          throw std::logic_error(
              "FmBipartitioner: bucket key diverged from true gain");
        }
      }
      if (scratch_->interior_[side].contains(u)) {
        // A parked vertex has absorbed no deltas, so its static key must
        // still BE its true gain — i.e. none of its nets turned cut (up
        // to zero-weight nets, which do not affect the gain).
        if (scratch_->interior_[side].key_of(u) != true_gain(state, u)) {
          throw std::logic_error(
              "FmBipartitioner: parked interior key diverged from true gain");
        }
      }
    }
  }
}

Weight FmBipartitioner::run_pass(PartitionState& state, util::Rng& rng,
                                 const FmConfig& config, int pass_index,
                                 PassRecord& record) {
  const bool first_pass = pass_index == 0;
  obs::ScopedSpan span("fm.pass");
  const auto movable_count = static_cast<std::int32_t>(movable_.size());
  record.movable = movable_count;
  record.cut_before = state.cut();
  record.cut_best = state.cut();
  if (movable_count == 0) return 0;

  policy_ = config.policy;
  boundary_pass_ = config.boundary && policy_ != SelectionPolicy::kClip;
  const bool fifo = policy_ == SelectionPolicy::kFifo;
  GainBuckets* dyn = scratch_->buckets_;
  GainBuckets* stat = scratch_->interior_;
  dyn[0].clear();
  dyn[1].clear();
  stat[0].clear();
  stat[1].clear();

  // Random insertion order diversifies LIFO tie-breaking between passes.
  // Both population modes consume the RNG identically.
  auto& order = scratch_->order_;
  order.assign(movable_.begin(), movable_.end());
  rng.shuffle(std::span<VertexId>(order));

  // Parallel gain initialization (config.threads > 1): boundary movables'
  // true gains are computed into the gain cache by disjoint shards of the
  // movable list — pure reads of the frozen pass-start state — and the
  // serial insertion phases below read the cache instead of scanning
  // pins. The cache holds exactly the values the inline scans would
  // compute, so both modes replay bit-identical trajectories.
  const bool pregain = config.threads > 1;
  auto& gain_cache = scratch_->gain_scratch_;
  if (pregain || policy_ == SelectionPolicy::kClip) {
    gain_cache.resize(static_cast<std::size_t>(graph_->num_vertices()));
  }
  if (pregain) {
    constexpr std::int64_t kGrain = 2048;
    const auto n_mov = static_cast<std::int64_t>(movable_.size());
    const std::function<void(std::int64_t)> shard = [&](std::int64_t c) {
      const std::int64_t lo = c * kGrain;
      const std::int64_t hi = std::min(n_mov, lo + kGrain);
      for (std::int64_t i = lo; i < hi; ++i) {
        const VertexId v = movable_[static_cast<std::size_t>(i)];
        if (state.is_boundary(v)) gain_cache[v] = true_gain(state, v);
      }
    };
    util::ThreadPool::shared().parallel_for((n_mov + kGrain - 1) / kGrain,
                                            config.threads, shard);
  }
  const auto initial_gain = [&](VertexId v) {
    return pregain ? gain_cache[v] : true_gain(state, v);
  };

  std::int32_t boundary_count = 0;
  if (policy_ == SelectionPolicy::kClip) {
    // CLIP seeds every key at zero, so bucket order IS the tie-break for
    // the first selection: insert in ascending actual gain (head insertion
    // reverses it) so the pass starts from the highest-actual-gain vertex
    // and then follows update gains — the cluster signal (Dutt-Deng).
    // Interior vertices get their gain from the precomputed static key
    // instead of a pin scan.
    auto& gain = gain_cache;
    for (VertexId v : order) {
      if (state.is_boundary(v)) {
        gain[v] = initial_gain(v);
        ++boundary_count;
      } else {
        gain[v] = interior_key_[v];
      }
    }
    std::stable_sort(
        order.begin(), order.end(),
        [&](VertexId a, VertexId b) { return gain[a] < gain[b]; });
    for (VertexId v : order) dyn[state.part_of(v)].insert(v, 0);
  } else {
    // Phase-split insertion, identical in both population modes: interior
    // vertices first (into the parked structure, or — in full mode — the
    // live buckets; their gain is the precomputed static key either way),
    // then boundary vertices with scanned gains. The split fixes the
    // within-bucket order so that lazy activation reproduces it.
    GainBuckets* park = boundary_pass_ ? stat : dyn;
    for (VertexId v : order) {
      if (state.is_boundary(v)) continue;
      if (fifo) {
        park[state.part_of(v)].insert_back(v, interior_key_[v]);
      } else {
        park[state.part_of(v)].insert(v, interior_key_[v]);
      }
    }
    for (VertexId v : order) {
      if (!state.is_boundary(v)) continue;
      ++boundary_count;
      const Weight g = initial_gain(v);
      if (fifo) {
        dyn[state.part_of(v)].insert_back(v, g);
      } else {
        dyn[state.part_of(v)].insert(v, g);
      }
    }
  }
  record.boundary_vertices = boundary_count;

  if constexpr (obs::kEnabled) {
    if (config.observer != nullptr) {
      obs::PassBegin begin;
      begin.pass = pass_index;
      begin.movable = movable_count;
      begin.boundary_vertices = boundary_count;
      begin.cut = state.cut();
      config.observer->on_pass_begin(begin);
    }
  }

  std::int32_t move_limit = movable_count;
  if (!first_pass || config.cutoff_first_pass) {
    if (config.pass_cutoff < 1.0) {
      move_limit = std::max<std::int32_t>(
          1, static_cast<std::int32_t>(
                 std::llround(config.pass_cutoff * movable_count)));
    }
  }
  std::int32_t stall_limit = std::numeric_limits<std::int32_t>::max();
  if (config.stall_fraction < 1.0) {
    stall_limit = std::max<std::int32_t>(
        std::max<std::int32_t>(1, config.stall_min),
        static_cast<std::int32_t>(
            std::llround(config.stall_fraction * movable_count)));
  }

  auto& move_log = scratch_->move_log_;
  move_log.clear();
  const Weight cut_start = state.cut();
  Weight best_cut = cut_start;
  std::int32_t best_prefix = 0;
  std::int32_t stall = 0;

  while (static_cast<std::int32_t>(move_log.size()) < move_limit &&
         stall < stall_limit) {
    // Budget check between moves (every 64 to keep clock reads off the hot
    // path); breaking here falls through to the normal best-prefix
    // rollback, so an expired pass still leaves a valid improved state.
    if (config.deadline != nullptr && (move_log.size() & 63) == 0 &&
        config.deadline->expired()) {
      break;
    }
    // Best feasible candidate from each side; feasibility = target side
    // stays under its capacity in every resource.
    VertexId candidate[2] = {hg::kNoVertex, hg::kNoVertex};
    Weight cand_key[2] = {0, 0};
    bool cand_parked[2] = {false, false};
    for (PartitionId side = 0; side < 2; ++side) {
      const PartitionId target = 1 - side;
      const auto target_weights = state.part_weight_vector(target);
      const auto feasible = [&](VertexId u) {
        return balance_->fits(target_weights, graph_->vertex_weights(u),
                              target);
      };
      VertexId pick = dyn[side].find_best(feasible);
      Weight pick_key = pick != hg::kNoVertex ? dyn[side].key_of(pick) : 0;
      bool parked = false;
      if (boundary_pass_) {
        const VertexId us = stat[side].find_best(feasible);
        if (us != hg::kNoVertex) {
          const Weight ks = stat[side].key_of(us);
          // The parked pick wins exactly when it would precede the live
          // pick in a fully-populated bucket: FIFO queues interiors ahead
          // of equal-key boundary vertices, LIFO behind them.
          if (pick == hg::kNoVertex || ks > pick_key ||
              (fifo && ks == pick_key)) {
            pick = us;
            pick_key = ks;
            parked = true;
          }
        }
      }
      candidate[side] = pick;
      cand_key[side] = pick_key;
      cand_parked[side] = parked;
    }
    PartitionId side;
    if (candidate[0] == hg::kNoVertex && candidate[1] == hg::kNoVertex) break;
    if (candidate[0] == hg::kNoVertex) {
      side = 1;
    } else if (candidate[1] == hg::kNoVertex) {
      side = 0;
    } else if (cand_key[0] != cand_key[1]) {
      side = cand_key[0] > cand_key[1] ? 0 : 1;
    } else {
      // Tie: move from the heavier side (improves balance slack).
      side = state.part_weight(0) >= state.part_weight(1) ? 0 : 1;
    }
    const VertexId v = candidate[side];
    const PartitionId from = side;
    const PartitionId to = 1 - side;

    if (cand_parked[side]) {
      stat[from].remove(v);
    } else {
      dyn[from].remove(v);
    }
    apply_gain_updates(state, v, from, to);
    [[maybe_unused]] const Weight cut_prev = state.cut();
    state.move(v, to);
    move_log.push_back({v, from});

    if constexpr (obs::kEnabled) {
      if (config.observer != nullptr) {
        obs::MoveEvent move;
        move.pass = pass_index;
        move.move_index = static_cast<std::int32_t>(move_log.size()) - 1;
        move.vertex = v;
        move.from = from;
        move.to = to;
        move.gain = cut_prev - state.cut();
        move.cut = state.cut();
        config.observer->on_move(move);
      }
    }

    if (config.check_invariants) verify_invariants(state, config);

    if (state.cut() < best_cut) {
      best_cut = state.cut();
      best_prefix = static_cast<std::int32_t>(move_log.size());
      stall = 0;
    } else {
      ++stall;
    }
  }

  // Roll back to the best prefix; the undone tail is the "wasted" work of
  // Sec. III.
  for (std::size_t i = move_log.size();
       i > static_cast<std::size_t>(best_prefix); --i) {
    const FmScratch::MoveLog& entry = move_log[i - 1];
    state.move(entry.vertex, entry.from);
  }

  record.moves_performed = static_cast<std::int32_t>(move_log.size());
  record.best_prefix = best_prefix;
  record.cut_best = best_cut;

  if constexpr (obs::kEnabled) {
    if (config.observer != nullptr) {
      obs::PassEnd end;
      end.pass = pass_index;
      end.moves_performed = record.moves_performed;
      end.best_prefix = best_prefix;
      end.cut_before = cut_start;
      end.cut_best = best_cut;
      config.observer->on_pass_end(end);
    }
    span.arg("pass", static_cast<std::int64_t>(pass_index))
        .arg("moves", static_cast<std::int64_t>(record.moves_performed))
        .arg("kept", static_cast<std::int64_t>(best_prefix))
        .arg("cut", static_cast<std::int64_t>(best_cut));
  }
  return cut_start - best_cut;
}

FmResult FmBipartitioner::refine(PartitionState& state, util::Rng& rng,
                                 const FmConfig& config) {
  if (state.num_parts() != 2) {
    throw std::invalid_argument("FmBipartitioner::refine: needs 2 parts");
  }
  if (state.num_assigned() != graph_->num_vertices()) {
    throw std::invalid_argument("FmBipartitioner::refine: incomplete state");
  }
  // LIFO/FIFO keys are true gains, bounded by the weighted vertex degree.
  // CLIP keys drift by up to (initial gain) - (current gain), so they need
  // twice that range. Parked interior keys live in [-max_wdeg, 0].
  const Weight max_wdeg = graph_->max_weighted_vertex_degree();
  const Weight key_bound =
      config.policy == SelectionPolicy::kClip ? 2 * max_wdeg : max_wdeg;
  scratch_->reserve(graph_->num_vertices(), key_bound, max_wdeg);

  FmResult result;
  result.initial_cut = state.cut();
  for (int pass = 0; pass < config.max_passes; ++pass) {
    if (config.deadline != nullptr && config.deadline->expired()) {
      result.truncated = true;
      break;
    }
    PassRecord record;
    const Weight gain = run_pass(state, rng, config, pass, record);
    ++result.passes;
    result.total_moves += record.moves_performed;
    if (config.collect_pass_records) result.pass_records.push_back(record);
    // An expiry inside run_pass already rolled back to the best prefix;
    // report the truncation even when this pass happened to converge.
    if (config.deadline != nullptr && config.deadline->expired()) {
      result.truncated = true;
      break;
    }
    if (gain <= 0) break;
  }
  result.final_cut = state.cut();
  if constexpr (obs::kEnabled) {
    auto& reg = obs::Registry::global();
    static const obs::MetricId refines = reg.counter("fm.refine_calls");
    static const obs::MetricId passes = reg.counter("fm.passes");
    static const obs::MetricId moves = reg.counter("fm.moves");
    static const obs::MetricId truncations = reg.counter("fm.truncations");
    static const obs::MetricId kept =
        reg.histogram("fm.pass_kept_fraction", 0.0, 1.0, 10);
    reg.add(refines);
    reg.add(passes, result.passes);
    reg.add(moves, result.total_moves);
    if (result.truncated) reg.add(truncations);
    for (const PassRecord& r : result.pass_records) {
      if (r.moves_performed > 0) {
        reg.observe(kept, static_cast<double>(r.best_prefix) /
                              static_cast<double>(r.moves_performed));
      }
    }
  }
  return result;
}

}  // namespace fixedpart::part
