#pragma once
// Solution grading: everything a caller needs to judge a finished
// partition in one call — cut, per-resource imbalance, capacity and
// fixed-vertex violations. Used by the CLI tools and as the single
// source of truth in integration tests.

#include <span>
#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "part/balance.hpp"

namespace fixedpart::part {

struct SolutionReport {
  Weight cut = 0;
  /// Per-resource worst relative deviation from perfect balance across
  /// partitions, in percent: max_p |w(p,r) - total(r)/k| / (total(r)/k).
  std::vector<double> imbalance_pct;
  /// All upper capacities respected.
  bool balanced = false;
  /// Upper and lower capacities respected.
  bool strictly_balanced = false;
  /// Vertices placed outside their allowed set.
  VertexId fixed_violations = 0;
  /// Per-partition weights, [p * num_resources + r].
  std::vector<Weight> part_weights;

  bool valid() const { return balanced && fixed_violations == 0; }
};

/// `assignment` must be a complete assignment into [0, balance.num_parts()).
SolutionReport evaluate_solution(const hg::Hypergraph& graph,
                                 const hg::FixedAssignment& fixed,
                                 const BalanceConstraint& balance,
                                 std::span<const hg::PartitionId> assignment);

}  // namespace fixedpart::part
