#include "part/balance.hpp"

#include <cmath>
#include <stdexcept>

namespace fixedpart::part {

BalanceConstraint::BalanceConstraint(PartitionId num_parts, int num_resources)
    : num_parts_(num_parts), num_resources_(num_resources) {
  if (num_parts < 1) throw std::invalid_argument("BalanceConstraint: parts<1");
  if (num_resources < 1) {
    throw std::invalid_argument("BalanceConstraint: resources<1");
  }
  const auto n = static_cast<std::size_t>(num_parts) *
                 static_cast<std::size_t>(num_resources);
  max_.assign(n, 0);
  min_.assign(n, 0);
}

BalanceConstraint BalanceConstraint::relative(const hg::Hypergraph& g,
                                              PartitionId num_parts,
                                              double tolerance_pct) {
  if (tolerance_pct < 0.0) {
    throw std::invalid_argument("BalanceConstraint: negative tolerance");
  }
  BalanceConstraint c(num_parts, g.num_resources());
  for (int r = 0; r < g.num_resources(); ++r) {
    const double perfect = static_cast<double>(g.total_weight(r)) /
                           static_cast<double>(num_parts);
    const double slack = perfect * tolerance_pct / 100.0;
    for (PartitionId p = 0; p < num_parts; ++p) {
      c.max_[c.index(p, r)] = static_cast<Weight>(std::floor(perfect + slack));
      c.min_[c.index(p, r)] = static_cast<Weight>(std::ceil(perfect - slack));
    }
  }
  return c;
}

BalanceConstraint BalanceConstraint::from_spec(const hg::Hypergraph& g,
                                               PartitionId num_parts,
                                               const hg::BalanceSpec& spec) {
  if (spec.relative) {
    return relative(g, num_parts, spec.tolerance_pct);
  }
  BalanceConstraint c = relative(g, num_parts, 2.0);
  for (const auto& cap : spec.capacities) {
    if (cap.part < 0 || cap.part >= num_parts) {
      throw std::invalid_argument("BalanceConstraint: capacity part range");
    }
    if (cap.resource < 0 || cap.resource >= g.num_resources()) {
      throw std::invalid_argument("BalanceConstraint: capacity resource range");
    }
    if (cap.min > cap.max) {
      throw std::invalid_argument("BalanceConstraint: capacity min > max");
    }
    c.max_[c.index(cap.part, cap.resource)] = cap.max;
    c.min_[c.index(cap.part, cap.resource)] = cap.min;
  }
  return c;
}

bool BalanceConstraint::fits(std::span<const Weight> part_weights_of_p,
                             std::span<const Weight> add,
                             PartitionId p) const {
  for (int r = 0; r < num_resources_; ++r) {
    if (part_weights_of_p[static_cast<std::size_t>(r)] +
            add[static_cast<std::size_t>(r)] >
        max_[index(p, r)]) {
      return false;
    }
  }
  return true;
}

bool BalanceConstraint::satisfied(std::span<const Weight> part_weights) const {
  for (PartitionId p = 0; p < num_parts_; ++p) {
    for (int r = 0; r < num_resources_; ++r) {
      if (part_weights[index(p, r)] > max_[index(p, r)]) return false;
    }
  }
  return true;
}

bool BalanceConstraint::strictly_satisfied(
    std::span<const Weight> part_weights) const {
  if (!satisfied(part_weights)) return false;
  for (PartitionId p = 0; p < num_parts_; ++p) {
    for (int r = 0; r < num_resources_; ++r) {
      if (part_weights[index(p, r)] < min_[index(p, r)]) return false;
    }
  }
  return true;
}

}  // namespace fixedpart::part
