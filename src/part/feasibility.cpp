#include "part/feasibility.hpp"

#include <bit>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "util/errors.hpp"

namespace fixedpart::part {
namespace {

std::string format_pct(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", pct);
  return buf;
}

std::string format_mask(std::uint64_t mask) {
  std::string out = "{";
  for (int p = 0; p < 64; ++p) {
    if (!((mask >> p) & 1U)) continue;
    if (out.size() > 1) out += ",";
    out += std::to_string(p);
  }
  out += "}";
  return out;
}

}  // namespace

std::string FeasibilityReport::summary() const {
  if (issues.empty()) return "feasible";
  std::string out;
  for (const std::string& issue : issues) {
    if (!out.empty()) out += "; ";
    out += issue;
  }
  return out;
}

FeasibilityReport check_feasibility(const hg::Hypergraph& graph,
                                    const hg::FixedAssignment& fixed,
                                    const BalanceConstraint& balance) {
  if (fixed.num_vertices() != graph.num_vertices()) {
    throw std::invalid_argument("check_feasibility: vertex count mismatch");
  }
  if (fixed.num_parts() != balance.num_parts()) {
    throw std::invalid_argument("check_feasibility: part count mismatch");
  }
  if (balance.num_resources() != graph.num_resources()) {
    throw std::invalid_argument("check_feasibility: resource count mismatch");
  }
  const int num_resources = graph.num_resources();
  const std::uint64_t full = fixed.full_mask();

  FeasibilityReport report;

  // Group vertex weight by allowed mask; ordered map keeps the issue list
  // deterministic. The full mask is always a group so the total-capacity
  // bound is always checked.
  std::map<std::uint64_t, std::vector<Weight>> by_mask;
  by_mask[full].assign(static_cast<std::size_t>(num_resources), 0);
  bool any_movable = false;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const std::uint64_t mask = fixed.allowed_mask(v) & full;
    if (mask == 0) {
      report.feasible = false;
      report.issues.push_back("vertex " + std::to_string(v) +
                              " has no allowed partition");
      continue;
    }
    if (std::popcount(mask) > 1) any_movable = true;
    auto [it, inserted] = by_mask.try_emplace(mask);
    if (inserted) it->second.assign(static_cast<std::size_t>(num_resources), 0);
    for (int r = 0; r < num_resources; ++r) {
      it->second[static_cast<std::size_t>(r)] += graph.vertex_weight(v, r);
    }
  }
  report.empty_freedom = !any_movable;

  // Hall-type packing bound per distinct mask M: everything confined to a
  // subset of M must fit in M's combined capacity.
  for (const auto& [mask, unused] : by_mask) {
    for (int r = 0; r < num_resources; ++r) {
      Weight confined = 0;
      for (const auto& [sub, weights] : by_mask) {
        if ((sub & ~mask) == 0) confined += weights[static_cast<std::size_t>(r)];
      }
      Weight capacity = 0;
      for (PartitionId p = 0; p < balance.num_parts(); ++p) {
        if ((mask >> p) & 1U) capacity += balance.max_weight(p, r);
      }
      if (confined <= capacity) continue;
      report.feasible = false;
      std::string what;
      if (mask == full) {
        what = "total weight " + std::to_string(confined) +
               " exceeds total capacity " + std::to_string(capacity);
      } else if (std::popcount(mask) == 1) {
        what = "weight " + std::to_string(confined) +
               " fixed into partition " +
               std::to_string(std::countr_zero(mask)) + " exceeds its capacity " +
               std::to_string(capacity);
      } else {
        what = "weight " + std::to_string(confined) +
               " confined to partitions " + format_mask(mask) +
               " exceeds their combined capacity " + std::to_string(capacity);
      }
      if (num_resources > 1) what += " in resource " + std::to_string(r);
      report.issues.push_back(what);
    }
  }
  return report;
}

double min_feasible_tolerance_pct(const hg::Hypergraph& graph,
                                  const hg::FixedAssignment& fixed,
                                  PartitionId num_parts, double max_pct) {
  const auto feasible_at = [&](double pct) {
    return check_feasibility(graph, fixed,
                             BalanceConstraint::relative(graph, num_parts, pct))
        .feasible;
  };
  if (feasible_at(0.0)) return 0.0;
  if (!feasible_at(max_pct)) return -1.0;
  double lo = 0.0, hi = max_pct;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    (feasible_at(mid) ? hi : lo) = mid;
  }
  return hi;
}

BalanceConstraint preflight_balance(const hg::Hypergraph& graph,
                                    const hg::FixedAssignment& fixed,
                                    PartitionId num_parts,
                                    double tolerance_pct, bool repair,
                                    FeasibilityReport* report) {
  BalanceConstraint balance =
      BalanceConstraint::relative(graph, num_parts, tolerance_pct);
  FeasibilityReport rep = check_feasibility(graph, fixed, balance);
  rep.tolerance_pct = tolerance_pct;
  if (!rep.feasible && repair) {
    const double minimal =
        min_feasible_tolerance_pct(graph, fixed, num_parts);
    if (minimal >= 0.0) {
      rep.feasible = true;
      rep.repaired = true;
      rep.tolerance_pct = minimal;
      rep.issues.push_back("repaired: tolerance loosened from " +
                           format_pct(tolerance_pct) + "% to " +
                           format_pct(minimal) + "%");
      balance = BalanceConstraint::relative(graph, num_parts, minimal);
    }
  }
  if (report) *report = rep;
  if (!rep.feasible) {
    throw util::InfeasibleError("infeasible at tolerance " +
                                format_pct(tolerance_pct) + "%: " +
                                rep.summary());
  }
  return balance;
}

}  // namespace fixedpart::part
