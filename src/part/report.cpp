#include "part/report.hpp"

#include <cmath>
#include <stdexcept>

#include "part/partition.hpp"

namespace fixedpart::part {

SolutionReport evaluate_solution(
    const hg::Hypergraph& graph, const hg::FixedAssignment& fixed,
    const BalanceConstraint& balance,
    std::span<const hg::PartitionId> assignment) {
  if (static_cast<VertexId>(assignment.size()) != graph.num_vertices()) {
    throw std::invalid_argument("evaluate_solution: assignment size");
  }
  if (fixed.num_vertices() != graph.num_vertices() ||
      fixed.num_parts() != balance.num_parts()) {
    throw std::invalid_argument("evaluate_solution: shape mismatch");
  }
  const PartitionId k = balance.num_parts();

  PartitionState state(graph, k);
  SolutionReport report;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const PartitionId p = assignment[v];
    if (p < 0 || p >= k) {
      throw std::invalid_argument("evaluate_solution: part out of range");
    }
    state.assign(v, p);
    if (!fixed.is_allowed(v, p)) ++report.fixed_violations;
  }
  report.cut = state.cut();
  report.part_weights.assign(state.part_weights().begin(),
                             state.part_weights().end());
  report.balanced = balance.satisfied(state.part_weights());
  report.strictly_balanced = balance.strictly_satisfied(state.part_weights());

  report.imbalance_pct.assign(
      static_cast<std::size_t>(graph.num_resources()), 0.0);
  for (int r = 0; r < graph.num_resources(); ++r) {
    const double perfect = static_cast<double>(graph.total_weight(r)) /
                           static_cast<double>(k);
    if (perfect <= 0.0) continue;
    double worst = 0.0;
    for (PartitionId p = 0; p < k; ++p) {
      worst = std::max(
          worst, std::abs(static_cast<double>(state.part_weight(p, r)) -
                          perfect) /
                     perfect);
    }
    report.imbalance_pct[static_cast<std::size_t>(r)] = 100.0 * worst;
  }
  return report;
}

}  // namespace fixedpart::part
