#pragma once
// Feasible initial solutions. FM passes only ever *keep* balance, so the
// start must already satisfy the capacity constraints; the classic "random
// initial partitioning" (Sec. III: "the first FM pass traditionally begins
// with a random partitioning") is realized as a randomized first-fit-
// decreasing assignment: random for the many near-unit-area cells, greedy
// for the few huge ISPD-98 macros that would otherwise overflow a side.

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "part/balance.hpp"
#include "part/partition.hpp"
#include "util/rng.hpp"

namespace fixedpart::part {

/// Assigns every vertex of `state` (which is cleared first): restricted
/// vertices go to an allowed side, free vertices to a random side that
/// still fits its capacity. Returns whether the result satisfies every
/// upper capacity.
///
/// With require_feasible (the default) an unsatisfiable outcome throws
/// std::runtime_error. Passing false gives best-effort semantics for
/// instances that are *inherently* over capacity — e.g. the paper's rand
/// regime can fix a large macro plus binomially-imbalanced cell weight
/// into one side of a 2% bisection; FM refinement then drains the
/// overflow as far as the constraint allows (its moves never overfill the
/// other side).
bool random_feasible_assignment(PartitionState& state,
                                const hg::FixedAssignment& fixed,
                                const BalanceConstraint& balance,
                                util::Rng& rng, bool require_feasible = true);

/// Verifies that `state` honours every restriction in `fixed`; throws
/// std::logic_error otherwise. Used by tests and multilevel projections.
void check_respects_fixed(const PartitionState& state,
                          const hg::FixedAssignment& fixed);

}  // namespace fixedpart::part
