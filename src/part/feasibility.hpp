#pragma once
// Pre-flight feasibility analysis for fixed-vertex balanced partitioning.
//
// Fixed vertices interact with balance: weight pinned into a partition
// consumes its capacity, and once enough weight is pinned no assignment of
// the movable remainder can fit — the paper's "relatively overconstrained"
// regime taken to its limit. Without a pre-flight, such an instance either
// throws from deep inside initial-solution generation (after coarsening
// already ran) or burns the full multistart budget failing to find a
// feasible seed. The checks here are *necessary* conditions evaluated in
// one pass over the vertices: when they fail the instance is provably
// infeasible under the given balance; when they pass the randomized
// feasible-seed machinery takes over as before. For relative-tolerance
// balance the minimal feasible tolerance can be computed, giving callers
// an optional repair path (loosen-and-report) instead of an error.
//
// Conditions checked, per resource r:
//  * no vertex has an empty allowed-partition set;
//  * for every distinct allowed mask M present in the instance (singleton
//    fixed masks and the full mask included), the total weight of vertices
//    whose allowed set is contained in M must fit in the summed capacity
//    of the partitions of M (a Hall-type packing bound — for M a singleton
//    this is "fixed weight exceeds capacity", for M the full mask it is
//    "total weight exceeds total capacity").

#include <string>
#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "part/balance.hpp"

namespace fixedpart::part {

struct FeasibilityReport {
  /// No necessary condition violated. (The instance may still defeat the
  /// randomized seeder on pathological capacity windows; this flag never
  /// claims infeasibility wrongly.)
  bool feasible = true;
  /// Every vertex is singleton-fixed (or the graph is empty): there is
  /// nothing to optimize. Not an error — the unique assignment is checked
  /// for balance like any other — but callers may want to skip refinement.
  bool empty_freedom = false;
  /// A repair step loosened the tolerance; `tolerance_pct` holds the new
  /// value and `issues` records what was wrong at the requested tolerance.
  bool repaired = false;
  /// Effective relative tolerance after preflight_balance (repaired or
  /// not); -1 when the report came from check_feasibility directly.
  double tolerance_pct = -1.0;
  /// One human-readable line per violated condition.
  std::vector<std::string> issues;

  /// The issues joined into a single diagnostic line.
  std::string summary() const;
};

/// Evaluates the necessary conditions for (graph, fixed) under `balance`.
/// Never throws on infeasibility — inspect the report. Throws
/// std::invalid_argument only on structural mismatch (vertex counts, part
/// counts, resource counts disagreeing between the three arguments).
FeasibilityReport check_feasibility(const hg::Hypergraph& graph,
                                    const hg::FixedAssignment& fixed,
                                    const BalanceConstraint& balance);

/// Smallest relative tolerance (percent) at which check_feasibility passes,
/// found by bisection (capacities grow monotonically with tolerance).
/// Returns a negative value when even `max_pct` is infeasible (e.g. a
/// vertex with an empty allowed set — no tolerance fixes that).
double min_feasible_tolerance_pct(const hg::Hypergraph& graph,
                                  const hg::FixedAssignment& fixed,
                                  PartitionId num_parts,
                                  double max_pct = 10000.0);

/// Pre-flight for relative-tolerance callers: builds the balance
/// constraint, checks feasibility, and either returns the constraint
/// (repaired to the minimal feasible tolerance when `repair` is set and
/// needed) or throws util::InfeasibleError with the violated conditions.
/// When `report` is non-null it receives the full findings, including
/// whether and how far the tolerance was loosened.
BalanceConstraint preflight_balance(const hg::Hypergraph& graph,
                                    const hg::FixedAssignment& fixed,
                                    PartitionId num_parts,
                                    double tolerance_pct, bool repair = false,
                                    FeasibilityReport* report = nullptr);

}  // namespace fixedpart::part
