#pragma once
// Exact (branch-and-bound) bipartitioning for small instances. Top-down
// placers process their end cases — blocks of a few dozen cells — with
// optimal partitioners (Caldwell-Kahng-Markov, "Optimal end-case
// partitioners and placers"); this module provides that substrate, and
// doubles as the oracle the test suite validates the heuristics against.
//
// Bounding uses a monotonicity property of the incremental PartitionState:
// assigning additional vertices can only populate more sides of a net, so
// the cut of a partial assignment is a valid lower bound for all of its
// completions.

#include <cstdint>
#include <vector>

#include "hg/fixed.hpp"
#include "hg/hypergraph.hpp"
#include "part/balance.hpp"
#include "part/partition.hpp"

namespace fixedpart::part {

struct ExactConfig {
  /// Search-node budget; when exhausted the best incumbent is returned
  /// with proven_optimal = false.
  std::int64_t max_nodes = 4'000'000;
};

struct ExactResult {
  Weight cut = 0;
  std::vector<PartitionId> assignment;
  bool proven_optimal = false;
  bool feasible = false;  ///< false if no balanced completion exists
  std::int64_t nodes = 0;
};

/// Optimal bipartition under `fixed` and `balance` (upper capacities, as
/// enforced by the heuristics). Practical up to roughly 30-40 movable
/// vertices; intended for end cases and for validating heuristics.
ExactResult exact_bipartition(const hg::Hypergraph& graph,
                              const hg::FixedAssignment& fixed,
                              const BalanceConstraint& balance,
                              const ExactConfig& config = {});

}  // namespace fixedpart::part
