#include "part/exact.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace fixedpart::part {

namespace {

class BranchAndBound {
 public:
  BranchAndBound(const hg::Hypergraph& graph,
                 const hg::FixedAssignment& fixed,
                 const BalanceConstraint& balance, const ExactConfig& config)
      : graph_(graph),
        fixed_(fixed),
        balance_(balance),
        config_(config),
        state_(graph, 2) {
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      if (fixed.fixed_part(v) != hg::kNoPartition) {
        state_.assign(v, fixed.fixed_part(v));
      } else {
        movable_.push_back(v);
      }
    }
    // Branch on heavy, well-connected vertices first: their placement
    // constrains the most and makes bounds bite early.
    std::sort(movable_.begin(), movable_.end(), [&](VertexId a, VertexId b) {
      const auto key = [&](VertexId v) {
        Weight wdeg = 0;
        for (const hg::NetId e : graph_.nets_of(v)) wdeg += graph_.net_weight(e);
        return std::make_pair(graph_.vertex_weight(v), wdeg);
      };
      return key(a) > key(b);
    });
    // Suffix weights for the balance-completion bound.
    suffix_weight_.assign(movable_.size() + 1, 0);
    for (std::size_t i = movable_.size(); i-- > 0;) {
      suffix_weight_[i] =
          suffix_weight_[i + 1] + graph_.vertex_weight(movable_[i]);
    }
  }

  ExactResult solve() {
    result_.cut = std::numeric_limits<Weight>::max();
    // Symmetry breaking: with no restricted vertices at all, sides are
    // interchangeable, so pin the first branching vertex to side 0.
    symmetric_ = true;
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      if (fixed_.is_restricted(v)) {
        symmetric_ = false;
        break;
      }
    }
    // Relative balance may still be asymmetric in capacities; require
    // equal caps for the symmetry argument.
    if (balance_.max_weight(0) != balance_.max_weight(1)) symmetric_ = false;

    descend(0);
    ExactResult out = std::move(result_);
    out.feasible = out.cut != std::numeric_limits<Weight>::max();
    if (!out.feasible) {
      out.cut = 0;
      out.assignment.clear();
    }
    out.proven_optimal = out.feasible && nodes_ <= config_.max_nodes;
    out.nodes = nodes_;
    return out;
  }

 private:
  void descend(std::size_t depth) {
    if (nodes_ > config_.max_nodes) return;
    ++nodes_;
    // Lower bound: a partial assignment's cut never decreases.
    if (state_.cut() >= result_.cut) return;
    if (depth == movable_.size()) {
      if (!balance_.satisfied(state_.part_weights())) return;
      result_.cut = state_.cut();
      result_.assignment.assign(state_.assignment().begin(),
                                state_.assignment().end());
      return;
    }
    const VertexId v = movable_[depth];
    const Weight w = graph_.vertex_weight(v);
    const Weight remaining = suffix_weight_[depth + 1];
    for (PartitionId p = 0; p < 2; ++p) {
      if (symmetric_ && depth == 0 && p == 1) break;
      if (state_.part_weight(p) + w > balance_.max_weight(p)) continue;
      // Completion bound: everything left must fit beside this choice.
      const PartitionId other = 1 - p;
      const Weight other_capacity =
          balance_.max_weight(other) - state_.part_weight(other);
      const Weight this_capacity =
          balance_.max_weight(p) - state_.part_weight(p) - w;
      if (remaining > other_capacity + this_capacity) continue;
      state_.assign(v, p);
      descend(depth + 1);
      state_.unassign(v);
      if (nodes_ > config_.max_nodes) return;
    }
  }

  const hg::Hypergraph& graph_;
  const hg::FixedAssignment& fixed_;
  const BalanceConstraint& balance_;
  const ExactConfig& config_;
  PartitionState state_;
  std::vector<VertexId> movable_;
  std::vector<Weight> suffix_weight_;
  ExactResult result_;
  std::int64_t nodes_ = 0;
  bool symmetric_ = false;
};

}  // namespace

ExactResult exact_bipartition(const hg::Hypergraph& graph,
                              const hg::FixedAssignment& fixed,
                              const BalanceConstraint& balance,
                              const ExactConfig& config) {
  if (fixed.num_parts() != 2 || balance.num_parts() != 2) {
    throw std::invalid_argument("exact_bipartition: needs 2 parts");
  }
  if (fixed.num_vertices() != graph.num_vertices()) {
    throw std::invalid_argument("exact_bipartition: fixed size mismatch");
  }
  if (graph.num_resources() != 1) {
    throw std::invalid_argument(
        "exact_bipartition: multi-resource instances unsupported");
  }
  // OR-restricted (non-singleton) vertices would need per-vertex allowed
  // sets in the branching; in a bipartition a 2-set restriction is simply
  // free, so only reject impossible empty masks (FixedAssignment already
  // forbids those).
  BranchAndBound solver(graph, fixed, balance, config);
  return solver.solve();
}

}  // namespace fixedpart::part
