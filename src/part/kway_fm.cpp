#include "part/kway_fm.hpp"

#include <algorithm>
#include <limits>
#include <bit>
#include <cmath>
#include <span>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace fixedpart::part {

KwayFmRefiner::KwayFmRefiner(const hg::Hypergraph& graph,
                             const hg::FixedAssignment& fixed,
                             const BalanceConstraint& balance)
    : graph_(&graph),
      fixed_(&fixed),
      balance_(&balance),
      locked_(static_cast<std::size_t>(graph.num_vertices()), 0),
      target_(static_cast<std::size_t>(graph.num_vertices()),
              hg::kNoPartition),
      buckets_(graph.num_vertices(), graph.max_weighted_vertex_degree()) {
  if (fixed.num_parts() != balance.num_parts()) {
    throw std::invalid_argument("KwayFmRefiner: part count mismatch");
  }
  if (fixed.num_vertices() != graph.num_vertices()) {
    throw std::invalid_argument("KwayFmRefiner: fixed size mismatch");
  }
  if (graph.num_resources() > 8) {
    throw std::invalid_argument("KwayFmRefiner: more than 8 resources");
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (std::popcount(fixed.allowed_mask(v)) >= 2) movable_.push_back(v);
  }
}

bool KwayFmRefiner::feasible(const PartitionState& state, VertexId v,
                             PartitionId to) const {
  Weight add[8];
  const int nr = graph_->num_resources();
  for (int r = 0; r < nr; ++r) add[r] = graph_->vertex_weight(v, r);
  return balance_->fits(state.part_weight_vector(to),
                        std::span<const Weight>(add, nr), to);
}

Weight KwayFmRefiner::move_gain(const PartitionState& state, VertexId v,
                                PartitionId to) const {
  const PartitionId from = state.part_of(v);
  Weight gain = 0;
  for (hg::NetId e : graph_->nets_of(v)) {
    const Weight w = graph_->net_weight(e);
    const int conn = state.connectivity(e);
    const int conn_after = conn - (state.pin_count(e, from) == 1 ? 1 : 0) +
                           (state.pin_count(e, to) == 0 ? 1 : 0);
    gain += w * ((conn > 1 ? 1 : 0) - (conn_after > 1 ? 1 : 0));
  }
  return gain;
}

KwayFmRefiner::BestMove KwayFmRefiner::best_move(const PartitionState& state,
                                                 VertexId v) const {
  const PartitionId from = state.part_of(v);
  BestMove best;
  best.gain = std::numeric_limits<Weight>::min();
  for (PartitionId p = 0; p < state.num_parts(); ++p) {
    if (p == from || !fixed_->is_allowed(v, p)) continue;
    if (!feasible(state, v, p)) continue;
    const Weight gain = move_gain(state, v, p);
    if (best.target == hg::kNoPartition || gain > best.gain) {
      best.gain = gain;
      best.target = p;
    }
  }
  if (best.target == hg::kNoPartition) best.gain = 0;
  return best;
}

Weight KwayFmRefiner::run_pass(PartitionState& state, util::Rng& rng,
                               const KwayConfig& config, int pass_index,
                               PassRecord& record) {
  const bool first_pass = pass_index == 0;
  obs::ScopedSpan span("kway.pass");
  const auto movable_count = static_cast<std::int32_t>(movable_.size());
  record.movable = movable_count;
  record.cut_before = state.cut();
  record.cut_best = state.cut();
  if (movable_count == 0) return 0;

  order_ = movable_;
  rng.shuffle(std::span<VertexId>(order_));
  buckets_.clear();
  for (VertexId v : order_) {
    locked_[v] = 0;
    const BestMove mv = best_move(state, v);
    if (mv.target == hg::kNoPartition) {
      locked_[v] = 1;  // no feasible target right now; skip this pass
      continue;
    }
    target_[v] = mv.target;
    buckets_.insert(v, mv.gain);
  }

  if constexpr (obs::kEnabled) {
    if (config.observer != nullptr) {
      obs::PassBegin begin;
      begin.pass = pass_index;
      begin.movable = movable_count;
      begin.cut = state.cut();
      config.observer->on_pass_begin(begin);
    }
  }

  std::int32_t move_limit = movable_count;
  if (!first_pass && config.pass_cutoff < 1.0) {
    move_limit = std::max<std::int32_t>(
        1, static_cast<std::int32_t>(
               std::llround(config.pass_cutoff * movable_count)));
  }

  move_log_.clear();
  const Weight cut_start = state.cut();
  Weight best_cut = cut_start;
  std::int32_t best_prefix = 0;

  while (!buckets_.empty() &&
         static_cast<std::int32_t>(move_log_.size()) < move_limit) {
    const VertexId v = buckets_.find_best([](VertexId) { return true; });
    // Keys can be stale (neighbour moves shifted capacities/pin counts of
    // nets not shared with v only via capacity); re-verify at pop time.
    const BestMove current = best_move(state, v);
    if (current.target == hg::kNoPartition) {
      buckets_.remove(v);  // no feasible move anymore this pass
      continue;
    }
    if (current.gain != buckets_.key_of(v) || current.target != target_[v]) {
      buckets_.adjust(v, current.gain - buckets_.key_of(v));
      target_[v] = current.target;
      continue;  // re-pop with the corrected key
    }

    buckets_.remove(v);
    locked_[v] = 1;
    const PartitionId from = state.part_of(v);
    [[maybe_unused]] const Weight cut_prev = state.cut();
    state.move(v, current.target);
    move_log_.push_back({v, from});

    if constexpr (obs::kEnabled) {
      if (config.observer != nullptr) {
        obs::MoveEvent move;
        move.pass = pass_index;
        move.move_index = static_cast<std::int32_t>(move_log_.size()) - 1;
        move.vertex = v;
        move.from = from;
        move.to = current.target;
        move.gain = cut_prev - state.cut();
        move.cut = state.cut();
        config.observer->on_move(move);
      }
    }

    // Exact re-keying of affected unlocked neighbours.
    for (hg::NetId e : graph_->nets_of(v)) {
      for (VertexId u : graph_->pins(e)) {
        if (u == v || locked_[u] || !buckets_.contains(u)) continue;
        const BestMove mu = best_move(state, u);
        if (mu.target == hg::kNoPartition) {
          buckets_.remove(u);
          locked_[u] = 1;
          continue;
        }
        buckets_.adjust(u, mu.gain - buckets_.key_of(u));
        target_[u] = mu.target;
      }
    }

    if (state.cut() < best_cut) {
      best_cut = state.cut();
      best_prefix = static_cast<std::int32_t>(move_log_.size());
    }
  }

  for (std::size_t i = move_log_.size();
       i > static_cast<std::size_t>(best_prefix); --i) {
    state.move(move_log_[i - 1].vertex, move_log_[i - 1].from);
  }

  record.moves_performed = static_cast<std::int32_t>(move_log_.size());
  record.best_prefix = best_prefix;
  record.cut_best = best_cut;

  if constexpr (obs::kEnabled) {
    if (config.observer != nullptr) {
      obs::PassEnd end;
      end.pass = pass_index;
      end.moves_performed = record.moves_performed;
      end.best_prefix = best_prefix;
      end.cut_before = cut_start;
      end.cut_best = best_cut;
      config.observer->on_pass_end(end);
    }
    span.arg("pass", static_cast<std::int64_t>(pass_index))
        .arg("moves", static_cast<std::int64_t>(record.moves_performed))
        .arg("kept", static_cast<std::int64_t>(best_prefix))
        .arg("cut", static_cast<std::int64_t>(best_cut));
  }
  return cut_start - best_cut;
}

FmResult KwayFmRefiner::refine(PartitionState& state, util::Rng& rng,
                               const KwayConfig& config) {
  if (state.num_assigned() != graph_->num_vertices()) {
    throw std::invalid_argument("KwayFmRefiner::refine: incomplete state");
  }
  FmResult result;
  result.initial_cut = state.cut();
  for (int pass = 0; pass < config.max_passes; ++pass) {
    PassRecord record;
    const Weight gain = run_pass(state, rng, config, pass, record);
    ++result.passes;
    result.total_moves += record.moves_performed;
    result.pass_records.push_back(record);
    if (gain <= 0) break;
  }
  result.final_cut = state.cut();
  if constexpr (obs::kEnabled) {
    auto& reg = obs::Registry::global();
    static const obs::MetricId refines = reg.counter("kway.refine_calls");
    static const obs::MetricId passes = reg.counter("kway.passes");
    static const obs::MetricId moves = reg.counter("kway.moves");
    reg.add(refines);
    reg.add(passes, result.passes);
    reg.add(moves, result.total_moves);
  }
  return result;
}

}  // namespace fixedpart::part
