#pragma once
// Mutable k-way partition of a hypergraph with O(pins-of-vertex)
// incremental maintenance of: per-net pin counts by partition, per-part
// resource weights, and the weighted hyperedge cut. This is the state
// object that every refiner (flat FM, CLIP-FM, k-way FM) mutates.

#include <span>
#include <vector>

#include "hg/hypergraph.hpp"
#include "hg/types.hpp"

namespace fixedpart::part {

using hg::NetId;
using hg::PartitionId;
using hg::VertexId;
using hg::Weight;

class PartitionState {
 public:
  /// All vertices start unassigned (kNoPartition).
  PartitionState(const hg::Hypergraph& g, PartitionId num_parts);

  const hg::Hypergraph& graph() const { return *graph_; }
  PartitionId num_parts() const { return num_parts_; }

  PartitionId part_of(VertexId v) const { return part_[v]; }
  bool is_assigned(VertexId v) const { return part_[v] != hg::kNoPartition; }
  VertexId num_assigned() const { return num_assigned_; }

  /// First-time assignment of an unassigned vertex.
  void assign(VertexId v, PartitionId p);
  /// Move an assigned vertex to a different partition.
  void move(VertexId v, PartitionId to);
  /// Return an assigned vertex to the unassigned state (used by
  /// backtracking solvers).
  void unassign(VertexId v);

  /// Does v touch at least one cut net (net spanning > 1 part)? This is
  /// the boundary set that drives boundary-only FM refinement. Maintained
  /// incrementally from the same pin-count transitions move() already
  /// computes: O(|e|) exactly when an incident net switches between cut
  /// and uncut, which is when refiners rescan the net's pins anyway.
  bool is_boundary(VertexId v) const { return boundary_nets_[v] > 0; }
  /// Number of cut nets incident to v.
  std::int32_t boundary_degree(VertexId v) const { return boundary_nets_[v]; }

  /// Pins of net e currently in partition p.
  int pin_count(NetId e, PartitionId p) const {
    return pin_counts_[static_cast<std::size_t>(e) *
                           static_cast<std::size_t>(num_parts_) +
                       static_cast<std::size_t>(p)];
  }
  /// Number of distinct partitions populated on net e.
  int connectivity(NetId e) const { return populated_parts_[e]; }
  bool is_cut(NetId e) const { return populated_parts_[e] > 1; }

  /// Weighted hyperedge cut (sum of weights of nets spanning >1 part).
  /// Valid once every vertex is assigned; maintained incrementally.
  Weight cut() const { return cut_; }

  /// Weight of partition p in resource r.
  Weight part_weight(PartitionId p, int r = 0) const {
    return part_weights_[static_cast<std::size_t>(p) *
                             static_cast<std::size_t>(num_resources_) +
                         static_cast<std::size_t>(r)];
  }
  /// All per-part weights, laid out [p * num_resources + r].
  std::span<const Weight> part_weights() const { return part_weights_; }
  /// The weight vector of partition p over all resources.
  std::span<const Weight> part_weight_vector(PartitionId p) const {
    return {part_weights_.data() + static_cast<std::size_t>(p) *
                                       static_cast<std::size_t>(num_resources_),
            static_cast<std::size_t>(num_resources_)};
  }

  /// O(pins) recomputation of the cut; used by tests/asserts to check the
  /// incremental bookkeeping.
  Weight recompute_cut() const;

  /// Full consistency audit: recomputes pin counts, populated-part counts,
  /// boundary degrees, per-part weights, the cut and the assigned count
  /// from scratch and compares them to the incrementally maintained
  /// values. Throws std::logic_error naming the first divergence.
  /// O(pins + nets * parts) — opt-in debug/fault-injection tool (see
  /// FmConfig::check_invariants), never called on hot paths.
  void check_invariants() const;

  /// Reset every vertex to unassigned.
  void clear();

  /// Raw assignment vector (for snapshots / projections).
  std::span<const PartitionId> assignment() const { return part_; }

 private:
  void add_to_part(VertexId v, PartitionId p);
  void remove_from_part(VertexId v, PartitionId p);

  const hg::Hypergraph* graph_;
  PartitionId num_parts_;
  int num_resources_;
  std::vector<PartitionId> part_;
  std::vector<std::int32_t> pin_counts_;       // [e * num_parts + p]
  std::vector<std::int16_t> populated_parts_;  // per net
  std::vector<std::int32_t> boundary_nets_;    // per vertex: cut nets at v
  std::vector<Weight> part_weights_;           // [p * num_resources + r]
  Weight cut_ = 0;
  VertexId num_assigned_ = 0;
};

}  // namespace fixedpart::part
