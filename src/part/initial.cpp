#include "part/initial.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

namespace fixedpart::part {

namespace {

bool vertex_fits(const hg::Hypergraph& g, const BalanceConstraint& balance,
                 const PartitionState& state, VertexId v, PartitionId p) {
  Weight add[8];
  const int nr = g.num_resources();
  for (int r = 0; r < nr; ++r) add[r] = g.vertex_weight(v, r);
  return balance.fits(state.part_weight_vector(p),
                      std::span<const Weight>(add, nr), p);
}

}  // namespace

bool random_feasible_assignment(PartitionState& state,
                                const hg::FixedAssignment& fixed,
                                const BalanceConstraint& balance,
                                util::Rng& rng, bool require_feasible) {
  const hg::Hypergraph& g = state.graph();
  const PartitionId k = state.num_parts();
  if (fixed.num_parts() != k || balance.num_parts() != k) {
    throw std::invalid_argument("random_feasible_assignment: part mismatch");
  }
  if (g.num_resources() > 8) {
    throw std::invalid_argument("random_feasible_assignment: >8 resources");
  }
  state.clear();

  // Singleton-fixed vertices have no choice; place them first so capacity
  // they consume is visible to everything else.
  std::vector<VertexId> choosable;
  choosable.reserve(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartitionId p = fixed.fixed_part(v);
    if (p != hg::kNoPartition) {
      state.assign(v, p);
    } else {
      choosable.push_back(v);
    }
  }

  // Heaviest first (first-fit-decreasing) so macros always find room;
  // random order within equal weights keeps starts diverse.
  rng.shuffle(std::span<VertexId>(choosable));
  std::stable_sort(choosable.begin(), choosable.end(),
                   [&](VertexId a, VertexId b) {
                     return g.vertex_weight(a) > g.vertex_weight(b);
                   });

  std::vector<PartitionId> parts(static_cast<std::size_t>(k));
  std::iota(parts.begin(), parts.end(), 0);
  for (VertexId v : choosable) {
    rng.shuffle(std::span<PartitionId>(parts));
    PartitionId chosen = hg::kNoPartition;
    for (PartitionId p : parts) {
      if (!fixed.is_allowed(v, p)) continue;
      if (vertex_fits(g, balance, state, v, p)) {
        chosen = p;
        break;
      }
    }
    if (chosen == hg::kNoPartition) {
      // No side fits: fall back to the allowed side with the most slack
      // and hope a later repair is unnecessary (can only happen when the
      // instance is infeasible or extremely tight).
      Weight best_slack = std::numeric_limits<Weight>::min();
      for (PartitionId p : parts) {
        if (!fixed.is_allowed(v, p)) continue;
        const Weight slack = balance.max_weight(p, 0) - state.part_weight(p);
        if (slack > best_slack) {
          best_slack = slack;
          chosen = p;
        }
      }
      if (chosen == hg::kNoPartition) {
        throw std::runtime_error(
            "random_feasible_assignment: vertex with empty allowed set");
      }
    }
    state.assign(v, chosen);
  }

  const bool feasible = balance.satisfied(state.part_weights());
  if (!feasible && require_feasible) {
    throw std::runtime_error(
        "random_feasible_assignment: no feasible assignment found "
        "(fixed vertices or a macro overflow a capacity)");
  }
  return feasible;
}

void check_respects_fixed(const PartitionState& state,
                          const hg::FixedAssignment& fixed) {
  for (VertexId v = 0; v < state.graph().num_vertices(); ++v) {
    const PartitionId p = state.part_of(v);
    if (p == hg::kNoPartition) {
      throw std::logic_error("check_respects_fixed: unassigned vertex");
    }
    if (!fixed.is_allowed(v, p)) {
      throw std::logic_error("check_respects_fixed: fixed vertex misplaced");
    }
  }
}

}  // namespace fixedpart::part
