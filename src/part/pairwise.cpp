#include "part/pairwise.hpp"

#include <stdexcept>

namespace fixedpart::part {

PairwiseRefiner::PairwiseRefiner(const hg::Hypergraph& graph,
                                 const hg::FixedAssignment& fixed,
                                 const BalanceConstraint& balance)
    : graph_(&graph), fixed_(&fixed), balance_(&balance) {
  if (fixed.num_parts() != balance.num_parts()) {
    throw std::invalid_argument("PairwiseRefiner: part count mismatch");
  }
  if (fixed.num_vertices() != graph.num_vertices()) {
    throw std::invalid_argument("PairwiseRefiner: fixed size mismatch");
  }
}

PairwiseResult PairwiseRefiner::refine(PartitionState& state, util::Rng& rng,
                                       const PairwiseConfig& config) {
  if (state.num_assigned() != graph_->num_vertices()) {
    throw std::invalid_argument("PairwiseRefiner::refine: incomplete state");
  }
  const PartitionId k = state.num_parts();
  PairwiseResult result;
  result.initial_cut = state.cut();

  KwayConfig inner;
  inner.pass_cutoff = config.pass_cutoff;

  for (int sweep = 0; sweep < config.max_sweeps; ++sweep) {
    const Weight sweep_start = state.cut();
    ++result.sweeps;
    for (PartitionId a = 0; a < k; ++a) {
      for (PartitionId b = a + 1; b < k; ++b) {
        // Restrict movement to the (a,b) pair: everyone else is pinned to
        // their current part; pair members keep their own allowed sets
        // intersected with {a,b}.
        const std::uint64_t pair_mask =
            (std::uint64_t{1} << a) | (std::uint64_t{1} << b);
        hg::FixedAssignment restricted(graph_->num_vertices(), k);
        for (VertexId v = 0; v < graph_->num_vertices(); ++v) {
          const PartitionId p = state.part_of(v);
          if (p != a && p != b) {
            restricted.fix(v, p);
            continue;
          }
          const std::uint64_t mask = fixed_->allowed_mask(v) & pair_mask;
          // The current part is always allowed, so mask is never empty.
          restricted.restrict_to(v, mask);
        }
        KwayFmRefiner engine(*graph_, restricted, *balance_);
        engine.refine(state, rng, inner);
      }
    }
    if (state.cut() >= sweep_start) break;
  }
  result.final_cut = state.cut();
  return result;
}

}  // namespace fixedpart::part
