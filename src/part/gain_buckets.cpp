#include "part/gain_buckets.hpp"

#include <algorithm>
#include <stdexcept>

namespace fixedpart::part {

GainBuckets::GainBuckets(VertexId capacity, Weight max_key) {
  reshape(capacity, max_key);
}

void GainBuckets::reshape(VertexId capacity, Weight max_key) {
  if (capacity < 0) throw std::invalid_argument("GainBuckets: capacity<0");
  if (max_key < 0) throw std::invalid_argument("GainBuckets: max_key<0");
  if (size_ != 0) throw std::logic_error("GainBuckets::reshape: not empty");
  if (static_cast<std::size_t>(capacity) > in_.size()) {
    next_.resize(static_cast<std::size_t>(capacity), hg::kNoVertex);
    prev_.resize(static_cast<std::size_t>(capacity), hg::kNoVertex);
    key_.resize(static_cast<std::size_t>(capacity), 0);
    in_.resize(static_cast<std::size_t>(capacity), 0);
  }
  if (max_key > max_key_bound_) {
    // The bucket index of a key shifts with the range; all buckets are
    // empty here, so reindexing is just a larger cleared array.
    head_.assign(static_cast<std::size_t>(2 * max_key + 1), hg::kNoVertex);
    tail_.assign(static_cast<std::size_t>(2 * max_key + 1), hg::kNoVertex);
    bucket_used_.assign(static_cast<std::size_t>(2 * max_key + 1), 0);
    touched_.clear();
    max_key_bound_ = max_key;
  }
  max_bucket_ = -1;
}

std::size_t GainBuckets::bucket_of_key(Weight key) const {
  if (key < -max_key_bound_ || key > max_key_bound_) {
    throw std::out_of_range("GainBuckets: key outside declared range");
  }
  return static_cast<std::size_t>(key + max_key_bound_);
}

void GainBuckets::clear() {
  for (const std::size_t b : touched_) {
    for (VertexId v = head_[b]; v != hg::kNoVertex;) {
      const VertexId following = next_[v];
      in_[v] = 0;
      v = following;
    }
    head_[b] = hg::kNoVertex;
    tail_[b] = hg::kNoVertex;
    bucket_used_[b] = 0;
  }
  touched_.clear();
  max_bucket_ = -1;
  size_ = 0;
}

void GainBuckets::note_touched(std::size_t b) {
  if (!bucket_used_[b]) {
    bucket_used_[b] = 1;
    touched_.push_back(b);
  }
}

void GainBuckets::link_front(VertexId v, Weight key) {
  const std::size_t b = bucket_of_key(key);
  key_[v] = key;
  prev_[v] = hg::kNoVertex;
  next_[v] = head_[b];
  if (head_[b] != hg::kNoVertex) {
    prev_[head_[b]] = v;
  } else {
    tail_[b] = v;
  }
  head_[b] = v;
  note_touched(b);
  max_bucket_ = std::max(max_bucket_, static_cast<std::ptrdiff_t>(b));
}

void GainBuckets::link_back(VertexId v, Weight key) {
  const std::size_t b = bucket_of_key(key);
  key_[v] = key;
  next_[v] = hg::kNoVertex;
  prev_[v] = tail_[b];
  if (tail_[b] != hg::kNoVertex) {
    next_[tail_[b]] = v;
  } else {
    head_[b] = v;
  }
  tail_[b] = v;
  note_touched(b);
  max_bucket_ = std::max(max_bucket_, static_cast<std::ptrdiff_t>(b));
}

void GainBuckets::insert(VertexId v, Weight key) {
  if (in_[v]) throw std::logic_error("GainBuckets::insert: already present");
  link_front(v, key);
  in_[v] = 1;
  ++size_;
}

void GainBuckets::insert_back(VertexId v, Weight key) {
  if (in_[v]) throw std::logic_error("GainBuckets::insert: already present");
  link_back(v, key);
  in_[v] = 1;
  ++size_;
}

void GainBuckets::unlink(VertexId v) {
  const std::size_t b = bucket_of_key(key_[v]);
  if (prev_[v] != hg::kNoVertex) {
    next_[prev_[v]] = next_[v];
  } else {
    head_[b] = next_[v];
  }
  if (next_[v] != hg::kNoVertex) {
    prev_[next_[v]] = prev_[v];
  } else {
    tail_[b] = prev_[v];
  }
}

void GainBuckets::remove(VertexId v) {
  if (!in_[v]) throw std::logic_error("GainBuckets::remove: not present");
  unlink(v);
  in_[v] = 0;
  --size_;
}

void GainBuckets::adjust(VertexId v, Weight delta) {
  if (!in_[v]) throw std::logic_error("GainBuckets::adjust: not present");
  if (delta == 0) return;
  unlink(v);
  link_front(v, key_[v] + delta);
}

void GainBuckets::adjust_back(VertexId v, Weight delta) {
  if (!in_[v]) throw std::logic_error("GainBuckets::adjust: not present");
  if (delta == 0) return;
  unlink(v);
  link_back(v, key_[v] + delta);
}

void GainBuckets::settle_max() const {
  while (max_bucket_ >= 0 &&
         head_[static_cast<std::size_t>(max_bucket_)] == hg::kNoVertex) {
    --max_bucket_;
  }
}

Weight GainBuckets::max_key() const {
  if (size_ == 0) throw std::logic_error("GainBuckets::max_key: empty");
  settle_max();
  return static_cast<Weight>(max_bucket_) - max_key_bound_;
}

}  // namespace fixedpart::part
