#pragma once
// Balance constraints for k-way multi-resource partitioning.
//
// The paper's experiments use a 2% relative balance tolerance with actual
// cell areas; Sec. IV additionally proposes absolute per-partition
// capacities and multi-resource ("multi-area") balance. Both semantics are
// supported here. Following standard FM practice only the *upper* capacity
// is enforced on moves; for bipartitioning the lower bound is implied
// (side 0 <= max forces side 1 >= total - max).

#include <span>
#include <vector>

#include "hg/hypergraph.hpp"
#include "hg/io_bookshelf.hpp"
#include "hg/types.hpp"

namespace fixedpart::part {

using hg::PartitionId;
using hg::VertexId;
using hg::Weight;

class BalanceConstraint {
 public:
  /// Relative semantics: each partition's weight in every resource must be
  /// at most (1 + tolerance_pct/100) * total/num_parts. The paper's
  /// "deviate from exact bisection by 2%" is tolerance_pct = 2 with
  /// num_parts = 2.
  static BalanceConstraint relative(const hg::Hypergraph& g,
                                    PartitionId num_parts,
                                    double tolerance_pct);

  /// Absolute semantics: explicit capacity windows; resources/partitions
  /// with no explicit capacity default to the relative-2% window.
  static BalanceConstraint from_spec(const hg::Hypergraph& g,
                                     PartitionId num_parts,
                                     const hg::BalanceSpec& spec);

  PartitionId num_parts() const { return num_parts_; }
  int num_resources() const { return num_resources_; }

  Weight max_weight(PartitionId p, int r = 0) const {
    return max_[index(p, r)];
  }
  Weight min_weight(PartitionId p, int r = 0) const {
    return min_[index(p, r)];
  }

  /// Would partition p stay within capacity in every resource after adding
  /// the given per-resource weights (size num_resources)?
  bool fits(std::span<const Weight> part_weights_of_p,
            std::span<const Weight> add, PartitionId p) const;

  /// Are the given per-partition weights within all upper capacities?
  /// `part_weights` is laid out [p * num_resources + r].
  bool satisfied(std::span<const Weight> part_weights) const;

  /// As `satisfied`, but also checks lower bounds (used to grade final
  /// solutions, not to filter moves).
  bool strictly_satisfied(std::span<const Weight> part_weights) const;

 private:
  BalanceConstraint(PartitionId num_parts, int num_resources);
  std::size_t index(PartitionId p, int r) const {
    return static_cast<std::size_t>(p) *
               static_cast<std::size_t>(num_resources_) +
           static_cast<std::size_t>(r);
  }

  PartitionId num_parts_;
  int num_resources_;
  std::vector<Weight> max_;
  std::vector<Weight> min_;
};

}  // namespace fixedpart::part
