// Quickstart: build a small hypergraph, fix two terminal vertices, and
// bipartition it with the multilevel engine.
//
//   $ ./build/examples/quickstart

#include <iostream>
#include <vector>

#include "hg/builder.hpp"
#include "hg/fixed.hpp"
#include "ml/multilevel.hpp"
#include "part/balance.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace {

int run() {
  using namespace fixedpart;

  // 1. Describe the netlist: 8 cells, two tightly-connected clusters of 4,
  //    one bridge net between them.
  hg::HypergraphBuilder builder;
  std::vector<hg::VertexId> cells;
  for (int i = 0; i < 8; ++i) cells.push_back(builder.add_vertex(/*area=*/1));
  for (const int base : {0, 4}) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        builder.add_net(std::vector<hg::VertexId>{cells[base + i],
                                                  cells[base + j]});
      }
    }
  }
  builder.add_net(std::vector<hg::VertexId>{cells[0], cells[4]});
  const hg::Hypergraph graph = builder.build();

  // 2. Fix one terminal per side (e.g. propagated terminals from an
  //    enclosing placement block).
  hg::FixedAssignment fixed(graph.num_vertices(), /*num_parts=*/2);
  fixed.fix(cells[0], 0);
  fixed.fix(cells[4], 1);

  // 3. Balance: each side within 25% of perfect bisection, actual areas.
  const auto balance = part::BalanceConstraint::relative(graph, 2, 25.0);

  // 4. Partition (multilevel CLIP-FM, 4 independent starts, keep best).
  const ml::MultilevelPartitioner partitioner(graph, fixed, balance);
  util::Rng rng(/*seed=*/1);
  const ml::MultilevelResult result =
      partitioner.best_of(4, rng, ml::MultilevelConfig{});

  std::cout << "cut = " << result.cut << " (expected 1: only the bridge)\n";
  for (hg::VertexId v = 0; v < graph.num_vertices(); ++v) {
    std::cout << "  cell " << v << " -> side " << result.assignment[v]
              << (fixed.is_fixed(v) ? "  [fixed]" : "") << '\n';
  }
  return result.cut == 1 ? 0 : 1;
}

}  // namespace

int main() { return fixedpart::util::run_cli_main("quickstart", run); }
