// Streaming large-instance generator CLI: emits an IBM-like instance
// straight to .fpbin with O(vertices) heap, for the 1M-10M vertex scale
// ladder (docs/PERF.md "BENCH_LARGE").
//
//   $ ./build/examples/gen_large --preset=1m --out=big.fpbin
//   $ ./build/examples/gen_large --cells=200000 --seed=7 --out=mid.fpbin
//   $ ./build/examples/partition_file big.fpbin

#include <iostream>
#include <string>

#include "gen/stream_gen.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"
#include "util/mem.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fixedpart;
  const util::Cli cli(argc, argv);
  return util::run_cli_main("gen_large", [&] {
    cli.require_known({"out", "preset", "cells", "nets", "pads", "seed"});
    const auto out = cli.get("out");
    if (!out) {
      throw util::UsageError(
          "gen_large --out=<file.fpbin> [--preset=1m|5m|10m] [--cells=N] "
          "[--nets=N] [--pads=N] [--seed=S]");
    }
    gen::StreamSpec spec;
    if (const auto preset = cli.get("preset")) {
      spec = gen::stream_preset(*preset);
    } else {
      spec = gen::stream_spec_for_cells(
          static_cast<hg::VertexId>(cli.get_int("cells", 1'000'000)));
    }
    if (const auto nets = cli.get_int("nets", 0); nets > 0) {
      spec.num_nets = static_cast<hg::NetId>(nets);
    }
    if (const auto pads = cli.get_int("pads", -1); pads >= 0) {
      spec.num_pads = static_cast<hg::VertexId>(pads);
    }
    spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

    util::Timer timer;
    gen::stream_circuit_fpbin(spec, *out);
    std::cout << "wrote " << *out << ": " << spec.num_cells << " cells, "
              << spec.num_pads << " pads, " << spec.num_nets << " nets in "
              << timer.seconds() << " s (peak RSS "
              << util::peak_rss_kb() << " KiB)\n";
    return 0;
  });
}
