// Instance inspector: prints the Table IV-style statistics, the net-size
// histogram, and (when fixed vertices are present) the Sec. V
// degree-of-constraint metrics for an on-disk instance.
//
//   $ ./build/examples/instance_info instance.fpb
//   $ ./build/examples/instance_info netlist.hgr --fix=netlist.fix --k=2
//   $ ./build/examples/instance_info circuit.netD --are=circuit.are

#include <iostream>
#include <string>

#include "experiments/constraint_metrics.hpp"
#include "hg/io_binary.hpp"
#include "hg/io_bookshelf.hpp"
#include "hg/io_hmetis.hpp"
#include "hg/io_netare.hpp"
#include "hg/stats.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"
#include "util/table.hpp"

namespace {

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fixedpart;
  const util::Cli cli(argc, argv);
  return util::run_cli_main("instance_info", [&] {
    cli.require_known({"fix", "are", "k", "lenient"});
    if (cli.positional().size() != 1) {
      throw util::UsageError(
          "instance_info <file.fpb|file.fpbin|file.hgr|file.netD> "
          "[--fix=f] [--are=f] [--k=2] [--lenient]");
    }
    const std::string path = cli.positional()[0];
    const hg::IoOptions io_options = cli.get_bool("lenient", false)
                                         ? hg::IoOptions::lenient()
                                         : hg::IoOptions{};
    hg::Hypergraph graph;
    hg::FixedAssignment fixed(0, 2);
    auto k = static_cast<hg::PartitionId>(cli.get_int("k", 2));
    if (ends_with(path, ".fpbin")) {
      hg::BinaryInstance instance = hg::read_fpbin_file(path);
      graph = std::move(instance.graph);
      fixed = std::move(instance.fixed);
      k = instance.num_parts;
    } else if (ends_with(path, ".fpb")) {
      hg::BenchmarkInstance instance = hg::read_fpb_file(path, io_options);
      graph = std::move(instance.graph);
      fixed = instance.fixed;
      k = instance.num_parts;
    } else if (ends_with(path, ".netD") || ends_with(path, ".net")) {
      const auto are = cli.get("are");
      if (!are) throw util::UsageError("netD input needs --are=<file>");
      graph = hg::read_netd_files(path, *are, io_options).graph;
      fixed = hg::FixedAssignment(graph.num_vertices(), k);
    } else {
      graph = hg::read_hmetis_file(path, io_options);
      if (const auto fix = cli.get("fix")) {
        fixed = hg::read_fix_file(*fix, graph.num_vertices(), k, io_options);
      } else {
        fixed = hg::FixedAssignment(graph.num_vertices(), k);
      }
    }

    const hg::InstanceStats stats = hg::compute_stats(graph);
    util::Table table({"statistic", "value"});
    table.add_row({"vertices", std::to_string(graph.num_vertices())});
    table.add_row({"cells", std::to_string(stats.num_cells)});
    table.add_row({"pads/terminals", std::to_string(stats.num_pads)});
    table.add_row({"nets", std::to_string(stats.num_nets)});
    table.add_row({"external nets", std::to_string(stats.num_external_nets)});
    table.add_row({"pins", std::to_string(stats.num_pins)});
    table.add_row({"avg net degree", util::fmt(stats.avg_net_degree, 2)});
    table.add_row({"avg pins/cell", util::fmt(stats.avg_cell_degree, 2)});
    table.add_row({"Max% (largest cell)", util::fmt(stats.max_cell_area_pct, 2)});
    table.add_row({"fixed vertices", std::to_string(fixed.count_fixed())});
    table.print(std::cout);

    std::cout << "\nnet-size histogram (16+ = capped):\n";
    const auto hist = hg::net_size_histogram(graph);
    util::Table hist_table({"pins", "nets"});
    for (std::size_t d = 1; d < hist.size(); ++d) {
      if (hist[d] == 0) continue;
      hist_table.add_row({d + 1 == hist.size() ? std::to_string(d) + "+"
                                               : std::to_string(d),
                          std::to_string(hist[d])});
    }
    hist_table.print(std::cout);

    if (fixed.count_fixed() > 0) {
      const exp::ConstraintMetrics m =
          exp::compute_constraint_metrics(graph, fixed);
      std::cout << "\ndegree-of-constraint metrics (Sec. V):\n";
      util::Table metric_table({"metric", "value"});
      metric_table.add_row({"% vertices fixed", util::fmt(m.pct_fixed, 2)});
      metric_table.add_row(
          {"% movable adjacent to terminals",
           util::fmt(m.pct_movable_adjacent, 2)});
      metric_table.add_row(
          {"avg terminal incidence", util::fmt(m.avg_terminal_incidence, 3)});
      metric_table.add_row(
          {"anchored net fraction", util::fmt(m.anchored_net_fraction, 3)});
      metric_table.add_row(
          {"contested net fraction", util::fmt(m.contested_net_fraction, 3)});
      metric_table.add_row(
          {"forced cut (lower bound)", std::to_string(m.forced_cut_weight)});
      metric_table.print(std::cout);
    }
    return 0;
  });
}
