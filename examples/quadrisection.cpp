// Quadrisection with OR-set terminals — the Sec. IV scenario the paper
// uses to motivate multi-partition fixing: "a propagated terminal can be
// fixed in the two left-side quadrants of a quadrisection instance, so
// that the partitioner is free to assign it to either left-side quadrant."
//
// This example quadrisects a generated circuit (quadrants = 2x2 grid of
// the die) with the k-way FM engine. Terminals derived from pads are
// restricted to the *pair* of quadrants adjacent to their die edge
// (e.g. a left-edge pad may go to quadrant 0 or 2), demonstrating the
// FixedAssignment OR semantics end-to-end. It then compares against
// fixing each terminal to its single nearest quadrant, showing the cut
// benefit of leaving the partitioner the choice.
//
//   $ ./build/examples/quadrisection [--cells=2000] [--starts=8]

#include <iostream>
#include <limits>

#include "gen/netlist_gen.hpp"
#include "part/initial.hpp"
#include "part/kway_fm.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"
#include "util/table.hpp"

namespace {

using namespace fixedpart;

/// Quadrant numbering: 0 = lower-left, 1 = lower-right, 2 = upper-left,
/// 3 = upper-right.
hg::PartitionId quadrant_of(const gen::GeneratedCircuit& circuit,
                            hg::VertexId v) {
  const bool right = circuit.placement.x[v] >= circuit.placement.width / 2.0;
  const bool upper = circuit.placement.y[v] >= circuit.placement.height / 2.0;
  return static_cast<hg::PartitionId>((upper ? 2 : 0) + (right ? 1 : 0));
}

/// OR-mask of the two quadrants adjacent to the pad's die edge.
std::uint64_t edge_pair_mask(const gen::GeneratedCircuit& circuit,
                             hg::VertexId pad) {
  const double x = circuit.placement.x[pad];
  const double y = circuit.placement.y[pad];
  const double w = circuit.placement.width;
  const double h = circuit.placement.height;
  if (x < 0.0) return 0b0101;      // left edge: quadrants 0 | 2
  if (x > w) return 0b1010;        // right edge: 1 | 3
  if (y < 0.0) return 0b0011;      // bottom edge: 0 | 1
  (void)h;
  return 0b1100;                   // top edge: 2 | 3
}

hg::Weight solve(const gen::GeneratedCircuit& circuit,
                 const hg::FixedAssignment& fixed,
                 const part::BalanceConstraint& balance, int starts,
                 util::Rng& rng) {
  part::KwayFmRefiner refiner(circuit.graph, fixed, balance);
  hg::Weight best = std::numeric_limits<hg::Weight>::max();
  for (int s = 0; s < starts; ++s) {
    part::PartitionState state(circuit.graph, 4);
    part::random_feasible_assignment(state, fixed, balance, rng,
                                     /*require_feasible=*/false);
    refiner.refine(state, rng, part::KwayConfig{});
    part::check_respects_fixed(state, fixed);
    best = std::min(best, state.cut());
  }
  return best;
}

int run(const util::Cli& cli) {
  cli.require_known({"cells", "starts", "seed"});
  gen::CircuitSpec spec;
  spec.name = "quad";
  spec.num_cells = static_cast<hg::VertexId>(cli.get_int("cells", 2000));
  spec.num_nets = spec.num_cells + spec.num_cells / 10;
  spec.num_pads = std::max<hg::VertexId>(24, spec.num_cells / 40);
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const int starts = static_cast<int>(cli.get_int("starts", 8));

  const gen::GeneratedCircuit circuit = gen::generate_circuit(spec);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 4, 10.0);
  util::Rng rng(spec.seed ^ 0x4d4d);

  // Variant A: pads restricted to their edge's quadrant *pair* (OR set).
  hg::FixedAssignment or_fixed(circuit.graph.num_vertices(), 4);
  // Variant B: pads pinned to the single nearest quadrant.
  hg::FixedAssignment pinned(circuit.graph.num_vertices(), 4);
  int pads = 0;
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    if (!circuit.graph.is_pad(v)) continue;
    ++pads;
    or_fixed.restrict_to(v, edge_pair_mask(circuit, v));
    pinned.fix(v, quadrant_of(circuit, v));
  }

  std::cout << "quadrisection of " << circuit.graph.num_vertices()
            << " vertices (" << pads << " edge pads), " << starts
            << " k-way FM starts\n\n";
  const hg::Weight or_cut = solve(circuit, or_fixed, balance, starts, rng);
  const hg::Weight pinned_cut = solve(circuit, pinned, balance, starts, rng);
  const hg::Weight free_cut =
      solve(circuit, hg::FixedAssignment(circuit.graph.num_vertices(), 4),
            balance, starts, rng);

  util::Table table({"terminal model", "best 4-way cut"});
  table.add_row({"free (no terminals fixed)", std::to_string(free_cut)});
  table.add_row({"OR-set: either quadrant on the pad's edge",
                 std::to_string(or_cut)});
  table.add_row({"pinned: single nearest quadrant", std::to_string(pinned_cut)});
  table.print(std::cout);
  std::cout << "\nThe OR-set model's solution space contains every pinned\n"
               "solution, so its *optimum* is at least as good; heuristic\n"
               "runs explore a larger space and may need more starts to\n"
               "realize the advantage. This is the flexibility the paper\n"
               "asks benchmark formats to express.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  return util::run_cli_main("quadrisection", [&] { return run(cli); });
}
