// Interactive version of the paper's core experiment on one generated
// circuit: how do cut quality and runtime change as a chosen percentage of
// vertices is fixed, in the good and rand regimes?
//
//   $ ./build/examples/fixed_terminals_study --cells=2000 --pct=20
//   $     --starts=4 --trials=5 --regime=both

#include <iostream>
#include <string>

#include "experiments/context.hpp"
#include "gen/netlist_gen.hpp"
#include "gen/regimes.hpp"
#include "ml/multilevel.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

int run(const fixedpart::util::Cli& cli) {
  using namespace fixedpart;
  cli.require_known({"cells", "pct", "starts", "trials", "regime", "seed",
                     "tolerance"});

  gen::CircuitSpec spec;
  spec.name = "study";
  spec.num_cells = static_cast<hg::VertexId>(cli.get_int("cells", 2000));
  spec.num_nets = spec.num_cells + spec.num_cells / 9;
  spec.num_pads = std::max<hg::VertexId>(8, spec.num_cells / 50);
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const double pct = cli.get_double("pct", 20.0);
  const int starts = static_cast<int>(cli.get_int("starts", 4));
  const int trials = static_cast<int>(cli.get_int("trials", 5));
  const double tolerance = cli.get_double("tolerance", 2.0);
  const std::string regime = cli.get_or("regime", "both");

  util::Rng rng(spec.seed ^ 0x57d7);
  std::cout << "building " << spec.num_cells << "-cell circuit and a "
            << "reference solution...\n";
  const exp::InstanceContext ctx = exp::make_context(spec, 16, tolerance, rng);
  std::cout << "free-instance reference cut = " << ctx.good_cut << "\n\n";

  const gen::FixedVertexSeries series(ctx.circuit.graph, 2, rng);
  util::Table table({"regime", "%fixed", "avg best cut", "norm vs free",
                     "avg sec/trial"});
  auto run_regime = [&](const std::string& name,
                        const hg::FixedAssignment& fixed) {
    const ml::MultilevelPartitioner partitioner(ctx.circuit.graph, fixed,
                                                ctx.balance);
    util::RunningStat cut;
    util::RunningStat sec;
    for (int t = 0; t < trials; ++t) {
      const auto best =
          partitioner.best_of(starts, rng, exp::default_ml_config());
      cut.add(static_cast<double>(best.cut));
      sec.add(best.seconds);
    }
    table.add_row({name, util::fmt(pct, 1), util::fmt(cut.mean(), 1),
                   util::fmt(cut.mean() / static_cast<double>(ctx.good_cut), 3),
                   util::fmt(sec.mean(), 3)});
  };

  if (regime == "good" || regime == "both") {
    run_regime("good", series.good_regime(pct, ctx.good_reference));
  }
  if (regime == "rand" || regime == "both") {
    run_regime("rand", series.rand_regime(pct));
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const fixedpart::util::Cli cli(argc, argv);
  return fixedpart::util::run_cli_main("fixed_terminals_study",
                                       [&] { return run(cli); });
}
