// The paper's motivating application: top-down standard-cell placement by
// recursive bisection with terminal propagation (Dunlop-Kernighan style),
// using the place::TopDownPlacer library.
//
// Every partitioning call below the top level has fixed terminals — the
// propagated projections of outside cells and pads onto the block being
// split — which is exactly the regime the paper studies. The placer
// prints per-level statistics (blocks, average fixed-vertex share,
// average cut) and the final half-perimeter wirelength; watch the fixed
// share climb level by level toward the Table I predictions.
//
//   $ ./build/examples/topdown_placer [--cells=3000] [--levels=6]
//     [--cutoff=0.25] [--exact=0] [--seed=1]

#include <iostream>
#include <span>
#include <vector>

#include "gen/netlist_gen.hpp"
#include "place/hpwl.hpp"
#include "place/placer.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"
#include "util/table.hpp"

namespace {

int run(const fixedpart::util::Cli& cli) {
  using namespace fixedpart;
  cli.require_known({"cells", "levels", "cutoff", "exact", "seed"});
  gen::CircuitSpec spec;
  spec.name = "placer-demo";
  spec.num_cells = static_cast<hg::VertexId>(cli.get_int("cells", 3000));
  spec.num_nets = spec.num_cells + spec.num_cells / 10;
  spec.num_pads = std::max<hg::VertexId>(16, spec.num_cells / 50);
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  const gen::GeneratedCircuit circuit = gen::generate_circuit(spec);
  place::PlacementProblem problem;
  problem.graph = &circuit.graph;
  problem.width = circuit.placement.width;
  problem.height = circuit.placement.height;
  problem.pad_x = circuit.placement.x;
  problem.pad_y = circuit.placement.y;

  place::PlacerConfig config;
  config.max_levels = static_cast<int>(cli.get_int("levels", 6));
  config.ml.refine.pass_cutoff = cli.get_double("cutoff", 0.25);
  config.exact_threshold = static_cast<int>(cli.get_int("exact", 0));

  std::cout << "top-down placement of " << circuit.graph.num_vertices()
            << " vertices / " << circuit.graph.num_nets() << " nets, "
            << config.max_levels << " levels, FM pass cutoff "
            << util::fmt(100.0 * config.ml.refine.pass_cutoff, 0) << "%"
            << (config.exact_threshold > 0
                    ? ", exact end-cases <= " +
                          std::to_string(config.exact_threshold)
                    : "")
            << "\n\n";

  const place::TopDownPlacer placer(problem);
  util::Rng rng(spec.seed ^ 0xf00d);
  const place::PlacementResult result = placer.run(config, rng);

  util::Table table({"level", "blocks split", "avg %fixed in instance",
                     "avg cut", "seconds"});
  for (std::size_t level = 0; level < result.levels.size(); ++level) {
    const place::LevelStats& stats = result.levels[level];
    table.add_row({std::to_string(level),
                   std::to_string(stats.blocks_split),
                   stats.blocks_split ? util::fmt(stats.avg_fixed_pct, 1) : "-",
                   stats.blocks_split ? util::fmt(stats.avg_cut, 1) : "-",
                   util::fmt(stats.seconds, 3)});
  }
  table.print(std::cout);

  // Baseline: the same cells scattered randomly over the final positions.
  std::vector<hg::VertexId> cells;
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    if (!circuit.graph.is_pad(v)) cells.push_back(v);
  }
  std::vector<double> rand_x = result.x;
  std::vector<double> rand_y = result.y;
  std::vector<hg::VertexId> shuffled = cells;
  rng.shuffle(std::span<hg::VertexId>(shuffled));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    rand_x[cells[i]] = result.x[shuffled[i]];
    rand_y[cells[i]] = result.y[shuffled[i]];
  }
  const double random_hpwl =
      place::half_perimeter_wirelength(circuit.graph, rand_x, rand_y);

  std::cout << "\nHPWL: random placement " << util::fmt(random_hpwl, 0)
            << "  ->  recursive-bisection placement "
            << util::fmt(result.hpwl, 0) << "  ("
            << util::fmt(100.0 * result.hpwl / random_hpwl, 1)
            << "% of random)\n"
            << "wall clock: " << util::fmt(result.seconds, 2) << "s\n"
            << "\nNote how %fixed grows level by level (Table I of the\n"
               "paper): deeper blocks are dominated by propagated\n"
               "terminals, which is why the fixed-terminals regime is the\n"
               "real-world placement workload.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const fixedpart::util::Cli cli(argc, argv);
  return fixedpart::util::run_cli_main("topdown_placer",
                                       [&] { return run(cli); });
}
