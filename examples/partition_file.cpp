// Command-line partitioner for on-disk instances — the entry point a
// downstream user reaches for first. Reads either a self-contained .fpb
// benchmark (which carries partitions, balance and fixed vertices) or an
// hMETIS .hgr file (optionally with an hMETIS-style fix file), partitions
// it, and reports the cut; optionally writes the assignment.
//
//   $ ./build/examples/partition_file instance.fpb
//   $ ./build/examples/partition_file netlist.hgr --fix=netlist.fix
//   $     --k=2 --tolerance=2 --starts=4 --policy=clip --cutoff=1.0
//   $     --seed=1 --out=assignment.txt --budget=10 --repair --lenient
//
// For k == 2 the multilevel engine is used; for k > 2 the flat k-way FM
// refiner runs from multistart random solutions.
//
// Guardrails (docs/ROBUSTNESS.md): a feasibility pre-flight rejects
// instances whose fixed vertices provably cannot satisfy the balance
// (exit code 4) unless --repair loosens a relative tolerance to the
// minimal feasible value; --budget=<seconds> bounds the wall clock and
// degrades to the best partition found so far ("truncated"); --lenient
// accepts recoverable input anomalies the strict parsers reject.

#include <fstream>
#include <iostream>
#include <limits>
#include <string>

#include "hg/io_binary.hpp"
#include "hg/io_bookshelf.hpp"
#include "hg/io_hmetis.hpp"
#include "hg/io_solution.hpp"
#include "ml/multilevel.hpp"
#include "part/feasibility.hpp"
#include "part/initial.hpp"
#include "part/kway_fm.hpp"
#include "util/cli.hpp"
#include "util/deadline.hpp"
#include "util/errors.hpp"
#include "util/timer.hpp"

namespace {

using namespace fixedpart;

part::SelectionPolicy parse_policy(const std::string& name) {
  if (name == "lifo") return part::SelectionPolicy::kLifo;
  if (name == "fifo") return part::SelectionPolicy::kFifo;
  if (name == "clip") return part::SelectionPolicy::kClip;
  throw util::UsageError("unknown --policy (use lifo|fifo|clip): " + name);
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int run(const util::Cli& cli) {
  cli.require_known({"fix", "k", "tolerance", "starts", "policy", "cutoff",
                     "seed", "out", "sol", "threads", "vcycles", "budget",
                     "repair", "lenient"});
  if (cli.positional().size() != 1) {
    throw util::UsageError(
        "partition_file <instance.fpb|instance.fpbin|netlist.hgr> "
        "[--fix=f] [--k=2] [--tolerance=2] [--starts=4]\n"
        "       [--policy=clip|lifo|fifo] [--cutoff=1.0] [--vcycles=0] "
        "[--seed=1] [--out=assignment.txt]\n"
        "       [--budget=seconds] [--repair] [--lenient]");
  }
  const std::string path = cli.positional()[0];
  const hg::IoOptions io_options =
      cli.get_bool("lenient", false) ? hg::IoOptions::lenient()
                                     : hg::IoOptions{};

  // --- Load the instance.
  hg::BenchmarkInstance instance;
  if (ends_with(path, ".fpbin")) {
    hg::BinaryInstance bin = hg::read_fpbin_file(path);
    instance.graph = std::move(bin.graph);
    instance.fixed = std::move(bin.fixed);
    instance.num_parts = bin.num_parts;
    instance.balance.relative = true;
    instance.balance.tolerance_pct = cli.get_double("tolerance", 2.0);
    // Names are synthesized only if the assignment is written out: at
    // the 1M-10M vertex scale .fpbin targets, that many std::strings
    // would dwarf the CSR arrays themselves.
    if (cli.get("out")) {
      instance.names = hg::default_names(instance.graph.num_vertices());
    }
  } else if (ends_with(path, ".fpb")) {
    instance = hg::read_fpb_file(path, io_options);
  } else {
    instance.graph = hg::read_hmetis_file(path, io_options);
    instance.num_parts = static_cast<hg::PartitionId>(cli.get_int("k", 2));
    instance.balance.relative = true;
    instance.balance.tolerance_pct = cli.get_double("tolerance", 2.0);
    instance.names = hg::default_names(instance.graph.num_vertices());
    if (const auto fix_path = cli.get("fix")) {
      instance.fixed =
          hg::read_fix_file(*fix_path, instance.graph.num_vertices(),
                            instance.num_parts, io_options);
    } else {
      instance.fixed = hg::FixedAssignment(instance.graph.num_vertices(),
                                           instance.num_parts);
    }
  }
  auto balance = part::BalanceConstraint::from_spec(
      instance.graph, instance.num_parts, instance.balance);

  // --- Feasibility pre-flight: never refine a provably impossible
  // instance. --repair loosens a relative tolerance to the minimal
  // feasible value (and says so); other infeasibilities exit with code 4.
  part::FeasibilityReport feasibility;
  if (instance.balance.relative) {
    balance = part::preflight_balance(
        instance.graph, instance.fixed, instance.num_parts,
        instance.balance.tolerance_pct, cli.get_bool("repair", false),
        &feasibility);
  } else {
    feasibility =
        part::check_feasibility(instance.graph, instance.fixed, balance);
    if (!feasibility.feasible) {
      throw util::InfeasibleError(feasibility.summary());
    }
  }
  if (feasibility.repaired) {
    std::cout << "note: " << feasibility.summary() << "\n";
  }

  const int starts = static_cast<int>(cli.get_int("starts", 4));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
  std::cout << "instance: " << instance.graph.num_vertices() << " vertices, "
            << instance.graph.num_nets() << " nets, "
            << instance.fixed.count_fixed() << " fixed, k = "
            << instance.num_parts << "\n";

  util::Deadline deadline;
  const double budget = cli.get_double("budget", 0.0);
  if (budget > 0.0) deadline = util::Deadline::after_seconds(budget);

  // --- Partition.
  util::Timer timer;
  std::vector<hg::PartitionId> assignment;
  hg::Weight cut = 0;
  bool truncated = false;
  if (instance.num_parts == 2) {
    ml::MultilevelConfig config;
    config.refine.policy = parse_policy(cli.get_or("policy", "clip"));
    config.refine.pass_cutoff = cli.get_double("cutoff", 1.0);
    config.vcycles = static_cast<int>(cli.get_int("vcycles", 0));
    if (budget > 0.0) config.deadline = &deadline;
    const ml::MultilevelPartitioner partitioner(instance.graph,
                                                instance.fixed, balance);
    const int threads = static_cast<int>(cli.get_int("threads", 1));
    auto result =
        threads > 1
            ? partitioner.best_of_parallel(
                  starts, threads,
                  static_cast<std::uint64_t>(cli.get_int("seed", 1)), config)
            : partitioner.best_of(starts, rng, config);
    assignment = std::move(result.assignment);
    cut = result.cut;
    truncated = result.truncated;
  } else {
    part::KwayFmRefiner refiner(instance.graph, instance.fixed, balance);
    part::KwayConfig config;
    config.pass_cutoff = cli.get_double("cutoff", 1.0);
    hg::Weight best = std::numeric_limits<hg::Weight>::max();
    for (int s = 0; s < starts; ++s) {
      // The k-way refiner has no in-pass deadline; the budget bounds the
      // multistart loop instead (the first start always runs).
      if (s > 0 && budget > 0.0 && deadline.expired()) {
        truncated = true;
        break;
      }
      part::PartitionState state(instance.graph, instance.num_parts);
      part::random_feasible_assignment(state, instance.fixed, balance, rng,
                                       /*require_feasible=*/false);
      refiner.refine(state, rng, config);
      if (state.cut() < best) {
        best = state.cut();
        assignment.assign(state.assignment().begin(),
                          state.assignment().end());
      }
    }
    cut = best;
  }
  const double seconds = timer.seconds();

  // --- Report and verify.
  part::PartitionState state(instance.graph, instance.num_parts);
  for (hg::VertexId v = 0; v < instance.graph.num_vertices(); ++v) {
    state.assign(v, assignment[v]);
  }
  part::check_respects_fixed(state, instance.fixed);
  std::cout << "cut = " << cut << "  (" << starts << " starts, " << seconds
            << "s)" << (truncated ? "  [truncated: budget expired]" : "")
            << "\n";
  for (hg::PartitionId p = 0; p < instance.num_parts; ++p) {
    std::cout << "  part " << p << ": weight " << state.part_weight(p)
              << " (cap " << balance.max_weight(p) << ")"
              << (state.part_weight(p) > balance.max_weight(p)
                      ? "  [over capacity: instance infeasible]"
                      : "")
              << "\n";
  }

  if (const auto sol = cli.get("sol")) {
    hg::Solution solution;
    solution.num_parts = instance.num_parts;
    solution.cut = cut;
    solution.assignment = assignment;
    hg::write_solution_file(*sol, solution);
    std::cout << "wrote solution to " << *sol << "\n";
  }
  if (const auto out = cli.get("out")) {
    std::ofstream os(*out);
    if (!os) throw std::runtime_error("cannot write " + *out);
    for (hg::VertexId v = 0; v < instance.graph.num_vertices(); ++v) {
      os << instance.names[v] << ' ' << assignment[v] << '\n';
    }
    std::cout << "wrote assignment to " << *out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  return util::run_cli_main("partition_file", [&] { return run(cli); });
}
