// Command-line partitioner for on-disk instances — the entry point a
// downstream user reaches for first. Reads either a self-contained .fpb
// benchmark (which carries partitions, balance and fixed vertices) or an
// hMETIS .hgr file (optionally with an hMETIS-style fix file), partitions
// it, and reports the cut; optionally writes the assignment.
//
//   $ ./build/examples/partition_file instance.fpb
//   $ ./build/examples/partition_file netlist.hgr --fix=netlist.fix
//   $     --k=2 --tolerance=2 --starts=4 --policy=clip --cutoff=1.0
//   $     --seed=1 --out=assignment.txt
//
// For k == 2 the multilevel engine is used; for k > 2 the flat k-way FM
// refiner runs from multistart random solutions.

#include <fstream>
#include <iostream>
#include <limits>
#include <string>

#include "hg/io_bookshelf.hpp"
#include "hg/io_hmetis.hpp"
#include "hg/io_solution.hpp"
#include "ml/multilevel.hpp"
#include "part/initial.hpp"
#include "part/kway_fm.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace fixedpart;

part::SelectionPolicy parse_policy(const std::string& name) {
  if (name == "lifo") return part::SelectionPolicy::kLifo;
  if (name == "fifo") return part::SelectionPolicy::kFifo;
  if (name == "clip") return part::SelectionPolicy::kClip;
  throw std::invalid_argument("unknown --policy (use lifo|fifo|clip): " +
                              name);
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  try {
    cli.require_known({"fix", "k", "tolerance", "starts", "policy", "cutoff",
                       "seed", "out", "sol", "threads", "vcycles"});
    if (cli.positional().size() != 1) {
      std::cerr << "usage: partition_file <instance.fpb|netlist.hgr> "
                   "[--fix=f] [--k=2] [--tolerance=2] [--starts=4]\n"
                   "       [--policy=clip|lifo|fifo] [--cutoff=1.0] "
                   "[--vcycles=0] [--seed=1] [--out=assignment.txt]\n";
      return 2;
    }
    const std::string path = cli.positional()[0];

    // --- Load the instance.
    hg::BenchmarkInstance instance;
    if (ends_with(path, ".fpb")) {
      instance = hg::read_fpb_file(path);
    } else {
      instance.graph = hg::read_hmetis_file(path);
      instance.num_parts = static_cast<hg::PartitionId>(cli.get_int("k", 2));
      instance.balance.relative = true;
      instance.balance.tolerance_pct = cli.get_double("tolerance", 2.0);
      instance.names = hg::default_names(instance.graph.num_vertices());
      if (const auto fix_path = cli.get("fix")) {
        instance.fixed = hg::read_fix_file(
            *fix_path, instance.graph.num_vertices(), instance.num_parts);
      } else {
        instance.fixed =
            hg::FixedAssignment(instance.graph.num_vertices(),
                                instance.num_parts);
      }
    }
    const auto balance = part::BalanceConstraint::from_spec(
        instance.graph, instance.num_parts, instance.balance);

    const int starts = static_cast<int>(cli.get_int("starts", 4));
    util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
    std::cout << "instance: " << instance.graph.num_vertices()
              << " vertices, " << instance.graph.num_nets() << " nets, "
              << instance.fixed.count_fixed() << " fixed, k = "
              << instance.num_parts << "\n";

    // --- Partition.
    util::Timer timer;
    std::vector<hg::PartitionId> assignment;
    hg::Weight cut = 0;
    if (instance.num_parts == 2) {
      ml::MultilevelConfig config;
      config.refine.policy = parse_policy(cli.get_or("policy", "clip"));
      config.refine.pass_cutoff = cli.get_double("cutoff", 1.0);
      config.vcycles = static_cast<int>(cli.get_int("vcycles", 0));
      const ml::MultilevelPartitioner partitioner(instance.graph,
                                                  instance.fixed, balance);
      const int threads = static_cast<int>(cli.get_int("threads", 1));
      auto result =
          threads > 1
              ? partitioner.best_of_parallel(
                    starts, threads,
                    static_cast<std::uint64_t>(cli.get_int("seed", 1)),
                    config)
              : partitioner.best_of(starts, rng, config);
      assignment = std::move(result.assignment);
      cut = result.cut;
    } else {
      part::KwayFmRefiner refiner(instance.graph, instance.fixed, balance);
      part::KwayConfig config;
      config.pass_cutoff = cli.get_double("cutoff", 1.0);
      hg::Weight best = std::numeric_limits<hg::Weight>::max();
      for (int s = 0; s < starts; ++s) {
        part::PartitionState state(instance.graph, instance.num_parts);
        part::random_feasible_assignment(state, instance.fixed, balance, rng,
                                         /*require_feasible=*/false);
        refiner.refine(state, rng, config);
        if (state.cut() < best) {
          best = state.cut();
          assignment.assign(state.assignment().begin(),
                            state.assignment().end());
        }
      }
      cut = best;
    }
    const double seconds = timer.seconds();

    // --- Report and verify.
    part::PartitionState state(instance.graph, instance.num_parts);
    for (hg::VertexId v = 0; v < instance.graph.num_vertices(); ++v) {
      state.assign(v, assignment[v]);
    }
    part::check_respects_fixed(state, instance.fixed);
    std::cout << "cut = " << cut << "  (" << starts << " starts, "
              << seconds << "s)\n";
    for (hg::PartitionId p = 0; p < instance.num_parts; ++p) {
      std::cout << "  part " << p << ": weight " << state.part_weight(p)
                << " (cap " << balance.max_weight(p) << ")"
                << (state.part_weight(p) > balance.max_weight(p)
                        ? "  [over capacity: instance infeasible]"
                        : "")
                << "\n";
    }

    if (const auto sol = cli.get("sol")) {
      hg::Solution solution;
      solution.num_parts = instance.num_parts;
      solution.cut = cut;
      solution.assignment = assignment;
      hg::write_solution_file(*sol, solution);
      std::cout << "wrote solution to " << *sol << "\n";
    }
    if (const auto out = cli.get("out")) {
      std::ofstream os(*out);
      if (!os) throw std::runtime_error("cannot write " + *out);
      for (hg::VertexId v = 0; v < instance.graph.num_vertices(); ++v) {
        os << instance.names[v] << ' ' << assignment[v] << '\n';
      }
      std::cout << "wrote assignment to " << *out << "\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
