// Generates the fixed-terminals benchmark suite of Sec. IV and writes it
// to disk: for each IBMxx-like circuit, the eight derived block instances
// (A-D x vertical/horizontal cutline) in both the self-contained .fpb
// format (with fixed vertices, balance, names) and hMETIS .hgr + .fix
// pairs for interoperability with other partitioners.
//
//   $ ./build/examples/suite_writer --out=/tmp/fixedpart-suite
//   $     [--circuits=5] [--tolerance=2]

#include <filesystem>
#include <iostream>

#include "gen/derive.hpp"
#include "gen/suite.hpp"
#include "hg/io_hmetis.hpp"
#include "hg/io_solution.hpp"
#include "hg/stats.hpp"
#include "ml/multilevel.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/errors.hpp"
#include "util/table.hpp"

namespace {

int run(const fixedpart::util::Cli& cli) {
  using namespace fixedpart;
  cli.require_known({"out", "circuits", "tolerance", "solutions", "starts",
                     "seed"});
  const std::string out_dir = cli.get_or("out", "fixedpart-suite");
  const int circuits = static_cast<int>(cli.get_int("circuits", 5));
  const double tolerance = cli.get_double("tolerance", 2.0);
  const util::Scale scale = util::scale_from_env();

  // The paper's bookshelf publishes benchmarks "together with information
  // about best known solutions"; compute one per instance unless disabled.
  const bool solutions = cli.get_bool("solutions", true);
  const int starts = static_cast<int>(cli.get_int("starts", 4));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

  std::filesystem::create_directories(out_dir);
  util::Table table({"instance", "cells", "pads", "nets", "ext nets",
                     "best cut", "files"});
  for (int index = 1; index <= circuits; ++index) {
    const auto spec = gen::ibm_like_spec(index, scale);
    const auto circuit = gen::generate_circuit(spec);
    for (gen::DerivedInstance& derived :
         gen::derive_family(circuit, tolerance)) {
      const std::string base = out_dir + "/" + derived.name;
      hg::write_fpb_file(base + ".fpb", derived.instance);
      hg::write_hmetis_file(base + ".hgr", derived.instance.graph);
      hg::write_fix_file(base + ".fix", derived.instance.fixed);
      std::string best_cut = "-";
      std::string files = derived.name + ".{fpb,hgr,fix}";
      if (solutions) {
        const auto balance = part::BalanceConstraint::relative(
            derived.instance.graph, 2, tolerance);
        const ml::MultilevelPartitioner partitioner(
            derived.instance.graph, derived.instance.fixed, balance);
        const auto result =
            partitioner.best_of(starts, rng, ml::MultilevelConfig{});
        hg::Solution solution;
        solution.num_parts = 2;
        solution.cut = result.cut;
        solution.assignment = result.assignment;
        hg::write_solution_file(base + ".fpsol", solution);
        best_cut = std::to_string(result.cut);
        files = derived.name + ".{fpb,hgr,fix,fpsol}";
      }
      const hg::InstanceStats stats =
          hg::compute_stats(derived.instance.graph);
      table.add_row({derived.name, std::to_string(stats.num_cells),
                     std::to_string(stats.num_pads),
                     std::to_string(stats.num_nets),
                     std::to_string(stats.num_external_nets), best_cut,
                     files});
    }
  }
  table.print(std::cout);
  std::cout << "\nwrote suite to " << out_dir << " (scale "
            << util::to_string(scale) << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const fixedpart::util::Cli cli(argc, argv);
  return fixedpart::util::run_cli_main("suite_writer",
                                       [&] { return run(cli); });
}
