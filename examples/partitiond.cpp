// partitiond — the partition-as-a-service daemon (docs/ROBUSTNESS.md
// "Server lifecycle", README quickstart). It fuses obs::HttpEndpoint
// (dependency-free HTTP/1.1, 127.0.0.1 only) with svc::PartitionServer
// (bounded priority admission, per-request Deadline budgets, idempotent
// content-hash submission + result cache, fsync-durable event journal,
// watchdog, graceful drain):
//
//   partitiond --listen=0 --port-file=port.txt --journal=jobs.journal
//              --spool-dir=spool --workers=2
//
//   POST /partition      submit a .hgr/.fpb upload or one-line JSON spec;
//                        query tunes priority + engine knobs. 202 with a
//                        job handle, 200 on a cache hit, 429 + Retry-After
//                        when the queue is full, 503 while draining.
//   GET /jobs/<id>       poll the handle (state + outcome when done)
//   DELETE /jobs/<id>    cancel (cooperative for running jobs)
//   GET /metrics|/metrics.json|/healthz|/progress   operator routes
//
// SIGTERM/SIGINT drain: in-flight jobs finish and are journaled, new
// submissions get 503, queued jobs stay journaled for the next start,
// exit code 0. kill -9 loses at most in-flight attempts: a restart with
// the same --journal/--spool-dir re-serves every journaled result and
// re-enqueues accepted-but-unfinished jobs.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "obs/flight.hpp"
#include "obs/http.hpp"
#include "obs/log.hpp"
#include "svc/process_pool.hpp"
#include "svc/server.hpp"
#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/deadline.hpp"
#include "util/errors.hpp"

namespace {

using namespace fixedpart;

std::atomic<bool> g_drain{false};

void drain_handler(int) { g_drain.store(true, std::memory_order_release); }

void apply_log_level(const std::string& name) {
  if (name == "debug") {
    obs::Log::global().set_min_level(obs::LogLevel::kDebug);
  } else if (name == "info") {
    obs::Log::global().set_min_level(obs::LogLevel::kInfo);
  } else if (name == "warn") {
    obs::Log::global().set_min_level(obs::LogLevel::kWarn);
  } else if (name == "error") {
    obs::Log::global().set_min_level(obs::LogLevel::kError);
  } else {
    throw util::UsageError("--log-level must be debug|info|warn|error");
  }
}

int run(const util::Cli& cli) {
  cli.require_known({"listen", "port-file", "workers", "queue-capacity",
                     "journal", "spool-dir", "default-budget", "max-budget",
                     "max-attempts", "hang-seconds", "done-capacity",
                     "io-timeout", "max-request-bytes", "log-level",
                     "test-slow-ms", "isolation", "worker", "rlimit-as-mb",
                     "rlimit-cpu-seconds", "heartbeat-timeout",
                     "cancel-grace", "max-job-crashes",
                     "journal-compact-every", "retry-after-no-data",
                     "flight-dir"});
  apply_log_level(cli.get_or("log-level", "info"));
#if !FIXEDPART_OBS_ENABLED
  std::cout << "partitiond: built with FIXEDPART_OBS=OFF; the HTTP "
               "endpoint is compiled out, nothing to serve"
            << std::endl;
  return 0;
#else
  svc::ServerConfig config;
  config.workers = static_cast<int>(cli.get_int("workers", 1));
  config.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-capacity", 16));
  config.retry.max_attempts =
      static_cast<int>(cli.get_int("max-attempts", 3));
  config.hang_seconds = cli.get_double("hang-seconds", 0.0);
  config.default_budget_seconds = cli.get_double("default-budget", 10.0);
  config.max_budget_seconds = cli.get_double("max-budget", 60.0);
  config.done_capacity =
      static_cast<std::size_t>(cli.get_int("done-capacity", 4096));
  config.journal_path = cli.get_or("journal", "");
  config.journal_compact_every = cli.get_int("journal-compact-every", 4096);
  config.retry_after_no_data_seconds =
      cli.get_double("retry-after-no-data", 2.0);
  config.spool_dir = cli.get_or("spool-dir", "");

  // --flight-dir=DIR arms the always-on flight recorder's dump paths:
  // watchdog fires and worker crash/hang classifications write
  // <dir>/<reason>-<job>.json, fatal signals (in the daemon AND, via the
  // inherited env var, in every worker) write <dir>/fatal-sig<N>-<pid>.json.
  config.flight_dir = cli.get_or("flight-dir", "");
  if (!config.flight_dir.empty()) {
    obs::FlightRecorder::global().arm_signal_dump(config.flight_dir);
    ::setenv("FIXEDPART_FLIGHT_DIR", config.flight_dir.c_str(), 1);
  }

  const std::string isolation = cli.get_or("isolation", "thread");
  if (isolation != "thread" && isolation != "process") {
    throw util::UsageError("--isolation must be thread|process");
  }

  // --test-slow-ms=N pads every job with a deadline-respecting busy wait
  // before the real engine runs. Only for tests: it makes "the queue
  // backs up" reproducible on any machine, so the E2E can demonstrate
  // load-shedding and mid-flight kills deterministically. In process
  // mode the pad travels as an env var the workers inherit.
  const std::int64_t slow_ms = cli.get_int("test-slow-ms", 0);

  // --isolation=process: each attempt runs in a fork/exec'd
  // fixedpart-worker under rlimit caps, supervised by svc::ProcessPool —
  // a crashing or OOMing job kills one worker, never the daemon.
  // --isolation=thread (default) is the in-process serial oracle;
  // journal bytes are identical across modes for crash-free fleets.
  std::unique_ptr<svc::ProcessPool> pool;  // outlives the server
  if (isolation == "process") {
    svc::ProcessPoolConfig pool_config;
    pool_config.worker_path =
        svc::resolve_worker_path(cli.get_or("worker", ""));
    pool_config.rlimit_as_bytes =
        cli.get_int("rlimit-as-mb", 0) * (1ll << 20);
    pool_config.rlimit_cpu_seconds = cli.get_int("rlimit-cpu-seconds", 0);
    pool_config.heartbeat_timeout_seconds =
        cli.get_double("heartbeat-timeout", 10.0);
    pool_config.cancel_grace_seconds = cli.get_double("cancel-grace", 5.0);
    pool_config.max_job_crashes =
        static_cast<int>(cli.get_int("max-job-crashes", 2));
    pool_config.flight_dir = config.flight_dir;
    if (slow_ms > 0) {
      ::setenv("FIXEDPART_WORKER_SLOW_MS", std::to_string(slow_ms).c_str(),
               1);
    }
    pool = std::make_unique<svc::ProcessPool>(pool_config);
    config.runner = pool->runner();
  } else if (slow_ms > 0) {
    config.runner = [slow_ms](const svc::JobSpec& spec,
                              const util::Deadline& deadline) {
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(slow_ms);
      while (std::chrono::steady_clock::now() < until &&
             !deadline.expired()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      return svc::run_partition_job(spec, deadline);
    };
  }

  svc::PartitionServer server(config);
  server.start();

  obs::HttpEndpointConfig endpoint_config;
  const std::int64_t port = cli.get_int("listen", 0);
  if (port < 0 || port > 65535) {
    throw util::UsageError("--listen must be a port in [0, 65535]");
  }
  endpoint_config.port = static_cast<std::uint16_t>(port);
  endpoint_config.io_timeout_seconds = cli.get_double("io-timeout", 5.0);
  endpoint_config.max_request_bytes = static_cast<std::size_t>(
      cli.get_int("max-request-bytes", 1 << 20));
  endpoint_config.progress = [&server, &pool] {
    std::string body = server.progress_json();
    if (pool != nullptr) {
      // Splice the worker-pool counters into the same /progress object.
      const std::size_t brace = body.rfind('}');
      if (brace != std::string::npos) {
        body.insert(brace, ", \"workers\": " + pool->stats_json());
      }
    }
    return body;
  };
  endpoint_config.handler = [&server](const obs::HttpRequest& request,
                                      obs::HttpResponse& response) {
    return server.handle(request, response);
  };
  obs::HttpEndpoint endpoint(endpoint_config);
  endpoint.start();
  if (const auto port_file = cli.get("port-file")) {
    // Written atomically so a test polling the file never reads half a
    // number; the kernel-assigned port makes parallel daemons collision-
    // free.
    util::write_file_atomic(*port_file,
                            std::to_string(endpoint.port()) + "\n");
  }
  std::cout << "partitiond: listening on 127.0.0.1:" << endpoint.port()
            << " (workers=" << config.workers
            << " queue=" << config.queue_capacity
            << " isolation=" << isolation << ")" << std::endl;

  std::signal(SIGINT, drain_handler);
  std::signal(SIGTERM, drain_handler);
  while (!g_drain.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful drain: new submissions see 503 immediately, in-flight jobs
  // finish and reach the journal, queued jobs stay journaled for the
  // next start. The endpoint keeps answering GETs until the drain ends
  // so clients can collect final results.
  std::cout << "partitiond: draining" << std::endl;
  server.drain();
  endpoint.stop();
  std::cout << "partitiond: drained, exiting" << std::endl;
  return 0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  return util::run_cli_main("partitiond", [&] { return run(cli); });
}
