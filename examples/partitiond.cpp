// partitiond — the partition-as-a-service daemon (docs/ROBUSTNESS.md
// "Server lifecycle", README quickstart). It fuses obs::HttpEndpoint
// (dependency-free HTTP/1.1, 127.0.0.1 only) with svc::PartitionServer
// (bounded priority admission, per-request Deadline budgets, idempotent
// content-hash submission + result cache, fsync-durable event journal,
// watchdog, graceful drain):
//
//   partitiond --listen=0 --port-file=port.txt --journal=jobs.journal
//              --spool-dir=spool --workers=2
//
//   POST /partition      submit a .hgr/.fpb upload or one-line JSON spec;
//                        query tunes priority + engine knobs. 202 with a
//                        job handle, 200 on a cache hit, 429 + Retry-After
//                        when the queue is full, 503 while draining.
//   GET /jobs/<id>       poll the handle (state + outcome when done)
//   DELETE /jobs/<id>    cancel (cooperative for running jobs)
//   GET /metrics|/metrics.json|/healthz|/progress   operator routes
//
// SIGTERM/SIGINT drain: in-flight jobs finish and are journaled, new
// submissions get 503, queued jobs stay journaled for the next start,
// exit code 0. kill -9 loses at most in-flight attempts: a restart with
// the same --journal/--spool-dir re-serves every journaled result and
// re-enqueues accepted-but-unfinished jobs.

#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <string>
#include <thread>

#include "obs/http.hpp"
#include "obs/log.hpp"
#include "svc/server.hpp"
#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/deadline.hpp"
#include "util/errors.hpp"

namespace {

using namespace fixedpart;

std::atomic<bool> g_drain{false};

void drain_handler(int) { g_drain.store(true, std::memory_order_release); }

void apply_log_level(const std::string& name) {
  if (name == "debug") {
    obs::Log::global().set_min_level(obs::LogLevel::kDebug);
  } else if (name == "info") {
    obs::Log::global().set_min_level(obs::LogLevel::kInfo);
  } else if (name == "warn") {
    obs::Log::global().set_min_level(obs::LogLevel::kWarn);
  } else if (name == "error") {
    obs::Log::global().set_min_level(obs::LogLevel::kError);
  } else {
    throw util::UsageError("--log-level must be debug|info|warn|error");
  }
}

int run(const util::Cli& cli) {
  cli.require_known({"listen", "port-file", "workers", "queue-capacity",
                     "journal", "spool-dir", "default-budget", "max-budget",
                     "max-attempts", "hang-seconds", "done-capacity",
                     "io-timeout", "max-request-bytes", "log-level",
                     "test-slow-ms"});
  apply_log_level(cli.get_or("log-level", "info"));
#if !FIXEDPART_OBS_ENABLED
  std::cout << "partitiond: built with FIXEDPART_OBS=OFF; the HTTP "
               "endpoint is compiled out, nothing to serve"
            << std::endl;
  return 0;
#else
  svc::ServerConfig config;
  config.workers = static_cast<int>(cli.get_int("workers", 1));
  config.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-capacity", 16));
  config.retry.max_attempts =
      static_cast<int>(cli.get_int("max-attempts", 3));
  config.hang_seconds = cli.get_double("hang-seconds", 0.0);
  config.default_budget_seconds = cli.get_double("default-budget", 10.0);
  config.max_budget_seconds = cli.get_double("max-budget", 60.0);
  config.done_capacity =
      static_cast<std::size_t>(cli.get_int("done-capacity", 4096));
  config.journal_path = cli.get_or("journal", "");
  config.spool_dir = cli.get_or("spool-dir", "");

  // --test-slow-ms=N pads every job with a deadline-respecting busy wait
  // before the real engine runs. Only for tests: it makes "the queue
  // backs up" reproducible on any machine, so the E2E can demonstrate
  // load-shedding and mid-flight kills deterministically.
  const std::int64_t slow_ms = cli.get_int("test-slow-ms", 0);
  if (slow_ms > 0) {
    config.runner = [slow_ms](const svc::JobSpec& spec,
                              const util::Deadline& deadline) {
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(slow_ms);
      while (std::chrono::steady_clock::now() < until &&
             !deadline.expired()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      return svc::run_partition_job(spec, deadline);
    };
  }

  svc::PartitionServer server(config);
  server.start();

  obs::HttpEndpointConfig endpoint_config;
  const std::int64_t port = cli.get_int("listen", 0);
  if (port < 0 || port > 65535) {
    throw util::UsageError("--listen must be a port in [0, 65535]");
  }
  endpoint_config.port = static_cast<std::uint16_t>(port);
  endpoint_config.io_timeout_seconds = cli.get_double("io-timeout", 5.0);
  endpoint_config.max_request_bytes = static_cast<std::size_t>(
      cli.get_int("max-request-bytes", 1 << 20));
  endpoint_config.progress = [&server] { return server.progress_json(); };
  endpoint_config.handler = [&server](const obs::HttpRequest& request,
                                      obs::HttpResponse& response) {
    return server.handle(request, response);
  };
  obs::HttpEndpoint endpoint(endpoint_config);
  endpoint.start();
  if (const auto port_file = cli.get("port-file")) {
    // Written atomically so a test polling the file never reads half a
    // number; the kernel-assigned port makes parallel daemons collision-
    // free.
    util::write_file_atomic(*port_file,
                            std::to_string(endpoint.port()) + "\n");
  }
  std::cout << "partitiond: listening on 127.0.0.1:" << endpoint.port()
            << " (workers=" << config.workers
            << " queue=" << config.queue_capacity << ")" << std::endl;

  std::signal(SIGINT, drain_handler);
  std::signal(SIGTERM, drain_handler);
  while (!g_drain.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful drain: new submissions see 503 immediately, in-flight jobs
  // finish and reach the journal, queued jobs stay journaled for the
  // next start. The endpoint keeps answering GETs until the drain ends
  // so clients can collect final results.
  std::cout << "partitiond: draining" << std::endl;
  server.drain();
  endpoint.stop();
  std::cout << "partitiond: drained, exiting" << std::endl;
  return 0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  return util::run_cli_main("partitiond", [&] { return run(cli); });
}
