// fixedpart-worker: the child half of the process-isolation protocol
// (docs/ROBUSTNESS.md "Process supervision tree"). svc::ProcessPool
// fork/execs one of these per attempt with the frame protocol on fds 3/4
// and setrlimit caps already applied; this program:
//
//   1. reads the single 'J' frame (a JobSpec JSON line) from fd 3;
//   2. runs ONE attempt of svc::run_partition_job under the spec's
//      budget, with a listener thread turning an incoming 'C' frame into
//      the deadline's cooperative cancel flag (best-so-far "truncated"
//      degradation, exactly like the in-process path);
//   3. writes 'H' heartbeat frames every ~50 ms so the supervisor's
//      reaper can tell "slow" from "wedged";
//   4. catches every engine exception per the PR-2 taxonomy and reports
//      exactly one 'O' frame — a JobOutcome JSON line (ok/truncated with
//      the result, or failed carrying the error class + message) — then
//      exits 0. Anything else (nonzero exit, fatal signal, silence) is
//      the supervisor's cue to classify a crash.
//
// Retry/poisoning policy lives entirely in the supervisor; the worker is
// one attempt, stateless, disposable.
//
// Deterministic fault hooks for the crash-isolation tests ride on
// environment variables (never on spec fields, so job ids and journal
// bytes stay identical across isolation modes):
//   FIXEDPART_WORKER_CRASH_SEED=<seed>   job with this seed calls abort()
//   FIXEDPART_WORKER_CRASH_ONCE_SEED=<seed> + FIXEDPART_WORKER_CRASH_FLAG=
//     <path>  crash only while <path> does not exist (created first), so
//     the first attempt dies and the retry succeeds
//   FIXEDPART_WORKER_STALL_SEED=<seed>   stop heartbeating and sleep
//     (exercises the reaper's hang kill)
//   FIXEDPART_WORKER_HOG_SEED=<seed>     allocate-and-touch until the
//     rlimit bites (exercises OOM classification)
//   FIXEDPART_WORKER_SLOW_MS=<ms>        busy-wait per job (process-mode
//     twin of partitiond --test-slow-ms)
//   FIXEDPART_WORKER_BAD_SPANS_SEED=<seed>  send deliberately corrupt 'T'
//     span frames before running (exercises the supervisor's untrusted-
//     input boundary: only this job's trace may be affected)
//
// `fixedpart-worker --selfcheck` allocates a realistic chunk and exits 0;
// the E2E uses it to probe whether RLIMIT_AS is usable in this build
// (ASan/TSan shadow reservations break under it — the probe fails and
// the OOM phase is skipped).

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hg/io_common.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "obs/trace_wire.hpp"
#include "svc/executor.hpp"
#include "svc/job.hpp"
#include "util/deadline.hpp"
#include "util/errors.hpp"
#include "util/subprocess.hpp"
#include "util/timer.hpp"

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace {

using namespace fixedpart;

/// Single writer-side mutex: heartbeats and the outcome frame interleave
/// whole-frame, never byte-wise.
std::mutex out_mu;

bool send(char type, const std::string& payload) {
  std::lock_guard<std::mutex> lock(out_mu);
  return util::write_frame(util::kWorkerOutFd, type, payload);
}

bool env_seed_matches(const char* name, std::uint64_t seed) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return false;
  return std::strtoull(value, nullptr, 10) == seed;
}

/// Deterministic test-crash hooks; no-ops unless the matching env var
/// names this job's seed.
void apply_fault_hooks(const svc::JobSpec& spec) {
  if (env_seed_matches("FIXEDPART_WORKER_CRASH_SEED", spec.seed)) {
    std::abort();
  }
  if (env_seed_matches("FIXEDPART_WORKER_CRASH_ONCE_SEED", spec.seed)) {
    const char* flag = std::getenv("FIXEDPART_WORKER_CRASH_FLAG");
    if (flag != nullptr && *flag != '\0') {
#ifdef __unix__
      const int fd = open(flag, O_WRONLY | O_CREAT | O_EXCL, 0644);
      if (fd >= 0) {
        // First visitor: plant the flag, then die. Retries find the flag
        // and run normally — a deterministic crash-exactly-once job.
        close(fd);
        std::abort();
      }
#endif
    }
  }
  if (env_seed_matches("FIXEDPART_WORKER_HOG_SEED", spec.seed)) {
    // Allocate and touch until RLIMIT_AS bites: either bad_alloc (caught
    // below, reported "out of memory") or a kernel kill.
    std::vector<std::unique_ptr<char[]>> hog;
    for (;;) {
      constexpr std::size_t kChunk = 8u << 20;
      hog.push_back(std::make_unique<char[]>(kChunk));
      for (std::size_t i = 0; i < kChunk; i += 4096) hog.back()[i] = 1;
    }
  }
}

/// FIXEDPART_WORKER_BAD_SPANS_SEED=<seed>: this job impersonates a
/// malicious worker and floods the supervisor with deliberately corrupt
/// 'T' frames — garbage headers, torn lines, oversized names, absurd
/// epochs/counters — before running the job normally. The isolation tests
/// assert the parent survives, the job still completes, and only this
/// job's own trace is garbled.
void apply_bad_spans_hook(const svc::JobSpec& spec) {
  if (!env_seed_matches("FIXEDPART_WORKER_BAD_SPANS_SEED", spec.seed)) {
    return;
  }
  send(util::kFrameSpans, "not a spans header at all");
  send(util::kFrameSpans, "");
  send(util::kFrameSpans,
       "spans v1 now=123 dropped=7\n"
       "torn-line-no-tabs\n"
       "\t\t\t\n"
       "bad-start\tzzz\t1\t1\n");
  send(util::kFrameSpans, "spans v1 now=0 dropped=0\n" +
                              std::string(100000, 'x') + "\t1\t1\t1\n");
  send(util::kFrameSpans,
       "spans v1 now=999999999999999999 dropped=9\n"
       "future\t999999999999999999\t5\t1\n");
}

void apply_slow_hook(const util::Deadline& deadline) {
  const char* value = std::getenv("FIXEDPART_WORKER_SLOW_MS");
  if (value == nullptr || *value == '\0') return;
  const long ms = std::strtol(value, nullptr, 10);
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < until) {
    if (deadline.expired()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

int selfcheck() {
  // A realistic allocation under whatever rlimit the caller arranged:
  // exit 0 iff this build can actually allocate under it (sanitizer
  // shadow reservations make RLIMIT_AS unusable — then this dies).
  constexpr std::size_t kChunk = 64u << 20;
  try {
    const auto probe = std::make_unique<char[]>(kChunk);
    for (std::size_t i = 0; i < kChunk; i += 4096) probe[i] = 1;
    return probe[0] == 1 ? 0 : 1;
  } catch (const std::bad_alloc&) {
    return 9;
  }
}

int serve() {
  util::FrameReader reader(util::kWorkerInFd);

  // The supervisor sends the spec immediately after spawn; anything else
  // first (or EOF) is a protocol failure.
  char type = 0;
  std::string payload;
  for (;;) {
    const auto status = reader.poll_frame(1000, &type, &payload);
    if (status == util::FrameReader::Status::kEof) return 1;
    if (status == util::FrameReader::Status::kFrame) break;
  }
  if (type != util::kFrameJob) return 1;

  svc::JobSpec spec;
  try {
    std::istringstream in(payload + "\n");
    hg::LineReader line_reader(in, "spec-frame", '#');
    std::string line;
    if (!line_reader.next(line)) return 1;
    spec = svc::job_spec_from_json(line, line_reader);
  } catch (const std::exception&) {
    return 1;
  }

  if (env_seed_matches("FIXEDPART_WORKER_STALL_SEED", spec.seed)) {
    // Wedge silently BEFORE the heartbeat/listener threads exist: no
    // heartbeats, no cancel handling. Only the reaper's SIGKILL ends
    // this. (Stalling after the heartbeat thread started would keep
    // beating and never look wedged.)
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
  }

  // Per-job trace collection: engine spans recorded on this thread land
  // in this buffer via the thread-local context and are streamed to the
  // supervisor as 'T' frames by the heartbeat thread (interleaved with
  // plain 'H' beats — any frame refreshes the supervisor's liveness
  // clock). The trace id is the same one the server derives, so the
  // merged trace is attributed to the job with no extra handshake.
  obs::SpanBuffer spans;
  obs::ScopedTraceContext trace_ctx(obs::trace_id_for(spec.id), &spans);
  {
    // Completed marker span: the supervisor learns this worker's epoch
    // and current phase even before the engine finishes its first span
    // (a worker killed mid-job then has a "last recorded phase").
    obs::ScopedSpan marker("worker.start");
  }
  apply_bad_spans_hook(spec);

  std::atomic<bool> cancel{false};
  // Listener: a 'C' frame flips the cooperative cancel flag; EOF means
  // the supervisor itself died — exit instead of orphaning the attempt.
  std::thread listener([&cancel, reader = std::move(reader)]() mutable {
    char t = 0;
    std::string p;
    for (;;) {
      const auto status = reader.poll_frame(100, &t, &p);
      if (status == util::FrameReader::Status::kEof) _exit(2);
      if (status == util::FrameReader::Status::kFrame &&
          t == util::kFrameCancel) {
        cancel.store(true, std::memory_order_release);
      }
    }
  });
  listener.detach();

  std::atomic<bool> done{false};
  std::thread heartbeat([&done, &spans] {
    while (!done.load(std::memory_order_acquire)) {
      const std::vector<obs::TraceEvent> batch = spans.drain();
      const bool ok =
          batch.empty()
              ? send(util::kFrameHeartbeat, "")
              : send(util::kFrameSpans,
                     obs::encode_span_batch(
                         {obs::trace_now_ns(), spans.dropped()}, batch));
      if (!ok) _exit(2);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  util::Deadline deadline = spec.budget_seconds > 0.0
                                ? util::Deadline::after_seconds(
                                      spec.budget_seconds)
                                : util::Deadline();
  deadline.set_cancel_flag(&cancel);

  svc::JobOutcome outcome;
  outcome.id = spec.id;
  util::Timer timer;
  try {
    apply_fault_hooks(spec);
    apply_slow_hook(deadline);
    const svc::JobResult result = svc::run_partition_job(spec, deadline);
    outcome.status = result.truncated ? svc::JobStatus::kTruncated
                                      : svc::JobStatus::kOk;
    outcome.cut = result.cut;
    outcome.truncated = result.truncated;
    outcome.moves = result.moves;
    outcome.passes = result.passes;
  } catch (const util::InputError& e) {
    outcome.status = svc::JobStatus::kFailed;
    outcome.error = svc::ErrorClass::kInput;
    outcome.message = e.what();
  } catch (const util::InfeasibleError& e) {
    outcome.status = svc::JobStatus::kFailed;
    outcome.error = svc::ErrorClass::kInfeasible;
    outcome.message = e.what();
  } catch (const svc::TransientError& e) {
    outcome.status = svc::JobStatus::kFailed;
    outcome.error = svc::ErrorClass::kTransient;
    outcome.message = e.what();
  } catch (const std::bad_alloc&) {
    outcome.status = svc::JobStatus::kFailed;
    outcome.error = svc::ErrorClass::kTransient;
    outcome.message = "out of memory";
  } catch (const std::exception& e) {
    outcome.status = svc::JobStatus::kFailed;
    outcome.error = svc::ErrorClass::kInternal;
    outcome.message = e.what();
  } catch (...) {
    outcome.status = svc::JobStatus::kFailed;
    outcome.error = svc::ErrorClass::kInternal;
    outcome.message = "unknown exception";
  }
  outcome.seconds = timer.seconds();

  done.store(true, std::memory_order_release);
  heartbeat.join();
  // Final drain: whatever the last heartbeat tick missed must reach the
  // supervisor before the outcome frame closes the attempt.
  const std::vector<obs::TraceEvent> tail = spans.drain();
  if (!tail.empty()) {
    send(util::kFrameSpans,
         obs::encode_span_batch({obs::trace_now_ns(), spans.dropped()},
                                tail));
  }
  if (!send(util::kFrameOutcome, svc::to_json_line(outcome))) return 2;
  // The detached listener may still be polling fd 3; _exit skips any
  // teardown it could race with. The outcome bytes are already written.
  _exit(0);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selfcheck") == 0) return selfcheck();
  }
  // Set by partitiond --flight-dir: a fatal signal (including the abort()
  // fault hooks) leaves a flight-recorder dump next to the parent's.
  const char* flight_dir = std::getenv("FIXEDPART_FLIGHT_DIR");
  if (flight_dir != nullptr && *flight_dir != '\0') {
    obs::FlightRecorder::global().arm_signal_dump(flight_dir);
  }
  return serve();
}
