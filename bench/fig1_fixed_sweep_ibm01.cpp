// Regenerates Fig. 1: the fixed-vertex sweep on an IBM01-like circuit
// (raw / normalized best cut and CPU time vs. % fixed, for 1/2/4/8 starts,
// good and rand regimes).

#include "bench/fixed_sweep_common.hpp"

int main(int argc, char** argv) {
  return fixedpart::bench::run_fixed_sweep_bench("Fig. 1", 1, argc, argv);
}
