// Regenerates Fig. 1: the fixed-vertex sweep on an IBM01-like circuit
// (raw / normalized best cut and CPU time vs. % fixed, for 1/2/4/8 starts,
// good and rand regimes). Runs through the svc batch engine; see
// fixed_sweep_common.hpp for --journal/--resume/--workers/--budget.

#include "bench/fixed_sweep_common.hpp"

int main(int argc, char** argv) {
  return fixedpart::util::run_cli_main("fig1_fixed_sweep_ibm01", [&] {
    return fixedpart::bench::run_fixed_sweep_bench("Fig. 1", 1, argc, argv);
  });
}
