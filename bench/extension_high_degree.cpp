// Extension experiment (paper Sec. V): "while our experiments fix random
// terminals from known hypergraphs where most vertices have low degree,
// it is always possible to fix vertices of very high degree to yield
// qualitatively different problem instances with similar numbers of fixed
// terminals." This bench compares the rand regime with random selection
// vs highest-degree-first selection at equal percentages: raw cut,
// constraint metrics, and runtime.

#include <iostream>

#include "bench/common.hpp"
#include "experiments/constraint_metrics.hpp"
#include "gen/regimes.hpp"
#include "ml/multilevel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fixedpart;
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::bench_env(cli);
  bench::print_header(
      "Extension: high-degree vs random fixed vertices (Sec. V)", env);

  const auto spec = gen::ibm_like_spec(1, env.scale);
  const auto circuit = gen::generate_circuit(spec);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  util::Rng rng(cli.get_int("seed", 13));
  const gen::FixedVertexSeries random_series(circuit.graph, 2, rng);
  const gen::FixedVertexSeries degree_series(
      circuit.graph, 2, rng, gen::SelectionOrder::kHighDegreeFirst);

  util::Table table({"selection", "%fixed", "avg cut", "anchored frac",
                     "avg sec"});
  const int trials = env.trials * 2;
  for (const double pct : {2.0, 5.0, 10.0, 20.0}) {
    for (const bool high_degree : {false, true}) {
      const gen::FixedVertexSeries& series =
          high_degree ? degree_series : random_series;
      const hg::FixedAssignment fixed = series.rand_regime(pct);
      const exp::ConstraintMetrics metrics =
          exp::compute_constraint_metrics(circuit.graph, fixed);
      const ml::MultilevelPartitioner partitioner(circuit.graph, fixed,
                                                  balance);
      util::RunningStat cut;
      util::RunningStat sec;
      for (int t = 0; t < trials; ++t) {
        const auto result = partitioner.run(rng, exp::default_ml_config());
        cut.add(static_cast<double>(result.cut));
        sec.add(result.seconds);
      }
      table.add_row({high_degree ? "highest degree" : "random",
                     util::fmt(pct, 0), util::fmt(cut.mean(), 1),
                     util::fmt(metrics.anchored_net_fraction, 3),
                     util::fmt(sec.mean(), 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: at equal %fixed, high-degree terminals anchor a\n"
               "far larger fraction of the nets (anchored frac column) and\n"
               "yield much harder (higher-cut) rand instances — the\n"
               "qualitative difference the paper predicts, and the reason\n"
               "%fixed alone cannot measure constraint strength.\n";
  return 0;
}
