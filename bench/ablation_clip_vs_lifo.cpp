// Ablation of the refinement-policy design choice called out in DESIGN.md:
// the paper's engine uses CLIP selection inside the multilevel partitioner
// ("using LIFO FM instead of CLIP FM results in very similar results").
// This bench compares CLIP vs LIFO multilevel runs, with and without the
// Table III pass cutoff, across fixed-vertex percentages.

#include <iostream>

#include "bench/common.hpp"
#include "gen/regimes.hpp"
#include "ml/multilevel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fixedpart;

struct Variant {
  const char* label;
  part::SelectionPolicy policy;
  double cutoff;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::bench_env(cli);
  bench::print_header("Ablation: CLIP vs LIFO refinement, +/- pass cutoff",
                      env);

  const auto spec = gen::ibm_like_spec(1, env.scale);
  const auto circuit = gen::generate_circuit(spec);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  util::Rng rng(cli.get_int("seed", 6));
  const gen::FixedVertexSeries series(circuit.graph, 2, rng);

  const Variant variants[] = {
      {"CLIP", part::SelectionPolicy::kClip, 1.0},
      {"LIFO", part::SelectionPolicy::kLifo, 1.0},
      {"CLIP+cut25", part::SelectionPolicy::kClip, 0.25},
      {"LIFO+cut25", part::SelectionPolicy::kLifo, 0.25},
  };

  std::vector<std::string> header = {"%fixed"};
  for (const Variant& v : variants) {
    header.push_back(std::string(v.label) + " cut(sec)");
  }
  util::Table table(header);
  const int trials = env.trials * 2;
  for (const double pct : {0.0, 10.0, 30.0}) {
    const hg::FixedAssignment fixed = series.rand_regime(pct);
    const ml::MultilevelPartitioner partitioner(circuit.graph, fixed,
                                                balance);
    std::vector<std::string> row = {util::fmt(pct, 0)};
    for (const Variant& variant : variants) {
      ml::MultilevelConfig config;
      config.refine.policy = variant.policy;
      config.refine.pass_cutoff = variant.cutoff;
      util::RunningStat cut;
      util::RunningStat sec;
      for (int t = 0; t < trials; ++t) {
        const auto result = partitioner.run(rng, config);
        cut.add(static_cast<double>(result.cut));
        sec.add(result.seconds);
      }
      row.push_back(util::fmt_cut_time(cut.mean(), sec.mean()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: CLIP ~= LIFO in quality (paper Sec. II);\n"
               "the 25% cutoff saves time, and is increasingly safe at\n"
               "higher fixed percentages (Table III).\n";
  return 0;
}
