// Regenerates Table II: average passes per run and average percentage of
// nodes (net) moved per pass, excluding the first pass, for LIFO-FM runs
// from random starts at 0/10/20/30% fixed vertices (good regime).
//
// "% moved" counts the best-prefix moves — the moves that survive the
// end-of-pass rollback (the remainder is the paper's "wasted" work);
// "% performed" is also shown for reference. Percentages are relative to
// the movable vertex count.

#include <iostream>

#include "bench/common.hpp"
#include "experiments/pass_experiments.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fixedpart;
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::bench_env(cli);
  bench::print_header("Table II: LIFO-FM pass statistics", env);

  util::Table table({"circuit", "%fixed", "avg passes/run",
                     "avg %moved/pass", "avg %performed/pass"});
  util::Table deciles({"circuit", "%fixed", "0-10", "10-20", "20-30",
                       "30-40", "40-50", "50-60", "60-70", "70-80", "80-90",
                       "90-100"});
  util::Rng rng(cli.get_int("seed", 2));
  const int last_circuit =
      static_cast<int>(cli.get_int("circuits", env.scale == util::Scale::kSmoke ? 1 : 3));
  for (int index = 1; index <= last_circuit; ++index) {
    const auto spec = gen::ibm_like_spec(index, env.scale);
    const exp::InstanceContext ctx =
        exp::make_context(spec, env.ref_starts, 2.0, rng);
    exp::PassStatsConfig config;
    config.runs = env.trials * 10;  // flat FM is cheap; match the paper's 50
    const auto rows = exp::run_pass_stats(ctx, config, rng);
    for (const exp::PassStatsRow& row : rows) {
      table.add_row({spec.name, util::fmt(row.pct_fixed, 0),
                     util::fmt(row.avg_passes, 2),
                     util::fmt(row.avg_pct_moved, 2),
                     util::fmt(row.avg_pct_performed, 2)});
      std::vector<std::string> decile_row = {spec.name,
                                             util::fmt(row.pct_fixed, 0)};
      for (const double share : row.prefix_position_deciles) {
        decile_row.push_back(util::fmt(share, 1));
      }
      deciles.add_row(std::move(decile_row));
    }
  }
  table.print(std::cout);
  std::cout << "\nWhere within a pass does the best prefix end? (% of\n"
               "passes whose best solution lies in each decile of the\n"
               "performed moves; Sec. III: improvements concentrate near\n"
               "the beginning of the pass as terminals are added)\n\n";
  deciles.print(std::cout);
  std::cout << "\nExpected shape (paper): %moved per pass falls as %fixed\n"
               "rises — with more terminals, improvements concentrate at\n"
               "the beginning of each pass and most moves are wasted.\n";
  return 0;
}
