// Regenerates Fig. 2: the fixed-vertex sweep on an IBM03-like circuit.

#include "bench/fixed_sweep_common.hpp"

int main(int argc, char** argv) {
  return fixedpart::bench::run_fixed_sweep_bench("Fig. 2", 3, argc, argv);
}
