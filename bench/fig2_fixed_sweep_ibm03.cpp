// Regenerates Fig. 2: the fixed-vertex sweep on an IBM03-like circuit.
// Runs through the svc batch engine; see fixed_sweep_common.hpp for
// --journal/--resume/--workers/--budget.

#include "bench/fixed_sweep_common.hpp"

int main(int argc, char** argv) {
  return fixedpart::util::run_cli_main("fig2_fixed_sweep_ibm03", [&] {
    return fixedpart::bench::run_fixed_sweep_bench("Fig. 2", 3, argc, argv);
  });
}
