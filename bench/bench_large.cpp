// Scale-frontier benchmark (docs/PERF.md "BENCH_LARGE"): exercises the
// million-vertex path end to end — streaming generation to .fpbin, zero-copy
// mmap open + full scan, owning load, text-parser throughput, and a
// multilevel partition — recording wall time and the peak-RSS high-water
// mark after each stage. The committed BENCH_LARGE.json is produced by
// this tool at --cells=1000000.
//
//   bench_large --out=BENCH_LARGE.json                    # 1M cells
//   bench_large --cells=200000 --budget=60 --out=/tmp/l.json
//   bench_large --cells=200000 --max-rss-mb=2048 --min-parse-mbps=20 ...
//
// --max-rss-mb and --min-parse-mbps turn measurements into assertions
// (exit 1 on violation) so the `large` smoke stage catches memory-diet
// and parser-throughput regressions, not just crashes.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "gen/stream_gen.hpp"
#include "hg/fixed.hpp"
#include "hg/io_binary.hpp"
#include "hg/io_hmetis.hpp"
#include "ml/multilevel.hpp"
#include "part/balance.hpp"
#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/deadline.hpp"
#include "util/errors.hpp"
#include "util/mem.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace fixedpart;

struct Stage {
  std::string name;
  double seconds = 0.0;
  std::int64_t peak_rss_kb = 0;  // process high-water mark after the stage
};

std::string format_double(double value) {
  std::ostringstream out;
  out.precision(6);
  out << value;
  return out.str();
}

std::int64_t file_size_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw util::InputError("bench_large: cannot stat " + path);
  return static_cast<std::int64_t>(in.tellg());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  return util::run_cli_main("bench_large", [&] {
    cli.require_known({"out", "cells", "seed", "starts", "threads", "budget",
                       "tmpdir", "max-rss-mb", "min-parse-mbps", "keep"});
    const auto out_path = cli.get("out");
    if (!out_path) {
      throw util::UsageError(
          "bench_large --out=<file.json> [--cells=1000000] [--seed=1] "
          "[--starts=1] [--threads=1] [--budget=seconds] [--tmpdir=/tmp] "
          "[--max-rss-mb=M] [--min-parse-mbps=T] [--keep]");
    }
    const auto cells = static_cast<hg::VertexId>(
        cli.get_int("cells", 1'000'000));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const int starts = static_cast<int>(cli.get_int("starts", 1));
    const int threads = static_cast<int>(cli.get_int("threads", 1));
    const double budget = cli.get_double("budget", 0.0);
    const std::string tmpdir = cli.get_or("tmpdir", "/tmp");
    const std::string stem = tmpdir + "/bench_large_" +
                             std::to_string(static_cast<long>(::getpid()));
    const std::string fpbin_path = stem + ".fpbin";
    const std::string hgr_path = stem + ".hgr";

    std::vector<Stage> stages;
    const auto record = [&](const std::string& name, double seconds) {
      stages.push_back({name, seconds, util::peak_rss_kb()});
      std::cout << "  " << name << ": " << format_double(seconds)
                << " s  (peak RSS " << stages.back().peak_rss_kb
                << " KiB)\n";
    };

    // --- Stage 1: streaming generation straight to .fpbin.
    gen::StreamSpec spec = gen::stream_spec_for_cells(cells, seed);
    std::cout << "bench_large: " << spec.num_cells << " cells, "
              << spec.num_pads << " pads, " << spec.num_nets << " nets\n";
    util::Timer timer;
    gen::stream_circuit_fpbin(spec, fpbin_path);
    record("generate", timer.seconds());
    const std::int64_t fpbin_bytes = file_size_bytes(fpbin_path);

    // --- Stage 2: zero-copy mmap open + full scan. The scan touches
    // every pin in both CSR directions, so the measured time is what a
    // consumer pays to stream the instance once off the mapping.
    std::int64_t pins_seen = 0;
    hg::Weight scan_weight = 0;
    timer = util::Timer();
    {
      hg::MappedHypergraph mapped(fpbin_path);
      for (hg::NetId e = 0; e < mapped.num_nets(); ++e) {
        for (hg::VertexId v : mapped.pins(e)) {
          scan_weight += mapped.vertex_weight(v);
          ++pins_seen;
        }
      }
      for (hg::VertexId v = 0; v < mapped.num_vertices(); ++v) {
        pins_seen += mapped.degree(v);
      }
    }
    record("mmap_scan", timer.seconds());

    // --- Stage 3: owning load (the partitioner's input path).
    timer = util::Timer();
    hg::BinaryInstance instance = hg::read_fpbin_file(fpbin_path);
    record("load_owning", timer.seconds());
    if (instance.graph.num_pins() * 2 != pins_seen) {
      std::cerr << "bench_large: mmap scan disagrees with owning load ("
                << pins_seen << " vs 2*" << instance.graph.num_pins()
                << ")\n";
      return 1;
    }

    // --- Stage 4: text-parser throughput. The .hgr serialization of the
    // same instance is written once (untimed) and parsed back (timed);
    // the large smoke stage asserts a floor on MB/s so the buffered-line
    // parser cannot quietly regress to char-at-a-time speeds.
    hg::write_hmetis_file(hgr_path, instance.graph);
    const std::int64_t hgr_bytes = file_size_bytes(hgr_path);
    timer = util::Timer();
    hg::Hypergraph parsed = hg::read_hmetis_file(hgr_path);
    const double parse_seconds = timer.seconds();
    const double parse_mbps =
        parse_seconds > 0.0
            ? static_cast<double>(hgr_bytes) / 1.0e6 / parse_seconds
            : 0.0;
    record("parse_text", parse_seconds);
    std::cout << "  parse_text: " << hgr_bytes / 1'000'000 << " MB at "
              << format_double(parse_mbps) << " MB/s\n";
    if (parsed.num_pins() != instance.graph.num_pins()) {
      std::cerr << "bench_large: text round-trip pin count mismatch\n";
      return 1;
    }
    parsed = hg::Hypergraph();  // release before partitioning

    // --- Stage 5: multilevel bipartition. --budget bounds the wall
    // clock (degrading to best-so-far); the committed BENCH_LARGE run
    // uses no budget so "partitioned to completion" means exactly that.
    const auto balance =
        part::BalanceConstraint::relative(instance.graph, 2, 10.0);
    util::Deadline deadline;
    ml::MultilevelConfig config;
    if (budget > 0.0) {
      deadline = util::Deadline::after_seconds(budget);
      config.deadline = &deadline;
    }
    const ml::MultilevelPartitioner partitioner(instance.graph,
                                                instance.fixed, balance);
    timer = util::Timer();
    const auto result =
        threads > 1 ? partitioner.best_of_parallel(starts, threads, seed,
                                                   config)
                    : [&] {
                        util::Rng rng(seed);
                        return partitioner.best_of(starts, rng, config);
                      }();
    record("partition", timer.seconds());
    std::cout << "  cut = " << result.cut
              << (result.truncated ? "  [truncated: budget expired]" : "")
              << "\n";

    if (!cli.get_bool("keep", false)) {
      std::remove(fpbin_path.c_str());
      std::remove(hgr_path.c_str());
    }

    // --- Emit JSON (atomic rename, like bench_to_json).
    std::ostringstream out;
    out << "{\n"
        << "  \"format\": 1,\n"
        << "  \"generated_by\": \"bench_large\",\n"
        << "  \"cells\": " << spec.num_cells << ",\n"
        << "  \"pads\": " << spec.num_pads << ",\n"
        << "  \"vertices\": " << instance.graph.num_vertices() << ",\n"
        << "  \"nets\": " << instance.graph.num_nets() << ",\n"
        << "  \"pins\": " << instance.graph.num_pins() << ",\n"
        << "  \"fpbin_bytes\": " << fpbin_bytes << ",\n"
        << "  \"hgr_bytes\": " << hgr_bytes << ",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"starts\": " << starts << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"parse_mbps\": " << format_double(parse_mbps) << ",\n"
        << "  \"cut\": " << result.cut << ",\n"
        << "  \"truncated\": " << (result.truncated ? "true" : "false")
        << ",\n"
        << "  \"scan_weight\": " << scan_weight << ",\n"
        << "  \"stages\": {\n";
    for (std::size_t i = 0; i < stages.size(); ++i) {
      out << "    \"" << stages[i].name << "\": {\"seconds\": "
          << format_double(stages[i].seconds) << ", \"peak_rss_kb\": "
          << stages[i].peak_rss_kb << "}" << (i + 1 < stages.size() ? "," : "")
          << "\n";
    }
    out << "  },\n"
        << "  \"peak_rss_kb\": " << util::peak_rss_kb() << "\n"
        << "}\n";
    util::write_file_atomic(*out_path, out.str());
    std::cout << "wrote " << *out_path << "\n";

    // --- Assertions (opt-in): memory budget and parser throughput.
    int status = 0;
    if (const auto max_rss_mb = cli.get_int("max-rss-mb", 0);
        max_rss_mb > 0 && util::peak_rss_kb() > max_rss_mb * 1024) {
      std::cerr << "bench_large: peak RSS " << util::peak_rss_kb()
                << " KiB exceeds budget " << max_rss_mb << " MB\n";
      status = 1;
    }
    if (const double min_mbps = cli.get_double("min-parse-mbps", 0.0);
        min_mbps > 0.0 && parse_mbps < min_mbps) {
      std::cerr << "bench_large: text parse throughput "
                << format_double(parse_mbps) << " MB/s below floor "
                << format_double(min_mbps) << " MB/s\n";
      status = 1;
    }
    return status;
  });
}
