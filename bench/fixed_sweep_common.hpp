#pragma once
// Shared driver for the Fig. 1 / Fig. 2 binaries: runs the Section II
// fixed-vertex sweep on one IBMxx-like circuit and prints the six panels
// (good/rand x raw cut / normalized cut / CPU time) as series tables.
//
// The sweep runs through the svc batch engine (one job per regime x
// percentage x trial x run), so the paper reproductions are supervised
// and resumable: --journal=FILE checkpoints every finished job,
// --resume skips them on the next invocation, --workers=N parallelizes
// (bit-identical results for a given --seed), --budget=SECONDS bounds
// each job, and Ctrl-C drains gracefully — in-flight jobs finish and are
// checkpointed before exit.

#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>

#include "bench/common.hpp"
#include "experiments/fixed_sweep.hpp"
#include "util/errors.hpp"
#include "util/table.hpp"

namespace fixedpart::bench {

inline util::Table series_table(const exp::SweepResult& result,
                                const exp::SweepSeries& series) {
  using util::Table;
  using util::fmt;
  std::vector<std::string> header = {"%fixed"};
  for (int s : result.starts) {
    header.push_back("cut@" + std::to_string(s));
  }
  for (int s : result.starts) {
    header.push_back("norm@" + std::to_string(s));
  }
  for (int s : result.starts) {
    header.push_back("sec@" + std::to_string(s));
  }
  Table table(header);
  for (std::size_t pi = 0; pi < result.percentages.size(); ++pi) {
    std::vector<std::string> row = {fmt(result.percentages[pi], 1)};
    for (std::size_t si = 0; si < result.starts.size(); ++si) {
      row.push_back(fmt(series.cells[pi][si].avg_best_cut, 1));
    }
    for (std::size_t si = 0; si < result.starts.size(); ++si) {
      row.push_back(fmt(series.cells[pi][si].normalized, 3));
    }
    for (std::size_t si = 0; si < result.starts.size(); ++si) {
      row.push_back(fmt(series.cells[pi][si].avg_seconds, 3));
    }
    table.add_row(std::move(row));
  }
  return table;
}

inline void print_series(const std::string& title, const util::Table& table) {
  std::cout << "-- " << title << " --\n";
  table.print(std::cout);
  std::cout << '\n';
}

/// Optional CSV dump next to the printed tables (for plotting the
/// figures): --csv=prefix writes prefix_good.csv and prefix_rand.csv.
inline void maybe_write_csv(const util::Cli& cli, const util::Table& good,
                            const util::Table& rand) {
  const auto prefix = cli.get("csv");
  if (!prefix) return;
  for (const auto& [suffix, table] :
       {std::pair<const char*, const util::Table*>{"_good.csv", &good},
        {"_rand.csv", &rand}}) {
    const std::string path = *prefix + suffix;
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write " + path);
    out << table->to_csv();
    std::cout << "wrote " << path << '\n';
  }
}

/// Set by SIGINT/SIGTERM; the engine finishes in-flight jobs, checkpoints
/// them, and the driver exits through the normal reporting path.
inline std::atomic<bool> g_sweep_drain{false};

inline void sweep_drain_handler(int) {
  g_sweep_drain.store(true, std::memory_order_release);
}

inline int run_fixed_sweep_bench(const std::string& figure, int circuit_index,
                                 int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const BenchEnv env = bench_env(cli);
  const auto spec = gen::ibm_like_spec(circuit_index, env.scale);
  print_header(figure + " fixed-vertex sweep on " + spec.name + "-like",
               env);

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 20260707));
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const exp::InstanceContext ctx =
      exp::make_context(spec, env.ref_starts, 2.0, rng);
  std::cout << "instance: " << ctx.circuit.graph.num_vertices()
            << " vertices, " << ctx.circuit.graph.num_nets()
            << " nets; free-instance reference cut = " << ctx.good_cut
            << "\n\n";

  exp::SweepConfig config;
  config.percentages = sweep_percentages(env.scale);
  config.trials = env.trials;
  config.ml = exp::default_ml_config();

  exp::SupervisedSweepOptions options;
  options.workers = static_cast<int>(cli.get_int("workers", 1));
  options.seed = seed;
  options.journal_path = cli.get_or("journal", "");
  options.resume = cli.get_bool("resume", false);
  options.job_budget_seconds = cli.get_double("budget", 0.0);
  options.drain = &g_sweep_drain;
  if (options.resume && options.journal_path.empty()) {
    throw util::UsageError("--resume requires --journal=FILE");
  }
  std::signal(SIGINT, sweep_drain_handler);
  std::signal(SIGTERM, sweep_drain_handler);

  const exp::SupervisedSweepRun run =
      exp::run_supervised_sweep(ctx, config, options);
  std::cout << "jobs: " << run.report.summary() << "\n\n";
  if (!run.result.has_value()) {
    std::cout << "sweep incomplete; "
              << (options.journal_path.empty()
                      ? "rerun with --journal=FILE to make it resumable\n"
                      : "rerun with --journal=" + options.journal_path +
                            " --resume to finish\n");
    return run.report.exit_code();
  }
  const exp::SweepResult& result = *run.result;

  const util::Table good_table = series_table(result, result.good);
  const util::Table rand_table = series_table(result, result.rand);
  print_series("good regime (fixed sides match the reference solution)",
               good_table);
  print_series("rand regime (fixed sides drawn at random)", rand_table);
  maybe_write_csv(cli, good_table, rand_table);

  std::cout << "Expected shapes (paper): rand raw cut rises steeply with\n"
               "%fixed; normalized curves flatten and the 1-start/8-start\n"
               "gap vanishes as %fixed grows; CPU time falls with %fixed.\n";
  return 0;
}

}  // namespace fixedpart::bench
