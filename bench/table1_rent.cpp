// Regenerates Table I: block sizes below which the expected number of
// fixed vertices (propagated terminals, Rent's rule with k = 3.5) exceeds
// 5%, 10% or 20% of the vertices in a top-down placement block.

#include <iostream>

#include "gen/rent.hpp"
#include "util/table.hpp"

int main() {
  using fixedpart::gen::threshold_block_size;
  using fixedpart::util::Table;
  using fixedpart::util::fmt;

  std::cout << "=== Table I: block sizes for given fixed-vertex fractions "
               "(k = 3.5 pins/cell) ===\n\n";
  Table table({"Rent p", ">=5% fixed", ">=10% fixed", ">=20% fixed"});
  for (const double p : {0.55, 0.60, 0.65, 0.68, 0.70, 0.75}) {
    table.add_row({fmt(p, 2), fmt(threshold_block_size(p, 3.5, 0.05), 0),
                   fmt(threshold_block_size(p, 3.5, 0.10), 0),
                   fmt(threshold_block_size(p, 3.5, 0.20), 0)});
  }
  table.print(std::cout);
  std::cout << "\nReading: in a design with Rent parameter p, every block\n"
               "with at most the given number of cells is expected to have\n"
               "at least that share of its vertices fixed.\n";
  return 0;
}
