// Regenerates Table IV: parameters of the derived fixed-terminal
// benchmarks (IBMxxA-D x vertical/horizontal cutlines): movable cells,
// terminal ("pad") vertices, nets, external nets, and the largest cell as
// a percentage of total cell area, plus the Rent's-rule terminal estimate
// the paper uses as a cross-check against Table I.

#include <iostream>

#include "bench/common.hpp"
#include "experiments/derive_report.hpp"
#include "gen/rent_fit.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fixedpart;
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::bench_env(cli);
  bench::print_header("Table IV: derived fixed-terminal benchmark suite",
                      env);

  util::Table table({"instance", "cells", "pads", "nets", "ext nets",
                     "Max%", "Rent T(C)"});
  util::Table rent_table({"circuit", "fitted Rent p", "fitted k"});
  const int last_circuit = static_cast<int>(cli.get_int(
      "circuits", env.scale == util::Scale::kSmoke ? 2 : 5));
  for (int index = 1; index <= last_circuit; ++index) {
    const auto spec = gen::ibm_like_spec(index, env.scale);
    const auto circuit = gen::generate_circuit(spec);
    const gen::RentFit fit = gen::fit_rent_exponent(circuit);
    rent_table.add_row({spec.name, util::fmt(fit.p, 3), util::fmt(fit.k, 2)});
    for (const exp::DerivedRow& row : exp::derive_report(circuit, 2.0)) {
      table.add_row({row.name, std::to_string(row.cells),
                     std::to_string(row.pads), std::to_string(row.nets),
                     std::to_string(row.external_nets),
                     util::fmt(row.max_pct, 2),
                     util::fmt(row.rent_expected_terminals, 0)});
    }
  }
  table.print(std::cout);
  std::cout << "\nMeasured Rent exponents of the source placements (the\n"
               "paper assumes p ~ 0.68 for modern designs):\n\n";
  rent_table.print(std::cout);
  std::cout << "\nCross-check (paper Sec. IV): external-net counts should\n"
               "correspond reasonably to the Rent's-rule estimate T(C) of\n"
               "Table I; sub-blocks (C, D) carry proportionally more\n"
               "terminals than full-die instances (A).\n";
  return 0;
}
