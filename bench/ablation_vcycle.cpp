// Ablation of the V-cycling design choice: the paper states "the
// partitioning engine does not perform V-cycling ... since we have
// determined that V-cycling is a net loss in terms of overall
// cost-runtime profile of our partitioner". This bench checks that claim:
// it compares N plain starts against the same wall-clock budget spent on
// fewer starts with V-cycles, across fixed-vertex percentages.

#include <iostream>

#include "bench/common.hpp"
#include "gen/regimes.hpp"
#include "ml/multilevel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fixedpart;
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::bench_env(cli);
  bench::print_header("Ablation: V-cycling cost/benefit (paper disables it)",
                      env);

  const auto spec = gen::ibm_like_spec(1, env.scale);
  const auto circuit = gen::generate_circuit(spec);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  util::Rng rng(cli.get_int("seed", 8));
  const gen::FixedVertexSeries series(circuit.graph, 2, rng);

  util::Table table({"%fixed", "plain cut(sec)", "+1 vcycle cut(sec)",
                     "+2 vcycles cut(sec)"});
  const int trials = env.trials * 2;
  for (const double pct : {0.0, 10.0, 30.0}) {
    const hg::FixedAssignment fixed = series.rand_regime(pct);
    const ml::MultilevelPartitioner partitioner(circuit.graph, fixed,
                                                balance);
    std::vector<std::string> row = {util::fmt(pct, 0)};
    for (const int vcycles : {0, 1, 2}) {
      ml::MultilevelConfig config;
      config.vcycles = vcycles;
      util::RunningStat cut;
      util::RunningStat sec;
      for (int t = 0; t < trials; ++t) {
        const auto result = partitioner.run(rng, config);
        cut.add(static_cast<double>(result.cut));
        sec.add(result.seconds);
      }
      row.push_back(util::fmt_cut_time(cut.mean(), sec.mean()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nReading: a V-cycle never worsens its own start, but costs\n"
               "extra time; the paper's claim is that the same time buys\n"
               "more as additional independent starts. Compare the per-run\n"
               "improvement against the seconds column.\n";
  return 0;
}
