// End-to-end payoff of the Table III heuristic: the paper argues that
// hard FM pass cutoffs are safe in the fixed-terminals regime "i.e., the
// real-world placement context" and buy substantial runtime. This
// ablation runs the full top-down placer — whose block instances are
// dominated by fixed terminals at every level below the top — with pass
// cutoffs 100% / 25% / 5%, and with exact end-case processing, reporting
// final HPWL and wall-clock time.

#include <iostream>

#include "bench/common.hpp"
#include "place/placer.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fixedpart;
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::bench_env(cli);
  bench::print_header(
      "Ablation: FM pass cutoff inside a top-down placer (Table III "
      "end-to-end)",
      env);

  const auto spec = gen::ibm_like_spec(1, env.scale);
  const auto circuit = gen::generate_circuit(spec);
  place::PlacementProblem problem;
  problem.graph = &circuit.graph;
  problem.width = circuit.placement.width;
  problem.height = circuit.placement.height;
  problem.pad_x = circuit.placement.x;
  problem.pad_y = circuit.placement.y;
  const place::TopDownPlacer placer(problem);

  struct Variant {
    const char* label;
    double cutoff;
    int exact;
  };
  const Variant variants[] = {
      {"cutoff 100%", 1.0, 0},
      {"cutoff 25%", 0.25, 0},
      {"cutoff 5%", 0.05, 0},
      {"cutoff 25% + exact end-cases", 0.25, 16},
  };

  util::Rng rng(cli.get_int("seed", 12));
  util::Table table({"variant", "avg HPWL", "avg seconds", "HPWL vs 100%"});
  const int trials = std::max(2, env.trials);
  double baseline_hpwl = 0.0;
  for (const Variant& variant : variants) {
    place::PlacerConfig config;
    config.max_levels = util::by_scale(env.scale, 5, 7, 9);
    config.ml.refine.pass_cutoff = variant.cutoff;
    config.exact_threshold = variant.exact;
    util::RunningStat hpwl;
    util::RunningStat seconds;
    for (int t = 0; t < trials; ++t) {
      const place::PlacementResult result = placer.run(config, rng);
      hpwl.add(result.hpwl);
      seconds.add(result.seconds);
    }
    if (baseline_hpwl == 0.0) baseline_hpwl = hpwl.mean();
    table.add_row({variant.label, util::fmt(hpwl.mean(), 0),
                   util::fmt(seconds.mean(), 3),
                   util::fmt(100.0 * hpwl.mean() / baseline_hpwl, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): because nearly every block\n"
               "instance in the placer has abundant fixed terminals,\n"
               "aggressive pass cutoffs cut runtime with little or no\n"
               "wirelength penalty — Table III carried into the\n"
               "application that motivates it.\n";
  return 0;
}
