#pragma once
// Shared plumbing for the table/figure regeneration binaries. Each binary
// prints the same rows/series as the corresponding paper exhibit, at a
// scale selected by REPRO_SCALE (smoke | default | paper) and overridable
// with --trials=/--starts=/--circuit= flags.

#include <iostream>
#include <string>
#include <vector>

#include "experiments/context.hpp"
#include "gen/suite.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace fixedpart::bench {

struct BenchEnv {
  util::Scale scale;
  int trials;      ///< trials (sweeps) or runs (flat-FM tables)
  int ref_starts;  ///< multilevel starts used to find the good reference
};

inline BenchEnv bench_env(const util::Cli& cli) {
  const util::Scale scale = util::scale_from_env();
  BenchEnv env;
  env.scale = scale;
  env.trials = static_cast<int>(
      cli.get_int("trials", util::by_scale(scale, 1, 3, 50)));
  // The good regime fixes vertices "according to where they are assigned
  // in the best min-cut solution we could find" — so invest real effort in
  // the reference, or fixing to it would *hurt* instead of help.
  env.ref_starts = static_cast<int>(
      cli.get_int("ref-starts", util::by_scale(scale, 8, 16, 64)));
  return env;
}

inline std::vector<double> sweep_percentages(util::Scale scale) {
  if (scale == util::Scale::kSmoke) return {0.0, 10.0, 30.0};
  return {0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0};
}

inline void print_header(const std::string& title, const BenchEnv& env) {
  std::cout << "=== " << title << " ===\n"
            << "scale=" << util::to_string(env.scale)
            << " trials=" << env.trials << " (REPRO_SCALE=paper for the "
            << "full protocol)\n\n";
}

}  // namespace fixedpart::bench
