// Extension experiment (paper Sec. IV): multi-balanced partitioning,
// "where each module supplies the same number (k > 1) of resource types.
// A corresponding set of k capacities and tolerances must be specified for
// each partition" — the hypothetical example being cell area and cell pin
// count both evenly distributed. This bench bipartitions an IBM01-like
// circuit under (a) area-only balance and (b) area+pin multibalance, and
// reports the cut plus the achieved imbalance of *both* resources in each
// case, with and without fixed terminals.

#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "gen/regimes.hpp"
#include "ml/multilevel.hpp"
#include "part/partition.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace fixedpart;

/// Achieved imbalance of resource r: |w0 - w1| / total, percent.
double imbalance_pct(const hg::Hypergraph& g,
                     const std::vector<hg::PartitionId>& assignment, int r) {
  hg::Weight side[2] = {0, 0};
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    side[assignment[v]] += g.vertex_weight(v, std::min(r, g.num_resources() - 1));
  }
  const double total = static_cast<double>(side[0] + side[1]);
  if (total == 0.0) return 0.0;
  return 100.0 * std::abs(static_cast<double>(side[0] - side[1])) / total;
}

/// Pin-count imbalance computed from degrees (works for 1-resource graphs).
double pin_imbalance_pct(const hg::Hypergraph& g,
                         const std::vector<hg::PartitionId>& assignment) {
  std::int64_t side[2] = {0, 0};
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    side[assignment[v]] += g.degree(v);
  }
  const double total = static_cast<double>(side[0] + side[1]);
  return total == 0.0 ? 0.0
                      : 100.0 * std::abs(static_cast<double>(side[0] - side[1])) /
                            total;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::bench_env(cli);
  bench::print_header(
      "Extension: multi-balanced partitioning (area + pin count, Sec. IV)",
      env);

  const auto spec = gen::ibm_like_spec(1, env.scale);
  const gen::GeneratedCircuit area_only = gen::generate_circuit(spec);
  const gen::GeneratedCircuit multibalance = gen::add_pin_resource(area_only);

  const double tol = cli.get_double("tolerance", 5.0);
  util::Rng rng(cli.get_int("seed", 9));
  const gen::FixedVertexSeries series(area_only.graph, 2, rng);

  util::Table table({"constraint", "%fixed", "avg cut", "area imbal %",
                     "pin imbal %"});
  const int trials = env.trials * 2;
  for (const double pct : {0.0, 20.0}) {
    const hg::FixedAssignment fixed_single = series.rand_regime(pct);
    for (const bool multi : {false, true}) {
      const gen::GeneratedCircuit& circuit = multi ? multibalance : area_only;
      // The fixed series indexes the same vertex ids in both graphs.
      hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
      for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
        const hg::PartitionId p = fixed_single.fixed_part(v);
        if (p != hg::kNoPartition) fixed.fix(v, p);
      }
      const auto balance =
          part::BalanceConstraint::relative(circuit.graph, 2, tol);
      const ml::MultilevelPartitioner partitioner(circuit.graph, fixed,
                                                  balance);
      util::RunningStat cut;
      util::RunningStat area_imbal;
      util::RunningStat pin_imbal;
      for (int t = 0; t < trials; ++t) {
        const auto result = partitioner.run(rng, exp::default_ml_config());
        cut.add(static_cast<double>(result.cut));
        area_imbal.add(imbalance_pct(circuit.graph, result.assignment, 0));
        pin_imbal.add(multi
                          ? imbalance_pct(circuit.graph, result.assignment, 1)
                          : pin_imbalance_pct(circuit.graph,
                                              result.assignment));
      }
      table.add_row({multi ? "area + pins" : "area only", util::fmt(pct, 0),
                     util::fmt(cut.mean(), 1), util::fmt(area_imbal.mean(), 2),
                     util::fmt(pin_imbal.mean(), 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the multibalance run keeps the pin\n"
               "imbalance within tolerance at a (usually small) cut cost;\n"
               "the area-only run leaves pin balance uncontrolled.\n";
  return 0;
}
