// Regenerates Table III: effect of cutting off all LIFO-FM passes (after
// the first) at 50% / 25% / 10% / 5% of the moves, at 0/10/20/30% fixed
// vertices (good regime). Cells are "avg cut (avg CPU seconds)".

#include <iostream>

#include "bench/common.hpp"
#include "experiments/pass_experiments.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fixedpart;
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::bench_env(cli);
  bench::print_header("Table III: LIFO-FM pass-cutoff effects", env);

  util::Rng rng(cli.get_int("seed", 3));
  const int last_circuit = static_cast<int>(
      cli.get_int("circuits", env.scale == util::Scale::kSmoke ? 1 : 3));
  for (int index = 1; index <= last_circuit; ++index) {
    const auto spec = gen::ibm_like_spec(index, env.scale);
    const exp::InstanceContext ctx =
        exp::make_context(spec, env.ref_starts, 2.0, rng);
    exp::CutoffConfig config;
    config.runs = env.trials * 10;
    const exp::CutoffResult result =
        exp::run_cutoff_experiment(ctx, config, rng);

    std::cout << "-- " << spec.name << "-like --\n";
    std::vector<std::string> header = {"%fixed"};
    for (const double c : config.cutoffs) {
      header.push_back("cutoff " + util::fmt(100.0 * c, 0) + "%");
    }
    util::Table table(header);
    for (std::size_t pi = 0; pi < result.percentages.size(); ++pi) {
      std::vector<std::string> row = {util::fmt(result.percentages[pi], 0)};
      for (const exp::CutoffCell& cell : result.cells[pi]) {
        row.push_back(util::fmt_cut_time(cell.avg_cut, cell.avg_seconds));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape (paper): without terminals, aggressive\n"
               "cutoffs degrade the cut; with >=20% fixed they do not, and\n"
               "every cutoff level reduces CPU time.\n";
  return 0;
}
