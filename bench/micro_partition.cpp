// Micro-benchmarks (google-benchmark) of the partitioning primitives:
// gain-bucket operations, flat FM passes (LIFO vs CLIP, with and without
// the Table III pass cutoff), coarsening, and full multilevel starts.

#include <benchmark/benchmark.h>

#include <vector>

#include "gen/netlist_gen.hpp"
#include "hg/fixed.hpp"
#include "ml/coarsen.hpp"
#include "ml/matching.hpp"
#include "ml/multilevel.hpp"
#include "part/fm.hpp"
#include "part/gain_buckets.hpp"
#include "part/initial.hpp"
#include "util/rng.hpp"

namespace {

using namespace fixedpart;

gen::GeneratedCircuit bench_circuit(int cells) {
  gen::CircuitSpec spec;
  spec.num_cells = cells;
  spec.num_nets = cells + cells / 10;
  spec.num_pads = cells / 50;
  spec.seed = 42;
  return gen::generate_circuit(spec);
}

void BM_GainBucketChurn(benchmark::State& state) {
  const auto n = static_cast<hg::VertexId>(state.range(0));
  part::GainBuckets buckets(n, 64);
  util::Rng rng(1);
  for (hg::VertexId v = 0; v < n; ++v) {
    buckets.insert(v, static_cast<hg::Weight>(rng.next_in(-64, 64)));
  }
  for (auto _ : state) {
    const auto v = static_cast<hg::VertexId>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    const auto key = buckets.key_of(v);
    const auto delta = static_cast<hg::Weight>(rng.next_in(-4, 4));
    const auto clamped =
        std::max<hg::Weight>(-64, std::min<hg::Weight>(64, key + delta));
    buckets.adjust(v, clamped - key);
    benchmark::DoNotOptimize(
        buckets.find_best([](hg::VertexId) { return true; }));
  }
}
BENCHMARK(BM_GainBucketChurn)->Arg(1000)->Arg(10000);

// Boundary-driven refinement keeps only a fraction of the vertices live in
// the buckets; the rest churn through insert (activation) / remove (move)
// cycles. Arg = percent of vertices active at a time: 10/20/30% brackets
// the boundary fractions seen on the ibm-profile instances.
void BM_GainBucketBoundaryChurn(benchmark::State& state) {
  constexpr hg::VertexId kVertices = 10000;
  const auto active =
      static_cast<hg::VertexId>(kVertices * state.range(0) / 100);
  part::GainBuckets buckets(kVertices, 64);
  util::Rng rng(6);
  // Ring of active vertices: each op adjusts one, retires the oldest
  // (remove = its move got picked) and activates a fresh interior vertex.
  std::vector<hg::VertexId> live;
  for (hg::VertexId v = 0; v < active; ++v) {
    buckets.insert(v, static_cast<hg::Weight>(rng.next_in(-48, 16)));
    live.push_back(v);
  }
  hg::VertexId next = active;
  std::size_t oldest = 0;
  for (auto _ : state) {
    const hg::VertexId u =
        live[rng.next_below(static_cast<std::uint64_t>(live.size()))];
    const auto key = buckets.key_of(u);
    const auto delta = static_cast<hg::Weight>(rng.next_in(-4, 4));
    const auto clamped =
        std::max<hg::Weight>(-64, std::min<hg::Weight>(64, key + delta));
    buckets.adjust(u, clamped - key);
    const hg::VertexId retired = live[oldest];
    if (buckets.contains(retired)) buckets.remove(retired);
    buckets.insert(next, static_cast<hg::Weight>(rng.next_in(-48, 16)));
    live[oldest] = next;
    oldest = (oldest + 1) % live.size();
    next = (next + 1) % kVertices;
    benchmark::DoNotOptimize(
        buckets.find_best([](hg::VertexId) { return true; }));
  }
}
BENCHMARK(BM_GainBucketBoundaryChurn)->Arg(10)->Arg(20)->Arg(30);

void BM_FmRefine(benchmark::State& state) {
  const auto circuit = bench_circuit(static_cast<int>(state.range(0)));
  const bool clip = state.range(1) != 0;
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  part::FmBipartitioner fm(circuit.graph, fixed, balance);
  part::FmConfig config;
  config.policy =
      clip ? part::SelectionPolicy::kClip : part::SelectionPolicy::kLifo;
  util::Rng rng(2);
  part::PartitionState partition(circuit.graph, 2);
  for (auto _ : state) {
    state.PauseTiming();
    part::random_feasible_assignment(partition, fixed, balance, rng);
    state.ResumeTiming();
    benchmark::DoNotOptimize(fm.refine(partition, rng, config));
  }
}
BENCHMARK(BM_FmRefine)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Args({8000, 0})
    ->Args({8000, 1});

void BM_FmRefineWithCutoff(benchmark::State& state) {
  const auto circuit = bench_circuit(4000);
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  part::FmBipartitioner fm(circuit.graph, fixed, balance);
  part::FmConfig config;
  config.pass_cutoff = static_cast<double>(state.range(0)) / 100.0;
  util::Rng rng(3);
  part::PartitionState partition(circuit.graph, 2);
  for (auto _ : state) {
    state.PauseTiming();
    part::random_feasible_assignment(partition, fixed, balance, rng);
    state.ResumeTiming();
    benchmark::DoNotOptimize(fm.refine(partition, rng, config));
  }
}
BENCHMARK(BM_FmRefineWithCutoff)->Arg(100)->Arg(25)->Arg(5);

void BM_Coarsen(benchmark::State& state) {
  const auto circuit = bench_circuit(static_cast<int>(state.range(0)));
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  util::Rng rng(4);
  for (auto _ : state) {
    const auto match = ml::heavy_edge_matching(circuit.graph, fixed,
                                               ml::MatchingConfig{}, rng);
    benchmark::DoNotOptimize(ml::contract(circuit.graph, fixed, match));
  }
}
BENCHMARK(BM_Coarsen)->Arg(2000)->Arg(8000);

void BM_MultilevelStart(benchmark::State& state) {
  const auto circuit = bench_circuit(static_cast<int>(state.range(0)));
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const ml::MultilevelPartitioner partitioner(circuit.graph, fixed, balance);
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partitioner.run(rng, ml::MultilevelConfig{}));
  }
}
BENCHMARK(BM_MultilevelStart)->Arg(2000)->Arg(8000);

}  // namespace

BENCHMARK_MAIN();
