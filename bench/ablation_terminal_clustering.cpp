// Extension experiment (paper Sec. V): a bipartitioning instance with any
// number of fixed terminals can be represented by an equivalent instance
// with only two terminals, by clustering all terminals fixed in a given
// partition into a single terminal. The paper conjectures the clustered
// representation is "just as easy or hard" for common heuristics. This
// ablation runs the multilevel partitioner on both representations across
// fixed-vertex percentages and compares cut quality and runtime.

#include <iostream>

#include "bench/common.hpp"
#include "gen/regimes.hpp"
#include "hg/transform.hpp"
#include "ml/multilevel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fixedpart;
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::bench_env(cli);
  bench::print_header(
      "Ablation: terminal clustering equivalence (Sec. V)", env);

  const auto spec = gen::ibm_like_spec(1, env.scale);
  const auto circuit = gen::generate_circuit(spec);
  const auto balance = part::BalanceConstraint::relative(circuit.graph, 2, 2.0);

  util::Rng rng(cli.get_int("seed", 4));
  const gen::FixedVertexSeries series(circuit.graph, 2, rng);

  util::Table table({"%fixed", "orig cut", "clustered cut", "orig sec",
                     "clustered sec", "orig |V|", "clustered |V|"});
  const int trials = env.trials * 2;
  for (const double pct : {5.0, 10.0, 20.0, 30.0, 50.0}) {
    const hg::FixedAssignment fixed = series.rand_regime(pct);
    const hg::ClusteredTerminals clustered =
        hg::cluster_terminals(circuit.graph, fixed);
    const auto clustered_balance =
        part::BalanceConstraint::relative(clustered.graph, 2, 2.0);

    const ml::MultilevelPartitioner original(circuit.graph, fixed, balance);
    const ml::MultilevelPartitioner reduced(clustered.graph, clustered.fixed,
                                            clustered_balance);
    util::RunningStat cut_orig;
    util::RunningStat cut_clustered;
    util::RunningStat sec_orig;
    util::RunningStat sec_clustered;
    for (int t = 0; t < trials; ++t) {
      const auto a = original.run(rng, exp::default_ml_config());
      const auto b = reduced.run(rng, exp::default_ml_config());
      cut_orig.add(static_cast<double>(a.cut));
      cut_clustered.add(static_cast<double>(b.cut));
      sec_orig.add(a.seconds);
      sec_clustered.add(b.seconds);
    }
    table.add_row({util::fmt(pct, 0), util::fmt(cut_orig.mean(), 1),
                   util::fmt(cut_clustered.mean(), 1),
                   util::fmt(sec_orig.mean(), 3),
                   util::fmt(sec_clustered.mean(), 3),
                   std::to_string(circuit.graph.num_vertices()),
                   std::to_string(clustered.graph.num_vertices())});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: comparable cut quality in both\n"
               "representations (the transform preserves the solution\n"
               "space over movable vertices); the clustered instance is\n"
               "smaller and typically a little faster.\n";
  return 0;
}
