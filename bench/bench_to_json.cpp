// Benchmark-to-JSON runner: executes the micro and multilevel partitioning
// benchmarks on generated IBM-profile circuits and writes a machine-readable
// trajectory file (BENCH_*.json). The committed BENCH_<pr>.json files record
// the performance trajectory of the refinement hot path PR over PR.
//
//   bench_to_json --out=BENCH_1.json                 # fresh measurement
//   bench_to_json --out=BENCH_1.json --baseline=baseline.json   # + speedups
//   bench_to_json --smoke --out=/tmp/smoke.json      # tiny instance, CI smoke
//
// The baseline file is a previous output of this tool; its "results" section
// is re-emitted under "baseline" and per-scenario speedups (baseline seconds
// over current seconds) are computed. After writing, the file is re-parsed
// and checked against the in-memory numbers so the emitter cannot silently
// produce unreadable output.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gen/netlist_gen.hpp"
#include "gen/suite.hpp"
#include "hg/fixed.hpp"
#include "ml/multilevel.hpp"
#include "ml/parallel.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "part/balance.hpp"
#include "part/fm.hpp"
#include "part/gain_buckets.hpp"
#include "part/initial.hpp"
#include "util/atomic_file.hpp"
#include "util/cli.hpp"
#include "util/deadline.hpp"
#include "util/env.hpp"
#include "util/mem.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace fixedpart;

struct Metric {
  hg::Weight cut = 0;
  double seconds = 0.0;
  std::int64_t moves = 0;
  std::int32_t passes = 0;
  double moves_per_sec = 0.0;
  /// A --budget deadline expired mid-scenario; the cut is the best found
  /// within the budget and must not be compared against full runs.
  bool truncated = false;
};

using Results = std::vector<std::pair<std::string, Metric>>;

const Metric* find(const Results& results, const std::string& name) {
  for (const auto& [key, metric] : results) {
    if (key == name) return &metric;
  }
  return nullptr;
}

// --- scenarios -----------------------------------------------------------

/// The paper's multistart protocol: `starts` independent multilevel runs,
/// best cut kept. Timed over all starts; repeated `repeats` times with the
/// minimum wall-clock reported (the runs are deterministic for the seed, so
/// cut/moves/passes are identical across repeats).
///
/// With `traced` the same measurement runs under an armed trace context
/// (per-rep SpanBuffer, as the server arms one per job), so the
/// ml_multistart_* / ml_multistart_*_traced pair quantifies the per-job
/// tracing overhead: cuts/moves/passes must be identical, seconds within
/// noise ("trace_overhead" in the output).
Metric run_multilevel(const gen::GeneratedCircuit& circuit, int starts,
                      int repeats, double budget_seconds,
                      bool traced = false) {
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const ml::MultilevelPartitioner partitioner(circuit.graph, fixed, balance);

  Metric m;
  m.seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repeats; ++rep) {
    obs::SpanBuffer spans;
    std::optional<obs::ScopedTraceContext> trace_scope;
    if (traced) {
      trace_scope.emplace(obs::trace_id_for("bench.multistart"), &spans);
    }
    util::Rng rng(0xBE9C);
    util::Timer timer;
    util::Deadline deadline;
    ml::MultilevelConfig config;
    if (budget_seconds > 0.0) {
      deadline = util::Deadline::after_seconds(budget_seconds);
      config.deadline = &deadline;
    }
    hg::Weight best_cut = 0;
    std::int64_t moves = 0;
    std::int32_t passes = 0;
    for (int s = 0; s < starts; ++s) {
      if (s > 0 && budget_seconds > 0.0 && deadline.expired()) {
        m.truncated = true;
        break;
      }
      const auto result = partitioner.run(rng, config);
      moves += result.total_moves;
      passes += result.total_passes;
      m.truncated |= result.truncated;
      if (s == 0 || result.cut < best_cut) best_cut = result.cut;
    }
    m.seconds = std::min(m.seconds, timer.seconds());
    m.cut = best_cut;
    m.moves = moves;
    m.passes = passes;
  }
  m.moves_per_sec =
      m.seconds > 0.0 ? static_cast<double>(m.moves) / m.seconds : 0.0;
  return m;
}

/// One start of the deterministic parallel pipeline (ml/parallel.hpp),
/// called directly so --threads=1 measures the *same* algorithm executed
/// serially — the honest denominator for parallel speedup. Cut, moves and
/// passes are identical for every thread count (that is the pipeline's
/// determinism contract); only seconds may differ.
Metric run_parallel_pipeline(const gen::GeneratedCircuit& circuit, int threads,
                             int repeats, double budget_seconds) {
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);

  Metric m;
  m.seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repeats; ++rep) {
    util::Deadline deadline;
    ml::MultilevelConfig config;
    config.parallel.threads = threads;
    if (budget_seconds > 0.0) {
      deadline = util::Deadline::after_seconds(budget_seconds);
      config.deadline = &deadline;
    }
    util::Timer timer;
    const auto result = ml::run_parallel_multilevel(circuit.graph, fixed,
                                                    balance, 0xBE9C, config);
    m.seconds = std::min(m.seconds, timer.seconds());
    m.cut = result.cut;
    m.moves = result.total_moves;
    m.passes = result.total_passes;
    m.truncated |= result.truncated;
  }
  m.moves_per_sec =
      m.seconds > 0.0 ? static_cast<double>(m.moves) / m.seconds : 0.0;
  return m;
}

/// Parallel multistart on the shared thread pool: the ml_multistart
/// workload with starts fanned out across --threads workers. The winning
/// cut depends only on (starts, seed), never on the thread count.
Metric run_parallel_multistart(const gen::GeneratedCircuit& circuit,
                               int starts, int threads, int repeats,
                               double budget_seconds) {
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const ml::MultilevelPartitioner partitioner(circuit.graph, fixed, balance);

  Metric m;
  m.seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repeats; ++rep) {
    util::Deadline deadline;
    ml::MultilevelConfig config;
    if (budget_seconds > 0.0) {
      deadline = util::Deadline::after_seconds(budget_seconds);
      config.deadline = &deadline;
    }
    util::Timer timer;
    const auto result =
        partitioner.best_of_parallel(starts, threads, 0xBE9C, config);
    m.seconds = std::min(m.seconds, timer.seconds());
    m.cut = result.cut;
    m.moves = result.total_moves;
    m.passes = result.total_passes;
    m.truncated |= result.truncated;
  }
  m.moves_per_sec =
      m.seconds > 0.0 ? static_cast<double>(m.moves) / m.seconds : 0.0;
  return m;
}

/// Flat FM refinement of a random feasible start on the full circuit.
Metric run_flat_fm(const gen::GeneratedCircuit& circuit,
                   part::SelectionPolicy policy, int repeats,
                   double budget_seconds) {
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  part::FmBipartitioner fm(circuit.graph, fixed, balance);
  part::FmConfig config;
  config.policy = policy;

  Metric m;
  m.seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repeats; ++rep) {
    util::Rng rng(0x5EED);
    part::PartitionState state(circuit.graph, 2);
    part::random_feasible_assignment(state, fixed, balance, rng,
                                     /*require_feasible=*/false);
    util::Deadline deadline;
    if (budget_seconds > 0.0) {
      deadline = util::Deadline::after_seconds(budget_seconds);
      config.deadline = &deadline;
    }
    util::Timer timer;
    const auto result = fm.refine(state, rng, config);
    m.seconds = std::min(m.seconds, timer.seconds());
    m.cut = result.final_cut;
    m.moves = result.total_moves;
    m.passes = result.passes;
    m.truncated |= result.truncated;
  }
  m.moves_per_sec =
      m.seconds > 0.0 ? static_cast<double>(m.moves) / m.seconds : 0.0;
  return m;
}

/// Micro: gain-bucket churn (adjust + find_best) on a synthetic population,
/// the inner-loop primitive of every FM pass. `moves` counts operations.
Metric run_bucket_churn(std::int64_t ops, int repeats) {
  constexpr hg::VertexId kVertices = 10000;
  constexpr hg::Weight kMaxKey = 64;
  Metric m;
  m.seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repeats; ++rep) {
    part::GainBuckets buckets(kVertices, kMaxKey);
    util::Rng rng(7);
    for (hg::VertexId v = 0; v < kVertices; ++v) {
      buckets.insert(v, static_cast<hg::Weight>(rng.next_in(-kMaxKey,
                                                            kMaxKey)));
    }
    util::Timer timer;
    hg::VertexId sink = 0;
    for (std::int64_t i = 0; i < ops; ++i) {
      const auto v = static_cast<hg::VertexId>(
          rng.next_below(static_cast<std::uint64_t>(kVertices)));
      const auto key = buckets.key_of(v);
      const auto delta = static_cast<hg::Weight>(rng.next_in(-4, 4));
      const auto clamped = std::max<hg::Weight>(
          -kMaxKey, std::min<hg::Weight>(kMaxKey, key + delta));
      buckets.adjust(v, clamped - key);
      sink ^= buckets.find_best([](hg::VertexId) { return true; });
    }
    m.seconds = std::min(m.seconds, timer.seconds());
    m.cut = sink & 1;  // defeat over-eager optimizers; value is 0 or 1
  }
  m.cut = 0;
  m.moves = ops;
  m.moves_per_sec =
      m.seconds > 0.0 ? static_cast<double>(m.moves) / m.seconds : 0.0;
  return m;
}

// --- JSON emission and (own-format) parsing ------------------------------

std::string format_double(double value) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << value;
  return out.str();
}

void emit_metric(std::ostream& out, const std::string& indent,
                 const Metric& m) {
  out << "{\n"
      << indent << "  \"cut\": " << m.cut << ",\n"
      << indent << "  \"seconds\": " << format_double(m.seconds) << ",\n"
      << indent << "  \"moves\": " << m.moves << ",\n"
      << indent << "  \"passes\": " << m.passes << ",\n"
      << indent << "  \"moves_per_sec\": " << format_double(m.moves_per_sec)
      << ",\n"
      << indent << "  \"truncated\": " << (m.truncated ? "true" : "false")
      << "\n"
      << indent << "}";
}

void emit_results(std::ostream& out, const std::string& key,
                  const Results& results) {
  out << "  \"" << key << "\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << "    \"" << results[i].first << "\": ";
    emit_metric(out, "    ", results[i].second);
    out << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "  }";
}

/// Parses the "results"-shaped section named `section` out of a file this
/// tool previously wrote. Intentionally minimal: it only understands our
/// own two-level output format.
Results parse_section(const std::string& text, const std::string& section) {
  Results results;
  const std::string anchor = "\"" + section + "\": {";
  std::size_t pos = text.find(anchor);
  if (pos == std::string::npos) return results;
  pos += anchor.size();
  while (true) {
    const std::size_t name_open = text.find('"', pos);
    if (name_open == std::string::npos) break;
    // A '}' before the next quote closes the section.
    const std::size_t closer = text.find('}', pos);
    if (closer != std::string::npos && closer < name_open) break;
    const std::size_t name_close = text.find('"', name_open + 1);
    const std::size_t obj_open = text.find('{', name_close);
    const std::size_t obj_close = text.find('}', obj_open);
    if (name_close == std::string::npos || obj_open == std::string::npos ||
        obj_close == std::string::npos) {
      break;
    }
    const std::string name =
        text.substr(name_open + 1, name_close - name_open - 1);
    const std::string body =
        text.substr(obj_open + 1, obj_close - obj_open - 1);
    Metric m;
    auto field = [&](const std::string& key, double fallback) {
      const std::string field_anchor = "\"" + key + "\":";
      const std::size_t at = body.find(field_anchor);
      if (at == std::string::npos) return fallback;
      return std::stod(body.substr(at + field_anchor.size()));
    };
    m.cut = static_cast<hg::Weight>(std::llround(field("cut", 0.0)));
    m.seconds = field("seconds", 0.0);
    m.moves = std::llround(field("moves", 0.0));
    m.passes = static_cast<std::int32_t>(std::llround(field("passes", 0.0)));
    m.moves_per_sec = field("moves_per_sec", 0.0);
    m.truncated = body.find("\"truncated\": true") != std::string::npos;
    results.emplace_back(name, m);
    pos = obj_close + 1;
  }
  return results;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("bench_to_json: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Re-indents a pretty-printed JSON block so it nests one level deeper
/// inside the output object (and drops its trailing newline).
std::string indent_block(std::string text) {
  while (!text.empty() && text.back() == '\n') text.pop_back();
  std::string out;
  out.reserve(text.size() + 64);
  for (const char c : text) {
    out += c;
    if (c == '\n') out += "  ";
  }
  return out;
}

bool metrics_close(const Metric& a, const Metric& b) {
  const auto near = [](double x, double y) {
    return std::abs(x - y) <= 1e-5 * std::max({1.0, std::abs(x),
                                               std::abs(y)});
  };
  return a.cut == b.cut && a.moves == b.moves && a.passes == b.passes &&
         a.truncated == b.truncated && near(a.seconds, b.seconds) &&
         near(a.moves_per_sec, b.moves_per_sec);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.require_known({"out", "baseline", "starts", "repeats", "smoke",
                     "budget", "threads", "trace-out"});
  const bool smoke = cli.get_bool("smoke", false);
  const std::string out_path = cli.get_or("out", "BENCH.json");
  const int starts =
      static_cast<int>(cli.get_int("starts", smoke ? 2 : 8));
  const int repeats =
      static_cast<int>(cli.get_int("repeats", smoke ? 1 : 3));
  // Shared-memory threads for the ml_parstart_* / ml_pipeline_* scenarios.
  // The serial scenarios above ignore it, so their numbers stay comparable
  // across BENCH files regardless of this flag. Recorded in the header so a
  // BENCH file is self-describing.
  const int threads = static_cast<int>(cli.get_int("threads", 1));
  if (threads < 1) {
    std::cerr << "bench_to_json: --threads must be >= 1\n";
    return 2;
  }
  // Wall-clock budget per scenario measurement in seconds; 0 = unlimited.
  // Expired runs degrade to best-so-far and are flagged "truncated" in the
  // output (docs/ROBUSTNESS.md).
  const double budget = cli.get_double("budget", 0.0);
  const util::Scale scale = smoke ? util::Scale::kSmoke
                                  : util::Scale::kDefault;

  // Read the baseline up front: a bad path should fail before minutes of
  // measurement, not after.
  Results baseline;
  if (const auto baseline_path = cli.get("baseline")) {
    baseline = parse_section(read_file(*baseline_path), "results");
    if (baseline.empty()) {
      std::cerr << "bench_to_json: no parsable results in "
                << *baseline_path << "\n";
      return 1;
    }
  }

  const auto ibm01 = gen::generate_circuit(gen::ibm_like_spec(1, scale));
  const auto ibm03 = gen::generate_circuit(gen::ibm_like_spec(3, scale));

  Results results;
  fixedpart::obs::log_info("bench", "multilevel multistart (ibm01-profile)",
                           {{"starts", starts}, {"repeats", repeats}});
  results.emplace_back("ml_multistart_ibm01",
                       run_multilevel(ibm01, starts, repeats, budget));
  fixedpart::obs::log_info("bench", "multilevel multistart (ibm03-profile)");
  results.emplace_back("ml_multistart_ibm03",
                       run_multilevel(ibm03, starts, repeats, budget));
  // Trace-on twins of the two multistart scenarios: identical workload under
  // an armed per-job trace context (the server's steady-state shape). Cuts,
  // moves and passes must match the untraced rows exactly; the seconds ratio
  // is emitted as "trace_overhead" below.
  fixedpart::obs::log_info("bench",
                           "multilevel multistart, traced (overhead pair)");
  results.emplace_back(
      "ml_multistart_ibm01_traced",
      run_multilevel(ibm01, starts, repeats, budget, /*traced=*/true));
  results.emplace_back(
      "ml_multistart_ibm03_traced",
      run_multilevel(ibm03, starts, repeats, budget, /*traced=*/true));
  fixedpart::obs::log_info("bench", "flat FM (lifo / clip)");
  results.emplace_back(
      "flat_fm_lifo_ibm01",
      run_flat_fm(ibm01, part::SelectionPolicy::kLifo, repeats, budget));
  results.emplace_back(
      "flat_fm_clip_ibm01",
      run_flat_fm(ibm01, part::SelectionPolicy::kClip, repeats, budget));
  fixedpart::obs::log_info("bench", "gain-bucket churn");
  results.emplace_back("gain_bucket_churn",
                       run_bucket_churn(smoke ? 20000 : 2000000, repeats));
  fixedpart::obs::log_info("bench", "parallel multistart (ibm01-profile)",
                           {{"threads", threads}});
  results.emplace_back(
      "ml_parstart_ibm01",
      run_parallel_multistart(ibm01, starts, threads, repeats, budget));
  fixedpart::obs::log_info("bench", "parallel pipeline (ibm01/ibm03)",
                           {{"threads", threads}});
  results.emplace_back("ml_pipeline_ibm01",
                       run_parallel_pipeline(ibm01, threads, repeats, budget));
  results.emplace_back("ml_pipeline_ibm03",
                       run_parallel_pipeline(ibm03, threads, repeats, budget));

  // Scraped before the (optional) traced extra run below, so the embedded
  // "metrics" section covers exactly the timed measurements above —
  // --trace-out must not pollute ml.runs/fm.* with its untimed run.
  const fixedpart::obs::Snapshot metrics_snap =
      fixedpart::obs::Registry::global().scrape();

  // Optional Chrome-trace capture: one extra, untimed multistart run with
  // the tracer armed, so the timed numbers above stay span-free. Open the
  // file in chrome://tracing or https://ui.perfetto.dev.
  if (const auto trace_path = cli.get("trace-out")) {
    if (!fixedpart::obs::kEnabled) {
      std::cerr << "bench_to_json: built with FIXEDPART_OBS=OFF; "
                << *trace_path << " will contain no spans\n";
    }
    fixedpart::obs::log_info("bench",
                             "traced multilevel multistart (untimed)");
    auto& tracer = fixedpart::obs::Tracer::global();
    tracer.start();
    run_multilevel(ibm01, starts, /*repeats=*/1, budget);
    tracer.stop();
    try {
      tracer.write_json(*trace_path);
    } catch (const std::exception& error) {
      std::cerr << "bench_to_json: " << error.what() << "\n";
      return 1;
    }
    fixedpart::obs::log_info(
        "bench", "wrote trace",
        {{"path", *trace_path},
         {"spans", static_cast<std::int64_t>(tracer.event_count())},
         {"dropped", static_cast<std::int64_t>(tracer.dropped_count())}});
  }

  {
    // Built in memory and published via write-temp + atomic rename: an
    // interruption mid-emit cannot leave a truncated BENCH_*.json behind.
    std::ostringstream out;
    out << "{\n"
        << "  \"format\": 1,\n"
        << "  \"generated_by\": \"bench_to_json\",\n"
        << "  \"scale\": \"" << util::to_string(scale) << "\",\n"
        << "  \"starts\": " << starts << ",\n"
        << "  \"repeats\": " << repeats << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"cpus\": " << std::thread::hardware_concurrency() << ",\n"
        << "  \"budget_seconds\": " << format_double(budget) << ",\n"
        << "  \"peak_rss_kb\": " << util::peak_rss_kb() << ",\n";
    emit_results(out, "results", results);
    // Per-job tracing overhead: traced seconds over untraced seconds for
    // each multistart pair (1.0 = free; the regression budget is < 1.02,
    // docs/OBSERVABILITY.md "Overhead").
    out << ",\n  \"trace_overhead\": {";
    {
      bool first = true;
      for (const char* name : {"ml_multistart_ibm01", "ml_multistart_ibm03"}) {
        const Metric* plain = find(results, name);
        const Metric* traced =
            find(results, std::string(name) + "_traced");
        if (plain == nullptr || traced == nullptr || plain->seconds <= 0.0) {
          continue;
        }
        out << (first ? "\n" : ",\n") << "    \"" << name
            << "\": " << format_double(traced->seconds / plain->seconds);
        first = false;
      }
      out << "\n  }";
    }
    // Obs counters/histograms over the timed measurements (scraped before
    // any --trace-out extra run; empty sections under FIXEDPART_OBS=OFF).
    out << ",\n  \"metrics\": " << indent_block(metrics_snap.to_json());
    if (!baseline.empty()) {
      out << ",\n";
      emit_results(out, "baseline", baseline);
      out << ",\n  \"speedup\": {\n";
      bool first = true;
      for (const auto& [name, metric] : results) {
        const Metric* base = find(baseline, name);
        if (base == nullptr || metric.seconds <= 0.0) continue;
        if (!first) out << ",\n";
        first = false;
        out << "    \"" << name
            << "\": " << format_double(base->seconds / metric.seconds);
      }
      out << "\n  }";
    }
    out << "\n}\n";
    try {
      util::write_file_atomic(out_path, out.str());
    } catch (const std::exception& error) {
      std::cerr << "bench_to_json: " << error.what() << "\n";
      return 1;
    }
  }

  // Round-trip check: the file we just wrote must parse back to the same
  // numbers, so the emitter (and parser) cannot silently rot.
  const Results reread = parse_section(read_file(out_path), "results");
  if (reread.size() != results.size()) {
    std::cerr << "bench_to_json: round-trip size mismatch in " << out_path
              << "\n";
    return 1;
  }
  for (const auto& [name, metric] : results) {
    const Metric* back = find(reread, name);
    if (back == nullptr || !metrics_close(metric, *back)) {
      std::cerr << "bench_to_json: round-trip mismatch for " << name << "\n";
      return 1;
    }
  }

  for (const auto& [name, metric] : results) {
    fixedpart::obs::log_info(
        "bench", "result",
        {{"name", name},
         {"cut", static_cast<std::int64_t>(metric.cut)},
         {"seconds", metric.seconds},
         {"moves", metric.moves},
         {"passes", static_cast<std::int64_t>(metric.passes)},
         {"truncated", metric.truncated}});
  }
  fixedpart::obs::log_info("bench", "wrote output", {{"path", out_path}});
  return 0;
}
