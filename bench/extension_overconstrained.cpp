// Extension experiment (paper Secs. II & V): "confirming the existence of
// relatively overconstrained instances". The paper observes that with a
// *small* share of good-regime terminals (5-10%), partitioners sometimes
// do worse than with either 0% or 20% — even though every solution
// feasible at 20% (or 0%) fixed is also feasible at 10%, so the true
// optimum is monotone. A quality dip at intermediate percentages is
// therefore a heuristic failure, not an instance property.
//
// This bench sweeps the good regime on a fine grid around the dip with
// extra trials, reporting the average and the best cut per percentage.

#include <iostream>
#include <limits>

#include "bench/common.hpp"
#include "gen/regimes.hpp"
#include "ml/multilevel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fixedpart;
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::bench_env(cli);
  bench::print_header(
      "Extension: relatively overconstrained instances (good regime)", env);

  const auto spec = gen::ibm_like_spec(1, env.scale);
  util::Rng rng(cli.get_int("seed", 11));
  const exp::InstanceContext ctx =
      exp::make_context(spec, env.ref_starts, 2.0, rng);
  std::cout << "reference cut = " << ctx.good_cut << "\n\n";
  const gen::FixedVertexSeries series(ctx.circuit.graph, 2, rng);

  util::Table table({"%fixed(good)", "avg cut@1", "best cut", "avg/ref",
                     "monotone-violations"});
  const int trials = env.trials * 4;
  double prev_avg = -1.0;
  int violations = 0;
  for (const double pct :
       {0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0, 20.0, 30.0}) {
    const hg::FixedAssignment fixed =
        series.good_regime(pct, ctx.good_reference);
    const ml::MultilevelPartitioner partitioner(ctx.circuit.graph, fixed,
                                                ctx.balance);
    util::RunningStat cut;
    double best = std::numeric_limits<double>::max();
    for (int t = 0; t < trials; ++t) {
      const auto result = partitioner.run(rng, exp::default_ml_config());
      cut.add(static_cast<double>(result.cut));
      best = std::min(best, static_cast<double>(result.cut));
    }
    // The optimum can only improve toward the reference as good terminals
    // are added... it stays <= ref at all pct; a rising heuristic average
    // between grid points marks the overconstrained effect.
    if (prev_avg >= 0.0 && cut.mean() > prev_avg + 1e-9) ++violations;
    prev_avg = cut.mean();
    table.add_row({util::fmt(pct, 0), util::fmt(cut.mean(), 1),
                   util::fmt(best, 1),
                   util::fmt(cut.mean() / static_cast<double>(ctx.good_cut), 3),
                   std::to_string(violations)});
  }
  table.print(std::cout);
  std::cout << "\nReading: every instance here admits the reference\n"
               "solution (cut " << ctx.good_cut << "), so a heuristic\n"
               "average that *rises* with extra good terminals (counted in\n"
               "the last column) confirms the paper's \"relatively\n"
               "overconstrained\" failure mode around small percentages.\n";
  return 0;
}
