// Extension experiment (paper Sec. V open question 1): "determining
// whether multiway partitioning is as affected by fixed terminals". Runs
// flat 4-way FM with 1 and 4 starts across fixed-vertex percentages
// (rand regime, sides drawn uniformly over the 4 partitions) and reports
// raw and normalized average best cuts — the multiway analogue of the
// Fig. 1/2 multistart study.

#include <algorithm>
#include <iostream>
#include <limits>

#include "bench/common.hpp"
#include "gen/regimes.hpp"
#include "ml/recursive_bisection.hpp"
#include "part/initial.hpp"
#include "part/kway_fm.hpp"
#include "part/partition.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fixedpart;
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::bench_env(cli);
  const auto k = static_cast<hg::PartitionId>(cli.get_int("k", 4));
  bench::print_header("Extension: fixed terminals in multiway (k=" +
                          std::to_string(k) + ") partitioning",
                      env);

  const auto spec = gen::ibm_like_spec(1, env.scale);
  const auto circuit = gen::generate_circuit(spec);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, k, 5.0);

  util::Rng rng(cli.get_int("seed", 5));
  const gen::FixedVertexSeries series(circuit.graph, k, rng);

  util::Table table({"%fixed", "cut@1", "cut@4", "RB cut", "norm@1",
                     "norm@4", "gap 1-vs-4 (%)"});
  const int trials = env.trials * 2;
  const int max_starts = 4;
  for (const double pct : {0.0, 5.0, 10.0, 20.0, 30.0, 50.0}) {
    const hg::FixedAssignment fixed = series.rand_regime(pct);
    part::KwayFmRefiner refiner(circuit.graph, fixed, balance);
    util::RunningStat best1;
    util::RunningStat best4;
    util::RunningStat rb_cut;
    double best_seen = std::numeric_limits<double>::max();
    for (int t = 0; t < trials; ++t) {
      double best_prefix = std::numeric_limits<double>::max();
      for (int s = 0; s < max_starts; ++s) {
        part::PartitionState state(circuit.graph, k);
        part::random_feasible_assignment(state, fixed, balance, rng,
                                         /*require_feasible=*/false);
        refiner.refine(state, rng, part::KwayConfig{});
        const auto cut = static_cast<double>(state.cut());
        best_prefix = std::min(best_prefix, cut);
        best_seen = std::min(best_seen, cut);
        if (s == 0) best1.add(cut);
      }
      best4.add(best_prefix);
      // Multilevel recursive bisection (one start) for comparison.
      ml::RbConfig rb;
      rb.tolerance_pct = 5.0;
      const auto assignment =
          ml::recursive_bisection(circuit.graph, fixed, k, rb, rng);
      part::PartitionState rb_state(circuit.graph, k);
      for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
        rb_state.assign(v, assignment[v]);
      }
      rb_cut.add(static_cast<double>(rb_state.cut()));
      best_seen = std::min(best_seen, static_cast<double>(rb_state.cut()));
    }
    const double gap =
        100.0 * (best1.mean() - best4.mean()) / std::max(1.0, best4.mean());
    table.add_row({util::fmt(pct, 0), util::fmt(best1.mean(), 1),
                   util::fmt(best4.mean(), 1), util::fmt(rb_cut.mean(), 1),
                   util::fmt(best1.mean() / best_seen, 3),
                   util::fmt(best4.mean() / best_seen, 3),
                   util::fmt(gap, 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: as in bipartitioning, the benefit of\n"
               "extra starts (the 1-vs-4 gap) shrinks as the fixed\n"
               "percentage grows — multiway is affected the same way.\n"
               "Multilevel recursive bisection (RB) dominates flat k-way\n"
               "FM on free instances; the gap narrows as terminals fix\n"
               "more of the solution.\n";
  return 0;
}
