// Extension experiment (paper Sec. V): candidate metrics for the "degree
// of constraint" of a fixed-terminals instance, evaluated by how well they
// track the observable that defines instance easiness in Figs. 1-2 — the
// benefit of extra multistarts (the 1-start vs 8-start normalized gap).
// All metrics except %fixed are invariant under terminal clustering,
// which the paper identifies as the property a useful measure must have;
// the bench verifies that invariance numerically.

#include <iostream>
#include <limits>

#include "bench/common.hpp"
#include "experiments/constraint_metrics.hpp"
#include "gen/regimes.hpp"
#include "hg/transform.hpp"
#include "ml/multilevel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fixedpart;
  const util::Cli cli(argc, argv);
  const bench::BenchEnv env = bench::bench_env(cli);
  bench::print_header(
      "Extension: measuring the degree of constraint (Sec. V)", env);

  const auto spec = gen::ibm_like_spec(1, env.scale);
  const auto circuit = gen::generate_circuit(spec);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  util::Rng rng(cli.get_int("seed", 10));
  const gen::FixedVertexSeries series(circuit.graph, 2, rng);

  util::Table table({"%fixed", "%mov adj", "avg incid", "anchored frac",
                     "contested frac", "forced cut", "1v8 gap (%)",
                     "invariant?"});
  const int trials = env.trials;
  for (const double pct : {0.0, 1.0, 5.0, 10.0, 20.0, 30.0, 50.0}) {
    const hg::FixedAssignment fixed = series.rand_regime(pct);
    const exp::ConstraintMetrics metrics =
        exp::compute_constraint_metrics(circuit.graph, fixed);

    // Clustering invariance: the metrics of the 2-terminal equivalent.
    const hg::ClusteredTerminals clustered =
        hg::cluster_terminals(circuit.graph, fixed);
    const exp::ConstraintMetrics clustered_metrics =
        exp::compute_constraint_metrics(clustered.graph, clustered.fixed);
    const bool invariant =
        std::abs(metrics.anchored_net_fraction -
                 clustered_metrics.anchored_net_fraction) < 1e-9 &&
        metrics.forced_cut_weight == clustered_metrics.forced_cut_weight;

    // Observed multistart benefit.
    const ml::MultilevelPartitioner partitioner(circuit.graph, fixed,
                                                balance);
    util::RunningStat one_start;
    util::RunningStat eight_start;
    for (int t = 0; t < trials; ++t) {
      double best = std::numeric_limits<double>::max();
      for (int s = 0; s < 8; ++s) {
        const auto cut = static_cast<double>(
            partitioner.run(rng, exp::default_ml_config()).cut);
        best = std::min(best, cut);
        if (s == 0) one_start.add(cut);
      }
      eight_start.add(best);
    }
    const double gap = 100.0 * (one_start.mean() - eight_start.mean()) /
                       std::max(1.0, eight_start.mean());

    table.add_row({util::fmt(pct, 0), util::fmt(metrics.pct_movable_adjacent, 1),
                   util::fmt(metrics.avg_terminal_incidence, 3),
                   util::fmt(metrics.anchored_net_fraction, 3),
                   util::fmt(metrics.contested_net_fraction, 3),
                   std::to_string(metrics.forced_cut_weight),
                   util::fmt(gap, 1), invariant ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nReading: the multistart gap (last experiment column)\n"
               "shrinks as the anchored/incidence metrics rise — these\n"
               "clustering-invariant measures track instance easiness\n"
               "where raw %fixed (not invariant) cannot.\n";
  return 0;
}
