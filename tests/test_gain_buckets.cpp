#include "part/gain_buckets.hpp"

#include <gtest/gtest.h>

namespace fixedpart::part {
namespace {

TEST(GainBuckets, InsertRemoveContains) {
  GainBuckets b(10, 5);
  EXPECT_TRUE(b.empty());
  b.insert(3, 2);
  EXPECT_TRUE(b.contains(3));
  EXPECT_EQ(b.size(), 1);
  EXPECT_EQ(b.key_of(3), 2);
  b.remove(3);
  EXPECT_FALSE(b.contains(3));
  EXPECT_TRUE(b.empty());
}

TEST(GainBuckets, MaxKeyTracksInsertAndRemove) {
  GainBuckets b(10, 5);
  b.insert(0, -3);
  b.insert(1, 4);
  b.insert(2, 0);
  EXPECT_EQ(b.max_key(), 4);
  b.remove(1);
  EXPECT_EQ(b.max_key(), 0);
  b.remove(2);
  EXPECT_EQ(b.max_key(), -3);
}

TEST(GainBuckets, MaxKeyOnEmptyThrows) {
  GainBuckets b(4, 2);
  EXPECT_THROW(b.max_key(), std::logic_error);
}

TEST(GainBuckets, LifoOrderWithinBucket) {
  GainBuckets b(10, 5);
  b.insert(0, 1);
  b.insert(1, 1);
  b.insert(2, 1);
  // Last inserted is found first among equal keys.
  EXPECT_EQ(b.find_best([](VertexId) { return true; }), 2);
}

TEST(GainBuckets, AdjustMovesToNewBucketHead) {
  GainBuckets b(10, 5);
  b.insert(0, 1);
  b.insert(1, 3);
  b.adjust(0, 2);  // 0 now key 3, at the head of the bucket
  EXPECT_EQ(b.key_of(0), 3);
  EXPECT_EQ(b.find_best([](VertexId) { return true; }), 0);
  b.adjust(0, -4);
  EXPECT_EQ(b.key_of(0), -1);
  EXPECT_EQ(b.find_best([](VertexId) { return true; }), 1);
}

TEST(GainBuckets, AdjustZeroDeltaKeepsPosition) {
  GainBuckets b(10, 5);
  b.insert(0, 2);
  b.insert(1, 2);
  b.adjust(0, 0);  // no reordering: 1 is still at the head
  EXPECT_EQ(b.find_best([](VertexId) { return true; }), 1);
}

TEST(GainBuckets, FindBestSkipsInfeasible) {
  GainBuckets b(10, 5);
  b.insert(0, 5);
  b.insert(1, 3);
  b.insert(2, 1);
  const VertexId got =
      b.find_best([](VertexId v) { return v != 0; });
  EXPECT_EQ(got, 1);
  const VertexId none =
      b.find_best([](VertexId) { return false; });
  EXPECT_EQ(none, hg::kNoVertex);
}

TEST(GainBuckets, FindBestScansWithinBucketFrontToBack) {
  GainBuckets b(10, 5);
  b.insert(0, 2);
  b.insert(1, 2);  // head of bucket 2
  EXPECT_EQ(b.find_best([](VertexId v) { return v == 0; }), 0);
}

TEST(GainBuckets, KeyRangeEnforced) {
  GainBuckets b(4, 3);
  EXPECT_THROW(b.insert(0, 4), std::out_of_range);
  EXPECT_THROW(b.insert(1, -4), std::out_of_range);
  b.insert(2, 3);
  EXPECT_THROW(b.adjust(2, 1), std::out_of_range);
}

TEST(GainBuckets, MisuseThrows) {
  GainBuckets b(4, 3);
  b.insert(0, 0);
  EXPECT_THROW(b.insert(0, 1), std::logic_error);
  EXPECT_THROW(b.remove(1), std::logic_error);
  EXPECT_THROW(b.adjust(1, 1), std::logic_error);
}

TEST(GainBuckets, ClearEmptiesEverything) {
  GainBuckets b(6, 3);
  for (VertexId v = 0; v < 6; ++v) b.insert(v, v % 3);
  b.clear();
  EXPECT_TRUE(b.empty());
  for (VertexId v = 0; v < 6; ++v) EXPECT_FALSE(b.contains(v));
  b.insert(0, -3);  // reusable
  EXPECT_EQ(b.max_key(), -3);
}

TEST(GainBuckets, FifoOrderWithInsertBack) {
  GainBuckets b(10, 5);
  b.insert_back(0, 1);
  b.insert_back(1, 1);
  b.insert_back(2, 1);
  // First inserted is found first among equal keys.
  EXPECT_EQ(b.find_best([](VertexId) { return true; }), 0);
  b.remove(0);
  EXPECT_EQ(b.find_best([](VertexId) { return true; }), 1);
}

TEST(GainBuckets, AdjustBackQueuesBehindEquals) {
  GainBuckets b(10, 5);
  b.insert_back(0, 1);
  b.insert_back(1, 2);
  b.adjust_back(0, 1);  // joins bucket 2 at the tail, behind vertex 1
  EXPECT_EQ(b.find_best([](VertexId) { return true; }), 1);
  EXPECT_EQ(b.key_of(0), 2);
}

TEST(GainBuckets, MixedFrontBackLinksStayConsistent) {
  GainBuckets b(8, 4);
  b.insert(0, 0);
  b.insert_back(1, 0);   // order in bucket 0: [0, 1]
  b.insert(2, 0);        // [2, 0, 1]
  b.insert_back(3, 0);   // [2, 0, 1, 3]
  std::vector<VertexId> popped;
  while (!b.empty()) {
    const VertexId v = b.find_best([](VertexId) { return true; });
    popped.push_back(v);
    b.remove(v);
  }
  EXPECT_EQ(popped, (std::vector<VertexId>{2, 0, 1, 3}));
}

TEST(GainBuckets, RemoveTailThenInsertBack) {
  GainBuckets b(4, 2);
  b.insert_back(0, 0);
  b.insert_back(1, 0);
  b.remove(1);  // tail removal must fix the tail pointer
  b.insert_back(2, 0);
  std::vector<VertexId> popped;
  while (!b.empty()) {
    const VertexId v = b.find_best([](VertexId) { return true; });
    popped.push_back(v);
    b.remove(v);
  }
  EXPECT_EQ(popped, (std::vector<VertexId>{0, 2}));
}

TEST(GainBuckets, DefaultConstructedNeedsReshape) {
  GainBuckets b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.capacity(), 0);
  b.reshape(4, 2);
  b.insert(3, -2);
  EXPECT_EQ(b.max_key(), -2);
}

TEST(GainBuckets, ReshapeGrowsCapacityAndKeyRange) {
  GainBuckets b(4, 2);
  b.insert(0, 2);
  EXPECT_THROW(b.reshape(8, 4), std::logic_error);  // must be empty
  b.clear();
  b.reshape(8, 4);
  EXPECT_GE(b.capacity(), 8);
  EXPECT_EQ(b.max_key_bound(), 4);
  b.insert(7, 4);
  b.insert(0, -4);
  EXPECT_EQ(b.max_key(), 4);
  b.clear();
  // Shrinking requests keep the larger storage: old ids and keys still fit.
  b.reshape(2, 1);
  EXPECT_GE(b.capacity(), 8);
  EXPECT_EQ(b.max_key_bound(), 4);
  b.insert(7, 3);
  EXPECT_EQ(b.max_key(), 3);
}

TEST(GainBuckets, ClearThenReuseRepeatedly) {
  // Exercises the touched-bucket clear: each round populates a different
  // small set of buckets; stale state from earlier rounds must never leak.
  GainBuckets b(50, 25);
  for (int round = 0; round < 20; ++round) {
    const Weight base = (round % 9) - 4;
    for (VertexId v = 0; v < 50; ++v) {
      b.insert(v, base + (v % 3));
    }
    for (VertexId v = 0; v < 50; v += 2) b.adjust(v, round % 2 == 0 ? 5 : -5);
    EXPECT_EQ(b.size(), 50);
    // Even rounds: some even vertex has v % 3 == 2 and was lifted by 5.
    EXPECT_EQ(b.max_key(), base + (round % 2 == 0 ? 7 : 2));
    b.clear();
    EXPECT_TRUE(b.empty());
    for (VertexId v = 0; v < 50; ++v) EXPECT_FALSE(b.contains(v));
    EXPECT_THROW(b.max_key(), std::logic_error);
  }
}

TEST(GainBuckets, ManyAdjustmentsStayConsistent) {
  GainBuckets b(100, 50);
  for (VertexId v = 0; v < 100; ++v) b.insert(v, 0);
  // Push vertex v to key (v % 41) - 20 via repeated small adjustments.
  for (VertexId v = 0; v < 100; ++v) {
    const Weight target = (v % 41) - 20;
    Weight current = 0;
    while (current != target) {
      const Weight step = target > current ? 1 : -1;
      b.adjust(v, step);
      current += step;
    }
    EXPECT_EQ(b.key_of(v), target);
  }
  EXPECT_EQ(b.max_key(), 20);
  EXPECT_EQ(b.size(), 100);
  // Remove everything in max order; keys must be non-increasing.
  Weight last = 50;
  while (!b.empty()) {
    const VertexId v = b.find_best([](VertexId) { return true; });
    EXPECT_LE(b.key_of(v), last);
    last = b.key_of(v);
    b.remove(v);
  }
}

}  // namespace
}  // namespace fixedpart::part
