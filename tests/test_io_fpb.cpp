#include "hg/io_bookshelf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "hg/builder.hpp"

namespace fixedpart::hg {
namespace {

BenchmarkInstance sample_instance() {
  BenchmarkInstance inst;
  HypergraphBuilder b(2);
  const Weight w0[] = {10, 1};
  const Weight w1[] = {20, 2};
  const Weight w2[] = {0, 0};
  b.add_vertex(std::span<const Weight>(w0, 2));
  b.add_vertex(std::span<const Weight>(w1, 2));
  b.add_vertex(std::span<const Weight>(w2, 2), /*is_pad=*/true);
  b.add_net(std::vector<VertexId>{0, 1}, 1);
  b.add_net(std::vector<VertexId>{1, 2}, 3);
  inst.graph = b.build();
  inst.num_parts = 4;
  inst.fixed = FixedAssignment(3, 4);
  inst.fixed.fix(2, 1);
  inst.fixed.restrict_to(1, 0b0101);  // p0|p2
  inst.balance.relative = true;
  inst.balance.tolerance_pct = 5.0;
  inst.names = {"a", "b", "pad0"};
  return inst;
}

TEST(IoFpb, RoundTripRelative) {
  const BenchmarkInstance inst = sample_instance();
  std::ostringstream out;
  write_fpb(out, inst);
  std::istringstream in(out.str());
  const BenchmarkInstance got = read_fpb(in);

  EXPECT_EQ(got.graph.num_vertices(), 3);
  EXPECT_EQ(got.graph.num_nets(), 2);
  EXPECT_EQ(got.graph.num_resources(), 2);
  EXPECT_EQ(got.num_parts, 4);
  EXPECT_EQ(got.graph.vertex_weight(1, 1), 2);
  EXPECT_TRUE(got.graph.is_pad(2));
  EXPECT_EQ(got.names, inst.names);
  EXPECT_TRUE(got.balance.relative);
  EXPECT_DOUBLE_EQ(got.balance.tolerance_pct, 5.0);
  EXPECT_EQ(got.fixed.fixed_part(2), 1);
  EXPECT_EQ(got.fixed.allowed_mask(1), 0b0101u);
  EXPECT_FALSE(got.fixed.is_restricted(0));
  EXPECT_EQ(got.graph.net_weight(1), 3);
}

TEST(IoFpb, RoundTripAbsoluteCapacities) {
  BenchmarkInstance inst = sample_instance();
  inst.balance.relative = false;
  inst.balance.capacities = {
      {.part = 0, .resource = 0, .min = 0, .max = 25},
      {.part = 1, .resource = 1, .min = 1, .max = 2},
  };
  std::ostringstream out;
  write_fpb(out, inst);
  std::istringstream in(out.str());
  const BenchmarkInstance got = read_fpb(in);
  ASSERT_FALSE(got.balance.relative);
  ASSERT_EQ(got.balance.capacities.size(), 2u);
  EXPECT_EQ(got.balance.capacities[0].max, 25);
  EXPECT_EQ(got.balance.capacities[1].part, 1);
  EXPECT_EQ(got.balance.capacities[1].resource, 1);
}

TEST(IoFpb, OrSetParsing) {
  std::istringstream in(
      "FPB 1.0\n"
      "resources 1\n"
      "vertices 2\n"
      "u 1\n"
      "v 2 pad\n"
      "nets 1\n"
      "1 2 u v\n"
      "partitions 3\n"
      "tolerance 2\n"
      "fixed 1\n"
      "v p0|p2\n");
  const BenchmarkInstance got = read_fpb(in);
  EXPECT_EQ(got.fixed.allowed_mask(1), 0b101u);
  EXPECT_TRUE(got.graph.is_pad(1));
}

TEST(IoFpb, CommentsIgnored) {
  std::istringstream in(
      "# leading comment\n"
      "FPB 1.0\n"
      "resources 1\n"
      "vertices 1\n"
      "# vertex section\n"
      "u 1\n"
      "nets 0\n"
      "partitions 2\n"
      "tolerance 2\n"
      "fixed 0\n");
  const BenchmarkInstance got = read_fpb(in);
  EXPECT_EQ(got.graph.num_vertices(), 1);
}

TEST(IoFpb, DefaultNames) {
  const auto names = default_names(3);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "v0");
  EXPECT_EQ(names[2], "v2");
}

struct BadInput {
  const char* label;
  const char* text;
};

class IoFpbErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(IoFpbErrors, Rejected) {
  std::istringstream in(GetParam().text);
  EXPECT_THROW(read_fpb(in), std::runtime_error) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, IoFpbErrors,
    ::testing::Values(
        BadInput{"empty", ""},
        BadInput{"bad magic", "XPB 1.0\n"},
        BadInput{"bad version", "FPB 9.9\n"},
        BadInput{"dup vertex",
                 "FPB 1.0\nresources 1\nvertices 2\nu 1\nu 1\n"},
        BadInput{"unknown net pin",
                 "FPB 1.0\nresources 1\nvertices 1\nu 1\nnets 1\n1 2 u w\n"},
        BadInput{"trailing vertex token",
                 "FPB 1.0\nresources 1\nvertices 1\nu 1 junk\n"},
        BadInput{"missing balance",
                 "FPB 1.0\nresources 1\nvertices 1\nu 1\nnets 0\n"
                 "partitions 2\n"},
        BadInput{"bad partition token",
                 "FPB 1.0\nresources 1\nvertices 1\nu 1\nnets 0\n"
                 "partitions 2\ntolerance 2\nfixed 1\nu q0\n"},
        BadInput{"part out of range",
                 "FPB 1.0\nresources 1\nvertices 1\nu 1\nnets 0\n"
                 "partitions 2\ntolerance 2\nfixed 1\nu p5\n"},
        BadInput{"unknown fixed vertex",
                 "FPB 1.0\nresources 1\nvertices 1\nu 1\nnets 0\n"
                 "partitions 2\ntolerance 2\nfixed 1\nw p0\n"},
        BadInput{"too many partitions",
                 "FPB 1.0\nresources 1\nvertices 0\nnets 0\npartitions 99\n"
                 "tolerance 2\nfixed 0\n"}));

TEST(IoFpb, WriteRejectsNameMismatch) {
  BenchmarkInstance inst = sample_instance();
  inst.names.pop_back();
  std::ostringstream out;
  EXPECT_THROW(write_fpb(out, inst), std::invalid_argument);
}

TEST(IoFpb, FileRoundTrip) {
  const BenchmarkInstance inst = sample_instance();
  const std::string path = ::testing::TempDir() + "/inst.fpb";
  write_fpb_file(path, inst);
  const BenchmarkInstance got = read_fpb_file(path);
  EXPECT_EQ(got.graph.num_vertices(), 3);
  EXPECT_THROW(read_fpb_file("/nonexistent/x.fpb"), std::runtime_error);
}

}  // namespace
}  // namespace fixedpart::hg
