#pragma once
// Deterministic fault injection for the IO guardrail layer. Starting from
// a well-formed input text, these operators produce corrupted variants —
// truncations, token mutations, overflow-scale numbers, structural line
// edits — and `expect_graceful` asserts the contract every parser must
// uphold: the input either parses, or the parser throws util::InputError
// (the documented taxonomy) with a non-empty diagnostic. Any other
// exception type, an empty message, or a crash is a guardrail violation.
//
// Everything is seeded through util::Rng, so a failing variant reproduces
// bit-identically from the test name and seed.

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/errors.hpp"
#include "util/rng.hpp"

#ifdef __unix__
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace fixedpart::testing {

/// Every prefix of `text` cut at a line boundary, plus a few mid-line
/// cuts — models a transfer that died partway.
inline std::vector<std::string> truncations(const std::string& text) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') out.push_back(text.substr(0, i + 1));
  }
  for (std::size_t num = 1; num <= 4; ++num) {
    out.push_back(text.substr(0, num * text.size() / 5));
  }
  return out;
}

/// Replaces one character (chosen by `rng`) with a character from a pool
/// of plausible corruption: digits, minus signs, letters, punctuation.
inline std::string mutate_token(const std::string& text, util::Rng& rng) {
  if (text.empty()) return text;
  static const char kPool[] = "0123456789-xz#.%";
  std::string out = text;
  const auto at = static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(out.size())));
  out[at] = kPool[rng.next_below(sizeof kPool - 1)];
  return out;
}

/// Appends zeros to one numeric token so its value overflows 64 bits —
/// the "overflow-scale weight" fault.
inline std::string overflow_number(const std::string& text, util::Rng& rng) {
  std::vector<std::size_t> digit_runs;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const bool digit = std::isdigit(static_cast<unsigned char>(text[i])) != 0;
    const bool run_start =
        digit && (i == 0 || !std::isdigit(static_cast<unsigned char>(
                                text[i - 1])));
    if (run_start) digit_runs.push_back(i);
  }
  if (digit_runs.empty()) return text;
  const std::size_t at = digit_runs[rng.next_below(
      static_cast<std::uint64_t>(digit_runs.size()))];
  std::string out = text;
  out.insert(at, "98765432109876543210");
  return out;
}

/// Duplicates or deletes one whole line (structural corruption).
inline std::string mangle_line(const std::string& text, util::Rng& rng) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  if (lines.empty()) return text;
  const auto at = static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(lines.size())));
  if (rng.next_below(2) == 0) {
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at), lines[at]);
  } else {
    lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(at));
  }
  std::string out;
  for (const std::string& line : lines) out += line + "\n";
  return out;
}

/// Corruption battery for the 'T' (span-batch) frame payload: everything a
/// malicious or dying worker could put on the wire. Line truncations and
/// seeded token mutations of a well-formed payload, plus structural
/// attacks — wrong version, oversized names, megabyte blobs, raw binary
/// garbage, absurd counts. The decode contract under every variant:
/// decode_span_batch never throws, never yields more than its caps, and
/// at worst garbles the one trace the payload belongs to.
inline std::vector<std::string> span_batch_faults(const std::string& payload,
                                                  util::Rng& rng) {
  std::vector<std::string> out = truncations(payload);
  for (int i = 0; i < 48; ++i) out.push_back(mutate_token(payload, rng));
  for (int i = 0; i < 16; ++i) out.push_back(mangle_line(payload, rng));
  out.push_back("");
  out.push_back("\n");
  out.push_back("spans v2 now=0 dropped=0\n");
  out.push_back("spans v1 now=zzz dropped=0\nname\t1\t2\t3\n");
  out.push_back("spans v1 now=0 dropped=99999999999999999999999\n");
  out.push_back("spans v1 now=0 dropped=0\n" + std::string(4096, 'n') +
                "\t1\t2\t3\n");
  out.push_back("spans v1 now=0 dropped=0\n\t\t\t\n\t1\t2\t3\n");
  out.push_back("spans v1 now=0 dropped=0\nname\t98765432109876543210\t2\t3\n");
  out.push_back("spans v1 now=0 dropped=0\nname\t1\t2\t3\tk=i1\tq=dx\tz\n");
  out.push_back(std::string(1u << 20, 'A'));
  std::string garbage;
  for (int i = 0; i < 4096; ++i) {
    garbage.push_back(static_cast<char>(rng.next_below(256)));
  }
  out.push_back(garbage);
  out.push_back("spans v1 now=0 dropped=0\n" + garbage);
  return out;
}

/// The guardrail contract: parsing `text` either succeeds or fails with a
/// util::InputError carrying a non-empty diagnostic. `parse` receives a
/// std::istream&. Returns true when the variant parsed cleanly (so tests
/// can additionally validate the parsed object).
template <typename Parse>
bool expect_graceful(const std::string& text, Parse&& parse,
                     const std::string& label) {
  std::istringstream in(text);
  try {
    parse(in);
    return true;
  } catch (const util::InputError& error) {
    EXPECT_STRNE(error.what(), "") << label << ": empty diagnostic";
  } catch (const std::exception& error) {
    ADD_FAILURE() << label << ": threw " << typeid(error).name()
                  << " instead of util::InputError: " << error.what()
                  << "\n--- input ---\n"
                  << text;
  }
  return false;
}

#ifdef __unix__

/// RAII environment variable: sets `name=value` for the scope, restoring
/// the previous value (or unsetting) on destruction. The lever for the
/// fixedpart-worker fault hooks (PR 8), which deliberately ride on env
/// vars — not spec fields — so job ids and journal bytes stay identical
/// across isolation modes.
class ScopedEnv {
 public:
  ScopedEnv(std::string name, const std::string& value)
      : name_(std::move(name)) {
    const char* old = std::getenv(name_.c_str());
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name_.c_str(), value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

// --- socket-level faults (ISSUE 7) ---------------------------------------
// Raw loopback clients for torturing the embedded HTTP endpoint: torn and
// trickled writes, stalled connections, half-closed reads. Everything is
// blocking and EINTR-safe, so the *server's* timeout discipline is what
// each test measures.

/// Connects to 127.0.0.1:`port`; returns the fd or -1.
inline int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends every byte (EINTR retried). Returns false on a hard error — which
/// is an acceptable outcome for fault tests where the server may have
/// already hung up.
inline bool send_all_fd(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// The torn-write fault: sends `data` in `chunk`-byte slices separated by
/// `gap_ms` pauses, so the server sees many short reads instead of one
/// buffer. Stops early (returning false) if the server hangs up — e.g.
/// because its per-connection I/O budget expired mid-trickle.
inline bool send_in_chunks(int fd, const std::string& data, std::size_t chunk,
                           int gap_ms) {
  if (chunk == 0) chunk = 1;
  for (std::size_t at = 0; at < data.size(); at += chunk) {
    if (!send_all_fd(fd, data.substr(at, chunk))) return false;
    if (gap_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(gap_ms));
    }
  }
  return true;
}

/// Reads until EOF (EINTR retried); returns everything received. An empty
/// string means the server closed without answering — the documented
/// response to a connection whose I/O budget expired before a request
/// line arrived.
inline std::string recv_all_fd(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

/// One well-formed HTTP/1.1 request with an optional body, as a string
/// ready for send_all_fd / send_in_chunks.
inline std::string http_request(const std::string& method,
                                const std::string& target,
                                const std::string& body = "") {
  std::string out = method + " " + target + " HTTP/1.1\r\nHost: x\r\n";
  if (!body.empty() || method == "POST") {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n" + body;
  return out;
}

/// Connect → send (optionally torn) → read to EOF. Returns the raw
/// response ("" when the server dropped the connection unanswered).
inline std::string http_exchange(std::uint16_t port,
                                 const std::string& request,
                                 std::size_t chunk = 0, int gap_ms = 0) {
  const int fd = connect_loopback(port);
  if (fd < 0) return "";
  if (chunk == 0) {
    send_all_fd(fd, request);
  } else {
    send_in_chunks(fd, request, chunk, gap_ms);
  }
  ::shutdown(fd, SHUT_WR);
  const std::string response = recv_all_fd(fd);
  ::close(fd);
  return response;
}

/// The status code on a raw HTTP/1.1 response ("" or garbage -> -1).
inline int http_status(const std::string& response) {
  if (response.rfind("HTTP/1.1 ", 0) != 0 || response.size() < 12) return -1;
  return std::atoi(response.c_str() + 9);
}

/// The body after the blank line ("" when headers never completed).
inline std::string http_body(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

#endif  // __unix__

}  // namespace fixedpart::testing
