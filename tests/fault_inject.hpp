#pragma once
// Deterministic fault injection for the IO guardrail layer. Starting from
// a well-formed input text, these operators produce corrupted variants —
// truncations, token mutations, overflow-scale numbers, structural line
// edits — and `expect_graceful` asserts the contract every parser must
// uphold: the input either parses, or the parser throws util::InputError
// (the documented taxonomy) with a non-empty diagnostic. Any other
// exception type, an empty message, or a crash is a guardrail violation.
//
// Everything is seeded through util::Rng, so a failing variant reproduces
// bit-identically from the test name and seed.

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "util/errors.hpp"
#include "util/rng.hpp"

namespace fixedpart::testing {

/// Every prefix of `text` cut at a line boundary, plus a few mid-line
/// cuts — models a transfer that died partway.
inline std::vector<std::string> truncations(const std::string& text) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') out.push_back(text.substr(0, i + 1));
  }
  for (std::size_t num = 1; num <= 4; ++num) {
    out.push_back(text.substr(0, num * text.size() / 5));
  }
  return out;
}

/// Replaces one character (chosen by `rng`) with a character from a pool
/// of plausible corruption: digits, minus signs, letters, punctuation.
inline std::string mutate_token(const std::string& text, util::Rng& rng) {
  if (text.empty()) return text;
  static const char kPool[] = "0123456789-xz#.%";
  std::string out = text;
  const auto at = static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(out.size())));
  out[at] = kPool[rng.next_below(sizeof kPool - 1)];
  return out;
}

/// Appends zeros to one numeric token so its value overflows 64 bits —
/// the "overflow-scale weight" fault.
inline std::string overflow_number(const std::string& text, util::Rng& rng) {
  std::vector<std::size_t> digit_runs;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const bool digit = std::isdigit(static_cast<unsigned char>(text[i])) != 0;
    const bool run_start =
        digit && (i == 0 || !std::isdigit(static_cast<unsigned char>(
                                text[i - 1])));
    if (run_start) digit_runs.push_back(i);
  }
  if (digit_runs.empty()) return text;
  const std::size_t at = digit_runs[rng.next_below(
      static_cast<std::uint64_t>(digit_runs.size()))];
  std::string out = text;
  out.insert(at, "98765432109876543210");
  return out;
}

/// Duplicates or deletes one whole line (structural corruption).
inline std::string mangle_line(const std::string& text, util::Rng& rng) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  if (lines.empty()) return text;
  const auto at = static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(lines.size())));
  if (rng.next_below(2) == 0) {
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at), lines[at]);
  } else {
    lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(at));
  }
  std::string out;
  for (const std::string& line : lines) out += line + "\n";
  return out;
}

/// The guardrail contract: parsing `text` either succeeds or fails with a
/// util::InputError carrying a non-empty diagnostic. `parse` receives a
/// std::istream&. Returns true when the variant parsed cleanly (so tests
/// can additionally validate the parsed object).
template <typename Parse>
bool expect_graceful(const std::string& text, Parse&& parse,
                     const std::string& label) {
  std::istringstream in(text);
  try {
    parse(in);
    return true;
  } catch (const util::InputError& error) {
    EXPECT_STRNE(error.what(), "") << label << ": empty diagnostic";
  } catch (const std::exception& error) {
    ADD_FAILURE() << label << ": threw " << typeid(error).name()
                  << " instead of util::InputError: " << error.what()
                  << "\n--- input ---\n"
                  << text;
  }
  return false;
}

}  // namespace fixedpart::testing
