#include "hg/subgraph.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hg/builder.hpp"
#include "part/partition.hpp"
#include "util/rng.hpp"

namespace fixedpart::hg {
namespace {

/// 6 vertices: nets {0,1}, {1,2,3}, {3,4}, {4,5}, {0,5} (a loose ring).
Hypergraph ring6() {
  HypergraphBuilder b;
  for (int i = 0; i < 6; ++i) b.add_vertex(i + 1);
  b.add_net(std::vector<VertexId>{0, 1});
  b.add_net(std::vector<VertexId>{1, 2, 3});
  b.add_net(std::vector<VertexId>{3, 4});
  b.add_net(std::vector<VertexId>{4, 5});
  b.add_net(std::vector<VertexId>{0, 5}, 7);
  return b.build();
}

TEST(Subgraph, DropModeTruncatesNets) {
  const Hypergraph g = ring6();
  const std::vector<VertexId> subset = {0, 1, 2};
  const Subgraph sub = induce_subgraph(g, subset);
  EXPECT_EQ(sub.num_movable, 3);
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  // Kept nets with >= 2 pins inside: {0,1} and {1,2} (truncated from
  // {1,2,3}); {0,5} and {3,4}/{4,5} drop out.
  EXPECT_EQ(sub.graph.num_nets(), 2);
  EXPECT_EQ(sub.local_of[0], 0);
  EXPECT_EQ(sub.local_of[3], kNoVertex);
  EXPECT_EQ(sub.original_of.size(), 3u);
  // Weights carried over.
  EXPECT_EQ(sub.graph.vertex_weight(sub.local_of[2]), 3);
  sub.graph.validate();
}

TEST(Subgraph, TerminalModeMaterializesOutsideVertices) {
  const Hypergraph g = ring6();
  const std::vector<VertexId> subset = {0, 1, 2};
  SubgraphOptions options;
  options.outside = SubgraphOptions::OutsidePins::kTerminalPerVertex;
  const Subgraph sub = induce_subgraph(g, subset, options);
  EXPECT_EQ(sub.num_movable, 3);
  // Outside vertices adjacent via kept nets: 3 (net {1,2,3}) and 5
  // (net {0,5}). Vertex 4 shares no net with the subset.
  EXPECT_EQ(sub.graph.num_vertices(), 5);
  EXPECT_EQ(sub.graph.num_pads(), 2);
  for (VertexId t = sub.num_movable; t < sub.graph.num_vertices(); ++t) {
    EXPECT_TRUE(sub.graph.is_pad(t));
    EXPECT_EQ(sub.graph.vertex_weight(t), 0);
    const VertexId original = sub.original_of[t];
    EXPECT_TRUE(original == 3 || original == 5);
  }
  // Every net touching the subset survives: {0,1}, {1,2,3}, {0,5}.
  EXPECT_EQ(sub.graph.num_nets(), 3);
  // Net weights preserved (find the weight-7 net).
  int weight7 = 0;
  for (NetId e = 0; e < sub.graph.num_nets(); ++e) {
    weight7 += (sub.graph.net_weight(e) == 7);
  }
  EXPECT_EQ(weight7, 1);
  sub.graph.validate();
}

TEST(Subgraph, KeepDegenerateNetsOption) {
  const Hypergraph g = ring6();
  const std::vector<VertexId> subset = {0};
  SubgraphOptions options;
  options.keep_degenerate_nets = true;
  const Subgraph sub = induce_subgraph(g, subset, options);
  // Nets {0,1} and {0,5} both truncate to the single pin {0} but are kept.
  EXPECT_EQ(sub.graph.num_nets(), 2);
  const Subgraph dropped = induce_subgraph(g, subset);
  EXPECT_EQ(dropped.graph.num_nets(), 0);
}

TEST(Subgraph, FullSubsetIsIsomorphic) {
  const Hypergraph g = ring6();
  std::vector<VertexId> all = {0, 1, 2, 3, 4, 5};
  const Subgraph sub = induce_subgraph(g, all);
  EXPECT_EQ(sub.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(sub.graph.num_nets(), g.num_nets());
  EXPECT_EQ(sub.graph.num_pins(), g.num_pins());
  EXPECT_EQ(sub.graph.total_weight(), g.total_weight());
}

TEST(Subgraph, Validation) {
  const Hypergraph g = ring6();
  const std::vector<VertexId> out_of_range = {0, 9};
  EXPECT_THROW(induce_subgraph(g, out_of_range), std::out_of_range);
  const std::vector<VertexId> duplicate = {0, 0};
  EXPECT_THROW(induce_subgraph(g, duplicate), std::invalid_argument);
}

TEST(Subgraph, EmptySubset) {
  const Hypergraph g = ring6();
  const Subgraph sub = induce_subgraph(g, std::vector<VertexId>{});
  EXPECT_EQ(sub.graph.num_vertices(), 0);
  EXPECT_EQ(sub.graph.num_nets(), 0);
}

/// Property: in terminal mode, assigning the subgraph by projecting an
/// original assignment gives exactly the cut restricted to kept nets.
TEST(Subgraph, TerminalModePreservesLocalCut) {
  util::Rng rng(5);
  HypergraphBuilder b;
  const int n = 40;
  for (int i = 0; i < n; ++i) b.add_vertex(1);
  for (int e = 0; e < 70; ++e) {
    std::vector<VertexId> pins;
    for (int d = 0; d < 2 + static_cast<int>(rng.next_below(3)); ++d) {
      pins.push_back(static_cast<VertexId>(
          rng.next_below(static_cast<std::uint64_t>(n))));
    }
    b.add_net(pins);
  }
  const Hypergraph g = b.build();

  std::vector<VertexId> subset;
  for (VertexId v = 0; v < n / 2; ++v) subset.push_back(v);
  SubgraphOptions options;
  options.outside = SubgraphOptions::OutsidePins::kTerminalPerVertex;
  const Subgraph sub = induce_subgraph(g, subset, options);

  std::vector<PartitionId> sides(static_cast<std::size_t>(n));
  for (auto& side : sides) {
    side = static_cast<PartitionId>(rng.next_below(2));
  }
  part::PartitionState local(sub.graph, 2);
  for (VertexId lv = 0; lv < sub.graph.num_vertices(); ++lv) {
    local.assign(lv, sides[sub.original_of[lv]]);
  }
  // Reference: cut of the original restricted to nets touching the subset.
  Weight reference = 0;
  for (NetId e = 0; e < g.num_nets(); ++e) {
    bool touches = false;
    for (const VertexId v : g.pins(e)) touches |= (v < n / 2);
    if (!touches) continue;
    PartitionId first = kNoPartition;
    for (const VertexId v : g.pins(e)) {
      if (first == kNoPartition) {
        first = sides[v];
      } else if (sides[v] != first) {
        reference += g.net_weight(e);
        break;
      }
    }
  }
  EXPECT_EQ(local.cut(), reference);
}

}  // namespace
}  // namespace fixedpart::hg
