#include "hg/transform.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hg/builder.hpp"
#include "part/partition.hpp"
#include "util/rng.hpp"

namespace fixedpart::hg {
namespace {

TEST(ClusterTerminals, CollapsesEachSide) {
  HypergraphBuilder b;
  for (int i = 0; i < 6; ++i) b.add_vertex(1);
  b.add_net(std::vector<VertexId>{0, 1, 2});
  b.add_net(std::vector<VertexId>{3, 4, 5});
  b.add_net(std::vector<VertexId>{2, 3});
  const Hypergraph g = b.build();
  FixedAssignment fixed(6, 2);
  fixed.fix(0, 0);
  fixed.fix(1, 0);
  fixed.fix(5, 1);

  const ClusteredTerminals result = cluster_terminals(g, fixed);
  // 3 fixed vertices collapse into 2 terminals; 3 free survive: 5 total.
  EXPECT_EQ(result.graph.num_vertices(), 5);
  EXPECT_EQ(result.fixed.count_fixed(), 2);
  ASSERT_NE(result.terminal_of_part[0], kNoVertex);
  ASSERT_NE(result.terminal_of_part[1], kNoVertex);
  EXPECT_EQ(result.graph.vertex_weight(result.terminal_of_part[0]), 2);
  EXPECT_EQ(result.graph.vertex_weight(result.terminal_of_part[1]), 1);
  EXPECT_EQ(result.fixed.fixed_part(result.terminal_of_part[0]), 0);
  EXPECT_EQ(result.map[0], result.map[1]);
  EXPECT_NE(result.map[2], result.map[3]);
  result.graph.validate();
}

TEST(ClusterTerminals, NoTerminalsIsIdentityShape) {
  HypergraphBuilder b;
  for (int i = 0; i < 3; ++i) b.add_vertex(1);
  b.add_net(std::vector<VertexId>{0, 1, 2});
  const Hypergraph g = b.build();
  const FixedAssignment fixed(3, 2);
  const ClusteredTerminals result = cluster_terminals(g, fixed);
  EXPECT_EQ(result.graph.num_vertices(), 3);
  EXPECT_EQ(result.graph.num_nets(), 1);
  EXPECT_EQ(result.terminal_of_part[0], kNoVertex);
}

TEST(ClusterTerminals, PreservesOrRestrictions) {
  HypergraphBuilder b;
  for (int i = 0; i < 3; ++i) b.add_vertex(1);
  b.add_net(std::vector<VertexId>{0, 1, 2});
  const Hypergraph g = b.build();
  FixedAssignment fixed(3, 4);
  fixed.fix(0, 2);
  fixed.restrict_to(1, 0b0011);
  const ClusteredTerminals result = cluster_terminals(g, fixed);
  EXPECT_EQ(result.fixed.allowed_mask(result.map[1]), 0b0011u);
}

TEST(ClusterTerminals, SizeMismatchThrows) {
  HypergraphBuilder b;
  b.add_vertex(1);
  const Hypergraph g = b.build();
  const FixedAssignment fixed(5, 2);
  EXPECT_THROW(cluster_terminals(g, fixed), std::invalid_argument);
}

/// The key equivalence the paper states in Sec. V: for any assignment of
/// the movable vertices, the cut of the original instance equals the cut
/// of the terminal-clustered instance (with terminals on their fixed
/// sides). Verified over random instances and assignments.
class ClusterEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterEquivalence, CutPreservedForAllMovableAssignments) {
  util::Rng rng(GetParam());
  HypergraphBuilder b;
  const int n = 24;
  for (int i = 0; i < n; ++i) b.add_vertex(1);
  for (int e = 0; e < 40; ++e) {
    std::vector<VertexId> pins;
    const int degree = 2 + static_cast<int>(rng.next_below(4));
    for (int d = 0; d < degree; ++d) {
      pins.push_back(static_cast<VertexId>(
          rng.next_below(static_cast<std::uint64_t>(n))));
    }
    b.add_net(pins);
  }
  const Hypergraph g = b.build();
  FixedAssignment fixed(n, 2);
  for (int i = 0; i < n / 3; ++i) {
    fixed.fix(static_cast<VertexId>(i),
              static_cast<PartitionId>(rng.next_below(2)));
  }
  const ClusteredTerminals clustered = cluster_terminals(g, fixed);

  for (int trial = 0; trial < 10; ++trial) {
    part::PartitionState original(g, 2);
    part::PartitionState reduced(clustered.graph, 2);
    std::vector<PartitionId> reduced_side(
        static_cast<std::size_t>(clustered.graph.num_vertices()),
        kNoPartition);
    for (VertexId v = 0; v < n; ++v) {
      PartitionId p = fixed.fixed_part(v);
      if (p == kNoPartition) {
        p = static_cast<PartitionId>(rng.next_below(2));
      }
      original.assign(v, p);
      reduced_side[clustered.map[v]] = p;
    }
    for (VertexId c = 0; c < clustered.graph.num_vertices(); ++c) {
      reduced.assign(c, reduced_side[c]);
    }
    EXPECT_EQ(original.cut(), reduced.cut()) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ClusterEquivalence,
                         ::testing::Values(101, 102, 103, 104, 105));

}  // namespace
}  // namespace fixedpart::hg
