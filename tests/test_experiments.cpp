#include <gtest/gtest.h>

#include "experiments/context.hpp"
#include "experiments/derive_report.hpp"
#include "experiments/fixed_sweep.hpp"
#include "experiments/pass_experiments.hpp"
#include "util/rng.hpp"

namespace fixedpart::exp {
namespace {

gen::CircuitSpec tiny_spec() {
  gen::CircuitSpec spec;
  spec.name = "tiny";
  spec.num_cells = 300;
  spec.num_nets = 340;
  spec.num_pads = 12;
  spec.num_macros = 1;
  spec.macro_area_pct = 2.0;
  spec.seed = 77;
  return spec;
}

TEST(Context, GoodReferenceIsCompleteAndScored) {
  util::Rng rng(1);
  const InstanceContext ctx = make_context(tiny_spec(), 2, 2.0, rng);
  EXPECT_EQ(ctx.good_reference.size(),
            static_cast<std::size_t>(ctx.circuit.graph.num_vertices()));
  EXPECT_GT(ctx.good_cut, 0);
  for (const hg::PartitionId p : ctx.good_reference) {
    EXPECT_TRUE(p == 0 || p == 1);
  }
}

TEST(FixedSweep, ShapesAndInvariants) {
  util::Rng rng(2);
  const InstanceContext ctx = make_context(tiny_spec(), 2, 2.0, rng);
  SweepConfig config;
  config.percentages = {0.0, 10.0, 30.0};
  config.starts = {1, 2};
  config.trials = 2;
  const SweepResult result = run_fixed_sweep(ctx, config, rng);

  ASSERT_EQ(result.good.cells.size(), 3u);
  ASSERT_EQ(result.rand.cells.size(), 3u);
  for (std::size_t pi = 0; pi < 3; ++pi) {
    ASSERT_EQ(result.good.cells[pi].size(), 2u);
    for (const SweepCell& cell : result.good.cells[pi]) {
      EXPECT_GE(cell.avg_best_cut, 0.0);
      EXPECT_GE(cell.avg_seconds, 0.0);
      EXPECT_GT(cell.normalized, 0.0);
    }
    // More starts never hurt the mean best cut (best-of-prefix).
    EXPECT_LE(result.good.cells[pi][1].avg_best_cut,
              result.good.cells[pi][0].avg_best_cut);
    EXPECT_LE(result.rand.cells[pi][1].avg_best_cut,
              result.rand.cells[pi][0].avg_best_cut);
    // Normalizers: best_seen is a lower bound on every average.
    EXPECT_LE(static_cast<double>(result.rand.best_seen[pi]),
              result.rand.cells[pi][0].avg_best_cut + 1e-9);
    // rand normalized >= 1 by construction.
    EXPECT_GE(result.rand.cells[pi][0].normalized, 1.0 - 1e-9);
  }
  // Raw rand cost grows with the fixed percentage (the paper's headline
  // observation); compare 0% vs 30%.
  EXPECT_LT(result.rand.cells[0][1].avg_best_cut,
            result.rand.cells[2][1].avg_best_cut);
}

TEST(FixedSweep, Validation) {
  util::Rng rng(3);
  const InstanceContext ctx = make_context(tiny_spec(), 1, 2.0, rng);
  SweepConfig config;
  config.trials = 0;
  EXPECT_THROW(run_fixed_sweep(ctx, config, rng), std::invalid_argument);
  config.trials = 1;
  config.starts = {};
  EXPECT_THROW(run_fixed_sweep(ctx, config, rng), std::invalid_argument);
}

TEST(PassStats, RowsPerPercentage) {
  util::Rng rng(4);
  const InstanceContext ctx = make_context(tiny_spec(), 1, 2.0, rng);
  PassStatsConfig config;
  config.percentages = {0.0, 20.0};
  config.runs = 3;
  const auto rows = run_pass_stats(ctx, config, rng);
  ASSERT_EQ(rows.size(), 2u);
  for (const PassStatsRow& row : rows) {
    EXPECT_GE(row.avg_passes, 1.0);
    EXPECT_GE(row.avg_pct_moved, 0.0);
    EXPECT_LE(row.avg_pct_moved, 100.0);
    EXPECT_LE(row.avg_pct_moved, row.avg_pct_performed + 1e-9);
  }
}

TEST(Cutoff, GridShape) {
  util::Rng rng(5);
  const InstanceContext ctx = make_context(tiny_spec(), 1, 2.0, rng);
  CutoffConfig config;
  config.percentages = {0.0, 20.0};
  config.cutoffs = {1.0, 0.10};
  config.runs = 3;
  const CutoffResult result = run_cutoff_experiment(ctx, config, rng);
  ASSERT_EQ(result.cells.size(), 2u);
  ASSERT_EQ(result.cells[0].size(), 2u);
  for (const auto& row : result.cells) {
    for (const auto& cell : row) {
      EXPECT_GT(cell.avg_cut, 0.0);
      EXPECT_GE(cell.avg_seconds, 0.0);
    }
  }
}

TEST(DeriveReport, EightRowsWithRentCrossCheck) {
  const auto circuit = gen::generate_circuit(tiny_spec());
  const auto rows = derive_report(circuit, 2.0);
  ASSERT_EQ(rows.size(), 8u);
  for (const DerivedRow& row : rows) {
    EXPECT_GT(row.cells, 0);
    EXPECT_GT(row.nets, 0);
    EXPECT_GE(row.pads, 0);
    EXPECT_LE(row.external_nets, row.nets);
    EXPECT_GT(row.rent_expected_terminals, 0.0);
  }
  // Sub-blocks (C/D) have proportionally more terminals than the full die.
  const double frac_a =
      static_cast<double>(rows[0].pads) /
      static_cast<double>(rows[0].cells + rows[0].pads);
  const double frac_d =
      static_cast<double>(rows[6].pads) /
      static_cast<double>(rows[6].cells + rows[6].pads);
  EXPECT_GT(frac_d, frac_a);
}

}  // namespace
}  // namespace fixedpart::exp
