#include "ml/recursive_bisection.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gen/netlist_gen.hpp"
#include "hg/builder.hpp"
#include "part/partition.hpp"
#include "util/rng.hpp"

namespace fixedpart::ml {
namespace {

hg::Hypergraph four_clusters() {
  hg::HypergraphBuilder b;
  for (int i = 0; i < 16; ++i) b.add_vertex(1);
  for (int c = 0; c < 4; ++c) {
    const int base = 4 * c;
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        b.add_net(std::vector<hg::VertexId>{base + i, base + j});
      }
    }
  }
  b.add_net(std::vector<hg::VertexId>{0, 4});
  b.add_net(std::vector<hg::VertexId>{8, 12});
  return b.build();
}

Weight cut_of(const hg::Hypergraph& g,
              const std::vector<hg::PartitionId>& assignment,
              hg::PartitionId k) {
  part::PartitionState state(g, k);
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    state.assign(v, assignment[v]);
  }
  return state.cut();
}

TEST(RecursiveBisection, SolvesSeparableFourWay) {
  const hg::Hypergraph g = four_clusters();
  const hg::FixedAssignment fixed(g.num_vertices(), 4);
  RbConfig config;
  config.tolerance_pct = 30.0;
  Weight best = std::numeric_limits<Weight>::max();
  util::Rng rng(1);
  for (int s = 0; s < 8; ++s) {
    const auto assignment = recursive_bisection(g, fixed, 4, config, rng);
    best = std::min(best, cut_of(g, assignment, 4));
  }
  EXPECT_EQ(best, 2);
}

TEST(RecursiveBisection, KOneAssignsEverythingToZero) {
  const hg::Hypergraph g = four_clusters();
  const hg::FixedAssignment fixed(g.num_vertices(), 1);
  util::Rng rng(2);
  const auto assignment = recursive_bisection(g, fixed, 1, RbConfig{}, rng);
  for (const hg::PartitionId p : assignment) EXPECT_EQ(p, 0);
}

TEST(RecursiveBisection, UnevenKHasProportionalSides) {
  // k = 3: the first split targets 1/3 vs 2/3 of the weight.
  gen::CircuitSpec spec;
  spec.num_cells = 600;
  spec.num_nets = 660;
  spec.num_pads = 0;
  spec.num_macros = 0;
  spec.seed = 3;
  const auto circuit = gen::generate_circuit(spec);
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 3);
  RbConfig config;
  config.tolerance_pct = 10.0;
  util::Rng rng(4);
  const auto assignment =
      recursive_bisection(circuit.graph, fixed, 3, config, rng);
  Weight part_weight[3] = {0, 0, 0};
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    ASSERT_GE(assignment[v], 0);
    ASSERT_LT(assignment[v], 3);
    part_weight[assignment[v]] += circuit.graph.vertex_weight(v);
  }
  const double total = static_cast<double>(circuit.graph.total_weight());
  for (int p = 0; p < 3; ++p) {
    const double share = static_cast<double>(part_weight[p]) / total;
    EXPECT_GT(share, 0.33 / 1.35) << "part " << p;
    EXPECT_LT(share, 0.34 * 1.35) << "part " << p;
  }
}

TEST(RecursiveBisection, HonoursFixedAndOrSets) {
  gen::CircuitSpec spec;
  spec.num_cells = 300;
  spec.num_nets = 330;
  spec.num_pads = 0;
  spec.seed = 5;
  const auto circuit = gen::generate_circuit(spec);
  hg::FixedAssignment fixed(circuit.graph.num_vertices(), 4);
  fixed.fix(0, 3);
  fixed.fix(1, 0);
  fixed.restrict_to(2, 0b0101);  // parts 0 or 2
  fixed.restrict_to(3, 0b1100);  // parts 2 or 3
  RbConfig config;
  config.tolerance_pct = 10.0;
  util::Rng rng(6);
  const auto assignment =
      recursive_bisection(circuit.graph, fixed, 4, config, rng);
  EXPECT_EQ(assignment[0], 3);
  EXPECT_EQ(assignment[1], 0);
  EXPECT_TRUE(assignment[2] == 0 || assignment[2] == 2);
  EXPECT_TRUE(assignment[3] == 2 || assignment[3] == 3);
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    EXPECT_TRUE(fixed.is_allowed(v, assignment[v]));
  }
}

TEST(RecursiveBisection, Validation) {
  const hg::Hypergraph g = four_clusters();
  util::Rng rng(7);
  const hg::FixedAssignment fixed4(g.num_vertices(), 4);
  EXPECT_THROW(recursive_bisection(g, fixed4, 0, RbConfig{}, rng),
               std::invalid_argument);
  EXPECT_THROW(recursive_bisection(g, fixed4, 8, RbConfig{}, rng),
               std::invalid_argument);  // num_parts mismatch
  const hg::FixedAssignment wrong_size(4, 4);
  EXPECT_THROW(recursive_bisection(g, wrong_size, 4, RbConfig{}, rng),
               std::invalid_argument);
}

TEST(RecursiveBisection, FourWayQualityComparableToClusters) {
  // On a realistic circuit the RB cut should beat random by a wide margin.
  gen::CircuitSpec spec;
  spec.num_cells = 800;
  spec.num_nets = 880;
  spec.num_pads = 16;
  spec.seed = 8;
  const auto circuit = gen::generate_circuit(spec);
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 4);
  RbConfig config;
  config.tolerance_pct = 10.0;
  util::Rng rng(9);
  const auto assignment =
      recursive_bisection(circuit.graph, fixed, 4, config, rng);
  const Weight rb_cut = cut_of(circuit.graph, assignment, 4);

  part::PartitionState random_state(circuit.graph, 4);
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    random_state.assign(
        v, static_cast<hg::PartitionId>(rng.next_below(4)));
  }
  EXPECT_LT(rb_cut, random_state.cut() / 2);
}

}  // namespace
}  // namespace fixedpart::ml
